//! Cross-crate integration test: the correctness statements are universally
//! quantified over asynchronous delivery orders, so every protocol is replayed
//! under the full scheduler battery (FIFO, LIFO, terminal-rushing,
//! terminal-starving and several random orders) on topologies from every family.

use anet::graph::{generators, Network};
use anet::protocols::dag_broadcast::{DagBroadcast, ForwardingMode};
use anet::protocols::general_broadcast::GeneralBroadcast;
use anet::protocols::labeling::Labeling;
use anet::protocols::tree_broadcast::TreeBroadcast;
use anet::protocols::{Payload, Pow2Commodity};
use anet::sim::engine::ExecutionConfig;
use anet::sim::runner::run_under_battery;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RANDOM_SCHEDULES: usize = 6;

fn battery_terminates<P: anet::sim::AnonymousProtocol>(net: &Network, protocol: &P) {
    for named in run_under_battery(
        net,
        protocol,
        ExecutionConfig::default(),
        2024,
        RANDOM_SCHEDULES,
    ) {
        assert!(
            named.result.outcome.terminated(),
            "scheduler {} failed on a {}-vertex network",
            named.scheduler,
            net.node_count()
        );
    }
}

fn battery_never_terminates<P: anet::sim::AnonymousProtocol>(net: &Network, protocol: &P) {
    for named in run_under_battery(
        net,
        protocol,
        ExecutionConfig::default(),
        99,
        RANDOM_SCHEDULES,
    ) {
        assert!(
            !named.result.outcome.terminated(),
            "scheduler {} terminated on a network with a stranded vertex",
            named.scheduler
        );
    }
}

#[test]
fn tree_broadcast_all_schedules() {
    let mut rng = StdRng::seed_from_u64(31);
    let nets = vec![
        generators::chain_gn(14).unwrap(),
        generators::random_grounded_tree(&mut rng, 30, 4, 0.3).unwrap(),
    ];
    let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::from_bytes(b"x"));
    for net in &nets {
        battery_terminates(net, &protocol);
        let broken = generators::with_stranded_vertex(net).unwrap();
        battery_never_terminates(&broken, &protocol);
    }
}

#[test]
fn dag_broadcast_all_schedules() {
    let mut rng = StdRng::seed_from_u64(32);
    let nets = vec![
        generators::diamond_stack(5).unwrap(),
        generators::random_dag(&mut rng, 25, 0.2).unwrap(),
    ];
    for net in &nets {
        for mode in [ForwardingMode::Eager, ForwardingMode::WaitForAllInputs] {
            let protocol = DagBroadcast::<Pow2Commodity>::new(Payload::empty(), mode);
            battery_terminates(net, &protocol);
        }
        let broken = generators::with_stranded_vertex(net).unwrap();
        let eager = DagBroadcast::<Pow2Commodity>::new(Payload::empty(), ForwardingMode::Eager);
        battery_never_terminates(&broken, &eager);
    }
}

#[test]
fn general_broadcast_all_schedules() {
    let mut rng = StdRng::seed_from_u64(33);
    let nets = vec![
        generators::cycle_with_tail(10).unwrap(),
        generators::nested_cycles(2, 6).unwrap(),
        generators::random_cyclic(&mut rng, 20, 0.12, 0.2).unwrap(),
    ];
    let protocol = GeneralBroadcast::new(Payload::from_bytes(b"g"));
    for net in &nets {
        battery_terminates(net, &protocol);
        let broken = generators::with_stranded_vertex(net).unwrap();
        battery_never_terminates(&broken, &protocol);
    }
}

#[test]
fn labeling_all_schedules() {
    let mut rng = StdRng::seed_from_u64(34);
    let nets = vec![
        generators::complete_dag(8).unwrap(),
        generators::random_cyclic(&mut rng, 16, 0.15, 0.25).unwrap(),
    ];
    let protocol = Labeling::new();
    for net in &nets {
        for named in run_under_battery(
            net,
            &protocol,
            ExecutionConfig::default(),
            5,
            RANDOM_SCHEDULES,
        ) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
            // Uniqueness under every schedule.
            let labels: Vec<_> = net
                .graph()
                .nodes()
                .filter(|&n| n != net.root())
                .map(|n| named.result.states[n.index()].label.clone())
                .collect();
            for (i, a) in labels.iter().enumerate() {
                assert!(!a.is_empty(), "sched {}", named.scheduler);
                for b in &labels[i + 1..] {
                    assert!(!a.intersects(b), "sched {}", named.scheduler);
                }
            }
        }
        let broken = generators::with_stranded_vertex(net).unwrap();
        battery_never_terminates(&broken, &protocol);
    }
}
