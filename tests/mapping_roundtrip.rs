//! Cross-crate integration test for the Section 6 mapping protocol: the terminal's
//! extracted topology is exactly the original network, for random topologies and
//! for every delivery schedule in the battery.

use anet::graph::generators;
use anet::protocols::mapping::{run_mapping, Mapping, ReconstructedTopology};
use anet::sim::engine::ExecutionConfig;
use anet::sim::runner::run_under_battery;
use anet::sim::scheduler::FifoScheduler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn mapping_roundtrips_named_families() {
    let nets = vec![
        generators::path_network(3).unwrap(),
        generators::chain_gn(7).unwrap(),
        generators::star_network(6).unwrap(),
        generators::diamond_stack(4).unwrap(),
        generators::cycle_with_tail(9).unwrap(),
        generators::nested_cycles(2, 5).unwrap(),
        generators::complete_dag(7).unwrap(),
    ];
    for net in &nets {
        let report = run_mapping(net, &mut FifoScheduler::new()).unwrap();
        assert!(report.terminated);
        assert!(
            report.reconstruction_is_exact(net),
            "|V| = {}",
            net.node_count()
        );
        let rebuilt = report.topology.as_ref().unwrap().to_network().unwrap();
        assert_eq!(rebuilt.node_count(), net.node_count());
        assert_eq!(rebuilt.edge_count(), net.edge_count());
    }
}

#[test]
fn mapping_roundtrips_under_adversarial_schedules() {
    let mut rng = StdRng::seed_from_u64(77);
    let net = generators::random_cyclic(&mut rng, 12, 0.15, 0.2).unwrap();
    for named in run_under_battery(&net, &Mapping::new(), ExecutionConfig::default(), 13, 4) {
        assert!(
            named.result.outcome.terminated(),
            "sched {}",
            named.scheduler
        );
        let labels: Vec<_> = named
            .result
            .states
            .iter()
            .map(|s| s.label.clone())
            .collect();
        let topo = ReconstructedTopology::from_terminal_state(
            &named.result.states[net.terminal().index()],
        );
        assert!(
            topo.matches_exactly(&net, &labels),
            "sched {}",
            named.scheduler
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random networks of every shape round-trip through the mapping protocol.
    #[test]
    fn mapping_roundtrips_random_networks(
        seed in 0u64..5_000,
        internal in 2usize..18,
        fwd in 0.0f64..0.25,
        back in 0.0f64..0.25,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generators::random_cyclic(&mut rng, internal, fwd, back).unwrap();
        let report = run_mapping(&net, &mut FifoScheduler::new()).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.reconstruction_is_exact(&net));
    }

    /// Random DAGs as well (different generator, different degree profile).
    #[test]
    fn mapping_roundtrips_random_dags(seed in 0u64..5_000, internal in 2usize..20, p in 0.0f64..0.4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generators::random_dag(&mut rng, internal, p).unwrap();
        let report = run_mapping(&net, &mut FifoScheduler::new()).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.reconstruction_is_exact(&net));
    }
}
