//! Cross-crate integration test: the paper's central correctness statement.
//!
//! For every protocol and every topology family: the protocol terminates if and
//! only if every vertex (reachable from the root) is connected to the terminal,
//! and on termination every vertex has received the broadcast.

use anet::graph::{classify, generators, Network};
use anet::protocols::dag_broadcast::{run_dag_broadcast, ForwardingMode};
use anet::protocols::general_broadcast::run_general_broadcast;
use anet::protocols::tree_broadcast::run_tree_broadcast;
use anet::protocols::{ExactCommodity, Payload, Pow2Commodity};
use anet::sim::scheduler::FifoScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grounded_trees() -> Vec<Network> {
    let mut rng = StdRng::seed_from_u64(1);
    vec![
        generators::path_network(6).unwrap(),
        generators::chain_gn(12).unwrap(),
        generators::star_network(7).unwrap(),
        generators::full_grounded_tree(3, 3).unwrap(),
        generators::pruned_tree(9, 4).unwrap().0,
        generators::random_grounded_tree(&mut rng, 35, 4, 0.4).unwrap(),
    ]
}

fn dags() -> Vec<Network> {
    let mut rng = StdRng::seed_from_u64(2);
    vec![
        generators::diamond_stack(5).unwrap(),
        generators::layered_dag(&mut rng, 4, 5, 2).unwrap(),
        generators::random_dag(&mut rng, 30, 0.15).unwrap(),
        generators::complete_dag(9).unwrap(),
    ]
}

fn cyclic() -> Vec<Network> {
    let mut rng = StdRng::seed_from_u64(3);
    vec![
        generators::cycle_with_tail(6).unwrap(),
        generators::nested_cycles(3, 4).unwrap(),
        generators::random_cyclic(&mut rng, 25, 0.12, 0.2).unwrap(),
    ]
}

#[test]
fn tree_broadcast_is_correct_on_grounded_trees_and_refuses_otherwise() {
    for net in grounded_trees() {
        assert!(classify::is_grounded_tree(&net));
        let ok = run_tree_broadcast::<Pow2Commodity>(
            &net,
            Payload::from_bytes(b"it"),
            &mut FifoScheduler::new(),
        )
        .unwrap();
        assert!(ok.terminated && ok.all_received);

        let naive = run_tree_broadcast::<ExactCommodity>(
            &net,
            Payload::from_bytes(b"it"),
            &mut FifoScheduler::new(),
        )
        .unwrap();
        assert!(naive.terminated && naive.all_received);

        let broken = generators::with_stranded_vertex(&net).unwrap();
        assert!(!classify::all_connected_to_terminal(&broken));
        let refused = run_tree_broadcast::<Pow2Commodity>(
            &broken,
            Payload::empty(),
            &mut FifoScheduler::new(),
        )
        .unwrap();
        assert!(!refused.terminated && refused.quiescent);
    }
}

#[test]
fn dag_broadcast_is_correct_on_dags_and_refuses_otherwise() {
    for net in grounded_trees().into_iter().chain(dags()) {
        assert!(classify::is_dag(net.graph()));
        for mode in [ForwardingMode::Eager, ForwardingMode::WaitForAllInputs] {
            let ok = run_dag_broadcast::<Pow2Commodity>(
                &net,
                Payload::from_bytes(b"d"),
                mode,
                &mut FifoScheduler::new(),
            )
            .unwrap();
            assert!(ok.terminated && ok.all_received, "mode {mode:?}");
        }
        let broken = generators::with_stranded_vertex(&net).unwrap();
        let refused = run_dag_broadcast::<Pow2Commodity>(
            &broken,
            Payload::empty(),
            ForwardingMode::Eager,
            &mut FifoScheduler::new(),
        )
        .unwrap();
        assert!(!refused.terminated && refused.quiescent);
    }
}

#[test]
fn general_broadcast_is_correct_on_every_family_and_refuses_otherwise() {
    for net in grounded_trees().into_iter().chain(dags()).chain(cyclic()) {
        let ok = run_general_broadcast(&net, Payload::from_bytes(b"g"), &mut FifoScheduler::new())
            .unwrap();
        assert!(
            ok.terminated && ok.all_received,
            "|V| = {}",
            net.node_count()
        );

        let broken = generators::with_stranded_vertex(&net).unwrap();
        let refused =
            run_general_broadcast(&broken, Payload::empty(), &mut FifoScheduler::new()).unwrap();
        assert!(
            !refused.terminated && refused.quiescent,
            "|V| = {}",
            net.node_count()
        );
    }
}

#[test]
fn general_broadcast_subsumes_the_tree_protocol_on_grounded_trees() {
    // On grounded trees both protocols must succeed; the scalar protocol is the
    // cheaper of the two (that is the whole point of having it).
    for net in grounded_trees() {
        let tree =
            run_tree_broadcast::<Pow2Commodity>(&net, Payload::empty(), &mut FifoScheduler::new())
                .unwrap();
        let general =
            run_general_broadcast(&net, Payload::empty(), &mut FifoScheduler::new()).unwrap();
        assert!(tree.terminated && general.terminated);
        assert!(tree.total_bits() <= general.total_bits());
    }
}
