//! Cross-crate integration test: the *shape* of every complexity claim in the
//! paper, measured on laptop-scale instances. Absolute constants are not the
//! paper's claim; the growth rates and orderings are.

use anet::graph::generators;
use anet::lowerbounds::chain_family::chain_family_experiment;
use anet::lowerbounds::pruning::pruning_experiment;
use anet::lowerbounds::skeleton::skeleton_experiment;
use anet::protocols::general_broadcast::run_general_broadcast;
use anet::protocols::labeling::run_labeling;
use anet::protocols::tree_broadcast::run_tree_broadcast;
use anet::protocols::{ExactCommodity, Payload, Pow2Commodity};
use anet::sim::scheduler::FifoScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 3.1 + Theorem 3.2: on the chain family, total bits grow like
/// `Θ(|E| log |E|)` — superlinear in |E| but far below quadratic.
#[test]
fn e1_e2_chain_total_bits_grow_like_e_log_e() {
    let points = chain_family_experiment::<Pow2Commodity>(&[16, 64, 256], 0);
    let ratio_log = |i: usize| points[i].stats.total_bits as f64 / points[i].e_log_e;
    // Normalised by |E| log |E| the measurements stay within a small constant band.
    let (a, b, c) = (ratio_log(0), ratio_log(1), ratio_log(2));
    assert!(b < a * 2.5 && c < a * 2.5, "{a} {b} {c}");
    assert!(b > a * 0.3 && c > a * 0.3, "{a} {b} {c}");
    // And they would *not* fit a quadratic: total bits / |E|^2 must shrink.
    let quad = |i: usize| {
        points[i].stats.total_bits as f64 / (points[i].edges as f64 * points[i].edges as f64)
    };
    assert!(quad(2) < quad(0) / 3.0);
}

/// The E1 ablation: on trees with non-power-of-two degrees the naive x/d rule
/// pays an asymptotically growing factor over the power-of-two rule.
#[test]
fn e1_naive_rule_overhead_grows_with_size() {
    let overhead = |height: usize| {
        let net = generators::full_grounded_tree(height, 3).unwrap();
        let pow2 =
            run_tree_broadcast::<Pow2Commodity>(&net, Payload::empty(), &mut FifoScheduler::new())
                .unwrap();
        let naive =
            run_tree_broadcast::<ExactCommodity>(&net, Payload::empty(), &mut FifoScheduler::new())
                .unwrap();
        naive.total_bits() as f64 / pow2.total_bits() as f64
    };
    let small = overhead(3);
    let large = overhead(6);
    assert!(
        large > small,
        "naive/pow2 overhead should grow: {small} -> {large}"
    );
    assert!(large > 1.2);
}

/// Theorem 3.8 shape: the skeleton's collector edge needs a number of bits that
/// grows linearly with n (and |E| = Θ(n)).
#[test]
fn e4_skeleton_collector_bits_grow_linearly() {
    let o4 = skeleton_experiment::<Pow2Commodity>(4, 16);
    let o8 = skeleton_experiment::<Pow2Commodity>(8, 256);
    assert!(o4.all_distinct && o8.all_distinct);
    assert_eq!(o4.min_bits_on_collector_edge, 4);
    assert_eq!(o8.min_bits_on_collector_edge, 8);
    assert!(o8.observed_collector_message_bits >= o4.observed_collector_message_bits + 4);
}

/// Theorems 4.2/4.3 shape: general-broadcast totals stay far below the
/// |E|²·|V|·log d_out envelope and the per-message size below |E|·|V|·log d_out.
#[test]
fn e5_general_broadcast_stays_within_the_polynomial_envelope() {
    let mut rng = StdRng::seed_from_u64(9);
    for internal in [15usize, 30, 45] {
        let net = generators::random_cyclic(&mut rng, internal, 0.1, 0.15).unwrap();
        let report =
            run_general_broadcast(&net, Payload::empty(), &mut FifoScheduler::new()).unwrap();
        assert!(report.terminated);
        let e = net.edge_count() as f64;
        let v = net.node_count() as f64;
        let logd = (net.max_out_degree() as f64).max(2.0).log2();
        assert!(
            (report.total_bits() as f64) < e * e * v * logd * 64.0,
            "total bits blow the envelope for |V| = {internal}"
        );
        assert!((report.max_message_bits() as f64) < e * v * logd * 64.0);
    }
}

/// Theorem 5.1 + 5.2 shape: max label length grows with |V| log d and the pruned
/// tree keeps the full tree's deep label.
#[test]
fn e6_e7_label_lengths_follow_v_log_d() {
    let small = pruning_experiment(4, 4, true);
    assert_eq!(small.labels_match_along_path, Some(true));
    let grown_height = pruning_experiment(16, 4, false);
    let grown_arity = pruning_experiment(4, 16, false);
    assert!(grown_height.pruned_deep_label_bits > small.pruned_deep_label_bits * 2);
    assert!(grown_arity.pruned_deep_label_bits > small.pruned_deep_label_bits);

    // On general networks, the measured max label also scales with |V| log d.
    let mut rng = StdRng::seed_from_u64(77);
    let small_net = generators::random_cyclic(&mut rng, 10, 0.1, 0.1).unwrap();
    let large_net = generators::random_cyclic(&mut rng, 60, 0.1, 0.1).unwrap();
    let small_labels = run_labeling(&small_net, &mut FifoScheduler::new()).unwrap();
    let large_labels = run_labeling(&large_net, &mut FifoScheduler::new()).unwrap();
    assert!(large_labels.max_label_bits > small_labels.max_label_bits);
}
