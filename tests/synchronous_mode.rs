//! Cross-crate integration test for the synchronous extension mentioned in
//! Section 2 of the paper: every protocol behaves identically (terminates iff all
//! vertices are connected to `t`, labels stay unique, maps stay exact) when
//! messages are delivered in lock-step rounds instead of adversarial asynchrony.

use anet::graph::generators;
use anet::protocols::general_broadcast::GeneralBroadcast;
use anet::protocols::labeling::Labeling;
use anet::protocols::mapping::{Mapping, ReconstructedTopology};
use anet::protocols::tree_broadcast::TreeBroadcast;
use anet::protocols::{Payload, Pow2Commodity};
use anet::sim::engine::ExecutionConfig;
use anet::sim::run_synchronous;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tree_broadcast_rounds_track_network_depth() {
    // On the chain family the synchronous time is Θ(n): one hop per round.
    for n in [4usize, 8, 16] {
        let net = generators::chain_gn(n).unwrap();
        let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::from_bytes(b"m"));
        let run = run_synchronous(&net, &protocol, ExecutionConfig::default());
        assert!(run.result.outcome.terminated());
        assert!(
            run.rounds as usize >= n && run.rounds as usize <= n + 2,
            "n = {n}, rounds = {}",
            run.rounds
        );
    }
}

#[test]
fn general_broadcast_terminates_synchronously_on_cyclic_networks() {
    let mut rng = StdRng::seed_from_u64(5);
    let nets = vec![
        generators::cycle_with_tail(8).unwrap(),
        generators::nested_cycles(2, 5).unwrap(),
        generators::random_cyclic(&mut rng, 20, 0.12, 0.2).unwrap(),
    ];
    for net in &nets {
        let protocol = GeneralBroadcast::new(Payload::from_bytes(b"g"));
        let run = run_synchronous(net, &protocol, ExecutionConfig::default());
        assert!(run.result.outcome.terminated());
        for node in net.internal_nodes() {
            assert!(run.result.states[node.index()].received);
        }
        // A stranded vertex must still prevent termination.
        let broken = generators::with_stranded_vertex(net).unwrap();
        let refused = run_synchronous(&broken, &protocol, ExecutionConfig::default());
        assert!(!refused.result.outcome.terminated());
    }
}

#[test]
fn labeling_is_unique_synchronously() {
    let mut rng = StdRng::seed_from_u64(6);
    let net = generators::random_cyclic(&mut rng, 18, 0.15, 0.2).unwrap();
    let run = run_synchronous(&net, &Labeling::new(), ExecutionConfig::default());
    assert!(run.result.outcome.terminated());
    let labels: Vec<_> = net
        .graph()
        .nodes()
        .filter(|&n| n != net.root())
        .map(|n| run.result.states[n.index()].label.clone())
        .collect();
    for (i, a) in labels.iter().enumerate() {
        assert!(!a.is_empty());
        for b in &labels[i + 1..] {
            assert!(!a.intersects(b));
        }
    }
}

#[test]
fn mapping_is_exact_synchronously() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = generators::random_cyclic(&mut rng, 14, 0.15, 0.2).unwrap();
    let run = run_synchronous(&net, &Mapping::new(), ExecutionConfig::default());
    assert!(run.result.outcome.terminated());
    let labels: Vec<_> = run.result.states.iter().map(|s| s.label.clone()).collect();
    let topo =
        ReconstructedTopology::from_terminal_state(&run.result.states[net.terminal().index()]);
    assert!(topo.matches_exactly(&net, &labels));
    assert!(run.rounds > 0);
}
