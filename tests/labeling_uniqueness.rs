//! Cross-crate integration test for Theorem 5.1: unique labels with the claimed
//! length bound, across topology families and random instances.

use anet::graph::{classify, generators};
use anet::num::IntervalUnion;
use anet::protocols::labeling::{label_bits, run_labeling};
use anet::sim::scheduler::FifoScheduler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn labels_are_unique_and_within_the_length_bound_on_named_families() {
    let mut rng = StdRng::seed_from_u64(11);
    let nets = vec![
        ("chain", generators::chain_gn(20).unwrap()),
        ("full-tree", generators::full_grounded_tree(3, 4).unwrap()),
        ("diamond", generators::diamond_stack(6).unwrap()),
        ("complete-dag", generators::complete_dag(10).unwrap()),
        ("cycle", generators::cycle_with_tail(12).unwrap()),
        ("nested-cycles", generators::nested_cycles(3, 5).unwrap()),
        (
            "random-cyclic",
            generators::random_cyclic(&mut rng, 30, 0.1, 0.15).unwrap(),
        ),
    ];
    for (name, net) in nets {
        let report = run_labeling(&net, &mut FifoScheduler::new()).unwrap();
        assert!(report.terminated, "{name}");
        assert!(report.labels_unique, "{name}");
        // Theorem 5.1 label-length shape: O(|V| log d_out) bits, with a generous
        // constant to absorb the self-delimiting encoding overhead.
        let v = net.node_count() as f64;
        let d = (net.max_out_degree() as f64).max(2.0);
        let bound = 16.0 * v * d.log2() + 64.0;
        assert!(
            (report.max_label_bits as f64) <= bound,
            "{name}: {} bits exceeds {bound}",
            report.max_label_bits
        );
    }
}

#[test]
fn stranded_vertices_prevent_termination_of_labeling() {
    let base = generators::nested_cycles(2, 4).unwrap();
    let broken = generators::with_stranded_vertex(&base).unwrap();
    assert!(!classify::all_connected_to_terminal(&broken));
    let report = run_labeling(&broken, &mut FifoScheduler::new()).unwrap();
    assert!(!report.terminated);
    assert!(report.quiescent);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random cyclic networks of random size and density: labels always unique,
    /// always disjoint sub-intervals of [0, 1).
    #[test]
    fn labels_unique_on_random_networks(
        seed in 0u64..5_000,
        internal in 2usize..28,
        fwd in 0.0f64..0.3,
        back in 0.0f64..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = generators::random_cyclic(&mut rng, internal, fwd, back).unwrap();
        let report = run_labeling(&net, &mut FifoScheduler::new()).unwrap();
        prop_assert!(report.terminated);
        prop_assert!(report.labels_unique);
        // Labels are disjoint and sit inside the unit interval.
        let mut acc = IntervalUnion::empty();
        for node in net.graph().nodes().filter(|&n| n != net.root()) {
            let label = report.label_of(node);
            prop_assert!(!label.is_empty());
            prop_assert!(!acc.intersects(label));
            acc.union_in_place(label);
            prop_assert!(label_bits(label) > 0);
        }
        prop_assert!(acc.is_subset_of(&IntervalUnion::unit()));
    }
}
