//! Cross-crate integration test for the lower-bound machinery of Section 3.2:
//! linear cuts, the Lemma 3.5 / Theorem 3.6 surgery, and the cross-network version
//! of the no-strict-submultiset property.

use anet::graph::linear_cut::{
    contract_beyond_cut, enumerate_linear_cuts, topological_prefix_cuts,
};
use anet::graph::{classify, generators};
use anet::lowerbounds::linear_cut::verify_cut_lemmas;
use anet::protocols::tree_broadcast::TreeBroadcast;
use anet::protocols::{Payload, Pow2Commodity, ScalarCommodity};
use anet::sim::engine::{run, ExecutionConfig};
use anet::sim::scheduler::FifoScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cut_lemmas_hold_across_grounded_tree_families() {
    let mut rng = StdRng::seed_from_u64(404);
    let nets = vec![
        generators::chain_gn(8).unwrap(),
        generators::star_network(6).unwrap(),
        generators::full_grounded_tree(2, 4).unwrap(),
        generators::random_grounded_tree(&mut rng, 11, 3, 0.6).unwrap(),
    ];
    for net in &nets {
        let outcome = verify_cut_lemmas::<Pow2Commodity>(net, 1 << 14);
        assert!(outcome.cuts_examined > 0);
        assert!(outcome.all_hold(), "{outcome:?}");
    }
}

#[test]
fn no_cut_multiset_is_a_strict_submultiset_even_across_different_trees() {
    // Theorem 3.6 is stated for cuts of possibly *different* grounded trees; check
    // a pair of different chain lengths against each other.
    let short = generators::chain_gn(4).unwrap();
    let long = generators::chain_gn(7).unwrap();
    let collect = |net: &anet::graph::Network| -> Vec<Vec<String>> {
        let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::empty());
        let result = run(
            net,
            &protocol,
            &mut FifoScheduler::new(),
            ExecutionConfig::with_trace(),
        );
        let trace = result.trace.unwrap();
        enumerate_linear_cuts(net, usize::MAX)
            .iter()
            .map(|cut| {
                trace.multiset_on_edges(&cut.crossing_edges(net), |m| m.value.canonical_key())
            })
            .collect()
    };
    let cuts_short = collect(&short);
    let cuts_long = collect(&long);
    let is_strict_sub = |a: &[String], b: &[String]| -> bool {
        if a.len() >= b.len() {
            return false;
        }
        let mut b_rest = b.to_vec();
        for item in a {
            match b_rest.iter().position(|x| x == item) {
                Some(pos) => {
                    b_rest.remove(pos);
                }
                None => return false,
            }
        }
        true
    };
    for a in cuts_short.iter().chain(cuts_long.iter()) {
        for b in cuts_short.iter().chain(cuts_long.iter()) {
            if a != b {
                assert!(!is_strict_sub(a, b), "{a:?} ⊂ {b:?}");
            }
        }
    }
}

#[test]
fn contraction_preserves_the_protocol_view_of_v1() {
    // Lemma 3.5's graph surgery: running on G* is indistinguishable, for the
    // vertices of V1, from running on G.
    let net = generators::chain_gn(9).unwrap();
    let cuts = topological_prefix_cuts(&net).unwrap();
    let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::from_bytes(b"m"));
    let base = run(
        &net,
        &protocol,
        &mut FifoScheduler::new(),
        ExecutionConfig::default(),
    );
    for cut in cuts {
        let (g_star, _) = contract_beyond_cut(&net, &cut).unwrap();
        assert!(classify::all_connected_to_terminal(&g_star));
        let star = run(
            &g_star,
            &protocol,
            &mut FifoScheduler::new(),
            ExecutionConfig::default(),
        );
        assert!(star.outcome.terminated());
        // V1 vertices keep their original relative order in G*, so compare the
        // forwarded flags pairwise.
        let v1 = cut.v1_nodes();
        for (new_index, old_node) in v1.iter().enumerate() {
            assert_eq!(
                base.states[old_node.index()].received,
                star.states[new_index].received
            );
        }
    }
}

#[test]
fn auxiliary_surgery_produces_a_non_terminating_network() {
    let net = generators::chain_gn(6).unwrap();
    let cuts = enumerate_linear_cuts(&net, usize::MAX);
    let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::empty());
    let mut exercised = 0;
    for cut in &cuts {
        let crossing = cut.crossing_edges(&net);
        if crossing.len() < 2 {
            continue;
        }
        let (g_aux, _, aux) =
            anet::graph::linear_cut::contract_with_auxiliary(&net, cut, &[crossing.len() - 1])
                .unwrap();
        assert!(classify::stranded_vertices(&g_aux).contains(&aux));
        let run_aux = run(
            &g_aux,
            &protocol,
            &mut FifoScheduler::new(),
            ExecutionConfig::default(),
        );
        assert!(!run_aux.outcome.terminated());
        exercised += 1;
    }
    assert!(exercised >= 3);
}
