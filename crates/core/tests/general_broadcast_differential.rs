//! Differential suite: the copy-on-write general-broadcast implementation
//! versus the retained deep-clone reference
//! (`anet_core::general_broadcast::reference`).
//!
//! Same contract as `labeling_differential`: identically seeded schedulers
//! across the standard battery × chain/cyclic/DAG topologies × seeds, and
//! bit-identical outcomes, metrics (wire-bit totals included), traces (shape
//! and α/β/payload content) and per-vertex states.

use anet_core::general_broadcast::{self, reference, GeneralBroadcast};
use anet_core::Payload;
use anet_graph::generators::{
    chain_gn, complete_dag, cycle_with_tail, diamond_stack, nested_cycles, random_cyclic,
    random_dag,
};
use anet_graph::Network;
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::{standard_battery, FifoScheduler, RandomScheduler, Scheduler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs both implementations under one pair of identically seeded schedulers
/// and asserts full observable equivalence. Returns whether the run terminated.
fn assert_equivalent_run(
    net: &Network,
    payload: &Payload,
    cow_scheduler: &mut (impl Scheduler + ?Sized),
    reference_scheduler: &mut (impl Scheduler + ?Sized),
    context: &str,
) -> bool {
    let config = ExecutionConfig::with_trace();
    let a = run(
        net,
        &GeneralBroadcast::new(payload.clone()),
        cow_scheduler,
        config,
    );
    let b = run(
        net,
        &reference::GeneralBroadcast::new(payload.clone()),
        reference_scheduler,
        config,
    );

    assert_eq!(a.outcome, b.outcome, "outcome diverged: {context}");
    assert_eq!(
        a.deliveries_at_termination, b.deliveries_at_termination,
        "termination point diverged: {context}"
    );
    assert_eq!(a.metrics, b.metrics, "metrics diverged: {context}");

    let ta = a.trace.as_ref().expect("trace requested");
    let tb = b.trace.as_ref().expect("trace requested");
    assert_eq!(ta.len(), tb.len(), "trace length diverged: {context}");
    for (ea, eb) in ta.events().iter().zip(tb.events()) {
        assert_eq!(
            (ea.seq, ea.edge, ea.src, ea.dst, ea.bits),
            (eb.seq, eb.edge, eb.src, eb.dst, eb.bits),
            "trace event shape diverged: {context}"
        );
        assert_eq!(ea.message, eb.message, "message diverged: {context}");
    }

    for (sa, sb) in a.states.iter().zip(&b.states) {
        assert_eq!(sa, sb, "vertex state diverged: {context}");
    }
    a.outcome.terminated()
}

/// Battery-wide equivalence on one topology.
fn assert_equivalent_under_battery(net: &Network, seed: u64, random_count: usize, name: &str) {
    let payload = Payload::from_bytes(b"differential");
    let cow = standard_battery(seed, random_count);
    let reference = standard_battery(seed, random_count);
    for (mut ca, mut ra) in cow.into_iter().zip(reference) {
        let context = format!("{name} under {}", ca.name());
        assert_equivalent_run(net, &payload, ca.as_mut(), ra.as_mut(), &context);
    }
}

#[test]
fn cow_broadcast_matches_reference_on_chain_families() {
    for n in [2usize, 5, 9] {
        let net = chain_gn(n).unwrap();
        assert_equivalent_under_battery(&net, 19, 3, &format!("chain_gn({n})"));
    }
}

#[test]
fn cow_broadcast_matches_reference_on_cyclic_families() {
    let mut rng = StdRng::seed_from_u64(37);
    let nets = vec![
        ("cycle_with_tail(7)".to_owned(), cycle_with_tail(7).unwrap()),
        (
            "nested_cycles(2,4)".to_owned(),
            nested_cycles(2, 4).unwrap(),
        ),
        (
            "random_cyclic(14)".to_owned(),
            random_cyclic(&mut rng, 14, 0.2, 0.2).unwrap(),
        ),
    ];
    for (name, net) in &nets {
        assert_equivalent_under_battery(net, 43, 3, name);
    }
}

#[test]
fn cow_broadcast_matches_reference_on_dag_families() {
    let mut rng = StdRng::seed_from_u64(47);
    let nets = vec![
        ("diamond_stack(4)".to_owned(), diamond_stack(4).unwrap()),
        ("complete_dag(7)".to_owned(), complete_dag(7).unwrap()),
        (
            "random_dag(16)".to_owned(),
            random_dag(&mut rng, 16, 0.25).unwrap(),
        ),
    ];
    for (name, net) in &nets {
        assert_equivalent_under_battery(net, 53, 3, name);
    }
}

#[test]
fn cow_broadcast_matches_reference_when_the_run_cannot_terminate() {
    let base = cycle_with_tail(5).unwrap();
    let net = anet_graph::generators::with_stranded_vertex(&base).unwrap();
    let terminated = assert_equivalent_run(
        &net,
        &Payload::from_bytes(b"stranded"),
        &mut FifoScheduler::new(),
        &mut FifoScheduler::new(),
        "stranded vertex",
    );
    assert!(!terminated);
}

#[test]
fn cow_broadcast_reports_match_reference_across_seeds() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_cyclic(&mut rng, 12, 0.15, 0.25).unwrap();
        let payload = Payload::from_bytes(b"seeded");
        let a = general_broadcast::run_general_broadcast(
            &net,
            payload.clone(),
            &mut FifoScheduler::new(),
        )
        .unwrap();
        let b = reference::run_general_broadcast(&net, payload, &mut FifoScheduler::new()).unwrap();
        assert_eq!(a.metrics.total_bits, b.metrics.total_bits, "seed {seed}");
        assert_eq!(a.metrics.max_message_bits, b.metrics.max_message_bits);
        assert_eq!(a.metrics.per_edge_bits, b.metrics.per_edge_bits);
        assert_eq!(a.terminated, b.terminated);
        assert_eq!(a.all_received, b.all_received);
        assert_eq!(a.received_count, b.received_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cyclic topologies, FIFO plus a seeded-random schedule, with a
    /// varying payload size.
    #[test]
    fn cow_broadcast_matches_reference_on_random_cyclic(
        seed in 0u64..5_000,
        internal in 2usize..14,
        fwd in 0.0f64..0.3,
        back in 0.0f64..0.3,
        sched_seed in 0u64..1_000,
        payload_bits in 0u64..256,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_cyclic(&mut rng, internal, fwd, back).unwrap();
        let payload = Payload::synthetic(payload_bits);
        assert_equivalent_run(
            &net,
            &payload,
            &mut FifoScheduler::new(),
            &mut FifoScheduler::new(),
            &format!("random_cyclic seed {seed} fifo"),
        );
        assert_equivalent_run(
            &net,
            &payload,
            &mut RandomScheduler::seeded(sched_seed),
            &mut RandomScheduler::seeded(sched_seed),
            &format!("random_cyclic seed {seed} random {sched_seed}"),
        );
    }

    /// Random DAGs (different generator, different degree profile).
    #[test]
    fn cow_broadcast_matches_reference_on_random_dags(
        seed in 0u64..5_000,
        internal in 2usize..16,
        p in 0.0f64..0.4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_dag(&mut rng, internal, p).unwrap();
        assert_equivalent_run(
            &net,
            &Payload::from_bytes(b"dag"),
            &mut FifoScheduler::new(),
            &mut FifoScheduler::new(),
            &format!("random_dag seed {seed}"),
        );
    }
}
