//! Differential suite for the retry/re-flood protocol variants
//! ([`anet_sim::run_recovering`] over the [`anet_sim::RefloodProtocol`] impls
//! of the three sweep protocols). Pins the two halves of the retry contract:
//!
//! 1. **Reliable ⇒ bit-identical.** Under a [`FaultPlan::reliable()`] wrapper
//!    the recovering runner never fires a re-flood round, and its outcome,
//!    final states, labels and wire-bit metrics are equal to the pristine
//!    runner's, across the whole scheduler battery × topology grid.
//! 2. **Loss ⇒ recovery.** For every single-delivery crash window that
//!    starves the pristine run (quiescence without termination), and for
//!    sustained-drop plans under which the pristine run starves, the retry
//!    variant terminates and satisfies the protocol's recovery predicate
//!    (`labels_unique` / `general_recovered` / `mapping_recovered`).

use anet_core::general_broadcast::{general_recovered, GeneralBroadcast, GeneralState};
use anet_core::labeling::{labels_unique, Labeling, LabelingState};
use anet_core::mapping::{mapping_recovered, Mapping, MappingState};
use anet_core::Payload;
use anet_graph::generators::{chain_gn, cycle_with_tail, diamond_stack, random_cyclic};
use anet_graph::Network;
use anet_num::IntervalUnion;
use anet_sim::engine::{run_recovering, run_with_config, ExecutionConfig, RunConfig};
use anet_sim::scheduler::{standard_battery, FifoScheduler, Scheduler};
use anet_sim::{FaultPlan, FaultyScheduler, Outcome, RecoveredRun, RefloodProtocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RETRY_BUDGET: u32 = 8;

fn topologies() -> Vec<Network> {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    vec![
        chain_gn(6).expect("valid"),
        diamond_stack(4).expect("valid"),
        cycle_with_tail(7).expect("valid"),
        random_cyclic(&mut rng, 14, 0.2, 0.2).expect("valid"),
    ]
}

fn config() -> RunConfig {
    RunConfig::from(ExecutionConfig {
        max_deliveries: 1_000_000,
        record_trace: false,
    })
}

fn recovering<P: RefloodProtocol>(
    net: &Network,
    protocol: &P,
    plan: FaultPlan,
) -> RecoveredRun<P::State, P::Message> {
    let mut sched = FaultyScheduler::new(FifoScheduler::new(), plan);
    run_recovering(net, protocol, &mut sched, config(), RETRY_BUDGET)
}

// ---------------------------------------------------------------------------
// Half 1: reliable-plan retry is bit-identical to the pristine run.
// ---------------------------------------------------------------------------

#[test]
fn reliable_retry_labeling_is_bit_identical_to_pristine() {
    let protocol = Labeling::new();
    for net in topologies() {
        for (mut plain, wrapped) in standard_battery(23, 2)
            .into_iter()
            .zip(standard_battery(23, 2))
        {
            let pristine = run_with_config(&net, &protocol, plain.as_mut(), config());
            let mut sched = FaultyScheduler::new(wrapped, FaultPlan::reliable());
            let retry = run_recovering(&net, &protocol, &mut sched, config(), RETRY_BUDGET);
            assert_eq!(retry.reflood_rounds, 0, "sched {}", plain.name());
            assert_eq!(retry.reflood_sends, 0, "sched {}", plain.name());
            assert_eq!(retry.reflood_bits, 0, "sched {}", plain.name());
            assert_eq!(
                pristine.outcome,
                retry.result.outcome,
                "sched {}",
                plain.name()
            );
            assert_eq!(
                pristine.metrics,
                retry.result.metrics,
                "sched {}",
                plain.name()
            );
            assert_eq!(
                pristine.states,
                retry.result.states,
                "sched {}",
                plain.name()
            );
        }
    }
}

#[test]
fn reliable_retry_general_broadcast_is_bit_identical_to_pristine() {
    let protocol = GeneralBroadcast::new(Payload::from_bytes(b"retry"));
    for net in topologies() {
        for (mut plain, wrapped) in standard_battery(29, 2)
            .into_iter()
            .zip(standard_battery(29, 2))
        {
            let pristine = run_with_config(&net, &protocol, plain.as_mut(), config());
            let mut sched = FaultyScheduler::new(wrapped, FaultPlan::reliable());
            let retry = run_recovering(&net, &protocol, &mut sched, config(), RETRY_BUDGET);
            assert_eq!(retry.reflood_rounds, 0, "sched {}", plain.name());
            assert_eq!(
                pristine.outcome,
                retry.result.outcome,
                "sched {}",
                plain.name()
            );
            assert_eq!(
                pristine.metrics,
                retry.result.metrics,
                "sched {}",
                plain.name()
            );
            assert_eq!(
                pristine.states,
                retry.result.states,
                "sched {}",
                plain.name()
            );
        }
    }
}

#[test]
fn reliable_retry_mapping_is_bit_identical_to_pristine() {
    for net in topologies() {
        for (mut plain, wrapped) in standard_battery(31, 2)
            .into_iter()
            .zip(standard_battery(31, 2))
        {
            // Fresh protocol values: each carries its own record table.
            let pristine_protocol = Mapping::new();
            let retry_protocol = Mapping::new();
            let pristine = run_with_config(&net, &pristine_protocol, plain.as_mut(), config());
            let mut sched = FaultyScheduler::new(wrapped, FaultPlan::reliable());
            let retry = run_recovering(&net, &retry_protocol, &mut sched, config(), RETRY_BUDGET);
            assert_eq!(retry.reflood_rounds, 0, "sched {}", plain.name());
            assert_eq!(
                pristine.outcome,
                retry.result.outcome,
                "sched {}",
                plain.name()
            );
            assert_eq!(
                pristine.metrics,
                retry.result.metrics,
                "sched {}",
                plain.name()
            );
            for (a, b) in pristine.states.iter().zip(retry.result.states.iter()) {
                assert_eq!(a.label, b.label, "sched {}", plain.name());
                assert_eq!(a.beta, b.beta, "sched {}", plain.name());
                assert_eq!(
                    a.known_records(),
                    b.known_records(),
                    "sched {}",
                    plain.name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Half 2: where the pristine run starves, the retry variant recovers.
// ---------------------------------------------------------------------------

/// Every crash window `[step, step + 1)` × victim node that starves the
/// pristine run on the path topology must be survivable by the retry variant.
/// Returns the number of starving cases found (the caller asserts > 0 so the
/// sweep stays honest if topology internals shift).
fn crash_sweep<P, FR>(net: &Network, protocol_factory: impl Fn() -> P, recovered_by: FR) -> usize
where
    P: RefloodProtocol,
    FR: Fn(&Network, &[P::State]) -> bool,
{
    let mut starving = 0;
    for node in net.graph().nodes() {
        if node == net.root() {
            continue;
        }
        for step in 0..20u64 {
            let plan = FaultPlan::reliable().with_crash(node, step, step + 1);
            let protocol = protocol_factory();
            let mut sched = FaultyScheduler::new(FifoScheduler::new(), plan.clone());
            let pristine = run_with_config(net, &protocol, &mut sched, config());
            if pristine.outcome != Outcome::Quiescent {
                continue;
            }
            starving += 1;
            let protocol = protocol_factory();
            let retry = recovering(net, &protocol, plan);
            assert_eq!(
                retry.result.outcome,
                Outcome::Terminated,
                "crash {node:?} @ {step} still starves with retries"
            );
            assert!(
                retry.retried(),
                "crash {node:?} @ {step} recovered for free"
            );
            assert!(
                recovered_by(net, &retry.result.states),
                "crash {node:?} @ {step} terminated without recovering"
            );
        }
    }
    starving
}

fn labeling_labels(states: &[LabelingState]) -> Vec<IntervalUnion> {
    states.iter().map(|s| s.label.clone()).collect()
}

#[test]
fn labeling_recovers_every_starving_crash_window_on_the_path() {
    let net = cycle_with_tail(7).expect("valid");
    let starving = crash_sweep(&net, Labeling::new, |net, states: &[LabelingState]| {
        labels_unique(net, &labeling_labels(states))
    });
    assert!(starving > 0, "no crash window starved the pristine run");
}

#[test]
fn general_broadcast_recovers_every_starving_crash_window_on_the_path() {
    let net = cycle_with_tail(7).expect("valid");
    let starving = crash_sweep(
        &net,
        || GeneralBroadcast::new(Payload::from_bytes(b"gb")),
        |net, states: &[GeneralState]| general_recovered(net, states),
    );
    assert!(starving > 0, "no crash window starved the pristine run");
}

#[test]
fn mapping_recovers_every_starving_crash_window_on_the_path() {
    let net = cycle_with_tail(7).expect("valid");
    let starving = crash_sweep(&net, Mapping::new, |net, states: &[MappingState]| {
        mapping_recovered(net, states)
    });
    assert!(starving > 0, "no crash window starved the pristine run");
}

/// Sustained-drop recovery: plans that destroy the first deliveries outright
/// (100% drop under a finite budget) starve every pristine protocol — the
/// initial `σ₀` never survives — and the retry variants must ride out the
/// budget and then complete.
#[test]
fn all_protocols_recover_from_sustained_drops_that_starve_pristine_runs() {
    let nets = topologies();
    for net in &nets {
        for budget in [1u64, 3] {
            let plan = FaultPlan::reliable()
                .with_drops(100)
                .with_drop_budget(budget)
                .with_seed(5);

            let labeling = Labeling::new();
            let mut sched = FaultyScheduler::new(FifoScheduler::new(), plan.clone());
            let pristine = run_with_config(net, &labeling, &mut sched, config());
            assert_eq!(pristine.outcome, Outcome::Quiescent);
            assert_eq!(pristine.metrics.messages_delivered, 0);
            let retry = recovering(net, &labeling, plan.clone());
            assert_eq!(retry.result.outcome, Outcome::Terminated);
            assert!(retry.retried());
            assert!(retry.reflood_bits > 0);
            assert!(labels_unique(net, &labeling_labels(&retry.result.states)));

            let broadcast = GeneralBroadcast::new(Payload::from_bytes(b"drop"));
            let retry = recovering(net, &broadcast, plan.clone());
            assert_eq!(retry.result.outcome, Outcome::Terminated);
            assert!(retry.retried());
            assert!(general_recovered(net, &retry.result.states));

            let mapping = Mapping::new();
            let retry = recovering(net, &mapping, plan.clone());
            assert_eq!(retry.result.outcome, Outcome::Terminated);
            assert!(retry.retried());
            assert!(mapping_recovered(net, &retry.result.states));
        }
    }
}

/// Mid-run drops (losses after real progress) exercise the frontier re-send
/// path rather than a plain σ₀ re-transmit: seeds are swept, every seed whose
/// pristine run starves must be recovered by the retry variant, and at least
/// one such seed must exist for each protocol.
#[test]
fn mid_run_drops_that_starve_the_pristine_run_are_recovered() {
    let net = cycle_with_tail(7).expect("valid");
    let mut labeling_starved = 0;
    let mut general_starved = 0;
    let mut mapping_starved = 0;
    for seed in 0..12u64 {
        let plan = FaultPlan::reliable()
            .with_drops(35)
            .with_drop_budget(2)
            .with_seed(seed);

        let labeling = Labeling::new();
        let mut sched = FaultyScheduler::new(FifoScheduler::new(), plan.clone());
        let pristine = run_with_config(&net, &labeling, &mut sched, config());
        if pristine.outcome == Outcome::Quiescent && pristine.metrics.messages_delivered > 0 {
            labeling_starved += 1;
            let retry = recovering(&net, &labeling, plan.clone());
            assert_eq!(retry.result.outcome, Outcome::Terminated, "seed {seed}");
            assert!(retry.retried(), "seed {seed}");
            assert!(
                labels_unique(&net, &labeling_labels(&retry.result.states)),
                "seed {seed}"
            );
        }

        let broadcast = GeneralBroadcast::new(Payload::from_bytes(b"mid"));
        let mut sched = FaultyScheduler::new(FifoScheduler::new(), plan.clone());
        let pristine = run_with_config(&net, &broadcast, &mut sched, config());
        if pristine.outcome == Outcome::Quiescent && pristine.metrics.messages_delivered > 0 {
            general_starved += 1;
            let retry = recovering(&net, &broadcast, plan.clone());
            assert_eq!(retry.result.outcome, Outcome::Terminated, "seed {seed}");
            assert!(general_recovered(&net, &retry.result.states), "seed {seed}");
        }

        let mapping = Mapping::new();
        let mut sched = FaultyScheduler::new(FifoScheduler::new(), plan.clone());
        let pristine = run_with_config(&net, &mapping, &mut sched, config());
        if pristine.outcome == Outcome::Quiescent && pristine.metrics.messages_delivered > 0 {
            mapping_starved += 1;
            let retry = recovering(&net, &Mapping::new(), plan.clone());
            assert_eq!(retry.result.outcome, Outcome::Terminated, "seed {seed}");
            assert!(mapping_recovered(&net, &retry.result.states), "seed {seed}");
        }
    }
    assert!(labeling_starved > 0, "no seed starved the labeling run");
    assert!(general_starved > 0, "no seed starved the broadcast run");
    assert!(mapping_starved > 0, "no seed starved the mapping run");
}
