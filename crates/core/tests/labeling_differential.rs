//! Differential suite: the copy-on-write labelling implementation versus the
//! retained deep-clone reference (`anet_core::labeling::reference`).
//!
//! Mirrors the `mapping_differential` (core), `engine_equivalence` (sim) and
//! `differential` (num) suites: both implementations are run with identically
//! seeded schedulers across the standard battery × chain/cyclic/DAG
//! topologies × seeds, and must be **bit-identical** on everything the
//! paper's model can observe:
//!
//! * outcome and deliveries-at-termination,
//! * full [`RunMetrics`] — in particular total and per-edge **wire bits**,
//!   proving that flooding shared endpoint-buffer handles does not change the
//!   paper's bit counts (messages charge the encoded intervals, not the
//!   handles),
//! * the full send trace: per event, the sequence number, edge, endpoints,
//!   wire size and the message *content* (α and β), and
//! * the assigned labels and the report-level uniqueness verdict.

use anet_core::labeling::{self, reference, Labeling};
use anet_graph::generators::{
    chain_gn, complete_dag, cycle_with_tail, diamond_stack, nested_cycles, random_cyclic,
    random_dag,
};
use anet_graph::Network;
use anet_num::IntervalUnion;
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::{standard_battery, FifoScheduler, RandomScheduler, Scheduler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs both implementations under one pair of identically seeded schedulers
/// and asserts full observable equivalence. Returns whether the run terminated.
fn assert_equivalent_run(
    net: &Network,
    cow_scheduler: &mut (impl Scheduler + ?Sized),
    reference_scheduler: &mut (impl Scheduler + ?Sized),
    context: &str,
) -> bool {
    let config = ExecutionConfig::with_trace();
    let a = run(net, &Labeling::new(), cow_scheduler, config);
    let b = run(
        net,
        &reference::Labeling::new(),
        reference_scheduler,
        config,
    );

    assert_eq!(a.outcome, b.outcome, "outcome diverged: {context}");
    assert_eq!(
        a.deliveries_at_termination, b.deliveries_at_termination,
        "termination point diverged: {context}"
    );
    assert_eq!(a.metrics, b.metrics, "metrics diverged: {context}");

    // Trace equivalence, event by event — shape, wire size and content.
    let ta = a.trace.as_ref().expect("trace requested");
    let tb = b.trace.as_ref().expect("trace requested");
    assert_eq!(ta.len(), tb.len(), "trace length diverged: {context}");
    for (ea, eb) in ta.events().iter().zip(tb.events()) {
        assert_eq!(
            (ea.seq, ea.edge, ea.src, ea.dst, ea.bits),
            (eb.seq, eb.edge, eb.src, eb.dst, eb.bits),
            "trace event shape diverged: {context}"
        );
        assert_eq!(ea.message, eb.message, "message diverged: {context}");
    }

    // Labels and per-vertex state.
    let labels_a: Vec<&IntervalUnion> = a.states.iter().map(|s| &s.label).collect();
    let labels_b: Vec<&IntervalUnion> = b.states.iter().map(|s| &s.label).collect();
    assert_eq!(labels_a, labels_b, "labels diverged: {context}");
    for (sa, sb) in a.states.iter().zip(&b.states) {
        assert_eq!(sa, sb, "vertex state diverged: {context}");
    }
    a.outcome.terminated()
}

/// Battery-wide equivalence on one topology.
fn assert_equivalent_under_battery(net: &Network, seed: u64, random_count: usize, name: &str) {
    let cow = standard_battery(seed, random_count);
    let reference = standard_battery(seed, random_count);
    for (mut ca, mut ra) in cow.into_iter().zip(reference) {
        let context = format!("{name} under {}", ca.name());
        assert_equivalent_run(net, ca.as_mut(), ra.as_mut(), &context);
    }
}

#[test]
fn cow_labeling_matches_reference_on_chain_families() {
    for n in [2usize, 5, 9] {
        let net = chain_gn(n).unwrap();
        assert_equivalent_under_battery(&net, 17, 3, &format!("chain_gn({n})"));
    }
}

#[test]
fn cow_labeling_matches_reference_on_cyclic_families() {
    let mut rng = StdRng::seed_from_u64(23);
    let nets = vec![
        ("cycle_with_tail(7)".to_owned(), cycle_with_tail(7).unwrap()),
        (
            "nested_cycles(2,4)".to_owned(),
            nested_cycles(2, 4).unwrap(),
        ),
        (
            "random_cyclic(14)".to_owned(),
            random_cyclic(&mut rng, 14, 0.2, 0.2).unwrap(),
        ),
    ];
    for (name, net) in &nets {
        assert_equivalent_under_battery(net, 29, 3, name);
    }
}

#[test]
fn cow_labeling_matches_reference_on_dag_families() {
    let mut rng = StdRng::seed_from_u64(31);
    let nets = vec![
        ("diamond_stack(4)".to_owned(), diamond_stack(4).unwrap()),
        ("complete_dag(7)".to_owned(), complete_dag(7).unwrap()),
        (
            "random_dag(16)".to_owned(),
            random_dag(&mut rng, 16, 0.25).unwrap(),
        ),
    ];
    for (name, net) in &nets {
        assert_equivalent_under_battery(net, 41, 3, name);
    }
}

#[test]
fn cow_labeling_matches_reference_when_the_run_cannot_terminate() {
    // A stranded vertex: both implementations must quiesce identically.
    let base = cycle_with_tail(5).unwrap();
    let net = anet_graph::generators::with_stranded_vertex(&base).unwrap();
    let terminated = assert_equivalent_run(
        &net,
        &mut FifoScheduler::new(),
        &mut FifoScheduler::new(),
        "stranded vertex",
    );
    assert!(!terminated);
}

#[test]
fn cow_labeling_reports_match_reference_across_seeds() {
    // Report-level equivalence, including the wire-bit headline: shared
    // handles on the simulator side, encoded intervals on the accounting side.
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_cyclic(&mut rng, 12, 0.15, 0.25).unwrap();
        let a = labeling::run_labeling(&net, &mut FifoScheduler::new()).unwrap();
        let b = reference::run_labeling(&net, &mut FifoScheduler::new()).unwrap();
        assert_eq!(a.metrics.total_bits, b.metrics.total_bits, "seed {seed}");
        assert_eq!(a.metrics.max_message_bits, b.metrics.max_message_bits);
        assert_eq!(a.metrics.per_edge_bits, b.metrics.per_edge_bits);
        assert_eq!(a.terminated, b.terminated);
        assert_eq!(a.labels, b.labels, "seed {seed}");
        assert_eq!(a.labels_unique, b.labels_unique);
        assert_eq!(a.max_label_bits, b.max_label_bits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cyclic topologies, FIFO plus a seeded-random schedule.
    #[test]
    fn cow_labeling_matches_reference_on_random_cyclic(
        seed in 0u64..5_000,
        internal in 2usize..14,
        fwd in 0.0f64..0.3,
        back in 0.0f64..0.3,
        sched_seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_cyclic(&mut rng, internal, fwd, back).unwrap();
        assert_equivalent_run(
            &net,
            &mut FifoScheduler::new(),
            &mut FifoScheduler::new(),
            &format!("random_cyclic seed {seed} fifo"),
        );
        assert_equivalent_run(
            &net,
            &mut RandomScheduler::seeded(sched_seed),
            &mut RandomScheduler::seeded(sched_seed),
            &format!("random_cyclic seed {seed} random {sched_seed}"),
        );
    }

    /// Random DAGs (different generator, different degree profile).
    #[test]
    fn cow_labeling_matches_reference_on_random_dags(
        seed in 0u64..5_000,
        internal in 2usize..16,
        p in 0.0f64..0.4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = random_dag(&mut rng, internal, p).unwrap();
        assert_equivalent_run(
            &net,
            &mut FifoScheduler::new(),
            &mut FifoScheduler::new(),
            &format!("random_dag seed {seed}"),
        );
    }
}
