//! Corrupted-start recovery runs for the three sweep protocols.
//!
//! Each test starts a protocol from deliberately damaged state
//! ([`anet_core::StateCorruption`] applied through [`anet_sim::run_corrupted`]),
//! lets it run to a normal outcome, and checks the protocol's recovery
//! predicate — did it still produce a correct result? The suite pins three
//! contracts:
//!
//! 1. **No panics, ever** — every corruption kind on every topology ends in a
//!    normal [`Outcome`]; corruption perturbs state only within each
//!    protocol's representable envelope.
//! 2. **Identity of the no-op** — `run_corrupted` with an empty closure is
//!    bit-identical to `run_with_config`.
//! 3. **Honest verdicts** — the recovery predicates flag the designed failure
//!    modes (squatted labels break uniqueness wherever bypass paths exist, a
//!    stale terminal accepts early), pass pristine runs, and credit the one
//!    genuine recovery (squatters on a pure path relabel around the damage).

use anet_core::corruption::StateCorruption;
use anet_core::general_broadcast::{corrupt_general_states, general_recovered, GeneralBroadcast};
use anet_core::labeling::{corrupt_labeling_states, labeling_recovered, Labeling};
use anet_core::mapping::{corrupt_mapping_states, mapping_recovered, Mapping};
use anet_core::Payload;
use anet_graph::generators::{chain_gn, cycle_with_tail, diamond_stack, random_cyclic};
use anet_graph::Network;
use anet_sim::engine::{run_corrupted, run_with_config, ExecutionConfig, RunConfig};
use anet_sim::scheduler::standard_battery;
use anet_sim::Outcome;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topologies() -> Vec<Network> {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    vec![
        chain_gn(6).expect("valid"),
        diamond_stack(4).expect("valid"),
        cycle_with_tail(7).expect("valid"),
        random_cyclic(&mut rng, 14, 0.2, 0.2).expect("valid"),
    ]
}

fn corruptions() -> Vec<StateCorruption> {
    vec![
        StateCorruption::ScrambledLabels { seed: 7 },
        StateCorruption::LostPartition,
        StateCorruption::StaleTerminal,
    ]
}

fn config() -> RunConfig {
    RunConfig::from(ExecutionConfig {
        max_deliveries: 1_000_000,
        record_trace: false,
    })
}

#[test]
fn empty_corruption_is_bit_identical_to_a_plain_run() {
    let protocol = Labeling::new();
    for net in topologies() {
        for (mut plain, mut hooked) in standard_battery(11, 2)
            .into_iter()
            .zip(standard_battery(11, 2))
        {
            let base = run_with_config(&net, &protocol, plain.as_mut(), config());
            let shadow = run_corrupted(&net, &protocol, hooked.as_mut(), config(), |_| {});
            assert_eq!(base.outcome, shadow.outcome, "sched {}", plain.name());
            assert_eq!(base.metrics, shadow.metrics, "sched {}", plain.name());
            assert_eq!(base.states, shadow.states, "sched {}", plain.name());
        }
    }
}

#[test]
fn every_corruption_runs_every_protocol_to_a_normal_outcome() {
    for net in topologies() {
        for corruption in corruptions() {
            let mapping = Mapping::new();
            let labeling = Labeling::new();
            let broadcast = GeneralBroadcast::new(Payload::from_bytes(b"r"));
            for mut sched in standard_battery(5, 2) {
                let r = run_corrupted(&net, &mapping, sched.as_mut(), config(), |states| {
                    corrupt_mapping_states(&corruption, &net, states)
                });
                assert_ne!(
                    r.outcome,
                    Outcome::BudgetExhausted,
                    "mapping {corruption:?}"
                );
                let r = run_corrupted(&net, &labeling, sched.as_mut(), config(), |states| {
                    corrupt_labeling_states(&corruption, &net, states)
                });
                assert_ne!(
                    r.outcome,
                    Outcome::BudgetExhausted,
                    "labeling {corruption:?}"
                );
                let r = run_corrupted(&net, &broadcast, sched.as_mut(), config(), |states| {
                    corrupt_general_states(&corruption, &net, states)
                });
                assert_ne!(
                    r.outcome,
                    Outcome::BudgetExhausted,
                    "general {corruption:?}"
                );
            }
        }
    }
}

#[test]
fn recovery_predicates_pass_pristine_runs() {
    for net in topologies() {
        let mapping = Mapping::new();
        let labeling = Labeling::new();
        let broadcast = GeneralBroadcast::new(Payload::from_bytes(b"ok"));
        let mut sched = standard_battery(3, 0).remove(0);
        let r = run_with_config(&net, &mapping, sched.as_mut(), config());
        assert_eq!(r.outcome, Outcome::Terminated);
        assert!(mapping_recovered(&net, &r.states));
        let r = run_with_config(&net, &labeling, sched.as_mut(), config());
        assert_eq!(r.outcome, Outcome::Terminated);
        assert!(labeling_recovered(&net, &r.states));
        let r = run_with_config(&net, &broadcast, sched.as_mut(), config());
        assert_eq!(r.outcome, Outcome::Terminated);
        assert!(general_recovered(&net, &r.states));
    }
}

#[test]
fn scrambled_labels_break_labeling_uniqueness() {
    // A vertex subtracts its claimed label from arriving mass before routing
    // (the re-delivery idempotence rule), so a squatter removes its garbage
    // label from every batch that flows *through* it. On a topology with
    // bypass paths the squatted mass still reaches the terminal around the
    // squatter, overlaps its label, and uniqueness stays broken.
    let corruption = StateCorruption::ScrambledLabels { seed: 3 };
    let protocol = Labeling::new();
    for net in topologies() {
        if net.node_count() == 9 {
            // cycle_with_tail is handled below: no bypass paths exist there.
            continue;
        }
        for mut sched in standard_battery(17, 2) {
            let r = run_corrupted(&net, &protocol, sched.as_mut(), config(), |states| {
                corrupt_labeling_states(&corruption, &net, states)
            });
            assert!(
                !labeling_recovered(&net, &r.states),
                "sched {} on {} nodes",
                sched.name(),
                net.node_count()
            );
        }
    }
}

#[test]
fn scrambled_labels_recover_uniqueness_on_a_single_path() {
    // On a cycle-with-tail every unit of mass flows through every vertex on
    // the path, so each squatter subtracts its own garbage label before
    // routing onwards: the labels that reach the terminal are disjoint from
    // every squatted label and the assignment is genuinely unique again.
    let corruption = StateCorruption::ScrambledLabels { seed: 3 };
    let protocol = Labeling::new();
    let net = cycle_with_tail(7).expect("valid");
    for mut sched in standard_battery(17, 2) {
        let r = run_corrupted(&net, &protocol, sched.as_mut(), config(), |states| {
            corrupt_labeling_states(&corruption, &net, states)
        });
        assert_eq!(r.outcome, Outcome::Terminated, "sched {}", sched.name());
        assert!(
            labeling_recovered(&net, &r.states),
            "sched {}",
            sched.name()
        );
    }
}

#[test]
fn lost_partition_leaves_vertices_unlabelled() {
    let corruption = StateCorruption::LostPartition;
    let protocol = Labeling::new();
    for net in topologies() {
        // Internal vertices exist on every family here, and none of them can
        // ever claim a label with the partition step burned.
        let mut sched = standard_battery(29, 0).remove(0);
        let r = run_corrupted(&net, &protocol, sched.as_mut(), config(), |states| {
            corrupt_labeling_states(&corruption, &net, states)
        });
        assert!(!labeling_recovered(&net, &r.states));
    }
}

#[test]
fn stale_terminal_accepts_early_and_fails_recovery_checks() {
    // A chain delivers strictly in sequence, so when the terminal's stale
    // half-coverage completes the unit early, upstream state is still
    // incomplete and each protocol's recovery predicate must say so.
    let corruption = StateCorruption::StaleTerminal;
    let net = chain_gn(6).expect("valid");

    let labeling = Labeling::new();
    let mut sched = standard_battery(1, 0).remove(0);
    let r = run_corrupted(&net, &labeling, sched.as_mut(), config(), |states| {
        corrupt_labeling_states(&corruption, &net, states)
    });
    assert_eq!(r.outcome, Outcome::Terminated);
    assert!(!labeling_recovered(&net, &r.states));

    let broadcast = GeneralBroadcast::new(Payload::from_bytes(b"x"));
    let r = run_corrupted(&net, &broadcast, sched.as_mut(), config(), |states| {
        corrupt_general_states(&corruption, &net, states)
    });
    assert_eq!(r.outcome, Outcome::Terminated);
    // The terminal accepted on fabricated coverage: its own payload flag was
    // never set, so the broadcast did not recover.
    assert!(!general_recovered(&net, &r.states));
}

#[test]
fn scrambled_mapping_states_cannot_reconstruct_the_topology() {
    let corruption = StateCorruption::ScrambledLabels { seed: 11 };
    let protocol = Mapping::new();
    for net in topologies() {
        for mut sched in standard_battery(43, 2) {
            let r = run_corrupted(&net, &protocol, sched.as_mut(), config(), |states| {
                corrupt_mapping_states(&corruption, &net, states)
            });
            assert!(
                !mapping_recovered(&net, &r.states),
                "sched {} on {} nodes",
                sched.name(),
                net.node_count()
            );
        }
    }
}
