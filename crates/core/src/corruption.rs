//! Corrupted-start specifications for recovery experiments.
//!
//! A *corrupted-start run* perturbs a protocol's per-vertex state after
//! [`AnonymousProtocol::initial_state`](anet_sim::AnonymousProtocol::initial_state)
//! but **before** the first delivery ([`anet_sim::run_corrupted`]), modelling
//! a network that restarts the broadcast on top of stale or damaged state —
//! a crashed-and-restored snapshot, a half-torn label assignment, a terminal
//! that trusts a poisoned completeness index. The run then proceeds under a
//! normal (or faulty) scheduler, and the question the experiment asks is the
//! protocol's *recovery predicate*: did it still produce a correct result?
//!
//! The three corruption kinds are deliberately protocol-agnostic
//! descriptions; each protocol module interprets them in its own state space
//! (`corrupt_mapping_states`, `corrupt_labeling_states`,
//! `corrupt_general_states`) and pairs them with a `*_recovered` predicate:
//!
//! * [`StateCorruption::ScrambledLabels`] — every internal vertex wakes up
//!   believing it already claimed an identity: a garbage (but pairwise
//!   distinct) dyadic label for the labelling protocols, a garbage routing
//!   entry for the broadcast. Seeded, so every shard scrambles identically.
//! * [`StateCorruption::LostPartition`] — the inverse tear: internal
//!   vertices keep their "I already partitioned" flag but lost the label and
//!   routing state it guarded, so the one-time partition step never re-runs.
//! * [`StateCorruption::StaleTerminal`] — the terminal's accumulated view
//!   claims half the commodity space (and, for mapping, the root edge)
//!   arrived before the run began, so the stopping predicate can accept
//!   early on evidence that was never delivered.
//!
//! Corruptions must never *panic* a protocol — they perturb state within
//! each protocol's representable envelope (labels stay valid disjoint
//! dyadic intervals, flags stay booleans, views stay well-formed), so a
//! corrupted run always ends in a normal outcome and the recovery predicate
//! is decidable from final states.

use anet_num::{Interval, IntervalUnion};

/// A declarative perturbation of initial protocol state. See the [module
/// docs](self) for the semantics each protocol gives the kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateCorruption {
    /// Internal vertices start with garbage (pairwise distinct) claimed
    /// identities derived from `seed`.
    ScrambledLabels {
        /// Scramble seed: the same seed produces the same labels everywhere.
        seed: u64,
    },
    /// Internal vertices keep their partition flag but lost the label and
    /// routing state behind it.
    LostPartition,
    /// The terminal's view starts pre-filled with the low half `[0, 1/2)` of
    /// the commodity space it never received.
    StaleTerminal,
}

impl StateCorruption {
    /// Canonical name, JSONL-safe, used in sweep records and cache keys.
    pub fn name(&self) -> String {
        match self {
            StateCorruption::ScrambledLabels { seed } => format!("labels/s{seed}"),
            StateCorruption::LostPartition => "partition".to_owned(),
            StateCorruption::StaleTerminal => "stale-terminal".to_owned(),
        }
    }
}

/// `count` pairwise-disjoint garbage labels: dyadic slots of width `2^-exp`
/// (the smallest power of two with at least `count` slots), visited in a
/// seeded bijective order. Deterministic in `(count, seed)` — no RNG — so
/// every process scrambles a topology identically.
pub fn scrambled_labels(count: usize, seed: u64) -> Vec<IntervalUnion> {
    if count == 0 {
        return Vec::new();
    }
    let exp = usize::BITS - (count - 1).leading_zeros();
    let slots: u64 = 1 << exp;
    // An odd multiplier is a bijection modulo a power of two, so distinct
    // vertices land in distinct slots.
    let a = splitmix(seed) | 1;
    let b = splitmix(seed ^ 0x5bf0_3635);
    (0..count as u64)
        .map(|j| {
            let slot = a.wrapping_mul(j).wrapping_add(b) % slots;
            IntervalUnion::from(
                Interval::from_dyadic_parts(slot, slot + 1, exp)
                    .expect("slot + 1 <= 2^exp, endpoints ordered"),
            )
        })
        .collect()
}

/// The low half `[0, 1/2)` — the mass a stale terminal falsely claims.
pub fn stale_half() -> IntervalUnion {
    IntervalUnion::from(Interval::from_dyadic_parts(0, 1, 1).expect("valid half interval"))
}

/// SplitMix64 finalizer: a cheap, stable bit mixer for seed derivation.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrambled_labels_are_distinct_nonempty_and_deterministic() {
        for count in [1usize, 2, 3, 7, 8, 9, 40] {
            for seed in [0u64, 1, 42, u64::MAX] {
                let labels = scrambled_labels(count, seed);
                assert_eq!(labels.len(), count);
                for (i, a) in labels.iter().enumerate() {
                    assert!(!a.is_empty(), "count {count} seed {seed} slot {i}");
                    for b in &labels[i + 1..] {
                        assert!(!a.intersects(b), "count {count} seed {seed} overlap");
                    }
                }
                assert_eq!(labels, scrambled_labels(count, seed), "deterministic");
            }
        }
        assert!(scrambled_labels(0, 3).is_empty());
        // Different seeds genuinely permute the assignment.
        assert_ne!(scrambled_labels(8, 1), scrambled_labels(8, 2));
    }

    #[test]
    fn names_are_jsonl_safe_and_distinct() {
        let kinds = [
            StateCorruption::ScrambledLabels { seed: 7 },
            StateCorruption::ScrambledLabels { seed: 8 },
            StateCorruption::LostPartition,
            StateCorruption::StaleTerminal,
        ];
        let mut names: Vec<String> = kinds.iter().map(StateCorruption::name).collect();
        for name in &names {
            assert!(
                !name.contains([' ', '"', '\\', ',']),
                "{name} unsafe for JSONL"
            );
        }
        names.sort();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn stale_half_is_half_the_unit() {
        let half = stale_half();
        assert!(!half.is_unit() && !half.is_empty());
        let other = IntervalUnion::from(Interval::from_dyadic_parts(1, 2, 1).unwrap());
        assert!(half.union(&other).is_unit());
    }
}
