//! Common report types produced by the high-level protocol runners.

use anet_sim::metrics::RunMetrics;
use anet_sim::Outcome;

/// The distilled outcome of one broadcast run (tree, DAG or general protocol).
///
/// The two booleans correspond exactly to the two halves of the paper's
/// correctness statements: the protocol *terminates* iff every vertex is connected
/// to the terminal, and *on termination* every vertex has received the payload.
#[derive(Debug, Clone)]
pub struct BroadcastReport {
    /// Whether the terminal declared termination.
    pub terminated: bool,
    /// Whether the run ended because no messages remained (the correct behaviour on
    /// networks with vertices not connected to the terminal).
    pub quiescent: bool,
    /// Whether every internal vertex (and the terminal) received the payload by the
    /// end of the run.
    pub all_received: bool,
    /// Number of vertices that received the payload.
    pub received_count: usize,
    /// Deliveries performed when the terminal first accepted, if it did.
    pub deliveries_at_termination: Option<u64>,
    /// Communication metrics of the run.
    pub metrics: RunMetrics,
}

impl BroadcastReport {
    /// Assembles a report from the raw engine outcome plus per-vertex receipt flags.
    pub fn from_run(
        outcome: Outcome,
        deliveries_at_termination: Option<u64>,
        metrics: RunMetrics,
        received_flags: &[bool],
    ) -> Self {
        BroadcastReport {
            terminated: outcome == Outcome::Terminated,
            quiescent: outcome == Outcome::Quiescent,
            all_received: received_flags.iter().all(|&b| b),
            received_count: received_flags.iter().filter(|&&b| b).count(),
            deliveries_at_termination,
            metrics,
        }
    }

    /// The paper's *total communication complexity* for this run, in bits.
    pub fn total_bits(&self) -> u64 {
        self.metrics.total_bits
    }

    /// The paper's *required bandwidth*: the largest number of bits carried by a
    /// single edge during this run.
    pub fn bandwidth_bits(&self) -> u64 {
        self.metrics.max_edge_bits()
    }

    /// The largest single message, in bits.
    pub fn max_message_bits(&self) -> u64 {
        self.metrics.max_message_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_distils_flags() {
        let mut metrics = RunMetrics::new(2);
        metrics.record_send(0, 10);
        metrics.record_send(1, 20);
        let r = BroadcastReport::from_run(
            Outcome::Terminated,
            Some(5),
            metrics.clone(),
            &[true, true, true],
        );
        assert!(r.terminated);
        assert!(!r.quiescent);
        assert!(r.all_received);
        assert_eq!(r.received_count, 3);
        assert_eq!(r.total_bits(), 30);
        assert_eq!(r.bandwidth_bits(), 20);
        assert_eq!(r.max_message_bits(), 20);

        let q = BroadcastReport::from_run(Outcome::Quiescent, None, metrics, &[true, false]);
        assert!(!q.terminated);
        assert!(q.quiescent);
        assert!(!q.all_received);
        assert_eq!(q.received_count, 1);
    }
}
