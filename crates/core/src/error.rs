use std::fmt;

/// Errors surfaced by the high-level protocol runners.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying arithmetic reported an error (invalid partition, underflow, …),
    /// which indicates a protocol bug rather than a property of the input network.
    Arithmetic(String),
    /// The execution engine exhausted its delivery budget, so the run is inconclusive.
    BudgetExhausted,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Arithmetic(msg) => write!(f, "arithmetic failure inside a protocol: {msg}"),
            CoreError::BudgetExhausted => {
                write!(f, "delivery budget exhausted before the protocol settled")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<anet_num::NumError> for CoreError {
    fn from(e: anet_num::NumError) -> Self {
        CoreError::Arithmetic(e.to_string())
    }
}
