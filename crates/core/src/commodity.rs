//! Scalar commodities — the termination information of Sections 3.1 and 3.3.
//!
//! The grounded-tree and DAG broadcasts attach a scalar "flow" value to the payload;
//! internal vertices split it among their out-edges and the terminal accepts once
//! the values it received sum back to one unit. Two splitting rules are provided:
//!
//! * [`Pow2Commodity`] — the paper's rule: every transmitted value is a power of
//!   two, so it can be encoded by its exponent alone (`O(log |E|)` bits on a
//!   grounded tree).
//! * [`ExactCommodity`] — the naive `x / d` rule, kept as the ablation baseline;
//!   the values are general rationals whose representation grows much faster.

use std::fmt::Debug;

use anet_num::bits;
use anet_num::partition::{even_split, pow2_split};
use anet_num::{Dyadic, Ratio};
use anet_sim::Wire;

/// A commodity that can be injected as one unit at the root, split among outgoing
/// edges, and summed back together at the terminal.
///
/// The central invariant — checked by property tests — is *commodity preservation*:
/// the parts produced by [`split`](Self::split) always sum to the value that was
/// split, and summation is exact, so the terminal reaches exactly one unit iff every
/// vertex forwarded its share.
pub trait ScalarCommodity: Clone + Debug + PartialEq + Eq + Wire + Send + Sync + 'static {
    /// The zero commodity.
    fn zero() -> Self;

    /// One whole unit — what the root injects.
    fn unit() -> Self;

    /// Returns `true` if this value is zero.
    fn is_zero(&self) -> bool;

    /// Returns `true` if this value is exactly one unit — the terminal's acceptance
    /// condition.
    fn is_unit(&self) -> bool;

    /// Exact addition.
    fn add(&self, other: &Self) -> Self;

    /// Splits the value into `parts` shares that sum back to it exactly.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`; vertices with zero out-degree never split.
    fn split(&self, parts: usize) -> Vec<Self>;

    /// Approximate numeric value, for reporting only.
    fn approx(&self) -> f64;

    /// A canonical textual key identifying the value, used by the lower-bound
    /// experiments to count distinct symbols. Two values compare equal iff their
    /// keys are equal.
    fn canonical_key(&self) -> String;

    /// A short name for the splitting rule, used in experiment tables.
    fn rule_name() -> &'static str;
}

/// The paper's power-of-two commodity (Section 3.1).
///
/// Values are dyadic rationals; starting from one unit and splitting with the
/// power-of-two rule keeps every *transmitted* value an exact power of two, which
/// is why its wire encoding is just a gamma-coded exponent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pow2Commodity(Dyadic);

impl Pow2Commodity {
    /// The underlying dyadic value.
    pub fn value(&self) -> &Dyadic {
        &self.0
    }

    /// Wraps an arbitrary dyadic value (used by tests and by the DAG protocol,
    /// where sums of powers of two are transmitted as well).
    pub fn from_dyadic(value: Dyadic) -> Self {
        Pow2Commodity(value)
    }
}

impl ScalarCommodity for Pow2Commodity {
    fn zero() -> Self {
        Pow2Commodity(Dyadic::zero())
    }

    fn unit() -> Self {
        Pow2Commodity(Dyadic::one())
    }

    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    fn is_unit(&self) -> bool {
        self.0.is_one()
    }

    fn add(&self, other: &Self) -> Self {
        Pow2Commodity(&self.0 + &other.0)
    }

    fn split(&self, parts: usize) -> Vec<Self> {
        pow2_split(&self.0, parts)
            .expect("split called with at least one part")
            .into_iter()
            .map(Pow2Commodity)
            .collect()
    }

    fn approx(&self) -> f64 {
        self.0.to_f64()
    }

    fn canonical_key(&self) -> String {
        self.0.to_string()
    }

    fn rule_name() -> &'static str {
        "pow2"
    }
}

impl Wire for Pow2Commodity {
    fn wire_bits(&self) -> u64 {
        // Mantissa (length-prefixed) + gamma-coded exponent. For the values the
        // grounded-tree protocol transmits the mantissa is a single 1-bit, so the
        // size is dominated by the exponent: O(log of the splitting depth).
        bits::length_prefixed_bits(self.0.mantissa_bit_len())
            + bits::elias_gamma_bits(u64::from(self.0.exponent()))
    }
}

/// The naive even-split commodity (`x / d` on every edge) used as the E1 ablation
/// baseline; values are exact rationals in lowest terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExactCommodity(Ratio);

impl ExactCommodity {
    /// The underlying rational value.
    pub fn value(&self) -> &Ratio {
        &self.0
    }
}

impl ScalarCommodity for ExactCommodity {
    fn zero() -> Self {
        ExactCommodity(Ratio::zero())
    }

    fn unit() -> Self {
        ExactCommodity(Ratio::one())
    }

    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    fn is_unit(&self) -> bool {
        self.0.is_one()
    }

    fn add(&self, other: &Self) -> Self {
        ExactCommodity(&self.0 + &other.0)
    }

    fn split(&self, parts: usize) -> Vec<Self> {
        even_split(&self.0, parts)
            .expect("split called with at least one part")
            .into_iter()
            .map(ExactCommodity)
            .collect()
    }

    fn approx(&self) -> f64 {
        self.0.to_f64()
    }

    fn canonical_key(&self) -> String {
        self.0.to_string()
    }

    fn rule_name() -> &'static str {
        "naive-even"
    }
}

impl Wire for ExactCommodity {
    fn wire_bits(&self) -> u64 {
        bits::length_prefixed_bits(self.0.numerator().bit_len())
            + bits::length_prefixed_bits(self.0.denominator().bit_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_commodity<C: ScalarCommodity>() {
        assert!(C::zero().is_zero());
        assert!(C::unit().is_unit());
        assert!(!C::unit().is_zero());
        assert!(!C::zero().is_unit());
        // Splitting one unit across d edges and re-adding restores the unit.
        for d in 1..=9 {
            let parts = C::unit().split(d);
            assert_eq!(parts.len(), d);
            let sum = parts.iter().fold(C::zero(), |acc, p| acc.add(p));
            assert!(sum.is_unit(), "rule {} d {d}", C::rule_name());
            for p in &parts {
                assert!(!p.is_zero());
                assert!(p.wire_bits() > 0);
                assert!(!p.canonical_key().is_empty());
            }
        }
        // Two levels of splitting still conserve the unit.
        let level1 = C::unit().split(3);
        let mut total = C::zero();
        for part in &level1 {
            for sub in part.split(4) {
                total = total.add(&sub);
            }
        }
        assert!(total.is_unit());
    }

    #[test]
    fn pow2_commodity_behaves() {
        exercise_commodity::<Pow2Commodity>();
    }

    #[test]
    fn exact_commodity_behaves() {
        exercise_commodity::<ExactCommodity>();
    }

    #[test]
    fn pow2_split_values_are_powers_of_two() {
        for d in 1..=16 {
            for part in Pow2Commodity::unit().split(d) {
                assert!(part.value().is_pow2(), "d = {d}");
            }
        }
    }

    #[test]
    fn pow2_wire_size_is_logarithmic_in_depth() {
        // After k halvings the value is 2^-k; its encoding must be O(log k), not O(k).
        let mut v = Pow2Commodity::unit();
        for _ in 0..256 {
            v = v.split(2).into_iter().next().unwrap();
        }
        assert!(v.wire_bits() <= 40, "got {}", v.wire_bits());
    }

    #[test]
    fn naive_wire_size_grows_linearly_with_depth() {
        // After k splits by 3 the denominator is 3^k: Θ(k) bits.
        let mut v = ExactCommodity::unit();
        for _ in 0..64 {
            v = v.split(3).into_iter().next().unwrap();
        }
        assert!(v.wire_bits() > 64, "got {}", v.wire_bits());
    }

    #[test]
    fn canonical_keys_distinguish_values() {
        let a = Pow2Commodity::unit().split(2).remove(0);
        let b = Pow2Commodity::unit().split(4).remove(0);
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.canonical_key(), a.clone().canonical_key());
        assert_eq!(Pow2Commodity::rule_name(), "pow2");
        assert_eq!(ExactCommodity::rule_name(), "naive-even");
    }

    #[test]
    fn approx_matches_value() {
        let half = Pow2Commodity::unit().split(2).remove(0);
        assert!((half.approx() - 0.5).abs() < 1e-12);
        let third = ExactCommodity::unit().split(3).remove(0);
        assert!((third.approx() - 1.0 / 3.0).abs() < 1e-12);
    }
}
