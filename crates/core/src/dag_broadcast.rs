//! Scalar-commodity broadcasting on directed acyclic graphs (Section 3.3).
//!
//! The straightforward generalisation of the grounded-tree protocol: vertices may
//! now have several incoming edges, so a vertex either forwards each commodity
//! increment as it arrives ([`ForwardingMode::Eager`]) or waits until it has heard
//! from every in-port and forwards the accumulated sum once
//! ([`ForwardingMode::WaitForAllInputs`], the behaviour assumed by the lower-bound
//! argument of Theorem 3.8). Both variants are commodity preserving; the price of
//! generality is that transmitted values are no longer single powers of two, so the
//! per-edge bandwidth grows to `O(|E|)` bits — exactly the gap the paper discusses.

use std::marker::PhantomData;

use anet_graph::Network;
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext, Wire};

use crate::outcome::BroadcastReport;
use crate::{CoreError, Payload, ScalarCommodity};

/// When a vertex forwards the commodity it has received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingMode {
    /// Forward every commodity increment immediately on arrival. Payload is
    /// forwarded on first receipt only, but the commodity share of later arrivals is
    /// still split and passed on.
    Eager,
    /// Buffer until a message has arrived on *every* in-port, then split the
    /// accumulated sum once. This is the "do not send until hearing on each
    /// incoming edge" assumption used in Section 3.3 and Appendix B; it only
    /// terminates on inputs where every in-port eventually hears something (true
    /// for DAGs in which all vertices are reachable from the root).
    WaitForAllInputs,
}

/// A message of the DAG protocol: payload plus commodity share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagMessage<C> {
    /// The broadcast payload `m`.
    pub payload: Payload,
    /// The commodity share carried by this message.
    pub value: C,
}

impl<C: ScalarCommodity> Wire for DagMessage<C> {
    fn wire_bits(&self) -> u64 {
        self.payload.wire_bits() + self.value.wire_bits()
    }
}

/// Per-vertex state of the DAG protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagState<C> {
    /// Whether the payload has been received.
    pub received: bool,
    /// Whether the payload has already been forwarded.
    pub forwarded_payload: bool,
    /// Commodity received but not yet forwarded (wait-for-all mode).
    pub pending: C,
    /// Total commodity received (the terminal's acceptance input).
    pub accumulated: C,
    /// Which in-ports have delivered at least one message.
    pub heard_ports: Vec<bool>,
    /// Whether the buffered commodity has been flushed (wait-for-all mode).
    pub flushed: bool,
}

/// The DAG broadcast protocol, parameterised by the splitting rule.
#[derive(Debug, Clone)]
pub struct DagBroadcast<C> {
    payload: Payload,
    mode: ForwardingMode,
    _rule: PhantomData<C>,
}

impl<C: ScalarCommodity> DagBroadcast<C> {
    /// Creates the protocol for broadcasting `payload` with the given forwarding
    /// mode.
    pub fn new(payload: Payload, mode: ForwardingMode) -> Self {
        DagBroadcast {
            payload,
            mode,
            _rule: PhantomData,
        }
    }

    /// The forwarding mode in use.
    pub fn mode(&self) -> ForwardingMode {
        self.mode
    }
}

impl<C: ScalarCommodity> AnonymousProtocol for DagBroadcast<C> {
    type State = DagState<C>;
    type Message = DagMessage<C>;

    fn name(&self) -> &'static str {
        "dag-broadcast"
    }

    fn initial_state(&self, ctx: &NodeContext) -> DagState<C> {
        DagState {
            received: false,
            forwarded_payload: false,
            pending: C::zero(),
            accumulated: C::zero(),
            heard_ports: vec![false; ctx.in_degree],
            flushed: false,
        }
    }

    fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, DagMessage<C>)> {
        vec![(
            0,
            DagMessage {
                payload: self.payload.clone(),
                value: C::unit(),
            },
        )]
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut DagState<C>,
        in_port: usize,
        message: &DagMessage<C>,
    ) -> Vec<(usize, DagMessage<C>)> {
        state.received = true;
        if in_port < state.heard_ports.len() {
            state.heard_ports[in_port] = true;
        }
        state.accumulated = state.accumulated.add(&message.value);
        if ctx.out_degree == 0 {
            return Vec::new();
        }
        let to_forward = match self.mode {
            ForwardingMode::Eager => {
                if message.value.is_zero() {
                    return Vec::new();
                }
                message.value.clone()
            }
            ForwardingMode::WaitForAllInputs => {
                state.pending = state.pending.add(&message.value);
                if state.flushed || !state.heard_ports.iter().all(|&h| h) {
                    return Vec::new();
                }
                state.flushed = true;
                std::mem::replace(&mut state.pending, C::zero())
            }
        };
        state.forwarded_payload = true;
        to_forward
            .split(ctx.out_degree)
            .into_iter()
            .enumerate()
            .map(|(port, value)| {
                (
                    port,
                    DagMessage {
                        payload: self.payload.clone(),
                        value,
                    },
                )
            })
            .collect()
    }

    fn should_terminate(&self, terminal_state: &DagState<C>) -> bool {
        terminal_state.accumulated.is_unit()
    }
}

/// Runs the DAG broadcast and reports the outcome.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out.
///
/// # Example
///
/// ```
/// use anet_core::dag_broadcast::{run_dag_broadcast, ForwardingMode};
/// use anet_core::{Payload, Pow2Commodity};
/// use anet_graph::generators::diamond_stack;
/// use anet_sim::scheduler::FifoScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let network = diamond_stack(4)?;
/// let report = run_dag_broadcast::<Pow2Commodity>(
///     &network,
///     Payload::from_bytes(b"dag"),
///     ForwardingMode::Eager,
///     &mut FifoScheduler::new(),
/// )?;
/// assert!(report.terminated && report.all_received);
/// # Ok(())
/// # }
/// ```
pub fn run_dag_broadcast<C: ScalarCommodity>(
    network: &Network,
    payload: Payload,
    mode: ForwardingMode,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<BroadcastReport, CoreError> {
    run_dag_broadcast_with_config::<C>(
        network,
        payload,
        mode,
        scheduler,
        ExecutionConfig::default(),
    )
}

/// [`run_dag_broadcast`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_dag_broadcast_with_config<C: ScalarCommodity>(
    network: &Network,
    payload: Payload,
    mode: ForwardingMode,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<BroadcastReport, CoreError> {
    let protocol = DagBroadcast::<C>::new(payload, mode);
    let result = run(network, &protocol, scheduler, config);
    if result.outcome == anet_sim::Outcome::BudgetExhausted {
        return Err(CoreError::BudgetExhausted);
    }
    let received: Vec<bool> = network
        .graph()
        .nodes()
        .map(|n| n == network.root() || result.states[n.index()].received)
        .collect();
    Ok(BroadcastReport::from_run(
        result.outcome,
        result.deliveries_at_termination,
        result.metrics,
        &received,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExactCommodity, Pow2Commodity};
    use anet_graph::generators::{
        chain_gn, complete_dag, diamond_stack, layered_dag, random_dag, skeleton,
        with_stranded_vertex,
    };
    use anet_sim::runner::run_under_battery;
    use anet_sim::scheduler::FifoScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fifo() -> FifoScheduler {
        FifoScheduler::new()
    }

    fn modes() -> [ForwardingMode; 2] {
        [ForwardingMode::Eager, ForwardingMode::WaitForAllInputs]
    }

    #[test]
    fn terminates_on_dag_families() {
        let mut rng = StdRng::seed_from_u64(5);
        let nets = vec![
            diamond_stack(1).unwrap(),
            diamond_stack(6).unwrap(),
            layered_dag(&mut rng, 4, 5, 2).unwrap(),
            random_dag(&mut rng, 30, 0.15).unwrap(),
            complete_dag(8).unwrap(),
            chain_gn(10).unwrap(), // grounded trees are DAGs too
        ];
        for net in &nets {
            for mode in modes() {
                let report = run_dag_broadcast::<Pow2Commodity>(
                    net,
                    Payload::from_bytes(b"d"),
                    mode,
                    &mut fifo(),
                )
                .unwrap();
                assert!(report.terminated, "mode {mode:?}");
                assert!(report.all_received, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn exact_commodity_works_on_dags_too() {
        let net = diamond_stack(3).unwrap();
        for mode in modes() {
            let report =
                run_dag_broadcast::<ExactCommodity>(&net, Payload::empty(), mode, &mut fifo())
                    .unwrap();
            assert!(report.terminated && report.all_received);
        }
    }

    #[test]
    fn refuses_to_terminate_with_stranded_vertex() {
        let base = diamond_stack(4).unwrap();
        let net = with_stranded_vertex(&base).unwrap();
        for mode in modes() {
            let report =
                run_dag_broadcast::<Pow2Commodity>(&net, Payload::empty(), mode, &mut fifo())
                    .unwrap();
            assert!(!report.terminated, "mode {mode:?}");
            assert!(report.quiescent);
        }
    }

    #[test]
    fn eager_mode_is_correct_under_every_scheduler() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = random_dag(&mut rng, 25, 0.2).unwrap();
        let protocol =
            DagBroadcast::<Pow2Commodity>::new(Payload::from_bytes(b"x"), ForwardingMode::Eager);
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 3, 4) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
            for node in net.internal_nodes() {
                assert!(named.result.states[node.index()].received);
            }
        }
    }

    #[test]
    fn wait_for_all_mode_is_correct_under_every_scheduler() {
        let net = diamond_stack(5).unwrap();
        let protocol =
            DagBroadcast::<Pow2Commodity>::new(Payload::empty(), ForwardingMode::WaitForAllInputs);
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 11, 4) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
        }
    }

    #[test]
    fn wait_for_all_sends_exactly_one_message_per_edge() {
        let net = complete_dag(7).unwrap();
        let protocol =
            DagBroadcast::<Pow2Commodity>::new(Payload::empty(), ForwardingMode::WaitForAllInputs);
        let result = run(&net, &protocol, &mut fifo(), ExecutionConfig::default());
        assert!(result.outcome.terminated());
        assert!(result.metrics.per_edge_messages.iter().all(|&c| c == 1));
    }

    #[test]
    fn skeleton_quantities_identify_the_subset() {
        // Miniature of the Theorem 3.8 argument: different subsets S produce
        // different totals at the collector vertex w.
        let mut totals = Vec::new();
        for mask in 0..(1u32 << 3) {
            let subset: Vec<bool> = (0..3).map(|j| mask & (1 << j) != 0).collect();
            let sk = skeleton(3, &subset).unwrap();
            let protocol =
                DagBroadcast::<Pow2Commodity>::new(Payload::empty(), ForwardingMode::Eager);
            let result = run(
                &sk.network,
                &protocol,
                &mut fifo(),
                ExecutionConfig::default(),
            );
            let w_state = &result.states[sk.w.index()];
            totals.push(w_state.accumulated.canonical_key());
        }
        totals.sort();
        totals.dedup();
        assert_eq!(totals.len(), 8, "all subset totals must be distinct");
    }

    #[test]
    fn commodity_conservation_on_dags() {
        let mut rng = StdRng::seed_from_u64(100);
        let net = random_dag(&mut rng, 40, 0.1).unwrap();
        for mode in modes() {
            let protocol = DagBroadcast::<Pow2Commodity>::new(Payload::empty(), mode);
            let result = run(&net, &protocol, &mut fifo(), ExecutionConfig::default());
            assert!(result.outcome.terminated());
            let terminal = &result.states[net.terminal().index()];
            assert!(terminal.accumulated.is_unit());
        }
    }
}
