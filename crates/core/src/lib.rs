//! # anet-core — the paper's protocols
//!
//! This crate implements every protocol of *"Distributed Broadcasting and Mapping
//! Protocols in Directed Anonymous Networks"* (Langberg, Schwartz, Bruck, PODC
//! 2007) on top of the [`anet_sim`] execution engine and the [`anet_num`] exact
//! arithmetic substrate:
//!
//! * [`tree_broadcast`] — broadcasting with termination detection on **grounded
//!   trees** (Section 3.1, Theorem 3.1), with both the paper's power-of-two
//!   commodity rule and the naive `x/d` rule it improves upon.
//! * [`dag_broadcast`] — scalar-commodity broadcasting on **DAGs** (Section 3.3),
//!   in both eager and wait-for-all-inputs forwarding modes.
//! * [`general_broadcast`] — broadcasting on **arbitrary directed graphs** via
//!   interval-union commodities with β-carried cycle detection (Section 4,
//!   Theorems 4.2 and 4.3).
//! * [`labeling`] — unique label assignment (Section 5, Theorem 5.1): each vertex
//!   retains a sub-interval of the commodity as its identity.
//! * [`mapping`] — full topology extraction by flooding labelled local
//!   neighbourhood information (the application sketched in Section 6).
//!
//! All protocols are *anonymous* ([`anet_sim::AnonymousProtocol`]): a vertex sees
//! only its local degrees and port numbers, never an identity, and the terminal is
//! the only vertex that evaluates a stopping predicate.
//!
//! The high-level entry points (`run_tree_broadcast`, `run_general_broadcast`,
//! `run_labeling`, `run_mapping`, …) execute a protocol under a chosen scheduler
//! and distil the outcome into a report ([`outcome`]); the raw
//! [`anet_sim::RunResult`] remains available through [`anet_sim::engine::run`] for
//! experiments that need traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commodity;
pub mod corruption;
pub mod dag_broadcast;
mod error;
pub mod general_broadcast;
pub mod labeling;
pub mod mapping;
pub mod outcome;
mod payload;
pub mod tree_broadcast;

pub use commodity::{ExactCommodity, Pow2Commodity, ScalarCommodity};
pub use corruption::StateCorruption;
pub use error::CoreError;
pub use payload::Payload;
