//! Unique label assignment on general graphs (Section 5, Theorem 5.1).
//!
//! A small variation of the general-graph broadcast: when a vertex of out-degree
//! `d` performs its one-time canonical partition, it splits the arriving interval
//! mass into `d + 1` parts and **keeps part 0 for itself** as its label; the kept
//! part is immediately added to β so the terminal still sees the whole of `[0, 1)`.
//! Labels of different vertices are disjoint sub-intervals of `[0, 1)`, hence
//! unique, and each label is a single interval of `O(|V| log d_out)` bits —
//! which Theorem 5.2 shows to be optimal.
//!
//! Vertices with out-degree zero cannot forward anything, so they simply absorb all
//! interval mass they receive as their label (a union rather than a single
//! interval); for the terminal this doubles as the stopping-predicate input. The
//! paper leaves this corner implicit; see DESIGN.md for the reasoning.
//!
//! Message plumbing rides the copy-on-write [`IntervalUnion`]: the α/β
//! components cloned into each out-port's message (and into trace events) are
//! O(1) shared handles of one endpoint buffer, not per-port copies, while
//! [`Wire::wire_bits`] still charges the encoded intervals on every edge. The
//! pre-CoW deep-clone implementation is retained in [`mod@reference`] and pinned
//! bit-identical by the `labeling_differential` suite.

use anet_graph::{Network, NodeId};
use anet_num::bits;
use anet_num::partition::canonical_partition_nonempty;
use anet_num::IntervalUnion;
use anet_sim::engine::{run, ExecutionConfig, RunResult};
use anet_sim::metrics::RunMetrics;
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext, RefloodProtocol, Wire};

use crate::CoreError;

pub mod reference;

/// A message of the labelling protocol: α and β increments (no payload — labelling
/// is a pure control protocol in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelMessage {
    /// Newly forwarded interval mass.
    pub alpha: IntervalUnion,
    /// Newly discovered cycle evidence (including freshly claimed labels).
    pub beta: IntervalUnion,
}

impl Wire for LabelMessage {
    fn wire_bits(&self) -> u64 {
        self.alpha.wire_bits() + self.beta.wire_bits()
    }
}

/// Per-vertex state of the labelling protocol:
/// `π = ((α_j)_{j=0..d}, β)` with `α_0` the vertex's label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelingState {
    /// `α_0`: the label this vertex has claimed (empty until the canonical
    /// partition happened; a single interval afterwards for vertices with positive
    /// out-degree).
    pub label: IntervalUnion,
    /// `α_1 … α_d`: mass routed to each out-port.
    pub alpha: Vec<IntervalUnion>,
    /// `β`: cycle evidence plus claimed labels, flooded towards the terminal.
    pub beta: IntervalUnion,
    /// Running `label ∪ β` of an *absorbing* (out-degree-zero) vertex — the
    /// terminal's stopping-predicate input, maintained incrementally as each
    /// α/β delta arrives. Routing vertices leave it empty. Keeping it here
    /// makes [`Labeling::should_terminate`] O(1): `label` alone fragments
    /// into one interval per absorbed leaf mass (the claimed labels in
    /// between are carried by `β`), so re-merging the two unions after every
    /// terminal delivery would cost O(n) a call — the dominant cost of large
    /// runs before this field existed — while their running union coalesces.
    pub absorbed: IntervalUnion,
    /// Whether the one-time partition has been performed.
    pub partitioned: bool,
    /// Whether any message has been received.
    pub received: bool,
}

impl LabelingState {
    /// The terminal's coverage `α ∪ β` (label plus β).
    pub fn coverage(&self) -> IntervalUnion {
        self.label.union(&self.beta)
    }

    /// Whether this vertex holds a non-empty label.
    pub fn is_labeled(&self) -> bool {
        !self.label.is_empty()
    }
}

/// The unique-label-assignment protocol.
#[derive(Debug, Clone, Default)]
pub struct Labeling;

impl Labeling {
    /// Creates the protocol.
    pub fn new() -> Self {
        Labeling
    }
}

impl AnonymousProtocol for Labeling {
    type State = LabelingState;
    type Message = LabelMessage;

    fn name(&self) -> &'static str {
        "label-assignment"
    }

    fn initial_state(&self, ctx: &NodeContext) -> LabelingState {
        LabelingState {
            label: IntervalUnion::empty(),
            alpha: vec![IntervalUnion::empty(); ctx.out_degree],
            beta: IntervalUnion::empty(),
            absorbed: IntervalUnion::empty(),
            partitioned: false,
            received: false,
        }
    }

    fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, LabelMessage)> {
        vec![(
            0,
            LabelMessage {
                alpha: IntervalUnion::unit(),
                beta: IntervalUnion::empty(),
            },
        )]
    }

    fn on_receive_into(
        &self,
        ctx: &NodeContext,
        state: &mut LabelingState,
        _in_port: usize,
        message: &LabelMessage,
        out: &mut Vec<(usize, LabelMessage)>,
    ) {
        state.received = true;
        let d = ctx.out_degree;
        if d == 0 {
            // Absorb everything: α mass becomes (part of) the label, β is recorded,
            // and the running `label ∪ β` accumulator absorbs both deltas.
            state.label.union_in_place(&message.alpha);
            state.beta.union_in_place(&message.beta);
            state.absorbed.union_in_place(&message.alpha);
            state.absorbed.union_in_place(&message.beta);
            return;
        }

        // Increments are computed before the state is updated (see
        // `general_broadcast`): no `old_alpha`/`old_beta` snapshots are cloned,
        // and the emitted batch lands in the engine's reused scratch buffer.
        if !state.partitioned && !message.alpha.is_empty() {
            state.partitioned = true;
            let parts =
                canonical_partition_nonempty(&message.alpha, d + 1).expect("d + 1 >= 2 parts");
            let mut parts = parts.into_iter();
            let own = parts.next().expect("partition has d + 1 parts");
            // β'' = β' ∪ α_0: the claimed label must still reach the terminal.
            let mut beta_delta = message.beta.union(&own);
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            state.label = own;
            for (j, part) in parts.enumerate() {
                debug_assert!(state.alpha[j].is_empty());
                if !part.is_empty() || !beta_delta.is_empty() {
                    out.push((
                        j,
                        LabelMessage {
                            alpha: part.clone(),
                            beta: beta_delta.clone(),
                        },
                    ));
                }
                state.alpha[j] = part;
            }
        } else {
            let mut overlap = message.alpha.intersection(&state.label);
            for routed in &state.alpha {
                overlap.union_in_place(&message.alpha.intersection(routed));
            }
            let mut fresh = message.alpha.clone();
            for routed in &state.alpha[..d - 1] {
                fresh.subtract_assign(routed);
            }
            fresh.subtract_assign(&state.alpha[d - 1]);
            // Mass this vertex claimed as its label is not an increment either.
            // Pristine traffic never carries it back as α (the partition step
            // folds the claimed part into β), but a re-flooded frontier
            // re-delivers the α batch the label was carved from; re-routing the
            // claimed part would assign the same mass to two labels.
            fresh.subtract_assign(&state.label);
            let mut beta_delta = message.beta.union(&overlap);
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            state.alpha[d - 1].union_in_place(&fresh);
            if !beta_delta.is_empty() {
                for j in 0..d - 1 {
                    out.push((
                        j,
                        LabelMessage {
                            alpha: IntervalUnion::empty(),
                            beta: beta_delta.clone(),
                        },
                    ));
                }
            }
            if !fresh.is_empty() || !beta_delta.is_empty() {
                out.push((
                    d - 1,
                    LabelMessage {
                        alpha: fresh,
                        beta: beta_delta,
                    },
                ));
            }
        }
    }

    fn should_terminate(&self, terminal_state: &LabelingState) -> bool {
        // `absorbed` is the incrementally maintained `label ∪ β` of the
        // terminal (out-degree zero by `Network` validation), so this is
        // [`LabelingState::coverage`]`().is_unit()` without the O(n) merge.
        terminal_state.absorbed.is_unit()
    }
}

impl RefloodProtocol for Labeling {
    /// Re-sends the routing frontier: on every out-port `j`, the interval set
    /// already routed there (`alpha[j]`) together with the node's full
    /// cycle-echo set (`beta`).
    ///
    /// Re-delivery is idempotent in the sense required by
    /// [`anet_sim::run_recovering`]: a receiver intersects incoming `α` with
    /// what it already holds, so previously seen intervals fold into `β`
    /// (shrinking nothing) and only genuinely fresh intervals are routed on.
    fn reflood(&self, ctx: &NodeContext, state: &LabelingState) -> Vec<(usize, LabelMessage)> {
        let mut out = Vec::new();
        for j in 0..ctx.out_degree {
            let alpha = state.alpha[j].clone();
            let beta = state.beta.clone();
            if !alpha.is_empty() || !beta.is_empty() {
                out.push((j, LabelMessage { alpha, beta }));
            }
        }
        out
    }
}

/// The distilled outcome of a labelling run.
#[derive(Debug, Clone)]
pub struct LabelingReport {
    /// Whether the terminal declared termination.
    pub terminated: bool,
    /// Whether the run quiesced without terminating (expected when some vertex is
    /// not connected to the terminal).
    pub quiescent: bool,
    /// The label of every vertex, indexed by node id (the root never participates
    /// and keeps an empty label).
    pub labels: Vec<IntervalUnion>,
    /// Whether all internal vertices and the terminal ended up with non-empty,
    /// pairwise-disjoint labels.
    pub labels_unique: bool,
    /// The largest label size in bits (positional encoding of both endpoints of
    /// each interval).
    pub max_label_bits: u64,
    /// Communication metrics of the run.
    pub metrics: RunMetrics,
}

impl LabelingReport {
    /// The label of a particular vertex.
    pub fn label_of(&self, node: NodeId) -> &IntervalUnion {
        &self.labels[node.index()]
    }
}

/// Size in bits of a label under the positional endpoint encoding used by
/// Theorem 4.3 / Theorem 5.1.
pub fn label_bits(label: &IntervalUnion) -> u64 {
    label
        .iter()
        .map(|iv| {
            bits::length_prefixed_bits(iv.lo().positional_bits())
                + bits::length_prefixed_bits(iv.hi().positional_bits())
        })
        .sum()
}

/// Runs the labelling protocol and reports the assigned labels.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out.
///
/// # Example
///
/// ```
/// use anet_core::labeling::run_labeling;
/// use anet_graph::generators::cycle_with_tail;
/// use anet_sim::scheduler::FifoScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let network = cycle_with_tail(5)?;
/// let report = run_labeling(&network, &mut FifoScheduler::new())?;
/// assert!(report.terminated);
/// assert!(report.labels_unique);
/// # Ok(())
/// # }
/// ```
pub fn run_labeling(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<LabelingReport, CoreError> {
    run_labeling_with_config(network, scheduler, ExecutionConfig::default())
}

/// [`run_labeling`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_labeling_with_config(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<LabelingReport, CoreError> {
    let protocol = Labeling::new();
    let result = run(network, &protocol, scheduler, config);
    report_from_run(network, result)
}

/// Distils a finished labelling run into a [`LabelingReport`]. Shared by the
/// copy-on-write and [`reference`] run functions.
///
/// The label vector is extracted by *moving* each label handle out of its
/// final state — the run result is consumed, so no label is cloned (not even
/// a refcount bump), let alone deep-copied as the pre-CoW extraction did.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
fn report_from_run<M>(
    network: &Network,
    result: RunResult<LabelingState, M>,
) -> Result<LabelingReport, CoreError> {
    if result.outcome == anet_sim::Outcome::BudgetExhausted {
        return Err(CoreError::BudgetExhausted);
    }
    let outcome = result.outcome;
    let metrics = result.metrics;
    let labels: Vec<IntervalUnion> = result.states.into_iter().map(|st| st.label).collect();
    let unique = labels_unique(network, &labels);
    let max_label_bits = network
        .graph()
        .nodes()
        .filter(|&n| n != network.root())
        .map(|n| label_bits(&labels[n.index()]))
        .max()
        .unwrap_or(0);
    Ok(LabelingReport {
        terminated: outcome == anet_sim::Outcome::Terminated,
        quiescent: outcome == anet_sim::Outcome::Quiescent,
        labels,
        labels_unique: unique,
        max_label_bits,
        metrics,
    })
}

/// Theorem 5.1's correctness condition on a finished assignment: every vertex
/// except the root holds a non-empty label, and the labels are pairwise
/// disjoint (hence unique). `labels` is indexed by node id.
///
/// This is the labelling protocol's success predicate — the sweep's `ok`
/// column and [`LabelingReport::labels_unique`] are both this function.
pub fn labels_unique(network: &Network, labels: &[IntervalUnion]) -> bool {
    let participants: Vec<NodeId> = network
        .graph()
        .nodes()
        .filter(|&n| n != network.root())
        .collect();
    for (i, &a) in participants.iter().enumerate() {
        if labels[a.index()].is_empty() {
            return false;
        }
        for &b in &participants[i + 1..] {
            if labels[a.index()].intersects(&labels[b.index()]) {
                return false;
            }
        }
    }
    true
}

/// Applies a [`StateCorruption`](crate::corruption::StateCorruption) to
/// freshly initialised labelling states (the [`anet_sim::run_corrupted`]
/// hook).
///
/// * `ScrambledLabels` — internal vertices wake up `partitioned` with garbage
///   (pairwise distinct) labels. The real `[0, 1)` still flows, so the run
///   typically terminates. Each squatter subtracts its own label from mass
///   routed *through* it (the re-delivery idempotence rule), so on a pure
///   path the assignment genuinely recovers uniqueness; on any topology with
///   bypass edges the squatted mass reaches the terminal around the squatter
///   and uniqueness stays broken.
/// * `LostPartition` — internal vertices keep the `partitioned` flag but
///   lost the label it guarded; the one-time split never re-runs and those
///   vertices finish unlabelled.
/// * `StaleTerminal` — the terminal's β starts pre-filled with `[0, 1/2)`,
///   so its coverage reaches `[0, 1)` (and the run accepts) while half the
///   commodity — and the labels carved from it — is still in flight.
pub fn corrupt_labeling_states(
    corruption: &crate::corruption::StateCorruption,
    network: &Network,
    states: &mut [LabelingState],
) {
    use crate::corruption::StateCorruption;
    let internal: Vec<usize> = network
        .graph()
        .nodes()
        .filter(|&n| n != network.root() && n != network.terminal())
        .map(|n| n.index())
        .collect();
    match corruption {
        StateCorruption::ScrambledLabels { seed } => {
            let labels = crate::corruption::scrambled_labels(internal.len(), *seed);
            for (&i, label) in internal.iter().zip(labels) {
                states[i].label = label;
                states[i].partitioned = true;
                states[i].received = true;
            }
        }
        StateCorruption::LostPartition => {
            for &i in &internal {
                states[i].partitioned = true;
                states[i].received = true;
            }
        }
        StateCorruption::StaleTerminal => {
            let terminal = network.terminal().index();
            states[terminal]
                .beta
                .union_in_place(&crate::corruption::stale_half());
            states[terminal]
                .absorbed
                .union_in_place(&crate::corruption::stale_half());
        }
    }
}

/// The labelling protocol's recovery predicate: the final states carry a
/// correct unique assignment ([`labels_unique`]). Corrupted-start runs ask it
/// of a protocol that began from damaged state.
pub fn labeling_recovered(network: &Network, states: &[LabelingState]) -> bool {
    let labels: Vec<IntervalUnion> = states.iter().map(|s| s.label.clone()).collect();
    labels_unique(network, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators::{
        chain_gn, complete_dag, cycle_with_tail, diamond_stack, full_grounded_tree, nested_cycles,
        pruned_tree, random_cyclic, random_dag, star_network, with_stranded_vertex,
    };
    use anet_sim::runner::run_under_battery;
    use anet_sim::scheduler::FifoScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fifo() -> FifoScheduler {
        FifoScheduler::new()
    }

    #[test]
    fn labels_are_assigned_on_every_family() {
        let mut rng = StdRng::seed_from_u64(404);
        let nets = vec![
            chain_gn(6).unwrap(),
            star_network(5).unwrap(),
            full_grounded_tree(3, 2).unwrap(),
            pruned_tree(6, 3).unwrap().0,
            diamond_stack(4).unwrap(),
            complete_dag(6).unwrap(),
            random_dag(&mut rng, 20, 0.2).unwrap(),
            cycle_with_tail(7).unwrap(),
            nested_cycles(2, 4).unwrap(),
            random_cyclic(&mut rng, 18, 0.15, 0.2).unwrap(),
        ];
        for net in &nets {
            let report = run_labeling(net, &mut fifo()).unwrap();
            assert!(report.terminated, "nodes = {}", net.node_count());
            assert!(report.labels_unique, "nodes = {}", net.node_count());
            assert!(report.max_label_bits > 0);
        }
    }

    #[test]
    fn internal_labels_are_single_intervals() {
        let net = cycle_with_tail(6).unwrap();
        let report = run_labeling(&net, &mut fifo()).unwrap();
        for node in net.internal_nodes() {
            let label = report.label_of(node);
            assert_eq!(label.interval_count(), 1, "label of {node:?}");
        }
    }

    #[test]
    fn labels_cover_a_subset_of_the_unit_interval_disjointly() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = random_cyclic(&mut rng, 25, 0.15, 0.25).unwrap();
        let report = run_labeling(&net, &mut fifo()).unwrap();
        assert!(report.terminated);
        let mut total = IntervalUnion::empty();
        for node in net.graph().nodes().filter(|&n| n != net.root()) {
            let label = report.label_of(node);
            assert!(!total.intersects(label));
            total.union_in_place(label);
        }
        assert!(total.is_subset_of(&IntervalUnion::unit()));
    }

    #[test]
    fn refuses_to_terminate_with_stranded_vertex() {
        let base = cycle_with_tail(5).unwrap();
        let net = with_stranded_vertex(&base).unwrap();
        let report = run_labeling(&net, &mut fifo()).unwrap();
        assert!(!report.terminated);
        assert!(report.quiescent);
    }

    #[test]
    fn unique_labels_under_every_scheduler() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = random_cyclic(&mut rng, 15, 0.2, 0.3).unwrap();
        let protocol = Labeling::new();
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 8, 5) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
            let labels: Vec<&IntervalUnion> = net
                .graph()
                .nodes()
                .filter(|&n| n != net.root())
                .map(|n| &named.result.states[n.index()].label)
                .collect();
            for (i, a) in labels.iter().enumerate() {
                assert!(!a.is_empty(), "sched {}", named.scheduler);
                for b in &labels[i + 1..] {
                    assert!(!a.intersects(b), "sched {}", named.scheduler);
                }
            }
        }
    }

    #[test]
    fn label_bits_grow_with_depth_in_pruned_trees() {
        // Theorem 5.2's shape: the deep path vertex's label needs Ω(h log d) bits.
        let shallow = {
            let (net, path) = pruned_tree(2, 4).unwrap();
            let report = run_labeling(&net, &mut fifo()).unwrap();
            label_bits(report.label_of(*path.last().unwrap()))
        };
        let deep = {
            let (net, path) = pruned_tree(20, 4).unwrap();
            let report = run_labeling(&net, &mut fifo()).unwrap();
            label_bits(report.label_of(*path.last().unwrap()))
        };
        assert!(deep > shallow + 20, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn pruned_tree_label_matches_full_tree_label() {
        // The heart of the Theorem 5.2 pruning argument: the deep vertex receives
        // exactly the same label in the pruned graph as in the full tree, because
        // the protocol execution along the path is identical.
        let height = 3;
        let arity = 3;
        let full = full_grounded_tree(height, arity).unwrap();
        let (pruned, path) = pruned_tree(height, arity).unwrap();
        let full_report = run_labeling(&full, &mut fifo()).unwrap();
        let pruned_report = run_labeling(&pruned, &mut fifo()).unwrap();
        // Identify the leftmost path in the full tree by following out-port 0.
        let g = full.graph();
        let mut full_path = vec![g.edge_dst(g.out_edges(full.root())[0])];
        for _ in 0..height {
            let last = *full_path.last().unwrap();
            full_path.push(g.edge_dst(g.out_edges(last)[0]));
        }
        for (full_node, pruned_node) in full_path.iter().zip(path.iter()) {
            assert_eq!(
                full_report.label_of(*full_node),
                pruned_report.label_of(*pruned_node),
                "labels diverge along the replayed path"
            );
        }
    }

    #[test]
    fn label_bits_helper_counts_every_interval() {
        assert_eq!(label_bits(&IntervalUnion::empty()), 0);
        let unit = label_bits(&IntervalUnion::unit());
        assert!(unit > 0);
        let report = run_labeling(&chain_gn(4).unwrap(), &mut fifo()).unwrap();
        assert!(report.max_label_bits >= unit / 2);
    }
}
