//! The retained deep-clone labelling implementation.
//!
//! This is the labelling protocol exactly as it behaved before the
//! copy-on-write endpoint-array `IntervalUnion`: every set operation funnels
//! through the collect-sort-merge references in [`anet_num::reference`], and
//! every per-out-port message carries a **deep clone** of its α/β components
//! ([`IntervalUnion::deep_clone`]) — the owned-value economy in which sending
//! a label on `d` edges copies its endpoints `d` times. It is kept —
//! mirroring [`crate::mapping::reference`], `anet_num::reference` and
//! `anet_sim::reference` — as the specification the copy-on-write
//! implementation in [the parent module](super) must match bit-for-bit: the
//! `labeling_differential` suite runs both across the scheduler battery and
//! asserts identical traces, metrics, wire-bit totals and labels, and
//! `BENCH_labeling.json` pins the speedup. Do not use it on hot paths.

use anet_graph::Network;
use anet_num::partition::canonical_partition_nonempty;
use anet_num::{reference as num_reference, IntervalUnion};
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext};

use super::{LabelMessage, LabelingReport, LabelingState};
use crate::{labeling, CoreError};

/// The reference unique-label-assignment protocol (same state and message
/// types as [`labeling::Labeling`], deep-clone plumbing and reference set
/// algebra inside).
#[derive(Debug, Clone, Default)]
pub struct Labeling;

impl Labeling {
    /// Creates the protocol.
    pub fn new() -> Self {
        Labeling
    }
}

impl AnonymousProtocol for Labeling {
    type State = LabelingState;
    type Message = LabelMessage;

    fn name(&self) -> &'static str {
        "label-assignment-reference"
    }

    fn initial_state(&self, ctx: &NodeContext) -> LabelingState {
        labeling::Labeling::new().initial_state(ctx)
    }

    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, LabelMessage)> {
        labeling::Labeling::new().root_messages(root_out_degree)
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut LabelingState,
        _in_port: usize,
        message: &LabelMessage,
    ) -> Vec<(usize, LabelMessage)> {
        state.received = true;
        let d = ctx.out_degree;
        if d == 0 {
            // Absorb everything: α mass becomes (part of) the label, β is recorded,
            // and the running `label ∪ β` accumulator absorbs both deltas.
            state.label = num_reference::union(&state.label, &message.alpha);
            state.beta = num_reference::union(&state.beta, &message.beta);
            state.absorbed = num_reference::union(&state.absorbed, &message.alpha);
            state.absorbed = num_reference::union(&state.absorbed, &message.beta);
            return Vec::new();
        }

        let mut out = Vec::new();
        if !state.partitioned && !message.alpha.is_empty() {
            state.partitioned = true;
            let parts =
                canonical_partition_nonempty(&message.alpha, d + 1).expect("d + 1 >= 2 parts");
            let mut parts = parts.into_iter();
            let own = parts.next().expect("partition has d + 1 parts");
            // β'' = β' ∪ α_0: the claimed label must still reach the terminal.
            let beta_delta =
                num_reference::difference(&num_reference::union(&message.beta, &own), &state.beta);
            state.beta = num_reference::union(&state.beta, &beta_delta);
            state.label = own;
            for (j, part) in parts.enumerate() {
                debug_assert!(state.alpha[j].is_empty());
                if !part.is_empty() || !beta_delta.is_empty() {
                    out.push((
                        j,
                        LabelMessage {
                            alpha: part.deep_clone(),
                            beta: beta_delta.deep_clone(),
                        },
                    ));
                }
                state.alpha[j] = part;
            }
        } else {
            let mut overlap = num_reference::intersection(&message.alpha, &state.label);
            for routed in &state.alpha {
                overlap = num_reference::union(
                    &overlap,
                    &num_reference::intersection(&message.alpha, routed),
                );
            }
            let mut fresh = message.alpha.deep_clone();
            for routed in &state.alpha {
                fresh = num_reference::difference(&fresh, routed);
            }
            let beta_delta = num_reference::difference(
                &num_reference::union(&message.beta, &overlap),
                &state.beta,
            );
            state.beta = num_reference::union(&state.beta, &beta_delta);
            state.alpha[d - 1] = num_reference::union(&state.alpha[d - 1], &fresh);
            if !beta_delta.is_empty() {
                for j in 0..d - 1 {
                    out.push((
                        j,
                        LabelMessage {
                            alpha: IntervalUnion::empty(),
                            beta: beta_delta.deep_clone(),
                        },
                    ));
                }
            }
            if !fresh.is_empty() || !beta_delta.is_empty() {
                out.push((
                    d - 1,
                    LabelMessage {
                        alpha: fresh,
                        beta: beta_delta,
                    },
                ));
            }
        }
        out
    }

    fn should_terminate(&self, terminal_state: &LabelingState) -> bool {
        // Same O(1) predicate as the fast implementation: `absorbed` is the
        // sink-maintained `label ∪ β`.
        terminal_state.absorbed.is_unit()
    }
}

/// Runs the reference labelling protocol and reports the assigned labels.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out.
pub fn run_labeling(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<LabelingReport, CoreError> {
    run_labeling_with_config(network, scheduler, ExecutionConfig::default())
}

/// [`run_labeling`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_labeling_with_config(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<LabelingReport, CoreError> {
    let protocol = Labeling::new();
    let result = run(network, &protocol, scheduler, config);
    labeling::report_from_run(network, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators::{cycle_with_tail, random_cyclic};
    use anet_sim::scheduler::FifoScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_labeling_terminates_with_unique_labels() {
        let mut rng = StdRng::seed_from_u64(404);
        for net in [
            cycle_with_tail(6).unwrap(),
            random_cyclic(&mut rng, 15, 0.2, 0.2).unwrap(),
        ] {
            let report = run_labeling(&net, &mut FifoScheduler::new()).unwrap();
            assert!(report.terminated);
            assert!(report.labels_unique);
            let fast = labeling::run_labeling(&net, &mut FifoScheduler::new()).unwrap();
            assert_eq!(report.labels, fast.labels);
            assert_eq!(report.metrics, fast.metrics);
        }
    }

    #[test]
    fn reference_messages_never_alias_their_state() {
        // The deep-clone economy: emitted α/β buffers are copies, not shares.
        let net = cycle_with_tail(4).unwrap();
        let protocol = Labeling::new();
        let result = run(
            &net,
            &protocol,
            &mut FifoScheduler::new(),
            ExecutionConfig::with_trace(),
        );
        let trace = result.trace.expect("trace requested");
        for event in trace.events() {
            for st in &result.states {
                assert!(st.label.is_empty() || !event.message.alpha.shares_storage_with(&st.label));
                assert!(st.beta.is_empty() || !event.message.beta.shares_storage_with(&st.beta));
            }
        }
    }
}
