//! The retained owned-record mapping implementation.
//!
//! This is the original Section 6 protocol exactly as first written: `known`
//! and `sent` are `BTreeSet<MapRecord>`s of owned records, the per-activation
//! "what's new" diff is a value-set difference, and every out-port clones the
//! `new_records` vector. It is kept — mirroring `anet_num::reference` and
//! `anet_sim::reference` — as the specification the interned implementation in
//! [the parent module](super) must match bit-for-bit: the
//! `mapping_differential` suite runs both across the scheduler battery and
//! asserts identical traces, metrics, wire-bit totals and extracted
//! topologies, and the `mapping_flood` bench measures the speedup.
//!
//! One deliberate deviation from the first version: the terminal's validity
//! checks in [`MappingState::map_complete`] index `known` by vertex label in a
//! single pass instead of re-scanning the whole set with `iter().any` per
//! record — the original O(|known|²) evaluation made the *stopping predicate*,
//! not the flooding, the bottleneck on record-heavy topologies. The predicate
//! is semantically unchanged (a test pins it against the original wording).

use std::collections::{BTreeSet, HashMap, HashSet};

use anet_graph::Network;
use anet_num::bits;
use anet_num::partition::canonical_partition_nonempty;
use anet_num::{Interval, IntervalUnion};
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext, Wire};

use super::{Announce, MapRecord, MappingReport, ReconstructedTopology, VertexRef};
use crate::CoreError;

/// A message of the reference mapping protocol: records travel as owned values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingMessage {
    /// Newly forwarded interval mass (labelling core).
    pub alpha: IntervalUnion,
    /// Newly discovered cycle evidence (labelling core).
    pub beta: IntervalUnion,
    /// Edge-specific announcement, sent once per out-edge when the sender claims
    /// its label (or by the root at start-up).
    pub announce: Option<Announce>,
    /// Newly learned records being flooded.
    pub records: Vec<MapRecord>,
}

impl Wire for MappingMessage {
    fn wire_bits(&self) -> u64 {
        self.alpha.wire_bits()
            + self.beta.wire_bits()
            + 1
            + self.announce.as_ref().map_or(0, Announce::wire_bits)
            + bits::elias_gamma_bits(self.records.len() as u64)
            + self.records.iter().map(MapRecord::wire_bits).sum::<u64>()
    }
}

/// Per-vertex state of the reference mapping protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingState {
    /// The vertex's claimed label (labelling core).
    pub label: IntervalUnion,
    /// Interval mass routed per out-port (labelling core).
    pub alpha: Vec<IntervalUnion>,
    /// Cycle evidence (labelling core).
    pub beta: IntervalUnion,
    /// Whether the one-time partition happened.
    pub partitioned: bool,
    /// Whether any message was received.
    pub received: bool,
    /// Records this vertex knows about (flooded plus self-created).
    pub known: BTreeSet<MapRecord>,
    /// Records already flooded on the out-ports.
    pub sent: BTreeSet<MapRecord>,
    /// Announcements received before this vertex had a label.
    pub pending_announces: Vec<Announce>,
    /// This vertex's own degrees (recorded for report extraction).
    pub in_degree: usize,
    /// See [`MappingState::in_degree`].
    pub out_degree: usize,
}

impl MappingState {
    /// Whether this vertex holds a non-empty label.
    pub fn is_labeled(&self) -> bool {
        !self.label.is_empty()
    }

    fn own_ref(&self) -> VertexRef {
        if self.out_degree == 0 {
            VertexRef::Sink
        } else {
            VertexRef::Labeled(
                self.label
                    .first_interval()
                    .expect("own_ref is only used once labelled"),
            )
        }
    }

    /// The coverage the terminal checks: known labels ∪ own label ∪ β ∪ routed α.
    pub fn coverage(&self) -> IntervalUnion {
        let mut cov = self.label.union(&self.beta);
        for routed in &self.alpha {
            cov.union_in_place(routed);
        }
        for record in &self.known {
            if let MapRecord::Vertex { label, .. } = record {
                cov.union_in_place(&IntervalUnion::from(label.clone()));
            }
        }
        cov
    }

    /// The full termination condition evaluated by the terminal.
    ///
    /// One pass over `known` builds a label index (vertex out-degrees and the
    /// set of covered `(label, port)` pairs); the validity conditions are then
    /// hash lookups, making the whole predicate O(|known|) instead of the
    /// original nested-scan O(|known|²).
    pub fn map_complete(&self) -> bool {
        if !self.coverage().is_unit() {
            return false;
        }
        let mut root_edge_known = false;
        let mut vertex_out: HashMap<&Interval, usize> = HashMap::new();
        let mut ports: HashSet<(&Interval, usize)> = HashSet::new();
        for record in &self.known {
            match record {
                MapRecord::Vertex {
                    label, out_degree, ..
                } => {
                    vertex_out.insert(label, *out_degree);
                }
                MapRecord::Edge { src, src_port, .. } => match src {
                    VertexRef::Root => root_edge_known |= *src_port == 0,
                    VertexRef::Sink => {}
                    VertexRef::Labeled(l) => {
                        ports.insert((l, *src_port));
                    }
                },
            }
        }
        if !root_edge_known {
            return false;
        }
        // Every known vertex must have all its out-ports accounted for, and every
        // edge destination must be known (or the terminal itself).
        for (label, out_degree) in &vertex_out {
            if !(0..*out_degree).all(|port| ports.contains(&(*label, port))) {
                return false;
            }
        }
        for record in &self.known {
            if let MapRecord::Edge {
                dst: VertexRef::Labeled(l),
                ..
            } = record
            {
                if !vertex_out.contains_key(l) {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the extracted topology from this (terminal) state.
    pub fn extract_topology(&self) -> ReconstructedTopology {
        ReconstructedTopology::from_records(&self.known, self.in_degree)
    }
}

/// The reference topology-mapping protocol.
#[derive(Debug, Clone, Default)]
pub struct Mapping;

impl Mapping {
    /// Creates the protocol.
    pub fn new() -> Self {
        Mapping
    }
}

impl AnonymousProtocol for Mapping {
    type State = MappingState;
    type Message = MappingMessage;

    fn name(&self) -> &'static str {
        "topology-mapping-reference"
    }

    fn initial_state(&self, ctx: &NodeContext) -> MappingState {
        MappingState {
            label: IntervalUnion::empty(),
            alpha: vec![IntervalUnion::empty(); ctx.out_degree],
            beta: IntervalUnion::empty(),
            partitioned: false,
            received: false,
            known: BTreeSet::new(),
            sent: BTreeSet::new(),
            pending_announces: Vec::new(),
            in_degree: ctx.in_degree,
            out_degree: ctx.out_degree,
        }
    }

    fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, MappingMessage)> {
        vec![(
            0,
            MappingMessage {
                alpha: IntervalUnion::unit(),
                beta: IntervalUnion::empty(),
                announce: Some(Announce {
                    src: VertexRef::Root,
                    src_port: 0,
                }),
                records: Vec::new(),
            },
        )]
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut MappingState,
        _in_port: usize,
        message: &MappingMessage,
    ) -> Vec<(usize, MappingMessage)> {
        state.received = true;
        let d = ctx.out_degree;

        // 1. Absorb flooded records.
        for record in &message.records {
            state.known.insert(record.clone());
        }

        // 2. Labelling core (note: labels are *not* folded into β here; the vertex
        //    record carries them instead). As in `general_broadcast`, the per-port
        //    α increments and the β increment are computed *before* the state is
        //    updated, so no `old_alpha`/`old_beta` snapshots are cloned.
        let was_labeled = state.is_labeled();
        let mut alpha_deltas: Vec<IntervalUnion> = vec![IntervalUnion::empty(); d];
        let mut beta_delta = IntervalUnion::empty();

        if d == 0 {
            state.label.union_in_place(&message.alpha);
            state.beta.union_in_place(&message.beta);
        } else if !state.partitioned && !message.alpha.is_empty() {
            state.partitioned = true;
            let parts =
                canonical_partition_nonempty(&message.alpha, d + 1).expect("d + 1 >= 2 parts");
            let mut parts = parts.into_iter();
            state.label = parts.next().expect("partition has d + 1 parts");
            beta_delta = message.beta.clone();
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            for (j, part) in parts.enumerate() {
                debug_assert!(state.alpha[j].is_empty());
                state.alpha[j] = part.clone();
                alpha_deltas[j] = part;
            }
        } else {
            let mut overlap = message.alpha.intersection(&state.label);
            for routed in &state.alpha {
                overlap.union_in_place(&message.alpha.intersection(routed));
            }
            let mut fresh = message.alpha.clone();
            for routed in &state.alpha[..d - 1] {
                fresh.subtract_assign(routed);
            }
            fresh.subtract_assign(&state.alpha[d - 1]);
            beta_delta = message.beta.union(&overlap);
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            state.alpha[d - 1].union_in_place(&fresh);
            alpha_deltas[d - 1] = fresh;
        }

        let just_labeled = !was_labeled && state.is_labeled();

        // 3. Handle the edge announcement carried by this message.
        if let Some(announce) = &message.announce {
            if state.is_labeled() || d == 0 {
                state.known.insert(MapRecord::Edge {
                    src: announce.src.clone(),
                    src_port: announce.src_port,
                    dst: state.own_ref(),
                });
            } else {
                state.pending_announces.push(announce.clone());
            }
        }

        // 4. On claiming a label: publish the vertex record, convert buffered
        //    announcements, and prepare to announce on every out-port.
        if just_labeled && d > 0 {
            let own_label = state
                .label
                .first_interval()
                .expect("just claimed a non-empty label");
            state.known.insert(MapRecord::Vertex {
                label: own_label,
                in_degree: ctx.in_degree,
                out_degree: d,
            });
            let pending = std::mem::take(&mut state.pending_announces);
            for announce in pending {
                state.known.insert(MapRecord::Edge {
                    src: announce.src,
                    src_port: announce.src_port,
                    dst: state.own_ref(),
                });
            }
        }

        if d == 0 {
            return Vec::new();
        }

        // 5. Compose per-port outgoing messages.
        let new_records: Vec<MapRecord> = state.known.difference(&state.sent).cloned().collect();
        for record in &new_records {
            state.sent.insert(record.clone());
        }
        let mut out = Vec::new();
        for (j, alpha_delta) in alpha_deltas.into_iter().enumerate() {
            let announce = if just_labeled {
                Some(Announce {
                    src: state.own_ref(),
                    src_port: j,
                })
            } else {
                None
            };
            if !alpha_delta.is_empty()
                || !beta_delta.is_empty()
                || announce.is_some()
                || !new_records.is_empty()
            {
                out.push((
                    j,
                    MappingMessage {
                        alpha: alpha_delta,
                        beta: beta_delta.clone(),
                        announce,
                        records: new_records.clone(),
                    },
                ));
            }
        }
        out
    }

    fn should_terminate(&self, terminal_state: &MappingState) -> bool {
        terminal_state.map_complete()
    }
}

/// Runs the reference mapping protocol and reports the extracted topology.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out.
pub fn run_mapping(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<MappingReport, CoreError> {
    run_mapping_with_config(network, scheduler, ExecutionConfig::default())
}

/// [`run_mapping`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_mapping_with_config(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<MappingReport, CoreError> {
    let protocol = Mapping::new();
    let result = run(network, &protocol, scheduler, config);
    if result.outcome == anet_sim::Outcome::BudgetExhausted {
        return Err(CoreError::BudgetExhausted);
    }
    let labels: Vec<IntervalUnion> = result.states.iter().map(|st| st.label.clone()).collect();
    let terminated = result.outcome == anet_sim::Outcome::Terminated;
    let topology = terminated.then(|| result.states[network.terminal().index()].extract_topology());
    Ok(MappingReport {
        terminated,
        quiescent: result.outcome == anet_sim::Outcome::Quiescent,
        topology,
        labels,
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators::{
        chain_gn, complete_dag, cycle_with_tail, nested_cycles, path_network, random_cyclic,
        with_stranded_vertex,
    };
    use anet_sim::runner::run_under_battery;
    use anet_sim::scheduler::FifoScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fifo() -> FifoScheduler {
        FifoScheduler::new()
    }

    #[test]
    fn reference_mapping_reconstructs_named_families_exactly() {
        let mut rng = StdRng::seed_from_u64(321);
        let nets = vec![
            path_network(4).unwrap(),
            chain_gn(5).unwrap(),
            complete_dag(5).unwrap(),
            cycle_with_tail(8).unwrap(),
            nested_cycles(2, 3).unwrap(),
            random_cyclic(&mut rng, 12, 0.15, 0.2).unwrap(),
        ];
        for net in &nets {
            let report = run_mapping(net, &mut fifo()).unwrap();
            assert!(report.terminated, "nodes = {}", net.node_count());
            assert!(
                report.reconstruction_is_exact(net),
                "reconstruction mismatch for {} nodes",
                net.node_count()
            );
        }
    }

    #[test]
    fn reference_mapping_refuses_to_terminate_with_stranded_vertex() {
        let base = cycle_with_tail(4).unwrap();
        let net = with_stranded_vertex(&base).unwrap();
        let report = run_mapping(&net, &mut fifo()).unwrap();
        assert!(!report.terminated);
        assert!(report.quiescent);
        assert!(report.topology.is_none());
    }

    #[test]
    fn reference_mapping_is_exact_under_every_scheduler() {
        let mut rng = StdRng::seed_from_u64(55);
        let net = random_cyclic(&mut rng, 10, 0.2, 0.25).unwrap();
        let protocol = Mapping::new();
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 6, 4) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
            let labels: Vec<IntervalUnion> = named
                .result
                .states
                .iter()
                .map(|st| st.label.clone())
                .collect();
            let topo = named.result.states[net.terminal().index()].extract_topology();
            assert!(
                topo.matches_exactly(&net, &labels),
                "scheduler {} produced a wrong map",
                named.scheduler
            );
        }
    }

    #[test]
    fn linear_map_complete_agrees_with_a_naive_rescan() {
        // Pin the indexed predicate against the original nested-scan wording.
        fn naive_map_complete(state: &MappingState) -> bool {
            if !state.coverage().is_unit() {
                return false;
            }
            let root_edge_known = state.known.iter().any(|r| {
                matches!(
                    r,
                    MapRecord::Edge {
                        src: VertexRef::Root,
                        src_port: 0,
                        ..
                    }
                )
            });
            if !root_edge_known {
                return false;
            }
            for record in &state.known {
                match record {
                    MapRecord::Vertex {
                        label, out_degree, ..
                    } => {
                        for port in 0..*out_degree {
                            let found = state.known.iter().any(|r| {
                                matches!(r, MapRecord::Edge { src: VertexRef::Labeled(l), src_port, .. }
                                    if l == label && *src_port == port)
                            });
                            if !found {
                                return false;
                            }
                        }
                    }
                    MapRecord::Edge { dst, .. } => match dst {
                        VertexRef::Sink | VertexRef::Root => {}
                        VertexRef::Labeled(l) => {
                            let known_vertex = state.known.iter().any(
                                |r| matches!(r, MapRecord::Vertex { label, .. } if label == l),
                            );
                            if !known_vertex {
                                return false;
                            }
                        }
                    },
                }
            }
            true
        }

        let mut rng = StdRng::seed_from_u64(9);
        let nets = vec![
            cycle_with_tail(6).unwrap(),
            random_cyclic(&mut rng, 10, 0.2, 0.2).unwrap(),
        ];
        for net in &nets {
            // Compare the predicates on the terminal state after run prefixes of
            // growing length (shrinking the delivery budget stops the run early).
            for budget in [1u64, 3, 7, 15, 40, u64::MAX] {
                let config = ExecutionConfig {
                    max_deliveries: budget,
                    record_trace: false,
                };
                let result = run(net, &Mapping::new(), &mut fifo(), config);
                let terminal = &result.states[net.terminal().index()];
                assert_eq!(
                    terminal.map_complete(),
                    naive_map_complete(terminal),
                    "budget {budget}"
                );
            }
        }
    }
}
