//! Topology mapping: extracting the whole network at the terminal (Section 6).
//!
//! The conclusion of the paper observes that once unique labels exist, "we can …
//! even map the whole topology by flooding local information available to nodes".
//! This module implements that protocol in full. It runs the label-assignment
//! protocol of Section 5 and, on top of it, floods two kinds of facts towards the
//! terminal:
//!
//! * **Vertex records** — "a vertex with label `L` has in-degree `p` and out-degree
//!   `q`" — created by a vertex the moment it claims its label;
//! * **Edge records** — "out-port `j` of the vertex labelled `L` leads to the
//!   vertex labelled `L'`" — created at the *receiving* endpoint: when a vertex
//!   claims its label it *announces* the label on every out-edge, and the
//!   neighbour (once labelled itself) turns the announcement into an edge record.
//!
//! Unlike the plain labelling protocol, a claimed label is **not** folded into β;
//! instead the vertex record carries it to the terminal, so the terminal's coverage
//! check simultaneously guarantees that it has heard of every labelled vertex. The
//! terminal declares termination once
//!
//! 1. the labels it knows about, together with the interval mass and β it received
//!    directly, cover `[0, 1)` exactly;
//! 2. it holds the edge record for the root's single out-edge;
//! 3. for every known vertex with out-degree `q` it holds edge records for all `q`
//!    out-ports; and
//! 4. every edge record's destination is itself, or a vertex it knows about.
//!
//! At that point the records describe the entire network (Theorem: the
//! `mapping_reconstructs_*` tests check exact reconstruction edge-for-edge), and
//! [`ReconstructedTopology`] rebuilds it.
//!
//! # The interned record architecture
//!
//! Records exist so that topology can be described *compactly* — and the same
//! identifier economy applies inside the simulator. This implementation interns
//! every [`MapRecord`] into a per-protocol-value [`anet_num::Interner`] the first
//! time any vertex creates or learns it, and from then on the record travels as a
//! dense `u32` [`RecordId`]:
//!
//! * `known` and `sent` are [`IdBag`]s — an occupancy-chosen id set: the
//!   terminal (which eventually absorbs every record) uses the dense bitset
//!   representation, while internal vertices (which see only the records
//!   flooded through them) use a sorted id vector, so per-vertex memory is
//!   proportional to what the vertex actually knows rather than to the run's
//!   whole record arena. The per-activation "what's new" diff (`known \
//!   sent`, the records to flood) is one representation-aware
//!   [`IdBag::difference_drain`] pass instead of a `BTreeSet` difference
//!   walking every record the vertex has ever seen;
//! * flooded messages carry one [`SharedSlice<RecordId>`] shared by every
//!   out-port (an `Arc` slice — cloning it per port or per trace event is O(1)),
//!   instead of a `Vec<MapRecord>` deep-cloned per port;
//! * ids are resolved back through the table only where the *values* matter: at
//!   the terminal (to maintain its completeness view and to extract the
//!   topology) and when a vertex first absorbs a record.
//!
//! **Wire accounting is unchanged**: a [`RecordId`] is a run-local name, not
//! something the paper's model lets a protocol transmit for free, so
//! [`MappingMessage::wire_bits`] charges the full self-delimiting encoding of
//! the *records themselves* (exactly what the retained reference sends). The
//! [`mod@reference`] submodule keeps the original owned-record implementation, and
//! the `mapping_differential` suite pins the two to bit-identical traces,
//! metrics, wire-bit totals and extracted topologies across the scheduler
//! battery.
//!
//! The terminal additionally maintains a [`TerminalView`]: an incrementally
//! updated index of its `known` records (per-label port coverage counters, a
//! root-edge flag, a dangling-destination counter and the running coverage
//! union), so evaluating the stopping predicate is O(1) bookkeeping plus one
//! coverage union — not the nested `iter().any` scans of the original.
//!
//! Labels themselves are interned too: the record table assigns every label
//! interval a dense `u32` id and memoises each record's *shape* as a compact
//! meta entry — tag plus label/port ids, no heap data — at intern time.
//! The terminal view is a flat `Vec` indexed by label id rather than a
//! `BTreeMap<Interval, _>`, so absorbing a record is two or three array
//! index operations instead of ordered-map hops over interval keys.

pub mod reference;

use std::sync::{Arc, Mutex};

use anet_graph::{DiGraph, Network, NodeId};
use anet_num::bits;
use anet_num::intern::{IdBag, Interner};
use anet_num::partition::canonical_partition_nonempty;
use anet_num::{Interval, IntervalUnion};
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::metrics::RunMetrics;
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext, RefloodProtocol, SharedSlice, Wire};

use crate::CoreError;

/// A reference to a vertex inside flooded records.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VertexRef {
    /// The distinguished root `s` (it never receives a label).
    Root,
    /// The vertex that created the record and has out-degree zero. Such records
    /// never travel (a sink cannot forward), so at the terminal this always means
    /// "the terminal itself".
    Sink,
    /// An internal vertex, identified by its (single-interval) label.
    Labeled(Interval),
}

impl VertexRef {
    /// Bits of the self-delimiting encoding (2 tag bits plus the label, if any).
    pub fn wire_bits(&self) -> u64 {
        match self {
            VertexRef::Root | VertexRef::Sink => 2,
            VertexRef::Labeled(interval) => 2 + interval.endpoint_bits(),
        }
    }
}

/// A fact about the topology, flooded towards the terminal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MapRecord {
    /// "The vertex labelled `label` has these degrees."
    Vertex {
        /// The vertex's label.
        label: Interval,
        /// Its in-degree.
        in_degree: usize,
        /// Its out-degree.
        out_degree: usize,
    },
    /// "Out-port `src_port` of `src` leads to `dst`."
    Edge {
        /// The edge's source vertex.
        src: VertexRef,
        /// The out-port index at the source.
        src_port: usize,
        /// The edge's destination vertex.
        dst: VertexRef,
    },
}

impl MapRecord {
    /// Bits of the record's self-delimiting encoding.
    ///
    /// This is the size the record occupies **on the wire** whenever it is
    /// flooded — the interned implementation sends [`RecordId`]s between
    /// simulated vertices, but ids are run-local names, so honest accounting
    /// charges the encoded record itself (tag, label endpoints, gamma-coded
    /// degrees/ports). Both implementations therefore report identical message
    /// sizes, which the differential suite asserts.
    pub fn wire_bits(&self) -> u64 {
        match self {
            MapRecord::Vertex {
                label,
                in_degree,
                out_degree,
            } => {
                2 + label.endpoint_bits()
                    + bits::elias_gamma_bits(*in_degree as u64)
                    + bits::elias_gamma_bits(*out_degree as u64)
            }
            MapRecord::Edge { src, src_port, dst } => {
                2 + src.wire_bits() + bits::elias_gamma_bits(*src_port as u64) + dst.wire_bits()
            }
        }
    }
}

/// A label announcement travelling over a single edge: "this edge is out-port
/// `src_port` of the vertex `src`".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Announce {
    /// The announcing vertex.
    pub src: VertexRef,
    /// The out-port (at the announcing vertex) of the edge carrying this announce.
    pub src_port: usize,
}

impl Announce {
    /// Bits of the announcement's self-delimiting encoding.
    pub fn wire_bits(&self) -> u64 {
        self.src.wire_bits() + bits::elias_gamma_bits(self.src_port as u64)
    }
}

/// Dense run-local name of an interned [`MapRecord`].
///
/// Ids are assigned in first-use order by the protocol's shared record table
/// (see [`anet_num::Interner`]); equal records always carry equal ids within
/// one protocol value, so set bookkeeping is bit arithmetic.
pub type RecordId = u32;

/// Dense run-local name of an interned label interval (see
/// [`RecordTable::labels`]).
type LabelId = u32;

/// A vertex reference with its label replaced by the label's interned id —
/// the hot-path form of [`VertexRef`], `Copy` and heap-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefId {
    Root,
    Sink,
    Label(LabelId),
}

/// A record's shape with every interval replaced by its interned id, memoised
/// at intern time. The terminal's completeness index runs entirely on these —
/// absorbing a record touches dense arrays only; the interval values are
/// resolved just once per label, for the coverage union.
#[derive(Debug, Clone, Copy)]
enum RecordMeta {
    Vertex {
        label: LabelId,
        out_degree: u32,
    },
    Edge {
        src: RefId,
        src_port: u32,
        dst: RefId,
    },
}

/// The per-protocol-value record arena: hash-consed records plus their encoded
/// sizes and id-level shapes, memoised once at intern time so composing a
/// message costs one table lookup per new record and absorbing one costs a
/// few array index operations.
#[derive(Debug, Default)]
struct RecordTable {
    records: Interner<MapRecord>,
    encoded_bits: Vec<u64>,
    /// Every label interval mentioned by any record, hash-consed to a dense
    /// [`LabelId`] — the index space of [`TerminalView::vertices`].
    labels: Interner<Interval>,
    /// `meta[id]` is the id-level shape of `records.resolve(id)`.
    meta: Vec<RecordMeta>,
}

impl RecordTable {
    fn ref_id(&mut self, vertex: &VertexRef) -> RefId {
        match vertex {
            VertexRef::Root => RefId::Root,
            VertexRef::Sink => RefId::Sink,
            VertexRef::Labeled(interval) => RefId::Label(self.labels.intern(interval)),
        }
    }

    fn intern(&mut self, record: &MapRecord) -> RecordId {
        let id = self.records.intern(record);
        if id as usize == self.encoded_bits.len() {
            self.encoded_bits.push(record.wire_bits());
            let meta = match record {
                MapRecord::Vertex {
                    label, out_degree, ..
                } => RecordMeta::Vertex {
                    label: self.labels.intern(label),
                    out_degree: *out_degree as u32,
                },
                MapRecord::Edge { src, src_port, dst } => RecordMeta::Edge {
                    src: self.ref_id(src),
                    src_port: *src_port as u32,
                    dst: self.ref_id(dst),
                },
            };
            self.meta.push(meta);
        }
        id
    }

    fn resolve(&self, id: RecordId) -> &MapRecord {
        self.records.resolve(id)
    }

    fn meta_of(&self, id: RecordId) -> RecordMeta {
        self.meta[id as usize]
    }

    fn label_interval(&self, label: LabelId) -> &Interval {
        self.labels.resolve(label)
    }

    fn bits_of(&self, id: RecordId) -> u64 {
        self.encoded_bits[id as usize]
    }
}

type SharedRecordTable = Arc<Mutex<RecordTable>>;

/// A message of the mapping protocol.
///
/// `records` is a shared id slice: every out-port of an activation (and every
/// trace event) clones the same `Arc`, so fan-out no longer deep-copies the
/// batch. [`MappingMessage::wire_bits`] nevertheless charges the encoded
/// records (see [`MapRecord::wire_bits`]), keeping the paper's bit counts
/// identical to the [`mod@reference`] implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingMessage {
    /// Newly forwarded interval mass (labelling core).
    pub alpha: IntervalUnion,
    /// Newly discovered cycle evidence (labelling core).
    pub beta: IntervalUnion,
    /// Edge-specific announcement, sent once per out-edge when the sender claims
    /// its label (or by the root at start-up).
    pub announce: Option<Announce>,
    /// Newly learned records being flooded, as interned ids. The slice's
    /// declared wire size is the full encoding of the named records.
    pub records: SharedSlice<RecordId>,
}

impl MappingMessage {
    fn no_records() -> SharedSlice<RecordId> {
        SharedSlice::empty(bits::elias_gamma_bits(0))
    }
}

impl Wire for MappingMessage {
    fn wire_bits(&self) -> u64 {
        self.alpha.wire_bits()
            + self.beta.wire_bits()
            + 1
            + self.announce.as_ref().map_or(0, Announce::wire_bits)
            + self.records.wire_bits()
    }
}

/// Per-label bookkeeping inside a [`TerminalView`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VertexEntry {
    /// Whether the vertex record for this label has arrived.
    vertex_known: bool,
    /// The out-degree the vertex record reported (0 until it arrives).
    out_degree: usize,
    /// Distinct out-ports of this label covered by edge records so far.
    ports_seen: usize,
    /// Edge records whose destination is this label.
    incoming: usize,
}

/// The terminal's incrementally maintained completeness index.
///
/// Every record the terminal absorbs updates a handful of counters, so the
/// stopping predicate's structural conditions (root edge known, every known
/// vertex's out-ports covered, no edge pointing at an unknown vertex) are O(1)
/// flag checks instead of the nested `known.iter().any` scans of the original
/// implementation, and the coverage union over known labels is accumulated as
/// records arrive instead of being rebuilt per check.
///
/// The counters rely on two protocol invariants: a label names exactly one
/// vertex (labels are disjoint sub-intervals of `[0, 1)`), and each `(src,
/// src_port)` pair appears in at most one edge record (the record is created
/// exactly once, at the receiving endpoint of that edge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TerminalView {
    root_edge_known: bool,
    /// Out-ports of known vertices still lacking an edge record.
    missing_ports: usize,
    /// Edge records whose `Labeled` destination has no vertex record yet.
    dangling_edges: usize,
    /// Indexed by interned [`LabelId`], grown on demand — a dense table
    /// instead of the original `BTreeMap<Interval, VertexEntry>`, so every
    /// per-label update is an array index. Label ids are assigned in
    /// first-use order by the record table, so the layout (though not any
    /// observable behaviour) depends only on the delivery order.
    vertices: Vec<VertexEntry>,
    /// Union of every known vertex record's label.
    records_coverage: IntervalUnion,
}

impl TerminalView {
    fn entry_mut(&mut self, label: LabelId) -> &mut VertexEntry {
        let index = label as usize;
        if self.vertices.len() <= index {
            self.vertices.resize(index + 1, VertexEntry::default());
        }
        &mut self.vertices[index]
    }

    fn absorb(&mut self, meta: RecordMeta, table: &RecordTable) {
        match meta {
            RecordMeta::Vertex { label, out_degree } => {
                let out_degree = out_degree as usize;
                let entry = self.entry_mut(label);
                debug_assert!(!entry.vertex_known, "labels name exactly one vertex");
                entry.vertex_known = true;
                entry.out_degree = out_degree;
                debug_assert!(entry.ports_seen <= out_degree);
                let newly_missing = out_degree - entry.ports_seen;
                let resolved_dangling = entry.incoming;
                self.missing_ports += newly_missing;
                self.dangling_edges -= resolved_dangling;
                self.records_coverage
                    .union_in_place(&IntervalUnion::from(table.label_interval(label).clone()));
            }
            RecordMeta::Edge { src, src_port, dst } => {
                match src {
                    RefId::Root => {
                        if src_port == 0 {
                            self.root_edge_known = true;
                        }
                    }
                    RefId::Sink => {}
                    RefId::Label(label) => {
                        let entry = self.entry_mut(label);
                        entry.ports_seen += 1;
                        let covers_port = entry.vertex_known;
                        debug_assert!(!covers_port || entry.ports_seen <= entry.out_degree);
                        if covers_port {
                            self.missing_ports -= 1;
                        }
                    }
                }
                if let RefId::Label(label) = dst {
                    let entry = self.entry_mut(label);
                    entry.incoming += 1;
                    let dangles = !entry.vertex_known;
                    if dangles {
                        self.dangling_edges += 1;
                    }
                }
            }
        }
    }

    /// Whether the root's single out-edge record has arrived.
    pub fn root_edge_known(&self) -> bool {
        self.root_edge_known
    }

    /// Out-ports of known vertices still lacking an edge record.
    pub fn missing_ports(&self) -> usize {
        self.missing_ports
    }

    /// Edge records whose destination label has no vertex record yet.
    pub fn dangling_edges(&self) -> usize {
        self.dangling_edges
    }

    /// The structural half of the stopping predicate (everything except the
    /// `[0, 1)` coverage check), evaluated from the counters alone.
    pub fn structurally_complete(&self) -> bool {
        self.root_edge_known && self.missing_ports == 0 && self.dangling_edges == 0
    }
}

/// Per-vertex state of the mapping protocol.
#[derive(Debug, Clone)]
pub struct MappingState {
    /// The vertex's claimed label (labelling core).
    pub label: IntervalUnion,
    /// Interval mass routed per out-port (labelling core).
    pub alpha: Vec<IntervalUnion>,
    /// Cycle evidence (labelling core).
    pub beta: IntervalUnion,
    /// Whether the one-time partition happened.
    pub partitioned: bool,
    /// Whether any message was received.
    pub received: bool,
    /// Ids of records this vertex knows about (flooded plus self-created).
    /// Dense (bitset) at the terminal, which absorbs every record of the run;
    /// sparse (sorted vector) everywhere else, so per-vertex memory scales
    /// with what the vertex actually saw, not with the run's record arena.
    pub known: IdBag,
    /// Ids of records already flooded on the out-ports (same representation
    /// split as [`MappingState::known`]).
    pub sent: IdBag,
    /// Announcements received before this vertex had a label.
    pub pending_announces: Vec<Announce>,
    /// This vertex's own degrees (recorded for report extraction).
    pub in_degree: usize,
    /// See [`MappingState::in_degree`].
    pub out_degree: usize,
    /// Handle to the protocol's shared record table (ids → records).
    table: SharedRecordTable,
    /// The completeness index, maintained only where the stopping predicate can
    /// be evaluated: vertices with out-degree zero (the terminal, in any
    /// network that can terminate).
    terminal_view: Option<TerminalView>,
}

impl MappingState {
    /// Whether this vertex holds a non-empty label.
    pub fn is_labeled(&self) -> bool {
        !self.label.is_empty()
    }

    fn own_ref(&self) -> VertexRef {
        if self.out_degree == 0 {
            VertexRef::Sink
        } else {
            VertexRef::Labeled(
                self.label
                    .first_interval()
                    .expect("own_ref is only used once labelled"),
            )
        }
    }

    /// The terminal's completeness index, if this vertex maintains one (it does
    /// exactly when its out-degree is zero).
    pub fn terminal_view(&self) -> Option<&TerminalView> {
        self.terminal_view.as_ref()
    }

    /// The records this vertex knows, resolved through the table (sorted, so
    /// the result is independent of arrival order).
    pub fn known_records(&self) -> Vec<MapRecord> {
        let table = self.table.lock().expect("record table lock poisoned");
        let mut records: Vec<MapRecord> = self
            .known
            .iter()
            .map(|id| table.resolve(id).clone())
            .collect();
        records.sort();
        records
    }

    /// The coverage the terminal checks: known labels ∪ own label ∪ β ∪ routed α.
    pub fn coverage(&self) -> IntervalUnion {
        let mut cov = self.label.union(&self.beta);
        for routed in &self.alpha {
            cov.union_in_place(routed);
        }
        if let Some(view) = &self.terminal_view {
            cov.union_in_place(&view.records_coverage);
        } else {
            // Non-terminal vertices keep no index; resolve on demand (ids →
            // memoised meta → label interval, no record resolution).
            let table = self.table.lock().expect("record table lock poisoned");
            for id in self.known.iter() {
                if let RecordMeta::Vertex { label, .. } = table.meta_of(id) {
                    cov.union_in_place(&IntervalUnion::from(table.label_interval(label).clone()));
                }
            }
        }
        cov
    }

    /// The full termination condition evaluated by the terminal: the indexed
    /// structural checks plus exact `[0, 1)` coverage.
    pub fn map_complete(&self) -> bool {
        let Some(view) = &self.terminal_view else {
            // A vertex with out-edges is not the terminal; the predicate is
            // never evaluated there, but answer honestly anyway.
            return false;
        };
        view.structurally_complete() && self.coverage().is_unit()
    }
}

/// The topology-mapping protocol, interned-record implementation.
///
/// Protocol values created by [`Mapping::new`]/`default` each carry a fresh
/// [record table](RecordId); every state a value creates holds a handle to its
/// table. **`clone` shares the table** (it clones the `Arc`, not the arena) —
/// fine for reusing one logical protocol, but independent concurrent runs
/// should each get their own `Mapping::new()` (as
/// [`anet_sim::runner::run_battery_grid`]'s per-topology factory does), or
/// every activation funnels through one `Mutex`. Reusing one value across
/// several sequential runs (as [`anet_sim::runner::run_under_battery`] does)
/// reuses the table — ids stay consistent and the arena simply accumulates,
/// which is harmless because ids never leak between runs' `known` sets.
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    table: SharedRecordTable,
}

impl Mapping {
    /// Creates the protocol with a fresh record table.
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Resolves interned ids back to their records, sorted — used to inspect
    /// traced messages (e.g. by the differential suite, which compares a traced
    /// id batch against the reference implementation's owned-record batch).
    ///
    /// # Panics
    ///
    /// Panics if an id was not produced by this protocol value's table.
    pub fn resolve_records(&self, ids: &[RecordId]) -> Vec<MapRecord> {
        let table = self.table.lock().expect("record table lock poisoned");
        let mut records: Vec<MapRecord> = ids.iter().map(|&id| table.resolve(id).clone()).collect();
        records.sort();
        records
    }
}

impl AnonymousProtocol for Mapping {
    type State = MappingState;
    type Message = MappingMessage;

    fn name(&self) -> &'static str {
        "topology-mapping"
    }

    fn initial_state(&self, ctx: &NodeContext) -> MappingState {
        MappingState {
            label: IntervalUnion::empty(),
            alpha: vec![IntervalUnion::empty(); ctx.out_degree],
            beta: IntervalUnion::empty(),
            partitioned: false,
            received: false,
            // The terminal eventually knows every record: bitsets. Everyone
            // else holds a small slice of the arena: sorted id vectors.
            known: if ctx.out_degree == 0 {
                IdBag::dense()
            } else {
                IdBag::sparse()
            },
            sent: if ctx.out_degree == 0 {
                IdBag::dense()
            } else {
                IdBag::sparse()
            },
            pending_announces: Vec::new(),
            in_degree: ctx.in_degree,
            out_degree: ctx.out_degree,
            table: Arc::clone(&self.table),
            terminal_view: (ctx.out_degree == 0).then(TerminalView::default),
        }
    }

    fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, MappingMessage)> {
        vec![(
            0,
            MappingMessage {
                alpha: IntervalUnion::unit(),
                beta: IntervalUnion::empty(),
                announce: Some(Announce {
                    src: VertexRef::Root,
                    src_port: 0,
                }),
                records: MappingMessage::no_records(),
            },
        )]
    }

    fn on_receive_into(
        &self,
        ctx: &NodeContext,
        state: &mut MappingState,
        _in_port: usize,
        message: &MappingMessage,
        out: &mut Vec<(usize, MappingMessage)>,
    ) {
        state.received = true;
        let d = ctx.out_degree;
        // One table lock per activation covers absorption, record creation and
        // message composition.
        let mut table = self.table.lock().expect("record table lock poisoned");

        // 1. Absorb flooded records — id inserts; only the memoised meta (and
        //    per label, once, its interval) is consulted if this vertex
        //    maintains the terminal index.
        for &id in message.records.items() {
            if state.known.insert(id) {
                if let Some(view) = state.terminal_view.as_mut() {
                    view.absorb(table.meta_of(id), &table);
                }
            }
        }

        // 2. Labelling core (note: labels are *not* folded into β here; the vertex
        //    record carries them instead). As in `general_broadcast`, the per-port
        //    α increments and the β increment are computed *before* the state is
        //    updated, so no `old_alpha`/`old_beta` snapshots are cloned.
        let was_labeled = state.is_labeled();
        let mut alpha_deltas: Vec<IntervalUnion> = vec![IntervalUnion::empty(); d];
        let mut beta_delta = IntervalUnion::empty();

        if d == 0 {
            state.label.union_in_place(&message.alpha);
            state.beta.union_in_place(&message.beta);
        } else if !state.partitioned && !message.alpha.is_empty() {
            state.partitioned = true;
            let parts =
                canonical_partition_nonempty(&message.alpha, d + 1).expect("d + 1 >= 2 parts");
            let mut parts = parts.into_iter();
            state.label = parts.next().expect("partition has d + 1 parts");
            beta_delta = message.beta.clone();
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            for (j, part) in parts.enumerate() {
                debug_assert!(state.alpha[j].is_empty());
                state.alpha[j] = part.clone();
                alpha_deltas[j] = part;
            }
        } else {
            let mut overlap = message.alpha.intersection(&state.label);
            for routed in &state.alpha {
                overlap.union_in_place(&message.alpha.intersection(routed));
            }
            let mut fresh = message.alpha.clone();
            for routed in &state.alpha[..d - 1] {
                fresh.subtract_assign(routed);
            }
            fresh.subtract_assign(&state.alpha[d - 1]);
            // As in `labeling`: the claimed label is not an increment. Only a
            // re-flooded frontier can carry it back as α, and re-routing it
            // would assign the same mass to two labels.
            fresh.subtract_assign(&state.label);
            beta_delta = message.beta.union(&overlap);
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            state.alpha[d - 1].union_in_place(&fresh);
            alpha_deltas[d - 1] = fresh;
        }

        let just_labeled = !was_labeled && state.is_labeled();

        // 3. Handle the edge announcement carried by this message.
        if let Some(announce) = &message.announce {
            if state.is_labeled() || d == 0 {
                let record = MapRecord::Edge {
                    src: announce.src.clone(),
                    src_port: announce.src_port,
                    dst: state.own_ref(),
                };
                let id = table.intern(&record);
                if state.known.insert(id) {
                    if let Some(view) = state.terminal_view.as_mut() {
                        view.absorb(table.meta_of(id), &table);
                    }
                }
            } else {
                state.pending_announces.push(announce.clone());
            }
        }

        // 4. On claiming a label: publish the vertex record, convert buffered
        //    announcements, and prepare to announce on every out-port.
        if just_labeled && d > 0 {
            let own_label = state
                .label
                .first_interval()
                .expect("just claimed a non-empty label");
            let record = MapRecord::Vertex {
                label: own_label,
                in_degree: ctx.in_degree,
                out_degree: d,
            };
            let id = table.intern(&record);
            state.known.insert(id);
            let pending = std::mem::take(&mut state.pending_announces);
            for announce in pending {
                let record = MapRecord::Edge {
                    src: announce.src,
                    src_port: announce.src_port,
                    dst: state.own_ref(),
                };
                let id = table.intern(&record);
                state.known.insert(id);
            }
        }

        if d == 0 {
            return;
        }

        // 5. Compose per-port outgoing messages. The "what's new" diff is one
        //    representation-aware pass that simultaneously marks the ids as
        //    sent, and the resulting batch is shared by every out-port.
        let mut new_ids: Vec<RecordId> = Vec::new();
        state.known.difference_drain(&mut state.sent, &mut new_ids);
        let records_bits = bits::elias_gamma_bits(new_ids.len() as u64)
            + new_ids.iter().map(|&id| table.bits_of(id)).sum::<u64>();
        drop(table);
        let records = SharedSlice::new(new_ids, records_bits);

        for (j, alpha_delta) in alpha_deltas.into_iter().enumerate() {
            let announce = if just_labeled {
                Some(Announce {
                    src: state.own_ref(),
                    src_port: j,
                })
            } else {
                None
            };
            if !alpha_delta.is_empty()
                || !beta_delta.is_empty()
                || announce.is_some()
                || !records.is_empty()
            {
                out.push((
                    j,
                    MappingMessage {
                        alpha: alpha_delta,
                        beta: beta_delta.clone(),
                        announce,
                        records: records.clone(),
                    },
                ));
            }
        }
    }

    fn should_terminate(&self, terminal_state: &MappingState) -> bool {
        terminal_state.map_complete()
    }
}

impl RefloodProtocol for Mapping {
    /// Re-sends this vertex's whole mapping frontier on every out-port: the
    /// routed interval mass (`alpha[j]`), the cycle-echo set (`beta`), a fresh
    /// copy of the label announcement (if the vertex is labelled — the
    /// neighbour re-derives the identical edge record, which interns to the
    /// same id and is absorbed idempotently), and **all** records the vertex
    /// knows — not just `known \ sent`, since previously flooded batches may
    /// have been destroyed.
    fn reflood(&self, ctx: &NodeContext, state: &MappingState) -> Vec<(usize, MappingMessage)> {
        if ctx.out_degree == 0 {
            return Vec::new();
        }
        let ids: Vec<RecordId> = state.known.iter().collect();
        let records_bits = {
            let table = state.table.lock().expect("record table lock poisoned");
            bits::elias_gamma_bits(ids.len() as u64)
                + ids.iter().map(|&id| table.bits_of(id)).sum::<u64>()
        };
        let records = SharedSlice::new(ids, records_bits);

        let mut out = Vec::new();
        for j in 0..ctx.out_degree {
            let alpha = state.alpha[j].clone();
            let beta = state.beta.clone();
            let announce = state.is_labeled().then(|| Announce {
                src: state.own_ref(),
                src_port: j,
            });
            if !alpha.is_empty() || !beta.is_empty() || announce.is_some() || !records.is_empty() {
                out.push((
                    j,
                    MappingMessage {
                        alpha,
                        beta,
                        announce,
                        records: records.clone(),
                    },
                ));
            }
        }
        out
    }
}

/// One vertex of the reconstructed topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconVertex {
    /// Who this vertex is.
    pub reference: VertexRef,
    /// In-degree (as reported by the vertex itself; 0 for the root, the terminal's
    /// own in-degree for the terminal).
    pub in_degree: usize,
    /// Out-degree.
    pub out_degree: usize,
}

/// One edge of the reconstructed topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconEdge {
    /// Source vertex.
    pub src: VertexRef,
    /// Out-port at the source.
    pub src_port: usize,
    /// Destination vertex (`Sink` means the terminal).
    pub dst: VertexRef,
}

/// The topology the terminal has extracted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconstructedTopology {
    /// All vertices: the root, every labelled internal vertex, and the terminal.
    pub vertices: Vec<ReconVertex>,
    /// All edges.
    pub edges: Vec<ReconEdge>,
}

impl ReconstructedTopology {
    /// Builds the topology from a sorted record list plus the terminal's own
    /// in-degree. Both implementations funnel through this, so their
    /// extractions are structurally identical.
    fn from_records<'a>(
        records: impl IntoIterator<Item = &'a MapRecord>,
        terminal_in_degree: usize,
    ) -> Self {
        let mut vertices = vec![ReconVertex {
            reference: VertexRef::Root,
            in_degree: 0,
            out_degree: 1,
        }];
        let mut edges = Vec::new();
        for record in records {
            match record {
                MapRecord::Vertex {
                    label,
                    in_degree,
                    out_degree,
                } => vertices.push(ReconVertex {
                    reference: VertexRef::Labeled(label.clone()),
                    in_degree: *in_degree,
                    out_degree: *out_degree,
                }),
                MapRecord::Edge { src, src_port, dst } => edges.push(ReconEdge {
                    src: src.clone(),
                    src_port: *src_port,
                    dst: dst.clone(),
                }),
            }
        }
        vertices.push(ReconVertex {
            reference: VertexRef::Sink,
            in_degree: terminal_in_degree,
            out_degree: 0,
        });
        ReconstructedTopology { vertices, edges }
    }

    /// Builds the topology from the terminal's final state (ids are resolved
    /// through the record table and sorted, so the result is independent of the
    /// delivery order in which the terminal learned them).
    pub fn from_terminal_state(state: &MappingState) -> Self {
        Self::from_records(&state.known_records(), state.in_degree)
    }

    /// Number of reconstructed vertices (including root and terminal).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of reconstructed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Rebuilds the topology as a [`Network`] (vertex ids follow the order of
    /// [`ReconstructedTopology::vertices`], with the root first and the terminal
    /// last).
    ///
    /// # Errors
    ///
    /// Propagates [`anet_graph::NetworkError`] if the extracted data does not form
    /// a valid rooted network — which would indicate an incomplete extraction.
    pub fn to_network(&self) -> Result<Network, anet_graph::NetworkError> {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = self.vertices.iter().map(|_| g.add_node()).collect();
        let find = |r: &VertexRef| -> Option<usize> {
            self.vertices.iter().position(|v| &v.reference == r)
        };
        // Edges must be added in (source, port) order so the rebuilt graph has the
        // same port structure as the original.
        let mut ordered: Vec<&ReconEdge> = self.edges.iter().collect();
        ordered.sort_by_key(|e| (find(&e.src).unwrap_or(usize::MAX), e.src_port));
        for edge in ordered {
            let (Some(src), Some(dst)) = (find(&edge.src), find(&edge.dst)) else {
                return Err(anet_graph::NetworkError::InvalidParameter(
                    "edge record refers to an unknown vertex".to_owned(),
                ));
            };
            g.add_edge(ids[src], ids[dst]);
        }
        let root = ids[0];
        let terminal = *ids.last().expect("vertices always include the terminal");
        Network::new(g, root, terminal)
    }

    /// Checks that the reconstruction matches `network` *exactly*: same number of
    /// vertices and edges, and for every original edge `(u, v)` at out-port `p`
    /// there is a reconstructed edge between the correspondingly labelled vertices
    /// at the same port. `labels` maps original node ids to the labels assigned
    /// during the run (empty for the root).
    pub fn matches_exactly(&self, network: &Network, labels: &[IntervalUnion]) -> bool {
        if self.vertex_count() != network.node_count() {
            return false;
        }
        if self.edge_count() != network.edge_count() {
            return false;
        }
        let refer = |node: NodeId| -> Option<VertexRef> {
            if node == network.root() {
                Some(VertexRef::Root)
            } else if node == network.terminal() {
                Some(VertexRef::Sink)
            } else {
                labels[node.index()]
                    .first_interval()
                    .map(VertexRef::Labeled)
            }
        };
        let g = network.graph();
        for node in g.nodes() {
            let Some(node_ref) = refer(node) else {
                return false;
            };
            // Degree bookkeeping must match.
            let found = self.vertices.iter().find(|v| v.reference == node_ref);
            let Some(found) = found else { return false };
            if found.out_degree != g.out_degree(node) || found.in_degree != g.in_degree(node) {
                return false;
            }
            // Every out-edge must be present with the right port and destination.
            for (port, &edge) in g.out_edges(node).iter().enumerate() {
                let Some(dst_ref) = refer(g.edge_dst(edge)) else {
                    return false;
                };
                let present = self
                    .edges
                    .iter()
                    .any(|e| e.src == node_ref && e.src_port == port && e.dst == dst_ref);
                if !present {
                    return false;
                }
            }
        }
        true
    }
}

/// Applies a [`StateCorruption`](crate::corruption::StateCorruption) to
/// freshly initialised mapping states, before the first delivery (the
/// [`anet_sim::run_corrupted`] hook).
///
/// Interpretation in the mapping state space:
///
/// * `ScrambledLabels` — every internal vertex (neither root nor terminal)
///   wakes up already `partitioned` with a garbage, pairwise-distinct dyadic
///   label. Because `was_labeled` holds from the start, the vertex never
///   publishes its vertex record, so the terminal's structural check cannot
///   complete against the scrambled identities.
/// * `LostPartition` — internal vertices keep `partitioned` (and `received`)
///   but lost the label and the α routing state the flag guards; the one-time
///   partition step never re-runs, announcements buffer forever.
/// * `StaleTerminal` — the terminal's [`TerminalView`] starts claiming the
///   root edge and `[0, 1/2)` of records coverage it never received, so
///   [`MappingState::map_complete`] can accept on fabricated evidence.
///
/// All corruptions stay inside the protocol's representable envelope — no
/// corrupted run can panic; it merely ends in an outcome whose
/// [`mapping_recovered`] verdict is honest.
pub fn corrupt_mapping_states(
    corruption: &crate::corruption::StateCorruption,
    network: &Network,
    states: &mut [MappingState],
) {
    use crate::corruption::StateCorruption;
    let internal: Vec<usize> = network
        .graph()
        .nodes()
        .filter(|&n| n != network.root() && n != network.terminal())
        .map(|n| n.index())
        .collect();
    match corruption {
        StateCorruption::ScrambledLabels { seed } => {
            let labels = crate::corruption::scrambled_labels(internal.len(), *seed);
            for (&i, label) in internal.iter().zip(labels) {
                states[i].label = label;
                states[i].partitioned = true;
                states[i].received = true;
            }
        }
        StateCorruption::LostPartition => {
            for &i in &internal {
                states[i].partitioned = true;
                states[i].received = true;
            }
        }
        StateCorruption::StaleTerminal => {
            let terminal = network.terminal().index();
            let view = states[terminal]
                .terminal_view
                .as_mut()
                .expect("the terminal has out-degree zero and keeps a view");
            view.root_edge_known = true;
            view.records_coverage = crate::corruption::stale_half();
        }
    }
}

/// The mapping protocol's recovery predicate: the terminal's extracted
/// topology matches the real network exactly, edge for edge and port for
/// port. This is the success check every sweep record reports as `ok`
/// (conjoined with termination); corrupted-start runs ask it of a protocol
/// that began from damaged state.
pub fn mapping_recovered(network: &Network, states: &[MappingState]) -> bool {
    // Label clones are O(1) shared handles of the states' endpoint buffers
    // (CoW `IntervalUnion`), not per-node deep copies.
    let labels: Vec<IntervalUnion> = states.iter().map(|s| s.label.clone()).collect();
    ReconstructedTopology::from_terminal_state(&states[network.terminal().index()])
        .matches_exactly(network, &labels)
}

/// The distilled outcome of a mapping run.
#[derive(Debug, Clone)]
pub struct MappingReport {
    /// Whether the terminal declared termination.
    pub terminated: bool,
    /// Whether the run quiesced without terminating.
    pub quiescent: bool,
    /// The topology extracted at the terminal (present on termination).
    pub topology: Option<ReconstructedTopology>,
    /// Labels assigned during the run, indexed by node id.
    pub labels: Vec<IntervalUnion>,
    /// Communication metrics of the run.
    pub metrics: RunMetrics,
}

impl MappingReport {
    /// Whether the extracted topology reproduces `network` exactly.
    pub fn reconstruction_is_exact(&self, network: &Network) -> bool {
        self.topology
            .as_ref()
            .map(|topo| topo.matches_exactly(network, &self.labels))
            .unwrap_or(false)
    }
}

/// Runs the topology-mapping protocol and reports the extracted topology.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out.
///
/// # Example
///
/// ```
/// use anet_core::mapping::run_mapping;
/// use anet_graph::generators::cycle_with_tail;
/// use anet_sim::scheduler::FifoScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let network = cycle_with_tail(4)?;
/// let report = run_mapping(&network, &mut FifoScheduler::new())?;
/// assert!(report.terminated);
/// assert!(report.reconstruction_is_exact(&network));
/// # Ok(())
/// # }
/// ```
pub fn run_mapping(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<MappingReport, CoreError> {
    run_mapping_with_config(network, scheduler, ExecutionConfig::default())
}

/// [`run_mapping`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_mapping_with_config(
    network: &Network,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<MappingReport, CoreError> {
    let protocol = Mapping::new();
    let result = run(network, &protocol, scheduler, config);
    if result.outcome == anet_sim::Outcome::BudgetExhausted {
        return Err(CoreError::BudgetExhausted);
    }
    let labels: Vec<IntervalUnion> = result.states.iter().map(|st| st.label.clone()).collect();
    let terminated = result.outcome == anet_sim::Outcome::Terminated;
    let topology = terminated.then(|| {
        ReconstructedTopology::from_terminal_state(&result.states[network.terminal().index()])
    });
    Ok(MappingReport {
        terminated,
        quiescent: result.outcome == anet_sim::Outcome::Quiescent,
        topology,
        labels,
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators::{
        chain_gn, complete_dag, cycle_with_tail, diamond_stack, full_grounded_tree, nested_cycles,
        path_network, random_cyclic, random_dag, star_network, with_stranded_vertex,
    };
    use anet_sim::runner::run_under_battery;
    use anet_sim::scheduler::FifoScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fifo() -> FifoScheduler {
        FifoScheduler::new()
    }

    #[test]
    fn mapping_reconstructs_simple_families_exactly() {
        let nets = vec![
            path_network(4).unwrap(),
            chain_gn(5).unwrap(),
            star_network(4).unwrap(),
            full_grounded_tree(2, 3).unwrap(),
            diamond_stack(3).unwrap(),
            complete_dag(5).unwrap(),
        ];
        for net in &nets {
            let report = run_mapping(net, &mut fifo()).unwrap();
            assert!(report.terminated, "nodes = {}", net.node_count());
            assert!(
                report.reconstruction_is_exact(net),
                "reconstruction mismatch for {} nodes",
                net.node_count()
            );
        }
    }

    #[test]
    fn mapping_reconstructs_cyclic_families_exactly() {
        let mut rng = StdRng::seed_from_u64(321);
        let nets = vec![
            cycle_with_tail(3).unwrap(),
            cycle_with_tail(8).unwrap(),
            nested_cycles(2, 3).unwrap(),
            random_cyclic(&mut rng, 12, 0.15, 0.2).unwrap(),
            random_dag(&mut rng, 15, 0.2).unwrap(),
        ];
        for net in &nets {
            let report = run_mapping(net, &mut fifo()).unwrap();
            assert!(report.terminated, "nodes = {}", net.node_count());
            assert!(
                report.reconstruction_is_exact(net),
                "reconstruction mismatch for {} nodes",
                net.node_count()
            );
        }
    }

    #[test]
    fn mapping_refuses_to_terminate_with_stranded_vertex() {
        let base = cycle_with_tail(4).unwrap();
        let net = with_stranded_vertex(&base).unwrap();
        let report = run_mapping(&net, &mut fifo()).unwrap();
        assert!(!report.terminated);
        assert!(report.quiescent);
        assert!(report.topology.is_none());
    }

    #[test]
    fn mapping_is_exact_under_every_scheduler() {
        let mut rng = StdRng::seed_from_u64(55);
        let net = random_cyclic(&mut rng, 10, 0.2, 0.25).unwrap();
        let protocol = Mapping::new();
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 6, 4) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
            let labels: Vec<IntervalUnion> = named
                .result
                .states
                .iter()
                .map(|st| st.label.clone())
                .collect();
            let topo = ReconstructedTopology::from_terminal_state(
                &named.result.states[net.terminal().index()],
            );
            assert!(
                topo.matches_exactly(&net, &labels),
                "scheduler {} produced a wrong map",
                named.scheduler
            );
        }
    }

    #[test]
    fn reconstructed_network_is_a_valid_network_with_matching_counts() {
        let net = nested_cycles(2, 4).unwrap();
        let report = run_mapping(&net, &mut fifo()).unwrap();
        let topo = report.topology.as_ref().unwrap();
        assert_eq!(topo.vertex_count(), net.node_count());
        assert_eq!(topo.edge_count(), net.edge_count());
        let rebuilt = topo.to_network().unwrap();
        assert_eq!(rebuilt.node_count(), net.node_count());
        assert_eq!(rebuilt.edge_count(), net.edge_count());
        assert_eq!(rebuilt.max_out_degree(), net.max_out_degree());
    }

    #[test]
    fn record_wire_sizes_are_positive_and_scale_with_label_size() {
        let small = MapRecord::Vertex {
            label: Interval::unit(),
            in_degree: 1,
            out_degree: 1,
        };
        let nested = Interval::unit().split(8).unwrap()[5].split(8).unwrap()[3].clone();
        let big = MapRecord::Vertex {
            label: nested,
            in_degree: 1,
            out_degree: 1,
        };
        assert!(small.wire_bits() > 0);
        assert!(big.wire_bits() > small.wire_bits());
        let edge = MapRecord::Edge {
            src: VertexRef::Root,
            src_port: 0,
            dst: VertexRef::Sink,
        };
        assert!(edge.wire_bits() >= 5);
    }

    #[test]
    fn terminal_state_exposes_map_completeness_incrementally() {
        // Before any delivery the terminal obviously has no map.
        let protocol = Mapping::new();
        let ctx = NodeContext::new(2, 0);
        let state = protocol.initial_state(&ctx);
        assert!(!state.map_complete());
        assert!(!protocol.should_terminate(&state));
        let view = state.terminal_view().expect("sinks maintain the index");
        assert!(!view.root_edge_known());
        assert_eq!(view.missing_ports(), 0);
        assert_eq!(view.dangling_edges(), 0);
        assert!(!view.structurally_complete());
    }

    #[test]
    fn terminal_view_counters_track_known_records() {
        let net = cycle_with_tail(5).unwrap();
        let report = run_mapping(&net, &mut fifo()).unwrap();
        assert!(report.terminated);
        // Re-run keeping the raw states to inspect the terminal's view.
        let protocol = Mapping::new();
        let result = run(&net, &protocol, &mut fifo(), ExecutionConfig::default());
        let terminal = &result.states[net.terminal().index()];
        let view = terminal.terminal_view().expect("terminal keeps the index");
        assert!(view.structurally_complete());
        assert!(view.root_edge_known());
        assert_eq!(view.missing_ports(), 0);
        assert_eq!(view.dangling_edges(), 0);
        assert!(terminal.coverage().is_unit());
        // The indexed predicate agrees with a from-scratch scan of the records.
        let records = terminal.known_records();
        let edge_count = records
            .iter()
            .filter(|r| matches!(r, MapRecord::Edge { .. }))
            .count();
        assert_eq!(edge_count, net.edge_count());
    }

    #[test]
    fn shared_record_slices_are_cheap_to_clone() {
        // The same Arc backs every out-port's batch: equal contents, equal bits.
        let a = MappingMessage {
            alpha: IntervalUnion::empty(),
            beta: IntervalUnion::empty(),
            announce: None,
            records: SharedSlice::new(vec![0, 1, 2], 42),
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.wire_bits(), b.wire_bits());
        // records bits dominate: alpha/beta empty unions plus presence bit.
        assert_eq!(
            a.wire_bits(),
            IntervalUnion::empty().wire_bits() * 2 + 1 + 42
        );
    }
}
