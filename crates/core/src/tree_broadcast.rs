//! Broadcasting with termination detection on grounded trees (Section 3.1,
//! Theorem 3.1).
//!
//! The root injects the payload `m` together with one unit of a scalar commodity.
//! Every internal vertex, on its single incoming message, forwards `m` on all
//! out-edges and splits the commodity among them; the terminal accepts once the
//! commodity values it received sum back to exactly one unit. With the paper's
//! power-of-two splitting rule ([`Pow2Commodity`]) every transmitted value is a
//! power of two, giving `O(log |E|)` bits per edge and `O(|E| log |E|) + |E||m|`
//! total communication; the naive rule ([`crate::ExactCommodity`]) is kept as the
//! ablation baseline.

use std::marker::PhantomData;

use anet_graph::Network;
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext, Wire};

use crate::outcome::BroadcastReport;
use crate::CoreError;
pub use crate::{Payload, Pow2Commodity, ScalarCommodity};

/// A message of the grounded-tree protocol: the payload plus a commodity share.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeMessage<C> {
    /// The broadcast payload `m`.
    pub payload: Payload,
    /// The termination-information share carried by this edge.
    pub value: C,
}

impl<C: ScalarCommodity> Wire for TreeMessage<C> {
    fn wire_bits(&self) -> u64 {
        self.payload.wire_bits() + self.value.wire_bits()
    }
}

/// Per-vertex state of the grounded-tree protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeState<C> {
    /// Whether the payload has been received.
    pub received: bool,
    /// Whether this vertex already forwarded (internal vertices act exactly once on
    /// a grounded tree).
    pub forwarded: bool,
    /// Sum of commodity values received; only meaningful at vertices with
    /// out-degree zero (they have nowhere to forward), in particular the terminal.
    pub accumulated: C,
}

/// The grounded-tree broadcast protocol, parameterised by the splitting rule.
#[derive(Debug, Clone)]
pub struct TreeBroadcast<C> {
    payload: Payload,
    _rule: PhantomData<C>,
}

impl<C: ScalarCommodity> TreeBroadcast<C> {
    /// Creates the protocol for broadcasting `payload`.
    pub fn new(payload: Payload) -> Self {
        TreeBroadcast {
            payload,
            _rule: PhantomData,
        }
    }

    /// The payload being broadcast.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }
}

impl<C: ScalarCommodity> AnonymousProtocol for TreeBroadcast<C> {
    type State = TreeState<C>;
    type Message = TreeMessage<C>;

    fn name(&self) -> &'static str {
        "tree-broadcast"
    }

    fn initial_state(&self, _ctx: &NodeContext) -> TreeState<C> {
        TreeState {
            received: false,
            forwarded: false,
            accumulated: C::zero(),
        }
    }

    fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, TreeMessage<C>)> {
        vec![(
            0,
            TreeMessage {
                payload: self.payload.clone(),
                value: C::unit(),
            },
        )]
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut TreeState<C>,
        _in_port: usize,
        message: &TreeMessage<C>,
    ) -> Vec<(usize, TreeMessage<C>)> {
        state.received = true;
        if ctx.out_degree == 0 {
            // Nowhere to forward: accumulate (this is the terminal's S input, or a
            // dead-end vertex whose commodity is correctly lost).
            state.accumulated = state.accumulated.add(&message.value);
            return Vec::new();
        }
        if state.forwarded {
            // On a grounded tree each internal vertex hears exactly one message; a
            // second one means the input was not a grounded tree. The protocol's
            // guarantees are void there, but it still never *mis-terminates*: the
            // extra commodity is dropped, so the terminal can only under-count.
            return Vec::new();
        }
        state.forwarded = true;
        let shares = message.value.split(ctx.out_degree);
        shares
            .into_iter()
            .enumerate()
            .map(|(port, value)| {
                (
                    port,
                    TreeMessage {
                        payload: message.payload.clone(),
                        value,
                    },
                )
            })
            .collect()
    }

    fn should_terminate(&self, terminal_state: &TreeState<C>) -> bool {
        terminal_state.accumulated.is_unit()
    }
}

/// Runs the grounded-tree broadcast on `network` under `scheduler` and reports the
/// outcome.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out
/// (which cannot happen for this protocol on finite inputs unless the budget is
/// made artificially tiny).
///
/// # Example
///
/// ```
/// use anet_core::tree_broadcast::{run_tree_broadcast, Pow2Commodity};
/// use anet_core::Payload;
/// use anet_graph::generators::chain_gn;
/// use anet_sim::scheduler::FifoScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let network = chain_gn(8)?;
/// let report = run_tree_broadcast::<Pow2Commodity>(
///     &network,
///     Payload::from_bytes(b"hello"),
///     &mut FifoScheduler::new(),
/// )?;
/// assert!(report.terminated && report.all_received);
/// # Ok(())
/// # }
/// ```
pub fn run_tree_broadcast<C: ScalarCommodity>(
    network: &Network,
    payload: Payload,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<BroadcastReport, CoreError> {
    run_tree_broadcast_with_config::<C>(network, payload, scheduler, ExecutionConfig::default())
}

/// [`run_tree_broadcast`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_tree_broadcast_with_config<C: ScalarCommodity>(
    network: &Network,
    payload: Payload,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<BroadcastReport, CoreError> {
    let protocol = TreeBroadcast::<C>::new(payload);
    let result = run(network, &protocol, scheduler, config);
    if result.outcome == anet_sim::Outcome::BudgetExhausted {
        return Err(CoreError::BudgetExhausted);
    }
    let received: Vec<bool> = network
        .graph()
        .nodes()
        .map(|n| n == network.root() || result.states[n.index()].received)
        .collect();
    Ok(BroadcastReport::from_run(
        result.outcome,
        result.deliveries_at_termination,
        result.metrics,
        &received,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactCommodity;
    use anet_graph::generators::{
        chain_gn, full_grounded_tree, path_network, random_grounded_tree, star_network,
        with_stranded_vertex,
    };
    use anet_sim::runner::run_under_battery;
    use anet_sim::scheduler::FifoScheduler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fifo() -> FifoScheduler {
        FifoScheduler::new()
    }

    #[test]
    fn terminates_on_chain_family() {
        for n in [1usize, 2, 5, 17, 64] {
            let net = chain_gn(n).unwrap();
            let report =
                run_tree_broadcast::<Pow2Commodity>(&net, Payload::from_bytes(b"m"), &mut fifo())
                    .unwrap();
            assert!(report.terminated, "n = {n}");
            assert!(report.all_received, "n = {n}");
            // One message per edge on a grounded tree.
            assert_eq!(report.metrics.messages_sent as usize, net.edge_count());
            assert!(report.metrics.per_edge_messages.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn terminates_on_assorted_grounded_trees() {
        let mut rng = StdRng::seed_from_u64(2024);
        let nets = vec![
            path_network(12).unwrap(),
            star_network(9).unwrap(),
            full_grounded_tree(3, 3).unwrap(),
            random_grounded_tree(&mut rng, 40, 4, 0.4).unwrap(),
        ];
        for net in nets {
            for payload in [Payload::empty(), Payload::synthetic(256)] {
                let report =
                    run_tree_broadcast::<Pow2Commodity>(&net, payload, &mut fifo()).unwrap();
                assert!(report.terminated);
                assert!(report.all_received);
            }
        }
    }

    #[test]
    fn naive_rule_also_terminates_but_costs_more_bits() {
        let net = full_grounded_tree(4, 3).unwrap();
        let pow2 =
            run_tree_broadcast::<Pow2Commodity>(&net, Payload::empty(), &mut fifo()).unwrap();
        let naive =
            run_tree_broadcast::<ExactCommodity>(&net, Payload::empty(), &mut fifo()).unwrap();
        assert!(pow2.terminated && naive.terminated);
        assert!(pow2.all_received && naive.all_received);
        assert!(
            naive.total_bits() > pow2.total_bits(),
            "naive {} vs pow2 {}",
            naive.total_bits(),
            pow2.total_bits()
        );
    }

    #[test]
    fn refuses_to_terminate_with_stranded_vertex() {
        let base = chain_gn(6).unwrap();
        let net = with_stranded_vertex(&base).unwrap();
        let report =
            run_tree_broadcast::<Pow2Commodity>(&net, Payload::from_bytes(b"x"), &mut fifo())
                .unwrap();
        assert!(!report.terminated);
        assert!(report.quiescent);
    }

    #[test]
    fn correct_under_every_scheduler() {
        let net = chain_gn(10).unwrap();
        let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::from_bytes(b"msg"));
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 99, 4) {
            assert!(
                named.result.outcome.terminated(),
                "scheduler {}",
                named.scheduler
            );
            for node in net.internal_nodes() {
                assert!(named.result.states[node.index()].received);
            }
        }
    }

    #[test]
    fn termination_never_happens_before_every_vertex_received() {
        // Run with the terminal-first adversary, which tries to make the terminal
        // accept as early as possible; acceptance must still only happen after all
        // internal vertices were reached.
        let net = full_grounded_tree(3, 2).unwrap();
        let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::empty());
        let mut sched = anet_sim::scheduler::TerminalFirstScheduler::new();
        let result = run(&net, &protocol, &mut sched, ExecutionConfig::default());
        assert!(result.outcome.terminated());
        for node in net.internal_nodes() {
            assert!(result.states[node.index()].received);
        }
    }

    #[test]
    fn commodity_is_conserved_at_the_terminal() {
        let net = star_network(13).unwrap();
        let protocol = TreeBroadcast::<Pow2Commodity>::new(Payload::empty());
        let result = run(&net, &protocol, &mut fifo(), ExecutionConfig::default());
        let terminal = &result.states[net.terminal().index()];
        assert!(terminal.accumulated.is_unit());
    }

    #[test]
    fn payload_size_shows_up_in_total_bits() {
        let net = chain_gn(16).unwrap();
        let small =
            run_tree_broadcast::<Pow2Commodity>(&net, Payload::empty(), &mut fifo()).unwrap();
        let big = run_tree_broadcast::<Pow2Commodity>(&net, Payload::synthetic(4096), &mut fifo())
            .unwrap();
        // Each of the 2n edges carries the payload once: the difference must be at
        // least |E| * |m|.
        assert!(big.total_bits() >= small.total_bits() + 32 * 4096);
    }

    #[test]
    fn budget_exhaustion_maps_to_error() {
        let net = chain_gn(8).unwrap();
        let config = ExecutionConfig {
            max_deliveries: 2,
            record_trace: false,
        };
        let err = run_tree_broadcast_with_config::<Pow2Commodity>(
            &net,
            Payload::empty(),
            &mut fifo(),
            config,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::BudgetExhausted);
    }
}
