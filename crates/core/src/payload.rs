//! The broadcast payload `m`.

use anet_num::bits;
use anet_sim::Wire;

/// The message `m` being broadcast.
///
/// Only its size matters for the complexity accounting (`|m|` in every bound), but
/// carrying real bytes keeps the examples honest: the report can verify that every
/// vertex ended up holding the same payload the root injected.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Payload {
    data: Vec<u8>,
}

impl Payload {
    /// An empty payload (`|m| = 0`), used when only termination detection matters.
    pub fn empty() -> Self {
        Payload { data: Vec::new() }
    }

    /// Builds a payload from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Payload {
            data: bytes.to_vec(),
        }
    }

    /// Builds a synthetic payload of exactly `bits` bits (rounded up to whole
    /// bytes), used by the benchmark sweeps over `|m|`.
    pub fn synthetic(bits: u64) -> Self {
        let bytes = usize::try_from(bits.div_ceil(8)).expect("payload size fits in memory");
        Payload {
            data: vec![0xA5; bytes],
        }
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// `|m|` in bits.
    pub fn len_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Returns `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Wire for Payload {
    fn wire_bits(&self) -> u64 {
        bits::length_prefixed_bits(self.len_bits())
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload::from_bytes(bytes)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(data: Vec<u8>) -> Self {
        Payload { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_size() {
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::empty().len_bits(), 0);
        let p = Payload::from_bytes(b"abc");
        assert_eq!(p.len_bits(), 24);
        assert_eq!(p.as_bytes(), b"abc");
        assert_eq!(Payload::default(), Payload::empty());
    }

    #[test]
    fn synthetic_rounds_up_to_bytes() {
        assert_eq!(Payload::synthetic(0).len_bits(), 0);
        assert_eq!(Payload::synthetic(1).len_bits(), 8);
        assert_eq!(Payload::synthetic(64).len_bits(), 64);
        assert_eq!(Payload::synthetic(65).len_bits(), 72);
    }

    #[test]
    fn wire_size_includes_length_prefix() {
        let p = Payload::synthetic(64);
        assert!(p.wire_bits() > 64);
        assert!(p.wire_bits() < 64 + 32);
        assert!(Payload::empty().wire_bits() >= 1);
    }

    #[test]
    fn conversions() {
        let p: Payload = b"xy".as_slice().into();
        assert_eq!(p.len_bits(), 16);
        let q: Payload = vec![1, 2, 3].into();
        assert_eq!(q.len_bits(), 24);
    }
}
