//! The retained deep-clone general-broadcast implementation.
//!
//! This is the Section 4 protocol exactly as it behaved before the
//! copy-on-write endpoint-array `IntervalUnion`: every set operation funnels
//! through the collect-sort-merge references in [`anet_num::reference`], and
//! every per-out-port message carries a **deep clone** of its α/β components
//! ([`IntervalUnion::deep_clone`]) — the owned-value economy in which
//! flooding β-evidence on `d` edges copies its endpoints `d` times. It is
//! kept — mirroring [`crate::mapping::reference`], [`crate::labeling::reference`],
//! `anet_num::reference` and `anet_sim::reference` — as the specification the
//! copy-on-write implementation in [the parent module](super) must match
//! bit-for-bit: the `general_broadcast_differential` suite runs both across
//! the scheduler battery and asserts identical traces, metrics and wire-bit
//! totals, and `BENCH_labeling.json` pins the speedup. Do not use it on hot
//! paths.

use anet_graph::Network;
use anet_num::partition::canonical_partition_nonempty;
use anet_num::{reference as num_reference, IntervalUnion};
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext};

use super::{GeneralMessage, GeneralState};
use crate::outcome::BroadcastReport;
use crate::{general_broadcast, CoreError, Payload};

/// The reference general-graph broadcast protocol (same state and message
/// types as [`general_broadcast::GeneralBroadcast`], deep-clone plumbing and
/// reference set algebra inside).
#[derive(Debug, Clone)]
pub struct GeneralBroadcast {
    payload: Payload,
}

impl GeneralBroadcast {
    /// Creates the protocol for broadcasting `payload`.
    pub fn new(payload: Payload) -> Self {
        GeneralBroadcast { payload }
    }
}

impl AnonymousProtocol for GeneralBroadcast {
    type State = GeneralState;
    type Message = GeneralMessage;

    fn name(&self) -> &'static str {
        "general-broadcast-reference"
    }

    fn initial_state(&self, ctx: &NodeContext) -> GeneralState {
        general_broadcast::GeneralBroadcast::new(self.payload.clone()).initial_state(ctx)
    }

    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, GeneralMessage)> {
        general_broadcast::GeneralBroadcast::new(self.payload.clone())
            .root_messages(root_out_degree)
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut GeneralState,
        _in_port: usize,
        message: &GeneralMessage,
    ) -> Vec<(usize, GeneralMessage)> {
        state.received = true;
        state.seen = num_reference::union(&state.seen, &message.alpha);
        state.seen = num_reference::union(&state.seen, &message.beta);
        let d = ctx.out_degree;
        if d == 0 {
            state.beta = num_reference::union(&state.beta, &message.beta);
            return Vec::new();
        }

        let mut out = Vec::new();
        if !state.partitioned && !message.alpha.is_empty() {
            // First interval mass: one-time canonical partition among the out-ports.
            state.partitioned = true;
            let parts = canonical_partition_nonempty(&message.alpha, d)
                .expect("out-degree is positive, so the partition is well-defined");
            let beta_delta = num_reference::difference(&message.beta, &state.beta);
            state.beta = num_reference::union(&state.beta, &beta_delta);
            for (j, part) in parts.into_iter().enumerate() {
                debug_assert!(state.alpha[j].is_empty());
                if !part.is_empty() || !beta_delta.is_empty() {
                    out.push((
                        j,
                        GeneralMessage {
                            alpha: part.deep_clone(),
                            beta: beta_delta.deep_clone(),
                            payload: self.payload.clone(),
                        },
                    ));
                }
                state.alpha[j] = part;
            }
        } else {
            // Subsequent mass: anything already seen on some out-port is cycle
            // evidence (β); genuinely new mass is routed to the last out-port.
            let mut overlap = IntervalUnion::empty();
            for routed in &state.alpha {
                overlap = num_reference::union(
                    &overlap,
                    &num_reference::intersection(&message.alpha, routed),
                );
            }
            let mut fresh = message.alpha.deep_clone();
            for routed in &state.alpha {
                fresh = num_reference::difference(&fresh, routed);
            }
            let beta_delta = num_reference::difference(
                &num_reference::union(&message.beta, &overlap),
                &state.beta,
            );
            state.beta = num_reference::union(&state.beta, &beta_delta);
            state.alpha[d - 1] = num_reference::union(&state.alpha[d - 1], &fresh);
            if !beta_delta.is_empty() {
                for j in 0..d - 1 {
                    out.push((
                        j,
                        GeneralMessage {
                            alpha: IntervalUnion::empty(),
                            beta: beta_delta.deep_clone(),
                            payload: self.payload.clone(),
                        },
                    ));
                }
            }
            if !fresh.is_empty() || !beta_delta.is_empty() {
                out.push((
                    d - 1,
                    GeneralMessage {
                        alpha: fresh,
                        beta: beta_delta,
                        payload: self.payload.clone(),
                    },
                ));
            }
        }
        out
    }

    fn should_terminate(&self, terminal_state: &GeneralState) -> bool {
        terminal_state.seen.is_unit()
    }
}

/// Runs the reference general-graph broadcast and reports the outcome.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out.
pub fn run_general_broadcast(
    network: &Network,
    payload: Payload,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<BroadcastReport, CoreError> {
    run_general_broadcast_with_config(network, payload, scheduler, ExecutionConfig::default())
}

/// [`run_general_broadcast`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_general_broadcast_with_config(
    network: &Network,
    payload: Payload,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<BroadcastReport, CoreError> {
    let protocol = GeneralBroadcast::new(payload);
    let result = run(network, &protocol, scheduler, config);
    if result.outcome == anet_sim::Outcome::BudgetExhausted {
        return Err(CoreError::BudgetExhausted);
    }
    let received: Vec<bool> = network
        .graph()
        .nodes()
        .map(|n| n == network.root() || result.states[n.index()].received)
        .collect();
    Ok(BroadcastReport::from_run(
        result.outcome,
        result.deliveries_at_termination,
        result.metrics,
        &received,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators::{cycle_with_tail, nested_cycles};
    use anet_sim::scheduler::FifoScheduler;

    #[test]
    fn reference_broadcast_terminates_and_matches_the_fast_path() {
        for net in [cycle_with_tail(6).unwrap(), nested_cycles(2, 4).unwrap()] {
            let a =
                run_general_broadcast(&net, Payload::from_bytes(b"r"), &mut FifoScheduler::new())
                    .unwrap();
            let b = general_broadcast::run_general_broadcast(
                &net,
                Payload::from_bytes(b"r"),
                &mut FifoScheduler::new(),
            )
            .unwrap();
            assert!(a.terminated && a.all_received);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.deliveries_at_termination, b.deliveries_at_termination);
        }
    }
}
