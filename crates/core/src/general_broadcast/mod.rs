//! Broadcasting over general directed graphs (Section 4, Theorems 4.2 and 4.3).
//!
//! The commodity is no longer a scalar but an element of `U[0, 1)`: a finite union
//! of disjoint intervals. The root injects `[0, 1)`; each vertex, on its first
//! receipt of interval mass, performs the *canonical partition* of that mass among
//! its out-edges and from then on routes newly arriving mass to its last out-edge.
//! Mass that a vertex has *already seen* is evidence of a cycle and is moved to the
//! β component, which is flooded onwards; the terminal accepts once the union of
//! everything it has received equals `[0, 1)`.
//!
//! ## Faithfulness notes
//!
//! Two corners of the paper's description are tightened here (both are required by
//! the paper's own correctness proof; see DESIGN.md):
//!
//! 1. The canonical partition is triggered on the first message with **non-empty
//!    α**, not merely the first message — a vertex may hear cycle evidence (β)
//!    before any interval mass, and partitioning the empty union would waste its
//!    single partitioning step. The regression test
//!    `beta_first_schedule_still_terminates` exercises exactly that order.
//! 2. The canonical partition used is the **non-starving** variant
//!    ([`canonical_partition_nonempty`]): when the arriving mass is a single
//!    interval, it is split into `d` non-empty pieces instead of `d − 1` pieces
//!    plus an empty remainder. The literal rule can leave an out-edge with no α
//!    forever, which would let the terminal accept while the subtree behind that
//!    edge never hears the broadcast — contradicting Theorem 4.2, whose proof
//!    assumes a value is α-carried on every edge out of a visited vertex.
//!
//! Message plumbing rides the copy-on-write [`IntervalUnion`]: the α/β
//! components cloned into each out-port's message (and into trace events) are
//! O(1) shared handles of one endpoint buffer, not per-port copies, while
//! [`Wire::wire_bits`] still charges the encoded intervals on every edge. The
//! pre-CoW deep-clone implementation is retained in [`mod@reference`] and pinned
//! bit-identical by the `general_broadcast_differential` suite.

use anet_graph::Network;
use anet_num::partition::canonical_partition_nonempty;
use anet_num::IntervalUnion;
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::Scheduler;
use anet_sim::{AnonymousProtocol, NodeContext, RefloodProtocol, Wire};

use crate::outcome::BroadcastReport;
use crate::{CoreError, Payload};

pub mod reference;

/// A message of the general-graph protocol: the α and β increments plus the
/// payload (the paper sends `m` with every message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralMessage {
    /// Newly forwarded interval mass.
    pub alpha: IntervalUnion,
    /// Newly discovered cycle evidence.
    pub beta: IntervalUnion,
    /// The broadcast payload `m`.
    pub payload: Payload,
}

impl Wire for GeneralMessage {
    fn wire_bits(&self) -> u64 {
        self.alpha.wire_bits() + self.beta.wire_bits() + self.payload.wire_bits()
    }
}

/// Per-vertex state of the general-graph protocol: `π = ((α_j)_{j=1..d}, β)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralState {
    /// `α_j`: the interval mass already routed to out-port `j`.
    pub alpha: Vec<IntervalUnion>,
    /// `β`: cycle evidence known to this vertex.
    pub beta: IntervalUnion,
    /// Whether the one-time canonical partition has been performed.
    pub partitioned: bool,
    /// Whether the payload has been received.
    pub received: bool,
    /// For vertices with out-degree zero (in particular the terminal): everything
    /// received so far. The stopping predicate is `seen == [0, 1)`.
    pub seen: IntervalUnion,
}

impl GeneralState {
    /// The union of all α components — the interval mass this vertex has routed.
    pub fn alpha_union(&self) -> IntervalUnion {
        let mut acc = IntervalUnion::empty();
        for a in &self.alpha {
            acc.union_in_place(a);
        }
        acc
    }

    /// The terminal's coverage: everything it has received (α and β alike).
    pub fn coverage(&self) -> &IntervalUnion {
        &self.seen
    }
}

/// The general-graph broadcast protocol.
#[derive(Debug, Clone)]
pub struct GeneralBroadcast {
    payload: Payload,
}

impl GeneralBroadcast {
    /// Creates the protocol for broadcasting `payload`.
    pub fn new(payload: Payload) -> Self {
        GeneralBroadcast { payload }
    }

    /// The payload being broadcast.
    pub fn payload(&self) -> &Payload {
        &self.payload
    }
}

impl AnonymousProtocol for GeneralBroadcast {
    type State = GeneralState;
    type Message = GeneralMessage;

    fn name(&self) -> &'static str {
        "general-broadcast"
    }

    fn initial_state(&self, ctx: &NodeContext) -> GeneralState {
        GeneralState {
            alpha: vec![IntervalUnion::empty(); ctx.out_degree],
            beta: IntervalUnion::empty(),
            partitioned: false,
            received: false,
            seen: IntervalUnion::empty(),
        }
    }

    fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, GeneralMessage)> {
        vec![(
            0,
            GeneralMessage {
                alpha: IntervalUnion::unit(),
                beta: IntervalUnion::empty(),
                payload: self.payload.clone(),
            },
        )]
    }

    fn on_receive_into(
        &self,
        ctx: &NodeContext,
        state: &mut GeneralState,
        _in_port: usize,
        message: &GeneralMessage,
        out: &mut Vec<(usize, GeneralMessage)>,
    ) {
        state.received = true;
        state.seen.union_in_place(&message.alpha);
        state.seen.union_in_place(&message.beta);
        let d = ctx.out_degree;
        if d == 0 {
            // Nowhere to forward; `seen` is the stopping-predicate input when this
            // vertex happens to be the terminal.
            state.beta.union_in_place(&message.beta);
            return;
        }

        // The α/β increments are computed *before* the state is updated, so no
        // snapshot of the (ever-growing) prior state is ever cloned: incoming
        // message components are small deltas, the in-place set ops merge
        // them into the state without intermediate allocations, and the
        // emitted batch lands in the engine's reused scratch buffer.
        if !state.partitioned && !message.alpha.is_empty() {
            // First interval mass: one-time canonical partition among the out-ports.
            state.partitioned = true;
            let parts = canonical_partition_nonempty(&message.alpha, d)
                .expect("out-degree is positive, so the partition is well-defined");
            let mut beta_delta = message.beta.clone();
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            for (j, part) in parts.into_iter().enumerate() {
                // β-only traffic never touches α, so each α_j is still empty
                // here and the partition piece *is* the port's α increment.
                debug_assert!(state.alpha[j].is_empty());
                if !part.is_empty() || !beta_delta.is_empty() {
                    out.push((
                        j,
                        GeneralMessage {
                            alpha: part.clone(),
                            beta: beta_delta.clone(),
                            payload: self.payload.clone(),
                        },
                    ));
                }
                state.alpha[j] = part;
            }
        } else {
            // Subsequent mass: anything already seen on some out-port is cycle
            // evidence (β); genuinely new mass is routed to the last out-port.
            let mut overlap = IntervalUnion::empty();
            for routed in &state.alpha {
                overlap.union_in_place(&message.alpha.intersection(routed));
            }
            let mut fresh = message.alpha.clone();
            for routed in &state.alpha[..d - 1] {
                fresh.subtract_assign(routed);
            }
            // What the last port has already routed is not an increment either.
            fresh.subtract_assign(&state.alpha[d - 1]);
            let mut beta_delta = message.beta.union(&overlap);
            beta_delta.subtract_assign(&state.beta);
            state.beta.union_in_place(&beta_delta);
            state.alpha[d - 1].union_in_place(&fresh);
            // g: on port j send the α_j increment and the β increment; send
            // nothing on ports where neither changed. Only the last port can
            // carry an α increment outside the partition step.
            if !beta_delta.is_empty() {
                for j in 0..d - 1 {
                    out.push((
                        j,
                        GeneralMessage {
                            alpha: IntervalUnion::empty(),
                            beta: beta_delta.clone(),
                            payload: self.payload.clone(),
                        },
                    ));
                }
            }
            if !fresh.is_empty() || !beta_delta.is_empty() {
                out.push((
                    d - 1,
                    GeneralMessage {
                        alpha: fresh,
                        beta: beta_delta,
                        payload: self.payload.clone(),
                    },
                ));
            }
        }
    }

    fn should_terminate(&self, terminal_state: &GeneralState) -> bool {
        terminal_state.seen.is_unit()
    }
}

impl RefloodProtocol for GeneralBroadcast {
    /// Re-sends the broadcast frontier: on every out-port `j`, the interval set
    /// already routed there (`alpha[j]`), the node's cycle-echo set (`beta`),
    /// and a fresh copy of the payload (the protocol value owns it, so a
    /// neighbour whose only payload-carrying delivery was destroyed still
    /// receives the data on retry).
    fn reflood(&self, ctx: &NodeContext, state: &GeneralState) -> Vec<(usize, GeneralMessage)> {
        let mut out = Vec::new();
        for j in 0..ctx.out_degree {
            let alpha = state.alpha[j].clone();
            let beta = state.beta.clone();
            if !alpha.is_empty() || !beta.is_empty() {
                out.push((
                    j,
                    GeneralMessage {
                        alpha,
                        beta,
                        payload: self.payload.clone(),
                    },
                ));
            }
        }
        out
    }
}

/// Runs the general-graph broadcast and reports the outcome.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the engine's delivery budget ran out.
///
/// # Example
///
/// ```
/// use anet_core::general_broadcast::run_general_broadcast;
/// use anet_core::Payload;
/// use anet_graph::generators::cycle_with_tail;
/// use anet_sim::scheduler::FifoScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A directed cycle: scalar-commodity protocols would never terminate here,
/// // but the interval protocol detects the cycle through β-carrying.
/// let network = cycle_with_tail(6)?;
/// let report = run_general_broadcast(
///     &network,
///     Payload::from_bytes(b"loop"),
///     &mut FifoScheduler::new(),
/// )?;
/// assert!(report.terminated && report.all_received);
/// # Ok(())
/// # }
/// ```
pub fn run_general_broadcast(
    network: &Network,
    payload: Payload,
    scheduler: &mut (impl Scheduler + ?Sized),
) -> Result<BroadcastReport, CoreError> {
    run_general_broadcast_with_config(network, payload, scheduler, ExecutionConfig::default())
}

/// [`run_general_broadcast`] with an explicit engine configuration.
///
/// # Errors
///
/// Returns [`CoreError::BudgetExhausted`] if the delivery budget ran out.
pub fn run_general_broadcast_with_config(
    network: &Network,
    payload: Payload,
    scheduler: &mut (impl Scheduler + ?Sized),
    config: ExecutionConfig,
) -> Result<BroadcastReport, CoreError> {
    let protocol = GeneralBroadcast::new(payload);
    let result = run(network, &protocol, scheduler, config);
    if result.outcome == anet_sim::Outcome::BudgetExhausted {
        return Err(CoreError::BudgetExhausted);
    }
    let received: Vec<bool> = network
        .graph()
        .nodes()
        .map(|n| n == network.root() || result.states[n.index()].received)
        .collect();
    Ok(BroadcastReport::from_run(
        result.outcome,
        result.deliveries_at_termination,
        result.metrics,
        &received,
    ))
}

/// Applies a [`StateCorruption`](crate::corruption::StateCorruption) to
/// freshly initialised broadcast states (the [`anet_sim::run_corrupted`]
/// hook).
///
/// * `ScrambledLabels` — internal vertices wake up `partitioned` with a
///   garbage routing entry on their last out-port: arriving mass that
///   overlaps the squatted slot is misread as cycle evidence and flooded as
///   β instead of routed as α. β still floods everywhere, so well-connected
///   graphs usually recover; sparse ones may accept with silent vertices.
/// * `LostPartition` — internal vertices keep the `partitioned` flag but
///   lost the α table behind it: the canonical split never re-runs and all
///   mass funnels down each vertex's last out-port.
/// * `StaleTerminal` — the terminal's `seen` starts pre-filled with
///   `[0, 1/2)`, so the stopping predicate can accept while half the
///   commodity is still in flight.
///
/// `received` (the payload flag) is deliberately left `false`: it is the
/// input to [`general_recovered`], and pre-setting it would make the
/// recovery question vacuous.
pub fn corrupt_general_states(
    corruption: &crate::corruption::StateCorruption,
    network: &Network,
    states: &mut [GeneralState],
) {
    use crate::corruption::StateCorruption;
    let internal: Vec<usize> = network
        .graph()
        .nodes()
        .filter(|&n| n != network.root() && n != network.terminal())
        .map(|n| n.index())
        .collect();
    match corruption {
        StateCorruption::ScrambledLabels { seed } => {
            let garbage = crate::corruption::scrambled_labels(internal.len(), *seed);
            for (&i, slot) in internal.iter().zip(garbage) {
                states[i].partitioned = true;
                if let Some(last) = states[i].alpha.last_mut() {
                    *last = slot;
                }
            }
        }
        StateCorruption::LostPartition => {
            for &i in &internal {
                states[i].partitioned = true;
            }
        }
        StateCorruption::StaleTerminal => {
            let terminal = network.terminal().index();
            states[terminal]
                .seen
                .union_in_place(&crate::corruption::stale_half());
        }
    }
}

/// The broadcast's recovery predicate: every vertex except the root actually
/// received the payload. Corrupted-start runs ask it of a protocol that began
/// from damaged state.
pub fn general_recovered(network: &Network, states: &[GeneralState]) -> bool {
    network
        .graph()
        .nodes()
        .filter(|&n| n != network.root())
        .all(|n| states[n.index()].received)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators::{
        chain_gn, complete_dag, cycle_with_tail, diamond_stack, nested_cycles, random_cyclic,
        random_dag, with_stranded_vertex,
    };
    use anet_graph::{classify, DiGraph, Network};
    use anet_sim::runner::run_under_battery;
    use anet_sim::scheduler::{FifoScheduler, LifoScheduler, TerminalLastScheduler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fifo() -> FifoScheduler {
        FifoScheduler::new()
    }

    #[test]
    fn terminates_on_acyclic_families() {
        let mut rng = StdRng::seed_from_u64(31);
        let nets = vec![
            chain_gn(8).unwrap(),
            diamond_stack(5).unwrap(),
            random_dag(&mut rng, 25, 0.15).unwrap(),
            complete_dag(7).unwrap(),
        ];
        for net in &nets {
            let report =
                run_general_broadcast(net, Payload::from_bytes(b"g"), &mut fifo()).unwrap();
            assert!(report.terminated);
            assert!(report.all_received);
        }
    }

    #[test]
    fn terminates_on_cyclic_families() {
        let mut rng = StdRng::seed_from_u64(77);
        let nets = vec![
            cycle_with_tail(2).unwrap(),
            cycle_with_tail(9).unwrap(),
            nested_cycles(3, 4).unwrap(),
            random_cyclic(&mut rng, 20, 0.1, 0.15).unwrap(),
            random_cyclic(&mut rng, 35, 0.2, 0.3).unwrap(),
        ];
        for net in &nets {
            assert!(!classify::is_dag(net.graph()) || net.node_count() < 4);
            let report =
                run_general_broadcast(net, Payload::from_bytes(b"c"), &mut fifo()).unwrap();
            assert!(report.terminated, "nodes = {}", net.node_count());
            assert!(report.all_received, "nodes = {}", net.node_count());
        }
    }

    #[test]
    fn refuses_to_terminate_with_stranded_vertex() {
        for base in [cycle_with_tail(5).unwrap(), diamond_stack(3).unwrap()] {
            let net = with_stranded_vertex(&base).unwrap();
            let report = run_general_broadcast(&net, Payload::empty(), &mut fifo()).unwrap();
            assert!(!report.terminated);
            assert!(report.quiescent);
        }
    }

    #[test]
    fn correct_under_every_scheduler_on_cyclic_graphs() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = random_cyclic(&mut rng, 18, 0.15, 0.25).unwrap();
        let protocol = GeneralBroadcast::new(Payload::from_bytes(b"s"));
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 5, 5) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
            for node in net.internal_nodes() {
                assert!(
                    named.result.states[node.index()].received,
                    "sched {} node {node:?}",
                    named.scheduler
                );
            }
        }
    }

    #[test]
    fn termination_only_after_every_vertex_received() {
        // The terminal-last adversary maximises progress elsewhere before the
        // terminal acts, and the LIFO adversary aggressively reorders; in all cases
        // acceptance implies full coverage of the internal vertices.
        let net = nested_cycles(2, 5).unwrap();
        for mode in 0..2 {
            let protocol = GeneralBroadcast::new(Payload::empty());
            let result = if mode == 0 {
                run(
                    &net,
                    &protocol,
                    &mut TerminalLastScheduler::new(),
                    ExecutionConfig::default(),
                )
            } else {
                run(
                    &net,
                    &protocol,
                    &mut LifoScheduler::new(),
                    ExecutionConfig::default(),
                )
            };
            assert!(result.outcome.terminated());
            for node in net.internal_nodes() {
                assert!(result.states[node.index()].received);
            }
        }
    }

    #[test]
    fn alpha_components_stay_pairwise_disjoint() {
        let net = nested_cycles(2, 4).unwrap();
        let protocol = GeneralBroadcast::new(Payload::empty());
        let result = run(&net, &protocol, &mut fifo(), ExecutionConfig::default());
        for node in net.graph().nodes() {
            let st = &result.states[node.index()];
            for i in 0..st.alpha.len() {
                for j in i + 1..st.alpha.len() {
                    assert!(
                        !st.alpha[i].intersects(&st.alpha[j]),
                        "alpha components of {node:?} overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn terminal_coverage_equals_unit_interval_exactly_at_termination() {
        let net = cycle_with_tail(7).unwrap();
        let protocol = GeneralBroadcast::new(Payload::empty());
        let result = run(&net, &protocol, &mut fifo(), ExecutionConfig::default());
        assert!(result.outcome.terminated());
        assert!(result.states[net.terminal().index()].coverage().is_unit());
    }

    #[test]
    fn beta_first_schedule_still_terminates() {
        // Build a graph where a vertex v can hear cycle evidence (β-only message)
        // before it ever receives interval mass: a 2-cycle {a, b} feeding v, with v
        // also fed directly from the cycle entry.
        //
        //   s -> a -> b -> a (cycle),  b -> v,  a -> v? no: keep it so that the
        //   β produced inside the cycle can reach v on one edge while the α mass
        //   reaches it on another, and adversarial scheduling delivers β first.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let v = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, a); // cycle a <-> b
        g.add_edge(b, v);
        g.add_edge(a, v);
        g.add_edge(v, t);
        let net = Network::new(g, s, t).unwrap();
        let protocol = GeneralBroadcast::new(Payload::from_bytes(b"z"));
        for named in run_under_battery(&net, &protocol, ExecutionConfig::default(), 41, 6) {
            assert!(
                named.result.outcome.terminated(),
                "sched {}",
                named.scheduler
            );
            assert!(named.result.states[v.index()].received);
        }
    }

    #[test]
    fn message_count_is_polynomial_not_exponential() {
        // Loose sanity bound corresponding to Theorem 4.2's counting argument:
        // the number of messages on any edge is at most the number of maximal
        // intervals ever created, which is O(|E|).
        let net = nested_cycles(3, 5).unwrap();
        let protocol = GeneralBroadcast::new(Payload::empty());
        let result = run(&net, &protocol, &mut fifo(), ExecutionConfig::default());
        assert!(result.outcome.terminated());
        let e = net.edge_count() as u64;
        assert!(result.metrics.max_edge_messages() <= 2 * e);
        assert!(result.metrics.messages_sent <= 2 * e * e);
    }

    #[test]
    fn budget_exhaustion_maps_to_error() {
        let net = cycle_with_tail(4).unwrap();
        let config = ExecutionConfig {
            max_deliveries: 1,
            record_trace: false,
        };
        let err = run_general_broadcast_with_config(&net, Payload::empty(), &mut fifo(), config)
            .unwrap_err();
        assert_eq!(err, CoreError::BudgetExhausted);
    }
}
