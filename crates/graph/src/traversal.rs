//! Breadth-first and depth-first traversal utilities.

use std::collections::VecDeque;

use crate::{DiGraph, NodeId};

/// Returns the set of vertices reachable from `start` (including `start`), as a
/// boolean vector indexed by [`NodeId::index`].
pub fn reachable_from(graph: &DiGraph, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; graph.node_count()];
    if start.index() >= graph.node_count() {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for succ in graph.successors(n) {
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                queue.push_back(succ);
            }
        }
    }
    seen
}

/// Returns the set of vertices from which `target` is reachable (including
/// `target` itself) — the paper's "connected to `t`" predicate.
pub fn coreachable_to(graph: &DiGraph, target: NodeId) -> Vec<bool> {
    reachable_from(&graph.reversed(), target)
}

/// BFS distances (edge counts) from `start`; `None` for unreachable vertices.
pub fn bfs_distances(graph: &DiGraph, start: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        let d = dist[n.index()].expect("popped nodes have distances");
        for succ in graph.successors(n) {
            if dist[succ.index()].is_none() {
                dist[succ.index()] = Some(d + 1);
                queue.push_back(succ);
            }
        }
    }
    dist
}

/// Vertices in BFS order from `start` (only reachable ones).
pub fn bfs_order(graph: &DiGraph, start: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for succ in graph.successors(n) {
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                queue.push_back(succ);
            }
        }
    }
    order
}

/// Vertices in depth-first postorder from `start` (only reachable ones).
pub fn dfs_postorder(graph: &DiGraph, start: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = vec![false; graph.node_count()];
    // Iterative DFS with an explicit "children pending" index per frame.
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    seen[start.index()] = true;
    stack.push((start, 0));
    while let Some(&mut (node, ref mut next_child)) = stack.last_mut() {
        let out = graph.out_edges(node);
        if *next_child < out.len() {
            let child = graph.edge_dst(out[*next_child]);
            *next_child += 1;
            if !seen[child.index()] {
                seen[child.index()] = true;
                stack.push((child, 0));
            }
        } else {
            order.push(node);
            stack.pop();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// s -> a -> b -> t, plus a -> t; c is disconnected.
    fn sample() -> (DiGraph, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let nodes = g.add_nodes(5); // s, a, b, t, c
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[1], nodes[2]);
        g.add_edge(nodes[2], nodes[3]);
        g.add_edge(nodes[1], nodes[3]);
        (g, nodes)
    }

    #[test]
    fn reachability_from_root() {
        let (g, n) = sample();
        let r = reachable_from(&g, n[0]);
        assert_eq!(r, vec![true, true, true, true, false]);
    }

    #[test]
    fn coreachability_to_terminal() {
        let (g, n) = sample();
        let c = coreachable_to(&g, n[3]);
        assert_eq!(c, vec![true, true, true, true, false]);
        let c_from_b = coreachable_to(&g, n[2]);
        assert_eq!(c_from_b, vec![true, true, true, false, false]);
    }

    #[test]
    fn bfs_distances_count_edges() {
        let (g, n) = sample();
        let d = bfs_distances(&g, n[0]);
        assert_eq!(d[n[0].index()], Some(0));
        assert_eq!(d[n[1].index()], Some(1));
        assert_eq!(d[n[2].index()], Some(2));
        assert_eq!(d[n[3].index()], Some(2)); // via the shortcut a -> t
        assert_eq!(d[n[4].index()], None);
    }

    #[test]
    fn bfs_order_starts_at_start_and_visits_reachable_once() {
        let (g, n) = sample();
        let order = bfs_order(&g, n[0]);
        assert_eq!(order[0], n[0]);
        assert_eq!(order.len(), 4);
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn dfs_postorder_puts_parents_after_children() {
        let (g, n) = sample();
        let order = dfs_postorder(&g, n[0]);
        let pos = |x: NodeId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(n[0]) > pos(n[1]));
        assert!(pos(n[1]) > pos(n[2]));
        assert!(pos(n[2]) > pos(n[3]));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn traversal_handles_cycles() {
        let mut g = DiGraph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[0]);
        assert_eq!(reachable_from(&g, n[0]), vec![true, true, true]);
        assert_eq!(bfs_order(&g, n[1]).len(), 3);
        assert_eq!(dfs_postorder(&g, n[2]).len(), 3);
    }
}
