//! Grounded-tree generators (Section 3.1 and Figure 6a).

use rand::Rng;

use crate::{DiGraph, Network, NetworkError};

/// Builds a star: `s → hub`, `hub → leaf_i`, `leaf_i → t` for `i = 1..=leaves`.
///
/// The hub's out-degree equals `leaves`, exercising the power-of-two split rule at
/// a single vertex of large degree.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `leaves == 0`.
pub fn star_network(leaves: usize) -> Result<Network, NetworkError> {
    if leaves == 0 {
        return Err(NetworkError::InvalidParameter(
            "star_network needs at least one leaf".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(leaves + 3);
    let s = g.add_node();
    let hub = g.add_node();
    let leaf_nodes = g.add_nodes(leaves);
    let t = g.add_node();
    g.add_edge(s, hub);
    for &leaf in &leaf_nodes {
        g.add_edge(hub, leaf);
        g.add_edge(leaf, t);
    }
    Network::new(g, s, t)
}

/// Builds the full `arity`-ary grounded tree of the stated `height` (Figure 6a):
/// a complete tree whose root is the child of `s`, edges directed away from the
/// root, and every leaf connected to `t`.
///
/// `height` counts edge levels below the tree root, so `height = 0` is a single
/// vertex attached to both `s` and `t`. The number of internal vertices is
/// `(arity^(height+1) - 1) / (arity - 1)` for `arity >= 2`.
///
/// Children are attached in a deterministic order: the edge to the first child is
/// always out-port 0, which the pruning construction ([`super::pruned_tree`])
/// relies on to replay the leftmost root-to-leaf path.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `arity < 2`.
pub fn full_grounded_tree(height: usize, arity: usize) -> Result<Network, NetworkError> {
    if arity < 2 {
        return Err(NetworkError::InvalidParameter(
            "full_grounded_tree needs arity >= 2".to_owned(),
        ));
    }
    let mut g = DiGraph::new();
    let s = g.add_node();
    let root = g.add_node();
    g.add_edge(s, root);
    let mut frontier = vec![root];
    let mut leaves = Vec::new();
    for level in 0..height {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for &parent in &frontier {
            for _ in 0..arity {
                let child = g.add_node();
                g.add_edge(parent, child);
                next.push(child);
            }
        }
        frontier = next;
        if level + 1 == height {
            leaves = frontier.clone();
        }
    }
    if height == 0 {
        leaves = frontier.clone();
    }
    let t = g.add_node();
    for &leaf in &leaves {
        g.add_edge(leaf, t);
    }
    Network::new(g, s, t)
}

/// Builds a random grounded tree with `internal` internal vertices.
///
/// Vertex `v_1` is the child of `s`; each later vertex picks a uniformly random
/// parent among the earlier vertices that still have fewer than `max_out - 1`
/// children (one slot is reserved for a possible edge to `t`). Every vertex that
/// would otherwise be a sink gets an edge to `t`, and every other vertex gets an
/// additional edge to `t` with probability `extra_terminal_prob`, which controls
/// how "Figure-5-like" (many terminal edges) the tree is.
///
/// The result always satisfies the grounded-tree hypothesis of Theorem 3.1 and has
/// every vertex reachable from `s` and connected to `t`.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `internal == 0` or `max_out < 2`.
pub fn random_grounded_tree<R: Rng + ?Sized>(
    rng: &mut R,
    internal: usize,
    max_out: usize,
    extra_terminal_prob: f64,
) -> Result<Network, NetworkError> {
    if internal == 0 {
        return Err(NetworkError::InvalidParameter(
            "random_grounded_tree needs at least one internal vertex".to_owned(),
        ));
    }
    if max_out < 2 {
        return Err(NetworkError::InvalidParameter(
            "random_grounded_tree needs max_out >= 2".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(internal + 2);
    let s = g.add_node();
    let vs = g.add_nodes(internal);
    g.add_edge(s, vs[0]);
    // children[i] counts tree children of vs[i] (edges to other internal vertices).
    let mut children = vec![0usize; internal];
    for i in 1..internal {
        let candidates: Vec<usize> = (0..i).filter(|&j| children[j] < max_out - 1).collect();
        let parent = if candidates.is_empty() {
            rng.gen_range(0..i)
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        g.add_edge(vs[parent], vs[i]);
        children[parent] += 1;
    }
    let t = g.add_node();
    for i in 0..internal {
        if children[i] == 0 || rng.gen_bool(extra_terminal_prob.clamp(0.0, 1.0)) {
            g.add_edge(vs[i], t);
        }
    }
    Network::new(g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_shape() {
        let net = star_network(7).unwrap();
        assert_eq!(net.node_count(), 10);
        assert_eq!(net.edge_count(), 1 + 7 + 7);
        assert_eq!(net.max_out_degree(), 7);
        assert!(classify::is_grounded_tree(&net));
        assert!(classify::all_connected_to_terminal(&net));
        assert!(star_network(0).is_err());
    }

    #[test]
    fn full_tree_counts() {
        let net = full_grounded_tree(3, 2).unwrap();
        // 1 + 2 + 4 + 8 = 15 tree vertices, plus s and t.
        assert_eq!(net.node_count(), 17);
        // 1 (s edge) + 14 (tree edges) + 8 (leaf -> t) = 23.
        assert_eq!(net.edge_count(), 23);
        assert!(classify::is_grounded_tree(&net));
        assert!(classify::all_connected_to_terminal(&net));
        assert_eq!(net.max_out_degree(), 2);
    }

    #[test]
    fn full_tree_height_zero_and_higher_arity() {
        let tiny = full_grounded_tree(0, 3).unwrap();
        assert_eq!(tiny.node_count(), 3);
        assert_eq!(tiny.edge_count(), 2);
        let wide = full_grounded_tree(2, 4).unwrap();
        assert_eq!(wide.node_count(), 1 + 4 + 16 + 2 + 1 - 1); // 1+4+16 tree + s + t
        assert_eq!(wide.max_out_degree(), 4);
        assert!(full_grounded_tree(2, 1).is_err());
    }

    #[test]
    fn full_tree_first_out_port_follows_leftmost_path() {
        let net = full_grounded_tree(3, 3).unwrap();
        let g = net.graph();
        // Walk from the tree root along out-port 0; after `height` steps we must be
        // at a leaf whose single out-edge goes to t.
        let mut cur = g.edge_dst(g.out_edges(net.root())[0]);
        for _ in 0..3 {
            cur = g.edge_dst(g.out_edges(cur)[0]);
        }
        assert_eq!(g.out_degree(cur), 1);
        assert_eq!(g.edge_dst(g.out_edges(cur)[0]), net.terminal());
    }

    #[test]
    fn random_trees_satisfy_hypotheses() {
        let mut rng = StdRng::seed_from_u64(7);
        for internal in [1usize, 2, 5, 20, 100] {
            for max_out in [2usize, 3, 6] {
                let net = random_grounded_tree(&mut rng, internal, max_out, 0.3).unwrap();
                assert!(classify::is_grounded_tree(&net), "internal={internal}");
                assert!(classify::all_reachable_from_root(&net));
                assert!(classify::all_connected_to_terminal(&net));
                assert_eq!(net.internal_count(), internal);
                assert!(net.max_out_degree() <= max_out.max(2) + 1);
            }
        }
    }

    #[test]
    fn random_tree_rejects_degenerate_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_grounded_tree(&mut rng, 0, 3, 0.5).is_err());
        assert!(random_grounded_tree(&mut rng, 5, 1, 0.5).is_err());
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = random_grounded_tree(&mut StdRng::seed_from_u64(42), 30, 4, 0.2).unwrap();
        let b = random_grounded_tree(&mut StdRng::seed_from_u64(42), 30, 4, 0.2).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        for e in a.graph().edges() {
            assert_eq!(a.graph().edge_endpoints(e), b.graph().edge_endpoints(e));
        }
    }
}
