//! Topology generators for every graph family used by the paper.
//!
//! | Generator | Paper artefact |
//! |-----------|----------------|
//! | [`chain_gn`] | the lower-bound chain family `G_n` (Figure 5, Theorem 3.2) |
//! | [`path_network`] | a degenerate grounded tree (out-degree 1 everywhere) |
//! | [`star_network`], [`random_grounded_tree`], [`full_grounded_tree`] | grounded trees (Section 3.1, Figure 6a) |
//! | [`pruned_tree`] | the pruned tree of the label-length lower bound (Figure 6b, Theorem 5.2) |
//! | [`diamond_stack`], [`layered_dag`], [`random_dag`], [`complete_dag`] | DAGs (Section 3.3) |
//! | [`cycle_with_tail`], [`nested_cycles`], [`random_cyclic`] | general graphs with cycles (Section 4) |
//! | [`skeleton`] | the commodity-preserving lower-bound skeleton (Figure 4, Theorem 3.8) |
//! | [`with_stranded_vertex`] | adds a vertex reachable from `s` but not connected to `t` (non-termination cases) |

mod chain;
mod cyclic;
mod dags;
mod pruned;
mod skeleton;
mod trees;

pub use chain::{chain_gn, path_network};
pub use cyclic::{cycle_with_tail, nested_cycles, random_cyclic, with_stranded_vertex};
pub use dags::{complete_dag, diamond_stack, layered_dag, random_dag};
pub use pruned::pruned_tree;
pub use skeleton::{skeleton, SkeletonNetwork};
pub use trees::{full_grounded_tree, random_grounded_tree, star_network};
