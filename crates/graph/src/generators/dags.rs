//! Directed-acyclic-graph generators (Section 3.3).

use rand::Rng;

use crate::{DiGraph, Network, NetworkError};

/// Builds a stack of `k` diamonds:
/// `s → a_0`, `a_i → {b_i, c_i}`, `{b_i, c_i} → a_{i+1}`, `a_k → t`.
///
/// Every internal vertex other than the `a_i` has in-degree 1, but each `a_{i+1}`
/// has in-degree 2, so the network is a DAG that is *not* a grounded tree — the
/// smallest family separating Section 3.1 from Section 3.3.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `k == 0`.
pub fn diamond_stack(k: usize) -> Result<Network, NetworkError> {
    if k == 0 {
        return Err(NetworkError::InvalidParameter(
            "diamond_stack needs at least one diamond".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(3 * k + 3);
    let s = g.add_node();
    let mut a = g.add_node();
    g.add_edge(s, a);
    for _ in 0..k {
        let b = g.add_node();
        let c = g.add_node();
        let next = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, next);
        g.add_edge(c, next);
        a = next;
    }
    let t = g.add_node();
    g.add_edge(a, t);
    Network::new(g, s, t)
}

/// Builds a layered random DAG: `s → gateway`, the gateway feeds every vertex of
/// the first layer, each vertex of layer `i` sends `fan` edges to random vertices
/// of layer `i + 1` (plus a repair edge wherever needed so that no vertex is left
/// unreachable), and the last layer feeds `t`.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `layers == 0`, `width == 0` or
/// `fan == 0`.
pub fn layered_dag<R: Rng + ?Sized>(
    rng: &mut R,
    layers: usize,
    width: usize,
    fan: usize,
) -> Result<Network, NetworkError> {
    if layers == 0 || width == 0 || fan == 0 {
        return Err(NetworkError::InvalidParameter(
            "layered_dag needs layers, width and fan all >= 1".to_owned(),
        ));
    }
    let mut g = DiGraph::new();
    let s = g.add_node();
    let gateway = g.add_node();
    g.add_edge(s, gateway);
    let mut layer_nodes: Vec<Vec<crate::NodeId>> = Vec::with_capacity(layers);
    for _ in 0..layers {
        layer_nodes.push(g.add_nodes(width));
    }
    for &v in &layer_nodes[0] {
        g.add_edge(gateway, v);
    }
    for l in 0..layers - 1 {
        let mut has_incoming = vec![false; width];
        for &src in &layer_nodes[l] {
            for _ in 0..fan {
                let pick = rng.gen_range(0..width);
                g.add_edge(src, layer_nodes[l + 1][pick]);
                has_incoming[pick] = true;
            }
        }
        // Repair: every vertex of the next layer must be reachable.
        for (i, got) in has_incoming.iter().enumerate() {
            if !got {
                let src = layer_nodes[l][rng.gen_range(0..width)];
                g.add_edge(src, layer_nodes[l + 1][i]);
            }
        }
    }
    let t = g.add_node();
    for &v in &layer_nodes[layers - 1] {
        g.add_edge(v, t);
    }
    Network::new(g, s, t)
}

/// Builds a random DAG on `internal` vertices ordered `v_1 < … < v_n`: `s → v_1`,
/// each vertex `v_i` (`i >= 2`) receives an edge from a random earlier vertex, and
/// each ordered pair `(v_i, v_j)` with `i < j` is additionally connected with
/// probability `edge_prob`. Every sink is connected to `t`.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `internal == 0` or `edge_prob`
/// is not a probability.
pub fn random_dag<R: Rng + ?Sized>(
    rng: &mut R,
    internal: usize,
    edge_prob: f64,
) -> Result<Network, NetworkError> {
    if internal == 0 {
        return Err(NetworkError::InvalidParameter(
            "random_dag needs at least one internal vertex".to_owned(),
        ));
    }
    if !(0.0..=1.0).contains(&edge_prob) {
        return Err(NetworkError::InvalidParameter(format!(
            "edge_prob must be in [0, 1], got {edge_prob}"
        )));
    }
    let mut g = DiGraph::with_capacity(internal + 2);
    let s = g.add_node();
    let vs = g.add_nodes(internal);
    g.add_edge(s, vs[0]);
    for j in 1..internal {
        let parent = rng.gen_range(0..j);
        g.add_edge(vs[parent], vs[j]);
        for i in 0..j {
            if i != parent && rng.gen_bool(edge_prob) {
                g.add_edge(vs[i], vs[j]);
            }
        }
    }
    let t = g.add_node();
    for &v in &vs {
        if g.out_degree(v) == 0 {
            g.add_edge(v, t);
        }
    }
    Network::new(g, s, t)
}

/// Builds the complete DAG on `internal` vertices: every pair `(v_i, v_j)` with
/// `i < j` is an edge, `s → v_1` and `v_n → t`. The densest acyclic topology —
/// `|E| = Θ(|V|²)` — used to stress the general bounds.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `internal == 0`.
pub fn complete_dag(internal: usize) -> Result<Network, NetworkError> {
    if internal == 0 {
        return Err(NetworkError::InvalidParameter(
            "complete_dag needs at least one internal vertex".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(internal + 2);
    let s = g.add_node();
    let vs = g.add_nodes(internal);
    let t = g.add_node();
    g.add_edge(s, vs[0]);
    for i in 0..internal {
        for j in i + 1..internal {
            g.add_edge(vs[i], vs[j]);
        }
    }
    g.add_edge(vs[internal - 1], t);
    Network::new(g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diamond_stack_is_a_dag_but_not_a_grounded_tree() {
        for k in 1..=5 {
            let net = diamond_stack(k).unwrap();
            assert!(classify::is_dag(net.graph()));
            assert!(!classify::is_grounded_tree(&net));
            assert!(classify::all_reachable_from_root(&net));
            assert!(classify::all_connected_to_terminal(&net));
            assert_eq!(net.node_count(), 3 * k + 3);
            assert_eq!(net.edge_count(), 4 * k + 2);
        }
        assert!(diamond_stack(0).is_err());
    }

    #[test]
    fn layered_dag_satisfies_model() {
        let mut rng = StdRng::seed_from_u64(11);
        for (layers, width, fan) in [(1usize, 1usize, 1usize), (3, 4, 2), (5, 8, 3)] {
            let net = layered_dag(&mut rng, layers, width, fan).unwrap();
            assert!(classify::is_dag(net.graph()), "{layers}x{width}");
            assert!(classify::all_reachable_from_root(&net));
            assert!(classify::all_connected_to_terminal(&net));
        }
        assert!(layered_dag(&mut rng, 0, 3, 1).is_err());
        assert!(layered_dag(&mut rng, 3, 0, 1).is_err());
        assert!(layered_dag(&mut rng, 3, 3, 0).is_err());
    }

    #[test]
    fn random_dag_satisfies_model() {
        let mut rng = StdRng::seed_from_u64(5);
        for internal in [1usize, 2, 10, 50] {
            for prob in [0.0, 0.1, 0.5] {
                let net = random_dag(&mut rng, internal, prob).unwrap();
                assert!(classify::is_dag(net.graph()), "n={internal} p={prob}");
                assert!(classify::all_reachable_from_root(&net));
                assert!(classify::all_connected_to_terminal(&net));
            }
        }
        assert!(random_dag(&mut rng, 0, 0.5).is_err());
        assert!(random_dag(&mut rng, 5, 1.5).is_err());
    }

    #[test]
    fn complete_dag_is_dense() {
        let net = complete_dag(6).unwrap();
        assert_eq!(net.edge_count(), 6 * 5 / 2 + 2);
        assert!(classify::is_dag(net.graph()));
        assert!(classify::all_reachable_from_root(&net));
        assert!(classify::all_connected_to_terminal(&net));
        assert_eq!(net.max_out_degree(), 5);
        assert!(complete_dag(0).is_err());
    }
}
