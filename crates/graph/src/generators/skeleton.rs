//! The skeleton graphs of the commodity-preserving lower bound (Theorem 3.8,
//! Figure 4).

use crate::{DiGraph, EdgeId, Network, NetworkError, NodeId};

/// A skeleton network together with the vertices the lower-bound argument reasons
/// about.
///
/// Built by [`skeleton`]; the experiment of Theorem 3.8 runs a commodity-preserving
/// protocol on one skeleton per subset `S` of the even-indexed `u` vertices and
/// shows that the quantity crossing [`SkeletonNetwork::w_to_t_edge`] is different
/// for every subset, forcing `2^n` distinct symbols.
#[derive(Debug, Clone)]
pub struct SkeletonNetwork {
    /// The validated network.
    pub network: Network,
    /// The spine vertices `v_0 … v_{2n-1}`.
    pub v_nodes: Vec<NodeId>,
    /// The side vertices `u_0 … u_{2n-2}`.
    pub u_nodes: Vec<NodeId>,
    /// The collector vertex `w`.
    pub w: NodeId,
    /// The single edge `w → t`.
    pub w_to_t_edge: EdgeId,
    /// Which even-indexed `u` vertices were routed to `w` (the subset `S`).
    pub subset: Vec<bool>,
}

/// Builds the Figure 4 skeleton for parameter `n` and subset `S ⊆ {u_0, u_2, …,
/// u_{2n-2}}` given as `subset[j] == true` ⇔ `u_{2j} ∈ S`.
///
/// Structure: `s → v_0`; each `v_i` (`i < 2n-1`) has out-port 0 to `v_{i+1}` and
/// out-port 1 to `u_i`; `v_{2n-1} → t`. Odd-indexed `u_i → t`. Even-indexed
/// `u_{2j}` goes to `w` when `subset[j]` and to `t` otherwise. Finally `w → t`.
///
/// Because each `v_i` splits its incoming commodity between the spine and `u_i`,
/// the quantities reaching the even `u` vertices fall off geometrically, so the sum
/// collected at `w` identifies the subset uniquely — the `2^n` distinct terminal
/// quantities of the lower bound.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `n == 0` or `subset.len() != n`.
pub fn skeleton(n: usize, subset: &[bool]) -> Result<SkeletonNetwork, NetworkError> {
    if n == 0 {
        return Err(NetworkError::InvalidParameter(
            "skeleton needs n >= 1".to_owned(),
        ));
    }
    if subset.len() != n {
        return Err(NetworkError::InvalidParameter(format!(
            "subset must have one entry per even u vertex: expected {n}, got {}",
            subset.len()
        )));
    }
    let spine_len = 2 * n;
    let mut g = DiGraph::new();
    let s = g.add_node();
    let v_nodes = g.add_nodes(spine_len);
    let u_nodes = g.add_nodes(spine_len - 1);
    let w = g.add_node();
    let t = g.add_node();

    g.add_edge(s, v_nodes[0]);
    for i in 0..spine_len - 1 {
        // Out-port 0 continues down the spine ("left", smaller quantity in the
        // paper's adaptive argument), out-port 1 goes to u_i.
        g.add_edge(v_nodes[i], v_nodes[i + 1]);
        g.add_edge(v_nodes[i], u_nodes[i]);
    }
    g.add_edge(v_nodes[spine_len - 1], t);

    for (i, &u) in u_nodes.iter().enumerate().take(spine_len - 1) {
        if i % 2 == 1 {
            g.add_edge(u, t);
        } else {
            let j = i / 2;
            if subset[j] {
                g.add_edge(u, w);
            } else {
                g.add_edge(u, t);
            }
        }
    }
    let w_to_t_edge = g.add_edge(w, t);
    let network = Network::new(g, s, t)?;
    Ok(SkeletonNetwork {
        network,
        v_nodes,
        u_nodes,
        w,
        w_to_t_edge,
        subset: subset.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;

    #[test]
    fn skeleton_shape_matches_figure_4() {
        let n = 3;
        let sk = skeleton(n, &[true, false, true]).unwrap();
        // Vertices: s + 2n spine + (2n-1) side + w + t.
        assert_eq!(sk.network.node_count(), 1 + 2 * n + (2 * n - 1) + 1 + 1);
        assert_eq!(sk.v_nodes.len(), 2 * n);
        assert_eq!(sk.u_nodes.len(), 2 * n - 1);
        assert!(classify::is_dag(sk.network.graph()));
        assert!(classify::all_reachable_from_root(&sk.network));
        assert!(classify::all_connected_to_terminal(&sk.network));
        // Every spine vertex except the last has out-degree 2.
        for &v in &sk.v_nodes[..2 * n - 1] {
            assert_eq!(sk.network.graph().out_degree(v), 2);
        }
        assert_eq!(sk.network.graph().out_degree(sk.v_nodes[2 * n - 1]), 1);
        // w collects exactly the subset members.
        assert_eq!(sk.network.graph().in_degree(sk.w), 2);
        assert_eq!(
            sk.network.graph().edge_dst(sk.w_to_t_edge),
            sk.network.terminal()
        );
    }

    #[test]
    fn without_w_members_w_is_stranded_free_but_unreachable() {
        // With the empty subset the collector has in-degree 0; it is not reachable
        // from s, which the model tolerates (the protocols simply never visit it),
        // but every *reachable* vertex is still connected to t.
        let sk = skeleton(2, &[false, false]).unwrap();
        assert_eq!(sk.network.graph().in_degree(sk.w), 0);
        assert!(!classify::all_reachable_from_root(&sk.network));
        assert!(classify::stranded_vertices(&sk.network).is_empty());
    }

    #[test]
    fn skeleton_is_grounded_except_for_terminal_fanin() {
        // With a single subset member every internal vertex (including w) has
        // in-degree exactly one, so the skeleton is a grounded tree.
        let sk = skeleton(4, &[true, false, false, false]).unwrap();
        assert!(classify::is_grounded_tree(&sk.network));
        // With several members w has larger in-degree and the skeleton is a DAG
        // that is not a grounded tree.
        let sk2 = skeleton(4, &[true, true, false, false]).unwrap();
        assert!(!classify::is_grounded_tree(&sk2.network));
        assert!(classify::is_dag(sk2.network.graph()));
    }

    #[test]
    fn parameter_validation() {
        assert!(skeleton(0, &[]).is_err());
        assert!(skeleton(3, &[true]).is_err());
    }
}
