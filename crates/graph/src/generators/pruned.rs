//! The pruned tree of the label-length lower bound (Theorem 5.2, Figure 6b).

use crate::{DiGraph, Network, NetworkError, NodeId};

/// Builds the pruned tree of Figure 6b: the leftmost root-to-leaf path
/// `w_0 → w_1 → … → w_h` of the full `arity`-ary tree of height `height` is kept;
/// every other child edge of a path vertex is redirected straight to `t`.
///
/// The resulting network has only `height + 3` vertices and maximum out-degree
/// `arity`, yet any labelling protocol must give the final path vertex the same
/// label it would receive in the full tree — a label of `Ω(height · log arity)`
/// bits (Theorem 5.2). Crucially, each `w_i` keeps out-degree `arity` and its edge
/// towards `w_{i+1}` stays at out-port 0, exactly as in
/// [`super::full_grounded_tree`], so a protocol execution along the path is
/// bit-for-bit identical in the two networks.
///
/// Returns the network together with the path vertices `w_0 … w_h` in order.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `arity < 2`.
pub fn pruned_tree(height: usize, arity: usize) -> Result<(Network, Vec<NodeId>), NetworkError> {
    if arity < 2 {
        return Err(NetworkError::InvalidParameter(
            "pruned_tree needs arity >= 2".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(height + 3);
    let s = g.add_node();
    let path = g.add_nodes(height + 1);
    let t = g.add_node();
    g.add_edge(s, path[0]);
    for i in 0..height {
        // Out-port 0 continues down the path; the remaining arity-1 ports go to t.
        g.add_edge(path[i], path[i + 1]);
        for _ in 1..arity {
            g.add_edge(path[i], t);
        }
    }
    // The final path vertex is a leaf of the original tree: single edge to t.
    g.add_edge(path[height], t);
    let network = Network::new(g, s, t)?;
    Ok((network, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;

    #[test]
    fn pruned_tree_has_h_plus_3_vertices() {
        for (h, d) in [(1usize, 2usize), (4, 3), (10, 5), (0, 4)] {
            let (net, path) = pruned_tree(h, d).unwrap();
            assert_eq!(net.node_count(), h + 3, "h={h} d={d}");
            assert_eq!(path.len(), h + 1);
            assert!(classify::is_grounded_tree(&net));
            assert!(classify::all_reachable_from_root(&net));
            assert!(classify::all_connected_to_terminal(&net));
            assert_eq!(net.max_out_degree(), if h == 0 { 1 } else { d });
        }
    }

    #[test]
    fn path_vertices_keep_full_tree_out_degree_and_port_order() {
        let (net, path) = pruned_tree(6, 4).unwrap();
        let g = net.graph();
        for i in 0..6 {
            assert_eq!(g.out_degree(path[i]), 4);
            // Out-port 0 continues along the path.
            assert_eq!(g.edge_dst(g.out_edges(path[i])[0]), path[i + 1]);
            // All other ports go straight to t.
            for port in 1..4 {
                assert_eq!(g.edge_dst(g.out_edges(path[i])[port]), net.terminal());
            }
        }
        assert_eq!(g.out_degree(path[6]), 1);
    }

    #[test]
    fn edge_count_matches_formula() {
        // 1 (s edge) + h·arity (path levels) + 1 (leaf edge).
        let (net, _) = pruned_tree(5, 3).unwrap();
        assert_eq!(net.edge_count(), 1 + 5 * 3 + 1);
    }

    #[test]
    fn arity_below_two_is_rejected() {
        assert!(pruned_tree(3, 1).is_err());
        assert!(pruned_tree(3, 0).is_err());
    }
}
