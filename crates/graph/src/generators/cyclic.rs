//! General (cyclic) network generators (Section 4).

use rand::Rng;

use crate::{DiGraph, Network, NetworkError, NodeId};

/// Builds a directed cycle with a tail to the terminal:
/// `s → c_1 → c_2 → … → c_k → c_1` and `c_k → t`.
///
/// The commodity entering the cycle loops forever unless the β-carrying mechanism
/// of Section 4 detects the cycle, so this is the smallest topology on which the
/// general-graph broadcast differs from the DAG protocols.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `k < 2`.
pub fn cycle_with_tail(k: usize) -> Result<Network, NetworkError> {
    if k < 2 {
        return Err(NetworkError::InvalidParameter(
            "cycle_with_tail needs a cycle of length >= 2".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(k + 2);
    let s = g.add_node();
    let cs = g.add_nodes(k);
    let t = g.add_node();
    g.add_edge(s, cs[0]);
    for i in 0..k {
        g.add_edge(cs[i], cs[(i + 1) % k]);
    }
    g.add_edge(cs[k - 1], t);
    Network::new(g, s, t)
}

/// Builds `count` cycles of length `len` chained one after another, each cycle
/// feeding the next and the last one feeding `t`. Exercises repeated cycle
/// detection along a single broadcast.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `count == 0` or `len < 2`.
pub fn nested_cycles(count: usize, len: usize) -> Result<Network, NetworkError> {
    if count == 0 || len < 2 {
        return Err(NetworkError::InvalidParameter(
            "nested_cycles needs count >= 1 and len >= 2".to_owned(),
        ));
    }
    let mut g = DiGraph::new();
    let s = g.add_node();
    let mut entry = None;
    let mut prev_exit: Option<NodeId> = None;
    for _ in 0..count {
        let cycle = g.add_nodes(len);
        for i in 0..len {
            g.add_edge(cycle[i], cycle[(i + 1) % len]);
        }
        match prev_exit {
            None => entry = Some(cycle[0]),
            Some(exit) => {
                g.add_edge(exit, cycle[0]);
            }
        }
        prev_exit = Some(cycle[len - 1]);
    }
    let t = g.add_node();
    g.add_edge(s, entry.expect("at least one cycle"));
    g.add_edge(prev_exit.expect("at least one cycle"), t);
    Network::new(g, s, t)
}

/// Builds a random general directed network: a random DAG backbone (guaranteeing
/// reachability from `s` and a path to `t` from every vertex) plus back edges added
/// with probability `back_prob`, which create cycles.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `internal == 0` or a probability
/// is out of range.
pub fn random_cyclic<R: Rng + ?Sized>(
    rng: &mut R,
    internal: usize,
    forward_prob: f64,
    back_prob: f64,
) -> Result<Network, NetworkError> {
    if internal == 0 {
        return Err(NetworkError::InvalidParameter(
            "random_cyclic needs at least one internal vertex".to_owned(),
        ));
    }
    for p in [forward_prob, back_prob] {
        if !(0.0..=1.0).contains(&p) {
            return Err(NetworkError::InvalidParameter(format!(
                "probabilities must be in [0, 1], got {p}"
            )));
        }
    }
    let mut g = DiGraph::with_capacity(internal + 2);
    let s = g.add_node();
    let vs = g.add_nodes(internal);
    g.add_edge(s, vs[0]);
    for j in 1..internal {
        let parent = rng.gen_range(0..j);
        g.add_edge(vs[parent], vs[j]);
        for i in 0..j {
            if i != parent && rng.gen_bool(forward_prob) {
                g.add_edge(vs[i], vs[j]);
            }
        }
    }
    // Back edges create cycles; they never break reachability or co-reachability.
    for i in 0..internal {
        for j in 0..i {
            if rng.gen_bool(back_prob) {
                g.add_edge(vs[i], vs[j]);
            }
        }
    }
    let t = g.add_node();
    for &v in &vs {
        // Sinks of the DAG backbone keep their edge to t even if back edges were
        // added, so every vertex still has a forward path to t.
        let only_back_edges = g
            .out_edges(v)
            .iter()
            .all(|&e| g.edge_dst(e).index() <= v.index() && g.edge_dst(e) != t);
        if only_back_edges {
            g.add_edge(v, t);
        }
    }
    Network::new(g, s, t)
}

/// Attaches a fresh vertex to the first internal vertex of `network`; the new
/// vertex has no outgoing edges, so it is reachable from `s` but **not** connected
/// to `t`. Theorems 3.1, 4.2 and 5.1 all require protocols to *refuse to terminate*
/// on the result.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when the network has no internal
/// vertices, and propagates validation errors from rebuilding the network.
pub fn with_stranded_vertex(network: &Network) -> Result<Network, NetworkError> {
    let host = network.internal_nodes().next().ok_or_else(|| {
        NetworkError::InvalidParameter("network has no internal vertices".to_owned())
    })?;
    let mut g = network.graph().clone();
    let stranded = g.add_node();
    g.add_edge(host, stranded);
    Network::new(g, network.root(), network.terminal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use crate::generators::chain_gn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_with_tail_shape() {
        let net = cycle_with_tail(5).unwrap();
        assert_eq!(net.node_count(), 7);
        assert_eq!(net.edge_count(), 7);
        assert!(!classify::is_dag(net.graph()));
        assert!(classify::all_reachable_from_root(&net));
        assert!(classify::all_connected_to_terminal(&net));
        assert!(cycle_with_tail(1).is_err());
    }

    #[test]
    fn nested_cycles_shape() {
        let net = nested_cycles(3, 4).unwrap();
        assert_eq!(net.node_count(), 3 * 4 + 2);
        assert!(!classify::is_dag(net.graph()));
        assert!(classify::all_reachable_from_root(&net));
        assert!(classify::all_connected_to_terminal(&net));
        let (_, scc_count) = classify::strongly_connected_components(net.graph());
        // Three non-trivial components plus s and t.
        assert_eq!(scc_count, 3 + 2);
        assert!(nested_cycles(0, 3).is_err());
        assert!(nested_cycles(2, 1).is_err());
    }

    #[test]
    fn random_cyclic_satisfies_model_invariants() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut saw_cycle = false;
        for internal in [1usize, 5, 20, 60] {
            let net = random_cyclic(&mut rng, internal, 0.15, 0.2).unwrap();
            assert!(classify::all_reachable_from_root(&net), "n={internal}");
            assert!(classify::all_connected_to_terminal(&net), "n={internal}");
            saw_cycle |= !classify::is_dag(net.graph());
        }
        assert!(
            saw_cycle,
            "expected at least one generated network to contain a cycle"
        );
        assert!(random_cyclic(&mut rng, 0, 0.1, 0.1).is_err());
        assert!(random_cyclic(&mut rng, 5, 1.4, 0.1).is_err());
    }

    #[test]
    fn stranded_vertex_breaks_coreachability_only() {
        let base = chain_gn(4).unwrap();
        let net = with_stranded_vertex(&base).unwrap();
        assert_eq!(net.node_count(), base.node_count() + 1);
        assert!(classify::all_reachable_from_root(&net));
        assert!(!classify::all_connected_to_terminal(&net));
        assert_eq!(classify::stranded_vertices(&net).len(), 1);
    }
}
