//! The chain family `G_n` of Figure 5 and plain paths.

use crate::{DiGraph, Network, NetworkError};

/// Builds the paper's lower-bound family `G_n` (Figure 5): internal vertices
/// `v_1 … v_n` with edges `s → v_1`, `v_i → v_{i+1}` and `v_i → t` for every `i`.
///
/// `G_n` has `n + 2` vertices and `2n` edges; every vertex except `v_n` has
/// out-degree two, and any correct broadcasting protocol must use at least `n + 1`
/// distinct symbols on it (Lemma 3.7), which is what drives the
/// `Ω(|E| log |E|)` communication lower bound.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `n == 0`.
pub fn chain_gn(n: usize) -> Result<Network, NetworkError> {
    if n == 0 {
        return Err(NetworkError::InvalidParameter(
            "chain_gn needs at least one internal vertex".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(n + 2);
    let s = g.add_node();
    let vs = g.add_nodes(n);
    let t = g.add_node();
    g.add_edge(s, vs[0]);
    for i in 0..n {
        if i + 1 < n {
            g.add_edge(vs[i], vs[i + 1]);
        }
        g.add_edge(vs[i], t);
    }
    Network::new(g, s, t)
}

/// Builds a simple path `s → v_1 → … → v_n → t`: the smallest grounded tree with
/// `n` internal vertices, where every commodity is forwarded unchanged.
///
/// # Errors
///
/// Returns [`NetworkError::InvalidParameter`] when `n == 0`.
pub fn path_network(n: usize) -> Result<Network, NetworkError> {
    if n == 0 {
        return Err(NetworkError::InvalidParameter(
            "path_network needs at least one internal vertex".to_owned(),
        ));
    }
    let mut g = DiGraph::with_capacity(n + 2);
    let s = g.add_node();
    let vs = g.add_nodes(n);
    let t = g.add_node();
    g.add_edge(s, vs[0]);
    for i in 0..n - 1 {
        g.add_edge(vs[i], vs[i + 1]);
    }
    g.add_edge(vs[n - 1], t);
    Network::new(g, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;

    #[test]
    fn chain_gn_matches_figure_5() {
        for n in 1..=10 {
            let net = chain_gn(n).unwrap();
            assert_eq!(net.node_count(), n + 2, "n = {n}");
            assert_eq!(net.edge_count(), 2 * n, "n = {n}");
            assert!(classify::is_grounded_tree(&net));
            assert!(classify::all_reachable_from_root(&net));
            assert!(classify::all_connected_to_terminal(&net));
            assert_eq!(net.max_out_degree(), if n == 1 { 1 } else { 2 });
            // The terminal has in-degree n.
            assert_eq!(net.graph().in_degree(net.terminal()), n);
        }
    }

    #[test]
    fn chain_gn_zero_is_rejected() {
        assert!(chain_gn(0).is_err());
    }

    #[test]
    fn path_is_a_grounded_tree_with_unit_degrees() {
        let net = path_network(5).unwrap();
        assert_eq!(net.edge_count(), 6);
        assert!(classify::is_grounded_tree(&net));
        assert!(classify::all_connected_to_terminal(&net));
        assert_eq!(net.max_out_degree(), 1);
        assert!(path_network(0).is_err());
    }
}
