//! # anet-graph — directed anonymous network topologies
//!
//! The model of *Langberg, Schwartz, Bruck (PODC 2007)* is a directed graph
//! `G = (V, E)` with a distinguished **root** `s` (no incoming edges, a single
//! outgoing edge) and **terminal** `t` (no outgoing edges). Vertices are anonymous:
//! a protocol may only use a vertex's in/out degree and the *index* ("port") of the
//! edge a message arrived on or is sent on.
//!
//! This crate provides:
//!
//! * [`DiGraph`] — a directed multigraph with **ordered ports** per vertex, so that
//!   "the j-th outgoing edge" is a well-defined notion, exactly as the model needs.
//! * [`Network`] — a validated `(G, s, t)` triple.
//! * [`Csr`] — the same topology flattened into contiguous `u32` offset/edge
//!   arrays (compressed sparse row), built once from a [`DiGraph`] and used by
//!   the hot layers: the simulation engine's delivery loop and the
//!   canonicalization refiner.
//! * [`classify`] — grounded-tree / DAG detection, reachability, co-reachability,
//!   degree statistics; these are the hypotheses of the paper's theorems.
//! * [`linear_cut`] — linear cuts of DAGs and the graph surgery of Lemma 3.5 /
//!   Theorem 3.6, used by the lower-bound experiments.
//! * [`generators`] — every topology family the paper uses: the chain `G_n`
//!   (Figure 5), grounded trees, full and pruned trees (Figure 6), skeleton graphs
//!   (Figure 4), DAGs and cyclic networks.
//! * [`canon`] — deterministic canonical labelings and stable fingerprints, so
//!   isomorphic networks can be recognized by equality; this is what the sweep
//!   subsystem's deduplication keys on.
//! * [`dot`] — Graphviz export for inspection.
//!
//! # Example
//!
//! ```
//! use anet_graph::generators::chain_gn;
//! use anet_graph::classify;
//!
//! # fn main() -> Result<(), anet_graph::NetworkError> {
//! let network = chain_gn(8)?;
//! assert!(classify::is_grounded_tree(&network));
//! assert!(classify::all_connected_to_terminal(&network));
//! assert_eq!(network.graph().edge_count(), 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod classify;
mod csr;
pub mod dot;
pub mod generators;
mod graph;
pub mod linear_cut;
mod network;
pub mod traversal;

pub use csr::Csr;
pub use graph::{DiGraph, EdgeId, NodeId};
pub use network::{Network, NetworkError};
