//! Linear cuts and the graph surgery of the lower-bound proofs.
//!
//! Definition 3.4 of the paper: a **linear cut** of a DAG partitions `V` into
//! `V₁ ∪ V₂` such that no vertex of `V₁` is a descendant of a vertex of `V₂`
//! (equivalently: there is no edge from `V₂` to `V₁`). Linear cuts are snapshots of
//! asynchronous executions — the vertices of `V₁` have already acted, those of `V₂`
//! have not — and the surgery of Lemma 3.5 / Theorem 3.6 turns such a snapshot back
//! into a complete network on which the protocol must (or must not) terminate.

use crate::{DiGraph, EdgeId, Network, NetworkError, NodeId};

/// A linear cut, stored as the membership vector of `V₁` (indexed by node id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearCut {
    v1: Vec<bool>,
}

impl LinearCut {
    /// Wraps a membership vector after validating it against `network`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidParameter`] when the vector has the wrong
    /// length, either side is empty, the root is not in `V₁`, the terminal is not in
    /// `V₂`, or some edge runs from `V₂` to `V₁`.
    pub fn new(network: &Network, v1: Vec<bool>) -> Result<Self, NetworkError> {
        let g = network.graph();
        if v1.len() != g.node_count() {
            return Err(NetworkError::InvalidParameter(format!(
                "membership vector has length {} but the graph has {} vertices",
                v1.len(),
                g.node_count()
            )));
        }
        if !v1[network.root().index()] {
            return Err(NetworkError::InvalidParameter(
                "the root must belong to V1".to_owned(),
            ));
        }
        if v1[network.terminal().index()] {
            return Err(NetworkError::InvalidParameter(
                "the terminal must belong to V2".to_owned(),
            ));
        }
        if v1.iter().all(|&b| b) || v1.iter().all(|&b| !b) {
            return Err(NetworkError::InvalidParameter(
                "both sides of a linear cut must be non-empty".to_owned(),
            ));
        }
        for e in g.edges() {
            let (u, v) = g.edge_endpoints(e);
            if !v1[u.index()] && v1[v.index()] {
                return Err(NetworkError::InvalidParameter(format!(
                    "edge {u} -> {v} runs from V2 back into V1, so the partition is not a linear cut"
                )));
            }
        }
        Ok(LinearCut { v1 })
    }

    /// Returns `true` if `node` belongs to `V₁`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.v1[node.index()]
    }

    /// The membership vector of `V₁`.
    pub fn v1(&self) -> &[bool] {
        &self.v1
    }

    /// The vertices of `V₁`.
    pub fn v1_nodes(&self) -> Vec<NodeId> {
        self.v1
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// The edges crossing the cut (from `V₁` to `V₂`), in global edge order.
    pub fn crossing_edges(&self, network: &Network) -> Vec<EdgeId> {
        let g = network.graph();
        g.edges()
            .filter(|&e| {
                let (u, v) = g.edge_endpoints(e);
                self.v1[u.index()] && !self.v1[v.index()]
            })
            .collect()
    }
}

/// Enumerates every linear cut of `network` by exhaustive subset search over the
/// internal vertices, stopping after `limit` cuts.
///
/// Exponential in the number of internal vertices — intended for the small
/// topologies used by the lower-bound tests (Lemma 3.7, Theorem 3.6).
pub fn enumerate_linear_cuts(network: &Network, limit: usize) -> Vec<LinearCut> {
    let internal: Vec<NodeId> = network.internal_nodes().collect();
    let n = internal.len();
    let mut cuts = Vec::new();
    if n >= usize::BITS as usize - 1 {
        return cuts;
    }
    for mask in 0..(1usize << n) {
        if cuts.len() >= limit {
            break;
        }
        let mut v1 = vec![false; network.node_count()];
        v1[network.root().index()] = true;
        for (i, node) in internal.iter().enumerate() {
            if mask & (1 << i) != 0 {
                v1[node.index()] = true;
            }
        }
        if let Ok(cut) = LinearCut::new(network, v1) {
            cuts.push(cut);
        }
    }
    cuts
}

/// Produces the linear cuts induced by prefixes of a topological order — a
/// polynomial-sized family that exists for every DAG. Returns `None` if the graph
/// has a cycle.
pub fn topological_prefix_cuts(network: &Network) -> Option<Vec<LinearCut>> {
    let order = crate::classify::topological_order(network.graph())?;
    let mut v1 = vec![false; network.node_count()];
    let mut cuts = Vec::new();
    for node in order {
        if node == network.terminal() {
            continue;
        }
        v1[node.index()] = true;
        if let Ok(cut) = LinearCut::new(network, v1.clone()) {
            cuts.push(cut);
        }
    }
    Some(cuts)
}

/// The Lemma 3.5 surgery: builds `G*` from a linear cut by keeping `V₁`, adding a
/// fresh terminal, and redirecting every crossing edge to it.
///
/// Out-port order of every `V₁` vertex is preserved, so an anonymous protocol
/// behaves identically on `G*` as it did on `G` up to the snapshot. Returns the new
/// network together with, for each original crossing edge (in the order returned by
/// [`LinearCut::crossing_edges`]), the corresponding new edge into the terminal.
///
/// # Errors
///
/// Propagates [`NetworkError`] if the contracted graph violates the model (cannot
/// happen for cuts produced by [`LinearCut::new`] on valid networks).
pub fn contract_beyond_cut(
    network: &Network,
    cut: &LinearCut,
) -> Result<(Network, Vec<EdgeId>), NetworkError> {
    build_contracted(network, cut, None)
}

/// The Theorem 3.6 surgery: like [`contract_beyond_cut`], but the crossing edges
/// whose indices (into [`LinearCut::crossing_edges`]) appear in `to_auxiliary` are
/// redirected to an auxiliary vertex `t*` that is **not** connected to the terminal.
///
/// On the resulting network a *correct* protocol must not terminate, which is the
/// contradiction at the heart of the lower bound. Returns the new network, the new
/// edges into the real terminal, and the id of `t*`.
///
/// # Errors
///
/// Propagates [`NetworkError`] if the surgered graph violates the model.
pub fn contract_with_auxiliary(
    network: &Network,
    cut: &LinearCut,
    to_auxiliary: &[usize],
) -> Result<(Network, Vec<EdgeId>, NodeId), NetworkError> {
    let (net, edges) = build_contracted(network, cut, Some(to_auxiliary))?;
    let aux = NodeId(net.node_count() - 1);
    Ok((net, edges, aux))
}

fn build_contracted(
    network: &Network,
    cut: &LinearCut,
    to_auxiliary: Option<&[usize]>,
) -> Result<(Network, Vec<EdgeId>), NetworkError> {
    let g = network.graph();
    let mut new = DiGraph::new();
    // Map original V1 vertices to new ids, preserving relative order.
    let mut map: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for node in g.nodes() {
        if cut.contains(node) {
            map[node.index()] = Some(new.add_node());
        }
    }
    let terminal = new.add_node();
    let auxiliary = if to_auxiliary.is_some() {
        Some(new.add_node())
    } else {
        None
    };

    // Pre-compute which crossing edge index each original edge has.
    let crossing = cut.crossing_edges(network);
    let crossing_index = |e: EdgeId| crossing.iter().position(|&c| c == e);

    let mut new_terminal_edges: Vec<Option<EdgeId>> = vec![None; crossing.len()];
    for node in g.nodes() {
        if !cut.contains(node) {
            continue;
        }
        let src = map[node.index()].expect("V1 vertices are mapped");
        for &e in g.out_edges(node) {
            let dst_old = g.edge_dst(e);
            if let Some(dst_new) = map[dst_old.index()] {
                new.add_edge(src, dst_new);
            } else {
                let idx = crossing_index(e).expect("edge leaving V1 crosses the cut");
                let target = match (to_auxiliary, auxiliary) {
                    (Some(aux_set), Some(aux)) if aux_set.contains(&idx) => aux,
                    _ => terminal,
                };
                let new_edge = new.add_edge(src, target);
                if target == terminal {
                    new_terminal_edges[idx] = Some(new_edge);
                }
            }
        }
    }
    let root_new = map[network.root().index()].expect("root belongs to V1");
    let network_new = Network::new(new, root_new, terminal)?;
    let edges = new_terminal_edges.into_iter().flatten().collect();
    Ok((network_new, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use crate::generators::chain_gn;

    fn cut_after(network: &Network, k: usize) -> LinearCut {
        // V1 = {s, v1..vk} in the chain family.
        let mut v1 = vec![false; network.node_count()];
        v1[network.root().index()] = true;
        let internal: Vec<NodeId> = network.internal_nodes().collect();
        for node in internal.iter().take(k) {
            v1[node.index()] = true;
        }
        LinearCut::new(network, v1).unwrap()
    }

    #[test]
    fn valid_cut_is_accepted_and_reports_crossing_edges() {
        let net = chain_gn(5).unwrap();
        let cut = cut_after(&net, 2);
        assert!(cut.contains(net.root()));
        assert!(!cut.contains(net.terminal()));
        // Crossing edges: v1 -> t, v2 -> t, v2 -> v3.
        assert_eq!(cut.crossing_edges(&net).len(), 3);
        assert_eq!(cut.v1_nodes().len(), 3);
    }

    #[test]
    fn invalid_cuts_are_rejected() {
        let net = chain_gn(4).unwrap();
        // Terminal inside V1.
        let mut v1 = vec![true; net.node_count()];
        assert!(LinearCut::new(&net, v1.clone()).is_err());
        // Root outside V1.
        v1 = vec![false; net.node_count()];
        assert!(LinearCut::new(&net, v1.clone()).is_err());
        // Non-ancestor-closed set: v2 in V1 but its ancestor v1 in V2.
        v1 = vec![false; net.node_count()];
        v1[net.root().index()] = true;
        let internal: Vec<NodeId> = net.internal_nodes().collect();
        v1[internal[1].index()] = true;
        assert!(LinearCut::new(&net, v1.clone()).is_err());
        // Wrong length.
        assert!(LinearCut::new(&net, vec![true; 2]).is_err());
    }

    #[test]
    fn chain_has_exactly_n_plus_one_minus_one_cuts() {
        // In G_n the ancestor-closed proper subsets containing s are exactly
        // {s, v1..vk} for k = 0..n — but k = n puts every internal vertex in V1,
        // which is still valid since t stays in V2. So there are n + 1 cuts.
        let n = 6;
        let net = chain_gn(n).unwrap();
        let cuts = enumerate_linear_cuts(&net, usize::MAX);
        assert_eq!(cuts.len(), n + 1);
    }

    #[test]
    fn topological_prefix_cuts_are_valid_and_cover_the_chain() {
        let net = chain_gn(7).unwrap();
        let cuts = topological_prefix_cuts(&net).unwrap();
        assert!(!cuts.is_empty());
        for cut in &cuts {
            assert!(LinearCut::new(&net, cut.v1().to_vec()).is_ok());
        }
    }

    #[test]
    fn contraction_produces_valid_grounded_network() {
        let net = chain_gn(6).unwrap();
        let cut = cut_after(&net, 3);
        let (g_star, new_edges) = contract_beyond_cut(&net, &cut).unwrap();
        assert_eq!(new_edges.len(), cut.crossing_edges(&net).len());
        assert!(classify::all_reachable_from_root(&g_star));
        assert!(classify::all_connected_to_terminal(&g_star));
        assert!(classify::is_grounded_tree(&g_star));
        // V* = V1 ∪ {t}.
        assert_eq!(g_star.node_count(), 4 + 1);
    }

    #[test]
    fn contraction_preserves_out_degrees_of_v1_vertices() {
        let net = chain_gn(6).unwrap();
        let cut = cut_after(&net, 4);
        let (g_star, _) = contract_beyond_cut(&net, &cut).unwrap();
        // Each vi (i < 4) kept out-degree 2; v4's successors were redirected but the
        // degree is unchanged. The new ids follow the original relative order:
        // position 0 is s, positions 1..=4 are v1..v4.
        for idx in 1..=4usize {
            assert_eq!(g_star.graph().out_degree(NodeId(idx)), 2);
        }
        assert_eq!(g_star.graph().out_degree(g_star.root()), 1);
    }

    #[test]
    fn auxiliary_contraction_creates_stranded_vertex() {
        let net = chain_gn(6).unwrap();
        let cut = cut_after(&net, 3);
        let crossing = cut.crossing_edges(&net);
        assert!(crossing.len() >= 2);
        let (g_aux, to_terminal, aux) = contract_with_auxiliary(&net, &cut, &[0]).unwrap();
        // One crossing edge was redirected to t*, the rest to t.
        assert_eq!(to_terminal.len(), crossing.len() - 1);
        assert!(!classify::all_connected_to_terminal(&g_aux));
        assert!(classify::stranded_vertices(&g_aux).contains(&aux));
        assert!(classify::all_reachable_from_root(&g_aux));
    }
}
