//! Classification predicates — the hypotheses of the paper's theorems.
//!
//! Theorem 3.1 applies to *grounded trees*, Section 3.3 to *DAGs*, and Theorems 4.2
//! and 5.1 terminate *iff every vertex is connected to the terminal*. These
//! predicates let experiments and tests state exactly which hypothesis a topology
//! satisfies.

use crate::traversal::{coreachable_to, reachable_from};
use crate::{DiGraph, Network, NodeId};

/// Returns a topological order of the graph, or `None` if it contains a cycle.
pub fn topological_order(graph: &DiGraph) -> Option<Vec<NodeId>> {
    let mut in_deg: Vec<usize> = graph.nodes().map(|n| graph.in_degree(n)).collect();
    let mut queue: Vec<NodeId> = graph.nodes().filter(|&n| in_deg[n.index()] == 0).collect();
    let mut order = Vec::with_capacity(graph.node_count());
    while let Some(n) = queue.pop() {
        order.push(n);
        for succ in graph.successors(n) {
            in_deg[succ.index()] -= 1;
            if in_deg[succ.index()] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() == graph.node_count() {
        Some(order)
    } else {
        None
    }
}

/// Returns `true` if the graph is acyclic.
pub fn is_dag(graph: &DiGraph) -> bool {
    topological_order(graph).is_some()
}

/// Returns `true` if the network is a *grounded tree* (Section 3.1): every vertex
/// has in-degree 1, except the root `s` (in-degree 0) and the terminal `t` (any
/// in-degree); and the graph is acyclic.
///
/// Acyclicity is implied for finite graphs when every internal vertex has in-degree
/// exactly one and the root has none *and* every vertex is reachable from the root;
/// since generators can produce unreachable vertices, the check is explicit here.
pub fn is_grounded_tree(network: &Network) -> bool {
    let g = network.graph();
    for v in network.internal_nodes() {
        if g.in_degree(v) != 1 {
            return false;
        }
    }
    g.in_degree(network.root()) == 0 && is_dag(g)
}

/// Returns `true` if every vertex of the network is reachable from the root — the
/// standing assumption of Section 2 ("to simplify our presentation, we assume that
/// all vertices in G are reachable from s").
pub fn all_reachable_from_root(network: &Network) -> bool {
    reachable_from(network.graph(), network.root())
        .into_iter()
        .all(|b| b)
}

/// Returns `true` if every vertex of the network is connected to the terminal —
/// the termination condition of Theorems 3.1, 4.2 and 5.1.
pub fn all_connected_to_terminal(network: &Network) -> bool {
    coreachable_to(network.graph(), network.terminal())
        .into_iter()
        .all(|b| b)
}

/// The vertices reachable from the root but *not* connected to the terminal — the
/// vertices that make the protocols (correctly) refuse to terminate.
pub fn stranded_vertices(network: &Network) -> Vec<NodeId> {
    let reach = reachable_from(network.graph(), network.root());
    let coreach = coreachable_to(network.graph(), network.terminal());
    network
        .graph()
        .nodes()
        .filter(|n| reach[n.index()] && !coreach[n.index()])
        .collect()
}

/// Summary statistics of a network, used by benchmark tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total number of vertices (including `s` and `t`).
    pub nodes: usize,
    /// Total number of edges.
    pub edges: usize,
    /// Maximum out-degree `d_out`.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Whether the underlying graph is acyclic.
    pub dag: bool,
    /// Whether the network is a grounded tree.
    pub grounded_tree: bool,
    /// Whether every vertex is reachable from the root.
    pub all_reachable: bool,
    /// Whether every vertex is connected to the terminal.
    pub all_coreachable: bool,
}

/// Computes [`NetworkStats`] for a network.
pub fn stats(network: &Network) -> NetworkStats {
    NetworkStats {
        nodes: network.node_count(),
        edges: network.edge_count(),
        max_out_degree: network.graph().max_out_degree(),
        max_in_degree: network.graph().max_in_degree(),
        dag: is_dag(network.graph()),
        grounded_tree: is_grounded_tree(network),
        all_reachable: all_reachable_from_root(network),
        all_coreachable: all_connected_to_terminal(network),
    }
}

/// Strongly connected components (Tarjan), returned as a component id per vertex
/// and the number of components. Vertices in the same cycle share a component.
pub fn strongly_connected_components(graph: &DiGraph) -> (Vec<usize>, usize) {
    #[derive(Clone, Copy)]
    struct Frame {
        node: usize,
        next_edge: usize,
    }
    let n = graph.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_count = 0usize;

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack = vec![Frame {
            node: start,
            next_edge: 0,
        }];
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = call_stack.last_mut() {
            let node = frame.node;
            let out = graph.out_edges(NodeId(node));
            if frame.next_edge < out.len() {
                let succ = graph.edge_dst(out[frame.next_edge]).index();
                frame.next_edge += 1;
                if index[succ] == usize::MAX {
                    index[succ] = next_index;
                    lowlink[succ] = next_index;
                    next_index += 1;
                    stack.push(succ);
                    on_stack[succ] = true;
                    call_stack.push(Frame {
                        node: succ,
                        next_edge: 0,
                    });
                } else if on_stack[succ] {
                    lowlink[node] = lowlink[node].min(index[succ]);
                }
            } else {
                call_stack.pop();
                if let Some(parent) = call_stack.last() {
                    lowlink[parent.node] = lowlink[parent.node].min(lowlink[node]);
                }
                if lowlink[node] == index[node] {
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == node {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp, comp_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;
    use crate::Network;

    fn chain3() -> Network {
        // s -> a -> b -> t with a -> t shortcut: a grounded tree.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(a, t);
        g.add_edge(b, t);
        Network::new(g, s, t).unwrap()
    }

    fn diamond() -> Network {
        // s -> a -> {b, c} -> d -> t : a DAG but not a grounded tree (d has in-degree 2).
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g.add_edge(d, t);
        Network::new(g, s, t).unwrap()
    }

    fn with_cycle() -> Network {
        // s -> a -> b -> a (cycle), b -> t.
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.add_edge(b, t);
        Network::new(g, s, t).unwrap()
    }

    #[test]
    fn topological_order_on_dag() {
        let net = diamond();
        let order = topological_order(net.graph()).unwrap();
        assert_eq!(order.len(), net.node_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; net.node_count()];
            for (i, n) in order.iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        for e in net.graph().edges() {
            let (u, v) = net.graph().edge_endpoints(e);
            assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn cycle_detection() {
        assert!(is_dag(chain3().graph()));
        assert!(is_dag(diamond().graph()));
        assert!(!is_dag(with_cycle().graph()));
        assert!(topological_order(with_cycle().graph()).is_none());
    }

    #[test]
    fn grounded_tree_detection() {
        assert!(is_grounded_tree(&chain3()));
        assert!(!is_grounded_tree(&diamond()));
        assert!(!is_grounded_tree(&with_cycle()));
    }

    #[test]
    fn reachability_predicates() {
        for net in [chain3(), diamond(), with_cycle()] {
            assert!(all_reachable_from_root(&net));
            assert!(all_connected_to_terminal(&net));
            assert!(stranded_vertices(&net).is_empty());
        }
    }

    #[test]
    fn stranded_vertex_is_reported() {
        // s -> a -> t and a -> dead (dead has no path to t).
        let mut g = DiGraph::new();
        let s = g.add_node();
        let a = g.add_node();
        let dead = g.add_node();
        let t = g.add_node();
        g.add_edge(s, a);
        g.add_edge(a, dead);
        g.add_edge(a, t);
        let net = Network::new(g, s, t).unwrap();
        assert!(!all_connected_to_terminal(&net));
        assert_eq!(stranded_vertices(&net), vec![dead]);
        assert!(all_reachable_from_root(&net));
    }

    #[test]
    fn stats_summarises_network() {
        let st = stats(&diamond());
        assert_eq!(st.nodes, 6);
        assert_eq!(st.edges, 6);
        assert_eq!(st.max_out_degree, 2);
        assert!(st.dag);
        assert!(!st.grounded_tree);
        assert!(st.all_reachable);
        assert!(st.all_coreachable);
    }

    #[test]
    fn scc_groups_cycle_vertices() {
        let net = with_cycle();
        let (comp, count) = strongly_connected_components(net.graph());
        // a and b share a component; s, t are singletons.
        assert_eq!(count, 3);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[3], comp[1]);
    }

    #[test]
    fn scc_on_dag_is_all_singletons() {
        let net = diamond();
        let (comp, count) = strongly_connected_components(net.graph());
        assert_eq!(count, net.node_count());
        let mut sorted = comp.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), net.node_count());
    }
}
