//! The `(G, s, t)` network model of Section 2.

use std::fmt;

use crate::{DiGraph, NodeId};

/// Errors raised when a graph does not satisfy the model's structural assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The root has incoming edges (the model requires in-degree zero).
    RootHasIncomingEdges {
        /// Offending in-degree.
        in_degree: usize,
    },
    /// The root's out-degree differs from one (the base model requires exactly one
    /// outgoing edge; the multi-root extension is handled by adding a super-root).
    RootOutDegree {
        /// Offending out-degree.
        out_degree: usize,
    },
    /// The terminal has outgoing edges (the model requires out-degree zero).
    TerminalHasOutgoingEdges {
        /// Offending out-degree.
        out_degree: usize,
    },
    /// The root and terminal are the same vertex.
    RootIsTerminal,
    /// A vertex id does not belong to the graph.
    UnknownNode(NodeId),
    /// A generator was asked for a degenerate size (e.g. a chain with zero internal
    /// vertices, or a tree of arity below two for the pruning construction).
    InvalidParameter(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::RootHasIncomingEdges { in_degree } => {
                write!(f, "root must have in-degree 0 but has {in_degree}")
            }
            NetworkError::RootOutDegree { out_degree } => {
                write!(f, "root must have out-degree 1 but has {out_degree}")
            }
            NetworkError::TerminalHasOutgoingEdges { out_degree } => {
                write!(f, "terminal must have out-degree 0 but has {out_degree}")
            }
            NetworkError::RootIsTerminal => write!(f, "root and terminal must be distinct"),
            NetworkError::UnknownNode(n) => write!(f, "vertex {n} is not part of the graph"),
            NetworkError::InvalidParameter(s) => write!(f, "invalid generator parameter: {s}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated anonymous-network instance: a directed graph together with its root
/// `s` and terminal `t`.
///
/// Construction enforces the structural assumptions of Section 2 of the paper:
/// `s` has no incoming edges and exactly one outgoing edge, `t` has no outgoing
/// edges, and `s ≠ t`. Everything else (reachability, acyclicity, …) is a property
/// of particular graph families and is checked by [`crate::classify`] instead.
///
/// # Example
///
/// ```
/// use anet_graph::{DiGraph, Network};
///
/// let mut g = DiGraph::new();
/// let s = g.add_node();
/// let v = g.add_node();
/// let t = g.add_node();
/// g.add_edge(s, v);
/// g.add_edge(v, t);
/// let network = Network::new(g, s, t)?;
/// assert_eq!(network.internal_nodes().count(), 1);
/// # Ok::<(), anet_graph::NetworkError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    graph: DiGraph,
    root: NodeId,
    terminal: NodeId,
}

impl Network {
    /// Validates and wraps a `(G, s, t)` triple.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] describing the first violated model assumption.
    pub fn new(graph: DiGraph, root: NodeId, terminal: NodeId) -> Result<Self, NetworkError> {
        if root.index() >= graph.node_count() {
            return Err(NetworkError::UnknownNode(root));
        }
        if terminal.index() >= graph.node_count() {
            return Err(NetworkError::UnknownNode(terminal));
        }
        if root == terminal {
            return Err(NetworkError::RootIsTerminal);
        }
        if graph.in_degree(root) != 0 {
            return Err(NetworkError::RootHasIncomingEdges {
                in_degree: graph.in_degree(root),
            });
        }
        if graph.out_degree(root) != 1 {
            return Err(NetworkError::RootOutDegree {
                out_degree: graph.out_degree(root),
            });
        }
        if graph.out_degree(terminal) != 0 {
            return Err(NetworkError::TerminalHasOutgoingEdges {
                out_degree: graph.out_degree(terminal),
            });
        }
        Ok(Network {
            graph,
            root,
            terminal,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The root vertex `s`.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The terminal vertex `t`.
    pub fn terminal(&self) -> NodeId {
        self.terminal
    }

    /// Iterates over the internal vertices (`V \ {s, t}`).
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let (root, terminal) = (self.root, self.terminal);
        self.graph
            .nodes()
            .filter(move |&n| n != root && n != terminal)
    }

    /// Number of internal vertices.
    pub fn internal_count(&self) -> usize {
        self.graph.node_count() - 2
    }

    /// `|V|` of the underlying graph (including `s` and `t`).
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// `|E|` of the underlying graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// `d_out`: the maximum out-degree, the parameter appearing in the paper's
    /// general-graph bounds.
    pub fn max_out_degree(&self) -> usize {
        self.graph.max_out_degree()
    }

    /// Decomposes the network back into its parts.
    pub fn into_parts(self) -> (DiGraph, NodeId, NodeId) {
        (self.graph, self.root, self.terminal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> (DiGraph, NodeId, NodeId, NodeId) {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let v = g.add_node();
        let t = g.add_node();
        g.add_edge(s, v);
        g.add_edge(v, t);
        (g, s, v, t)
    }

    #[test]
    fn valid_network_is_accepted() {
        let (g, s, v, t) = path_graph();
        let n = Network::new(g, s, t).unwrap();
        assert_eq!(n.root(), s);
        assert_eq!(n.terminal(), t);
        assert_eq!(n.internal_count(), 1);
        assert_eq!(n.internal_nodes().collect::<Vec<_>>(), vec![v]);
        assert_eq!(n.node_count(), 3);
        assert_eq!(n.edge_count(), 2);
        assert_eq!(n.max_out_degree(), 1);
    }

    #[test]
    fn root_with_incoming_edge_is_rejected() {
        let (mut g, s, v, t) = path_graph();
        g.add_edge(v, s);
        assert_eq!(
            Network::new(g, s, t).unwrap_err(),
            NetworkError::RootHasIncomingEdges { in_degree: 1 }
        );
    }

    #[test]
    fn root_out_degree_must_be_one() {
        let (mut g, s, v, t) = path_graph();
        g.add_edge(s, v);
        assert_eq!(
            Network::new(g.clone(), s, t).unwrap_err(),
            NetworkError::RootOutDegree { out_degree: 2 }
        );
        let mut lonely = DiGraph::new();
        let s2 = lonely.add_node();
        let t2 = lonely.add_node();
        assert_eq!(
            Network::new(lonely, s2, t2).unwrap_err(),
            NetworkError::RootOutDegree { out_degree: 0 }
        );
    }

    #[test]
    fn terminal_with_outgoing_edge_is_rejected() {
        let (mut g, s, v, t) = path_graph();
        g.add_edge(t, v);
        assert_eq!(
            Network::new(g, s, t).unwrap_err(),
            NetworkError::TerminalHasOutgoingEdges { out_degree: 1 }
        );
    }

    #[test]
    fn root_equals_terminal_is_rejected() {
        let (g, s, _, _) = path_graph();
        assert_eq!(
            Network::new(g, s, s).unwrap_err(),
            NetworkError::RootIsTerminal
        );
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let (g, s, _, _) = path_graph();
        assert_eq!(
            Network::new(g.clone(), NodeId(99), s).unwrap_err(),
            NetworkError::UnknownNode(NodeId(99))
        );
        assert_eq!(
            Network::new(g, s, NodeId(99)).unwrap_err(),
            NetworkError::UnknownNode(NodeId(99))
        );
    }

    #[test]
    fn into_parts_round_trips() {
        let (g, s, _, t) = path_graph();
        let n = Network::new(g, s, t).unwrap();
        let (g2, s2, t2) = n.into_parts();
        assert_eq!(s2, s);
        assert_eq!(t2, t);
        assert_eq!(g2.edge_count(), 2);
    }

    #[test]
    fn errors_are_displayable() {
        let errs: Vec<NetworkError> = vec![
            NetworkError::RootHasIncomingEdges { in_degree: 2 },
            NetworkError::RootOutDegree { out_degree: 0 },
            NetworkError::TerminalHasOutgoingEdges { out_degree: 3 },
            NetworkError::RootIsTerminal,
            NetworkError::UnknownNode(NodeId(7)),
            NetworkError::InvalidParameter("n must be positive".to_owned()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
