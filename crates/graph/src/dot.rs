//! Graphviz (DOT) export for visual inspection of generated topologies.

use crate::Network;

/// Renders the network in Graphviz DOT syntax.
///
/// The root is drawn as a double circle labelled `s`, the terminal as a double
/// circle labelled `t`, and internal vertices as plain circles. Optional per-vertex
/// labels (e.g. assigned protocol labels) can be supplied via [`to_dot_with_labels`].
pub fn to_dot(network: &Network) -> String {
    to_dot_with_labels(network, |_| None)
}

/// Renders the network in DOT syntax with caller-provided extra labels.
///
/// The closure receives each vertex id and may return an additional label line that
/// is appended to the vertex name.
pub fn to_dot_with_labels<F>(network: &Network, extra: F) -> String
where
    F: Fn(crate::NodeId) -> Option<String>,
{
    let g = network.graph();
    let mut out = String::from("digraph anet {\n  rankdir=TB;\n");
    for node in g.nodes() {
        let base = if node == network.root() {
            "s".to_owned()
        } else if node == network.terminal() {
            "t".to_owned()
        } else {
            format!("v{}", node.index())
        };
        let label = match extra(node) {
            Some(more) => format!("{base}\\n{more}"),
            None => base,
        };
        let shape = if node == network.root() || node == network.terminal() {
            "doublecircle"
        } else {
            "circle"
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            node.index(),
            label,
            shape
        ));
    }
    for edge in g.edges() {
        let (u, v) = g.edge_endpoints(edge);
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{}\"];\n",
            u.index(),
            v.index(),
            g.out_port(edge)
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chain_gn;

    #[test]
    fn dot_output_mentions_every_vertex_and_edge() {
        let net = chain_gn(3).unwrap();
        let dot = to_dot(&net);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("doublecircle"));
        assert_eq!(dot.matches(" -> ").count(), net.edge_count());
        for node in net.graph().nodes() {
            assert!(dot.contains(&format!("n{} [", node.index())));
        }
    }

    #[test]
    fn extra_labels_are_included() {
        let net = chain_gn(2).unwrap();
        let dot = to_dot_with_labels(&net, |n| Some(format!("deg={}", net.graph().out_degree(n))));
        assert!(dot.contains("deg=2"));
    }
}
