//! Canonical labelings of networks: isomorphic instances, one form.
//!
//! A sweep unit's outcome is a pure function of the network *shape* — the
//! anonymous protocols never observe vertex ids, only degrees and port
//! indices — so two isomorphic topologies bought at different generator
//! parameters are the same experiment twice. This module computes a
//! deterministic canonical relabeling so that equivalence can be detected by
//! plain equality:
//!
//! 1. **Degree refinement** ([Weisfeiler–Leman] style): vertices start
//!    colored by `(in-degree, out-degree, is-root, is-terminal)` and colors
//!    are repeatedly split by the multiset of neighbor colors until the
//!    partition stabilizes. Colors are densely re-ranked from sorted
//!    signatures, so they are invariant under vertex relabeling.
//! 2. **Tie-broken greedy relabeling**: starting from the root (canonical id
//!    0), the next canonical id goes to the frontier vertex with the least
//!    `(color, sorted connections-to-already-assigned)` key. Remaining ties
//!    fall back to the input index — by then the tied vertices are
//!    interchangeable for every family our generators produce, which is the
//!    regime this pass is built for (it is a refinement-guided greedy search,
//!    not a full graph-canonization algorithm with backtracking).
//!
//! The result is a [`CanonicalForm`] — an edge list under canonical ids,
//! comparable with `==` — plus the permutation that produced it, and a stable
//! [`Fnv1a`]-based fingerprint for content-addressing. Consumers that need
//! *correctness* (the sweep's dedup clusters) compare whole forms; the
//! fingerprint only names cache entries, where a collision is detectable.
//!
//! [Weisfeiler–Leman]: https://en.wikipedia.org/wiki/Weisfeiler_Leman_graph_isomorphism_test
//!
//! # Example
//!
//! ```
//! use anet_graph::canon::{canonical_fingerprint, canonical_form};
//! use anet_graph::{DiGraph, Network};
//!
//! # fn main() -> Result<(), anet_graph::NetworkError> {
//! // The same path s -> v -> t built with two different vertex numberings.
//! let mut g1 = DiGraph::new();
//! let (s1, v1, t1) = (g1.add_node(), g1.add_node(), g1.add_node());
//! g1.add_edge(s1, v1);
//! g1.add_edge(v1, t1);
//! let mut g2 = DiGraph::new();
//! let (t2, v2, s2) = (g2.add_node(), g2.add_node(), g2.add_node());
//! g2.add_edge(v2, t2);
//! g2.add_edge(s2, v2);
//! let a = Network::new(g1, s1, t1)?;
//! let b = Network::new(g2, s2, t2)?;
//! assert_eq!(canonical_form(&a).form, canonical_form(&b).form);
//! assert_eq!(canonical_fingerprint(&a), canonical_fingerprint(&b));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use anet_num::Fnv1a;

use crate::{Csr, DiGraph, Network, NetworkError, NodeId};

/// A network under canonical vertex ids: node count, root, terminal, and the
/// sorted directed edge list (with multiplicity — parallel edges stay
/// parallel).
///
/// Two networks have equal canonical forms exactly when this module's
/// labeling maps them to the same object; for the generator families in this
/// workspace that coincides with graph isomorphism (respecting root and
/// terminal). Equality of forms is exact — no hashing involved — so it is
/// safe to key deduplication on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalForm {
    /// `|V|` of the network (including root and terminal).
    pub node_count: usize,
    /// Canonical id of the root (always 0: the root seeds the relabeling).
    pub root: usize,
    /// Canonical id of the terminal.
    pub terminal: usize,
    /// Directed edges `(src, dst)` under canonical ids, sorted.
    pub edges: Vec<(usize, usize)>,
}

impl CanonicalForm {
    /// A stable one-line text encoding, the byte string behind
    /// [`CanonicalForm::fingerprint`] and the sweep's cache keys.
    ///
    /// The format is versioned (`canon-v1`) so a future labeling change
    /// invalidates old cache entries instead of silently aliasing them.
    pub fn encode(&self) -> String {
        let mut s = format!(
            "canon-v1 n={} s={} t={} m={}",
            self.node_count,
            self.root,
            self.terminal,
            self.edges.len()
        );
        for &(a, b) in &self.edges {
            s.push_str(&format!(" {a}>{b}"));
        }
        s
    }

    /// Stable 64-bit FNV-1a digest of [`CanonicalForm::encode`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.encode().as_bytes());
        h.finish()
    }

    /// Rebuilds a concrete [`Network`] carrying exactly this form.
    ///
    /// Edges are inserted in sorted order, so each vertex's out-ports are
    /// ordered by destination id — a deterministic function of the form
    /// alone. Canonicalizing the rebuilt network yields this same form back
    /// (the labeling is idempotent).
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if the form does not describe a valid
    /// network; forms produced by [`canonical_form`] always rebuild.
    pub fn to_network(&self) -> Result<Network, NetworkError> {
        let mut g = DiGraph::with_capacity(self.node_count);
        g.add_nodes(self.node_count);
        for &(a, b) in &self.edges {
            if a >= self.node_count {
                return Err(NetworkError::UnknownNode(NodeId(a)));
            }
            if b >= self.node_count {
                return Err(NetworkError::UnknownNode(NodeId(b)));
            }
            g.add_edge(NodeId(a), NodeId(b));
        }
        Network::new(g, NodeId(self.root), NodeId(self.terminal))
    }
}

/// The output of [`canonical_form`]: the canonical form plus the relabeling
/// that produced it, so per-vertex results on the canonical network can be
/// mapped back to the original ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalLabeling {
    /// `permutation[old_index] = canonical_index`.
    pub permutation: Vec<usize>,
    /// The network under canonical ids.
    pub form: CanonicalForm,
}

/// Densely ranks values by their sorted order: equal inputs share a rank,
/// ranks start at 0 and follow `Ord`. The ranking is a pure function of the
/// multiset of inputs, which is what makes refinement colors label-invariant.
fn dense_rank<T: Ord>(values: Vec<T>) -> (Vec<usize>, usize) {
    let mut ranks: BTreeMap<&T, usize> = values.iter().map(|v| (v, 0)).collect();
    let distinct = ranks.len();
    for (i, (_, rank)) in ranks.iter_mut().enumerate() {
        *rank = i;
    }
    let out = values.iter().map(|v| ranks[v]).collect();
    (out, distinct)
}

/// Color refinement to a fixed point. Initial colors are
/// `(in-degree, out-degree, is-root, is-terminal)`; each round splits colors
/// by the sorted multisets of out- and in-neighbor colors. Stops when a round
/// no longer increases the number of distinct colors (the partition is
/// equitable from then on).
fn refined_colors(network: &Network, csr: &Csr) -> Vec<usize> {
    let n = csr.node_count();
    let init: Vec<(usize, usize, bool, bool)> = (0..n)
        .map(|v| {
            (
                csr.in_degree(v as u32),
                csr.out_degree(v as u32),
                NodeId(v) == network.root(),
                NodeId(v) == network.terminal(),
            )
        })
        .collect();
    let (mut colors, mut distinct) = dense_rank(init);
    while distinct < n {
        let sigs: Vec<(usize, Vec<usize>, Vec<usize>)> = (0..n)
            .map(|v| {
                let mut out: Vec<usize> = csr
                    .successors(v as u32)
                    .map(|u| colors[u as usize])
                    .collect();
                out.sort_unstable();
                let mut inc: Vec<usize> = csr
                    .predecessors(v as u32)
                    .map(|u| colors[u as usize])
                    .collect();
                inc.sort_unstable();
                (colors[v], out, inc)
            })
            .collect();
        let (next, next_distinct) = dense_rank(sigs);
        if next_distinct == distinct {
            break;
        }
        colors = next;
        distinct = next_distinct;
    }
    colors
}

/// Computes the canonical labeling of a network: refinement colors, then a
/// greedy root-first relabeling with `(color, connections-to-assigned)`
/// tie-breaking. See the module docs for the algorithm and its contract.
pub fn canonical_form(network: &Network) -> CanonicalLabeling {
    // All adjacency below goes through the flat CSR view; ids are shared with
    // the source graph, so the resulting form is byte-identical to one
    // computed over `DiGraph` walks (the `canon-v1` encoding is pinned by the
    // sweep cache).
    let csr = Csr::from_graph(network.graph());
    let n = csr.node_count();
    let colors = refined_colors(network, &csr);

    let mut assigned: Vec<Option<usize>> = vec![None; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    assigned[network.root().index()] = Some(0);
    order.push(network.root().index());

    // One vertex per round: among unassigned vertices touching the assigned
    // set (either direction), take the least (color, sorted pattern of
    // (direction, assigned id) connections, input index). The pattern is
    // recomputed every round, so each assignment sharpens the next choice.
    type RoundKey = (usize, Vec<(u8, usize)>, usize);
    loop {
        let mut best: Option<RoundKey> = None;
        for v in 0..n {
            if assigned[v].is_some() {
                continue;
            }
            let mut pattern: Vec<(u8, usize)> = Vec::new();
            for u in csr.predecessors(v as u32) {
                if let Some(id) = assigned[u as usize] {
                    pattern.push((0, id));
                }
            }
            for u in csr.successors(v as u32) {
                if let Some(id) = assigned[u as usize] {
                    pattern.push((1, id));
                }
            }
            if pattern.is_empty() {
                continue;
            }
            pattern.sort_unstable();
            let key = (colors[v], pattern, v);
            if best.as_ref().is_none_or(|b| key < *b) {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, v)) => {
                assigned[v] = Some(order.len());
                order.push(v);
            }
            None => break,
        }
    }

    // Vertices in components not touching the root's (generators never
    // produce these, but the form must still be total): by (color, index).
    let mut rest: Vec<usize> = (0..n).filter(|&v| assigned[v].is_none()).collect();
    rest.sort_unstable_by_key(|&v| (colors[v], v));
    for v in rest {
        assigned[v] = Some(order.len());
        order.push(v);
    }

    let permutation: Vec<usize> = (0..n)
        .map(|v| assigned[v].expect("labeling is total"))
        .collect();
    let mut edges: Vec<(usize, usize)> = (0..csr.edge_count() as u32)
        .map(|e| {
            (
                permutation[csr.edge_src(e) as usize],
                permutation[csr.edge_dst(e) as usize],
            )
        })
        .collect();
    edges.sort_unstable();
    CanonicalLabeling {
        form: CanonicalForm {
            node_count: n,
            root: permutation[network.root().index()],
            terminal: permutation[network.terminal().index()],
            edges,
        },
        permutation,
    }
}

/// The stable 64-bit fingerprint of a network's canonical form: equal for
/// isomorphic networks (root- and terminal-respecting), stable across
/// platforms and runs.
pub fn canonical_fingerprint(network: &Network) -> u64 {
    canonical_form(network).form.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chain_gn, nested_cycles, star_network};

    /// Rebuilds `network` with vertex `v` renamed to `perm[v]` and edges
    /// inserted in a rotated order, exercising id- and port-independence.
    fn relabel(network: &Network, perm: &[usize], rotate: usize) -> Network {
        let g = network.graph();
        let mut h = DiGraph::with_capacity(g.node_count());
        h.add_nodes(g.node_count());
        let edges: Vec<_> = g.edges().collect();
        for i in 0..edges.len() {
            let e = edges[(i + rotate) % edges.len()];
            let (src, dst) = g.edge_endpoints(e);
            h.add_edge(NodeId(perm[src.index()]), NodeId(perm[dst.index()]));
        }
        Network::new(
            h,
            NodeId(perm[network.root().index()]),
            NodeId(perm[network.terminal().index()]),
        )
        .expect("relabeling preserves network validity")
    }

    #[test]
    fn permutation_is_a_bijection_rooted_at_zero() {
        let network = chain_gn(5).unwrap();
        let labeling = canonical_form(&network);
        let mut seen = vec![false; labeling.permutation.len()];
        for &p in &labeling.permutation {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert_eq!(labeling.form.root, 0);
        assert_eq!(labeling.permutation[network.root().index()], 0);
        assert_eq!(labeling.form.node_count, network.node_count());
        assert_eq!(labeling.form.edges.len(), network.edge_count());
    }

    #[test]
    fn relabeled_networks_share_form_and_fingerprint() {
        for network in [
            chain_gn(6).unwrap(),
            star_network(4).unwrap(),
            nested_cycles(2, 4).unwrap(),
        ] {
            let base = canonical_form(&network);
            let n = network.node_count();
            // A reversal and a rotation of the id space, plus edge-order shifts.
            let reversal: Vec<usize> = (0..n).rev().collect();
            let rotation: Vec<usize> = (0..n).map(|v| (v + 3) % n).collect();
            for perm in [reversal, rotation] {
                for rotate in [0, 1, 2] {
                    let other = relabel(&network, &perm, rotate);
                    let got = canonical_form(&other);
                    assert_eq!(got.form, base.form);
                    assert_eq!(got.form.fingerprint(), base.form.fingerprint());
                }
            }
        }
    }

    #[test]
    fn to_network_round_trips_and_labeling_is_idempotent() {
        let network = nested_cycles(3, 5).unwrap();
        let labeling = canonical_form(&network);
        let rebuilt = labeling.form.to_network().unwrap();
        assert_eq!(rebuilt.node_count(), network.node_count());
        assert_eq!(rebuilt.edge_count(), network.edge_count());
        let again = canonical_form(&rebuilt);
        assert_eq!(again.form, labeling.form);
        // The rebuilt network is already canonically labeled.
        let identity: Vec<usize> = (0..rebuilt.node_count()).collect();
        assert_eq!(again.permutation, identity);
    }

    #[test]
    fn distinct_shapes_get_distinct_forms() {
        let chain = chain_gn(4).unwrap();
        let longer = chain_gn(5).unwrap();
        assert_ne!(canonical_form(&chain).form, canonical_form(&longer).form);
        assert_ne!(
            canonical_fingerprint(&chain),
            canonical_fingerprint(&longer)
        );
    }

    #[test]
    fn parallel_edges_keep_multiplicity() {
        let mut g = DiGraph::new();
        let s = g.add_node();
        let v = g.add_node();
        let t = g.add_node();
        g.add_edge(s, v);
        g.add_edge(v, t);
        g.add_edge(v, t);
        let network = Network::new(g, s, t).unwrap();
        let form = canonical_form(&network).form;
        assert_eq!(form.edges.len(), 3);
        let rebuilt = form.to_network().unwrap();
        assert_eq!(rebuilt.edge_count(), 3);
        assert_eq!(canonical_form(&rebuilt).form, form);
    }

    #[test]
    fn encode_is_stable_and_versioned() {
        let network = chain_gn(2).unwrap();
        let form = canonical_form(&network).form;
        let text = form.encode();
        assert!(text.starts_with("canon-v1 "));
        assert_eq!(text, canonical_form(&network).form.encode());
    }
}
