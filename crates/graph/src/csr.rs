//! Compressed sparse row (CSR) adjacency: the flat, cache-dense view of a
//! [`DiGraph`] used by the hot layers (the simulation engine and the
//! canonicalization refiner).
//!
//! [`DiGraph`] is the *construction* representation: per-node edge `Vec`s that
//! grow as generators add edges. Each adjacency access hops through two heap
//! allocations (`nodes[v].out_edges[j]`, then `edges[e]`), which is fine for
//! building topologies and fatal in a delivery loop that touches adjacency on
//! every message. [`Csr`] is the *execution* representation: built once per
//! run, it packs the same information into seven contiguous `u32` arrays —
//! per-node offset slices over one shared edge array (the classic CSR layout)
//! plus dense per-edge endpoint/port columns.
//!
//! # Invariants
//!
//! * Node ids, edge ids and ports are the **same dense indices** as in the
//!   source graph — `Csr::from_graph(g).edge_dst(e) == g.edge_dst(EdgeId(e))`
//!   for every edge. Nothing is renumbered, so ids can round-trip freely
//!   between the two representations.
//! * `out_edges(v)` and `in_edges(v)` preserve **port order**: element `j` of
//!   the slice is the edge on out-port (in-port) `j`, exactly like
//!   [`DiGraph::out_edges`].
//! * All counts fit `u32` (the simulator's scaling regime is n ≤ ~10⁷;
//!   construction asserts the bound rather than silently truncating).

use crate::graph::DiGraph;

/// A [`DiGraph`] flattened into contiguous offset/edge/endpoint arrays.
///
/// See the module-level docs for layout and invariants.
///
/// # Example
///
/// ```
/// use anet_graph::{Csr, DiGraph};
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b);
/// let csr = Csr::from_graph(&g);
/// assert_eq!(csr.out_edges(0), &[e.index() as u32]);
/// assert_eq!(csr.edge_dst(e.index() as u32), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `out_offsets[v]..out_offsets[v + 1]` indexes `out_edges`.
    out_offsets: Vec<u32>,
    /// Edge ids grouped by source node, in out-port order.
    out_edges: Vec<u32>,
    /// `in_offsets[v]..in_offsets[v + 1]` indexes `in_edges`.
    in_offsets: Vec<u32>,
    /// Edge ids grouped by destination node, in in-port order.
    in_edges: Vec<u32>,
    /// Per-edge source node.
    edge_src: Vec<u32>,
    /// Per-edge destination node.
    edge_dst: Vec<u32>,
    /// Per-edge in-port at the destination.
    edge_in_port: Vec<u32>,
}

impl Csr {
    /// Flattens `g` into CSR form. O(V + E); ids and port order are preserved
    /// exactly (see the module-level docs).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` nodes or edges.
    pub fn from_graph(g: &DiGraph) -> Csr {
        let n = g.node_count();
        let m = g.edge_count();
        assert!(
            u32::try_from(n).is_ok() && u32::try_from(m).is_ok(),
            "graph too large for the u32 CSR layout"
        );
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_edges = Vec::with_capacity(m);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_edges = Vec::with_capacity(m);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in g.nodes() {
            out_edges.extend(g.out_edges(v).iter().map(|e| e.index() as u32));
            out_offsets.push(out_edges.len() as u32);
            in_edges.extend(g.in_edges(v).iter().map(|e| e.index() as u32));
            in_offsets.push(in_edges.len() as u32);
        }
        let mut edge_src = Vec::with_capacity(m);
        let mut edge_dst = Vec::with_capacity(m);
        let mut edge_in_port = Vec::with_capacity(m);
        for e in g.edges() {
            edge_src.push(g.edge_src(e).index() as u32);
            edge_dst.push(g.edge_dst(e).index() as u32);
            edge_in_port.push(g.in_port(e) as u32);
        }
        Csr {
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            edge_src,
            edge_dst,
            edge_in_port,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_src.len()
    }

    /// Out-degree of node `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as usize
    }

    /// In-degree of node `v`.
    pub fn in_degree(&self, v: u32) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// The ordered out-edges (by out-port) of node `v`, as a contiguous slice.
    pub fn out_edges(&self, v: u32) -> &[u32] {
        &self.out_edges
            [self.out_offsets[v as usize] as usize..self.out_offsets[v as usize + 1] as usize]
    }

    /// The ordered in-edges (by in-port) of node `v`, as a contiguous slice.
    pub fn in_edges(&self, v: u32) -> &[u32] {
        &self.in_edges
            [self.in_offsets[v as usize] as usize..self.in_offsets[v as usize + 1] as usize]
    }

    /// Source node of edge `e`.
    pub fn edge_src(&self, e: u32) -> u32 {
        self.edge_src[e as usize]
    }

    /// Destination node of edge `e`.
    pub fn edge_dst(&self, e: u32) -> u32 {
        self.edge_dst[e as usize]
    }

    /// In-port of edge `e` at its destination.
    pub fn in_port(&self, e: u32) -> usize {
        self.edge_in_port[e as usize] as usize
    }

    /// Successor nodes of `v` (with multiplicity, in out-port order).
    pub fn successors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.out_edges(v)
            .iter()
            .map(move |&e| self.edge_dst[e as usize])
    }

    /// Predecessor nodes of `v` (with multiplicity, in in-port order).
    pub fn predecessors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.in_edges(v)
            .iter()
            .map(move |&e| self.edge_src[e as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DiGraph, EdgeId, NodeId};

    fn sample() -> DiGraph {
        // Parallel edges and a self-loop, to pin port ordering.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, b); // parallel
        g.add_edge(b, c);
        g.add_edge(c, c); // self-loop
        g.add_edge(b, a);
        g
    }

    #[test]
    fn csr_mirrors_digraph_exactly() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for v in g.nodes() {
            let vid = v.index() as u32;
            assert_eq!(csr.out_degree(vid), g.out_degree(v));
            assert_eq!(csr.in_degree(vid), g.in_degree(v));
            let outs: Vec<u32> = g.out_edges(v).iter().map(|e| e.index() as u32).collect();
            assert_eq!(csr.out_edges(vid), &outs[..]);
            let ins: Vec<u32> = g.in_edges(v).iter().map(|e| e.index() as u32).collect();
            assert_eq!(csr.in_edges(vid), &ins[..]);
            let succ: Vec<u32> = g.successors(v).map(|n| n.index() as u32).collect();
            assert_eq!(csr.successors(vid).collect::<Vec<_>>(), succ);
            let pred: Vec<u32> = g.predecessors(v).map(|n| n.index() as u32).collect();
            assert_eq!(csr.predecessors(vid).collect::<Vec<_>>(), pred);
        }
        for e in g.edges() {
            let eid = e.index() as u32;
            assert_eq!(csr.edge_src(eid), g.edge_src(e).index() as u32);
            assert_eq!(csr.edge_dst(eid), g.edge_dst(e).index() as u32);
            assert_eq!(csr.in_port(eid), g.in_port(e));
        }
    }

    #[test]
    fn csr_round_trips_ids() {
        let g = sample();
        let csr = Csr::from_graph(&g);
        // Ids are preserved, never renumbered: slice position j is out-port j.
        for v in g.nodes() {
            for (port, &e) in csr.out_edges(v.index() as u32).iter().enumerate() {
                assert_eq!(g.out_port(EdgeId(e as usize)), port);
                assert_eq!(g.edge_src(EdgeId(e as usize)), NodeId(v.index()));
            }
        }
    }

    #[test]
    fn empty_graph_flattens() {
        let csr = Csr::from_graph(&DiGraph::new());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
