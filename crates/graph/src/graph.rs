//! Directed multigraphs with ordered ports.

use std::fmt;

/// Identifier of a vertex in a [`DiGraph`].
///
/// Node ids are dense indices assigned in insertion order; they are *simulation
/// bookkeeping only* — the anonymous protocols never observe them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifier of a directed edge in a [`DiGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl EdgeId {
    /// The dense index of this edge.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug, Default)]
struct NodeData {
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

#[derive(Clone, Debug)]
struct EdgeData {
    src: NodeId,
    dst: NodeId,
    /// Position of this edge in `src`'s ordered out-edge list (the out-port).
    out_port: usize,
    /// Position of this edge in `dst`'s ordered in-edge list (the in-port).
    in_port: usize,
}

/// A directed multigraph with ordered in/out ports per vertex.
///
/// Parallel edges and self-loops are allowed (the model does not forbid them, and
/// cyclic test topologies use self-loops to exercise the β-carrying path).
///
/// # Example
///
/// ```
/// use anet_graph::DiGraph;
///
/// let mut g = DiGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let e = g.add_edge(a, b);
/// assert_eq!(g.out_degree(a), 1);
/// assert_eq!(g.edge_src(e), a);
/// assert_eq!(g.out_port(e), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates an empty graph with room for `nodes` vertices.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::new(),
        }
    }

    /// Adds a vertex and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.nodes.push(NodeData::default());
        NodeId(self.nodes.len() - 1)
    }

    /// Adds `count` vertices and returns their ids.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Adds a directed edge `src -> dst` and returns its id.
    ///
    /// The edge is appended to `src`'s out-port list and `dst`'s in-port list, so
    /// port numbers reflect insertion order.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a vertex of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> EdgeId {
        assert!(src.0 < self.nodes.len(), "source {src} out of bounds");
        assert!(dst.0 < self.nodes.len(), "destination {dst} out of bounds");
        let id = EdgeId(self.edges.len());
        let out_port = self.nodes[src.0].out_edges.len();
        let in_port = self.nodes[dst.0].in_edges.len();
        self.edges.push(EdgeData {
            src,
            dst,
            out_port,
            in_port,
        });
        self.nodes[src.0].out_edges.push(id);
        self.nodes[dst.0].in_edges.push(id);
        id
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.nodes[node.0].out_edges.len()
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.nodes[node.0].in_edges.len()
    }

    /// The ordered out-edges (by out-port) of a vertex.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.nodes[node.0].out_edges
    }

    /// The ordered in-edges (by in-port) of a vertex.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.nodes[node.0].in_edges
    }

    /// Source vertex of an edge.
    pub fn edge_src(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.0].src
    }

    /// Destination vertex of an edge.
    pub fn edge_dst(&self, edge: EdgeId) -> NodeId {
        self.edges[edge.0].dst
    }

    /// Both endpoints `(src, dst)` of an edge.
    pub fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        (self.edges[edge.0].src, self.edges[edge.0].dst)
    }

    /// The out-port of an edge: its index in the source's ordered out-edge list.
    pub fn out_port(&self, edge: EdgeId) -> usize {
        self.edges[edge.0].out_port
    }

    /// The in-port of an edge: its index in the destination's ordered in-edge list.
    pub fn in_port(&self, edge: EdgeId) -> usize {
        self.edges[edge.0].in_port
    }

    /// Successor vertices (with multiplicity, in out-port order).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[node.0]
            .out_edges
            .iter()
            .map(move |&e| self.edges[e.0].dst)
    }

    /// Predecessor vertices (with multiplicity, in in-port order).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[node.0]
            .in_edges
            .iter()
            .map(move |&e| self.edges[e.0].src)
    }

    /// Returns `true` if there is at least one edge `src -> dst`.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.nodes[src.0]
            .out_edges
            .iter()
            .any(|&e| self.edges[e.0].dst == dst)
    }

    /// Largest out-degree over all vertices (`d_out` in the paper's bounds);
    /// zero for the empty graph.
    pub fn max_out_degree(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.out_edges.len())
            .max()
            .unwrap_or(0)
    }

    /// Largest in-degree over all vertices; zero for the empty graph.
    pub fn max_in_degree(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.in_edges.len())
            .max()
            .unwrap_or(0)
    }

    /// The reverse graph (every edge flipped), preserving vertex ids.
    ///
    /// Port order in the reverse graph follows edge-insertion order, which is all
    /// the classification algorithms need.
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::with_capacity(self.node_count());
        g.add_nodes(self.node_count());
        for e in self.edges.iter() {
            g.add_edge(e.dst, e.src);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (DiGraph, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let nodes = g.add_nodes(3);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[1], nodes[2]);
        g.add_edge(nodes[2], nodes[0]);
        (g, nodes)
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_out_degree(), 0);
        assert_eq!(g.max_in_degree(), 0);
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, nodes) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for &n in &nodes {
            assert_eq!(g.out_degree(n), 1);
            assert_eq!(g.in_degree(n), 1);
        }
        assert!(g.has_edge(nodes[0], nodes[1]));
        assert!(!g.has_edge(nodes[1], nodes[0]));
    }

    #[test]
    fn ports_reflect_insertion_order() {
        let mut g = DiGraph::new();
        let hub = g.add_node();
        let spokes = g.add_nodes(4);
        let edge_ids: Vec<EdgeId> = spokes.iter().map(|&sp| g.add_edge(hub, sp)).collect();
        for (i, &e) in edge_ids.iter().enumerate() {
            assert_eq!(g.out_port(e), i);
            assert_eq!(g.in_port(e), 0);
            assert_eq!(g.out_edges(hub)[i], e);
        }
        assert_eq!(g.out_degree(hub), 4);
        let succ: Vec<NodeId> = g.successors(hub).collect();
        assert_eq!(succ, spokes);
    }

    #[test]
    fn parallel_edges_get_distinct_ports() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e1 = g.add_edge(a, b);
        let e2 = g.add_edge(a, b);
        assert_ne!(e1, e2);
        assert_eq!(g.out_port(e1), 0);
        assert_eq!(g.out_port(e2), 1);
        assert_eq!(g.in_port(e2), 1);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(b), 2);
    }

    #[test]
    fn self_loops_are_allowed() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let e = g.add_edge(a, a);
        assert_eq!(g.edge_endpoints(e), (a, a));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
    }

    #[test]
    fn reversed_flips_edges() {
        let (g, nodes) = triangle();
        let r = g.reversed();
        assert_eq!(r.node_count(), 3);
        assert_eq!(r.edge_count(), 3);
        assert!(r.has_edge(nodes[1], nodes[0]));
        assert!(r.has_edge(nodes[0], nodes[2]));
        assert!(!r.has_edge(nodes[0], nodes[1]));
    }

    #[test]
    fn degree_statistics() {
        let mut g = DiGraph::new();
        let hub = g.add_node();
        let sink = g.add_node();
        for _ in 0..5 {
            g.add_edge(hub, sink);
        }
        assert_eq!(g.max_out_degree(), 5);
        assert_eq!(g.max_in_degree(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn adding_edge_with_unknown_node_panics() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        g.add_edge(a, NodeId(17));
    }

    #[test]
    fn ids_are_displayable() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(4).to_string(), "e4");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }
}
