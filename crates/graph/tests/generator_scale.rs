//! n = 10⁴ smoke tests: every topology generator family at the scale the
//! `bench_scaling` grid runs it.
//!
//! One test per family. Each builds a network of (about) ten thousand nodes,
//! asserts the exact node count, the exact edge count where the family is
//! deterministic (bounds for the randomized families), and that the network
//! passed `Network::new` validation with every vertex reachable from the root
//! and connected to the terminal. The two quadratic-density families
//! (`complete_dag`, and the all-pairs probability loops make `random_dag` /
//! `random_cyclic` quadratic in *time* but not in edges) are held to sizes
//! whose edge counts stay comparable to the linear families — `complete_dag`
//! at n = 10⁴ would be 5·10⁷ edges, which is a memory test, not a generator
//! smoke test; its exact quadratic count is asserted instead.

use anet_graph::classify;
use anet_graph::generators::{
    chain_gn, complete_dag, cycle_with_tail, diamond_stack, full_grounded_tree, layered_dag,
    nested_cycles, path_network, random_cyclic, random_dag, random_grounded_tree, star_network,
};
use anet_graph::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 10_000;

/// The structural validity half of every assertion: `Network::new` accepted
/// the graph (the generator returned `Ok`), and the network is fully
/// connected in the sense all protocol theorems assume.
fn assert_valid(net: &Network, nodes: usize) {
    assert_eq!(net.node_count(), nodes);
    assert_ne!(net.root(), net.terminal());
    assert!(classify::all_reachable_from_root(net));
    assert!(classify::all_connected_to_terminal(net));
    assert!(classify::stranded_vertices(net).is_empty());
}

#[test]
fn chain_gn_at_scale() {
    let net = chain_gn(N).unwrap();
    assert_valid(&net, N + 2);
    assert_eq!(net.edge_count(), 2 * N);
    assert_eq!(net.max_out_degree(), 2);
}

#[test]
fn path_network_at_scale() {
    let net = path_network(N).unwrap();
    assert_valid(&net, N + 2);
    assert_eq!(net.edge_count(), N + 1);
    assert_eq!(net.max_out_degree(), 1);
}

#[test]
fn star_network_at_scale() {
    let net = star_network(N).unwrap();
    assert_valid(&net, N + 3);
    assert_eq!(net.edge_count(), 2 * N + 1);
    assert_eq!(net.max_out_degree(), N);
}

#[test]
fn full_grounded_tree_at_scale() {
    // Height 4, arity 10: (10⁵ − 1) / 9 = 11_111 internal vertices — the
    // exact shape of the 10⁴ row of the scaling bench grid.
    let net = full_grounded_tree(4, 10).unwrap();
    let internal = 11_111;
    let leaves = 10_000;
    assert_valid(&net, internal + 2);
    // s → root, internal − 1 tree edges, one edge per leaf to t.
    assert_eq!(net.edge_count(), 1 + (internal - 1) + leaves);
    assert_eq!(net.max_out_degree(), 10);
}

#[test]
fn random_grounded_tree_at_scale() {
    let mut rng = StdRng::seed_from_u64(0x00A1_1CE5);
    let net = random_grounded_tree(&mut rng, N, 4, 0.1).unwrap();
    assert_valid(&net, N + 2);
    // 1 root edge + N − 1 parent edges + between 1 and N terminal edges.
    assert!(net.edge_count() > N);
    assert!(net.edge_count() <= 2 * N + 1);
    assert!(classify::is_grounded_tree(&net));
}

#[test]
fn diamond_stack_at_scale() {
    let k = 3_333; // 3k + 3 nodes ≈ 10⁴
    let net = diamond_stack(k).unwrap();
    assert_valid(&net, 3 * k + 3);
    assert_eq!(net.edge_count(), 4 * k + 2);
    assert!(classify::is_dag(net.graph()));
}

#[test]
fn complete_dag_at_scale() {
    // The quadratic family: n internal vertices mean n(n−1)/2 + 2 edges, so
    // the node count is held where the edge count reaches the other
    // families' 10⁴ scale.
    let internal = 300;
    let net = complete_dag(internal).unwrap();
    assert_valid(&net, internal + 2);
    assert_eq!(net.edge_count(), internal * (internal - 1) / 2 + 2);
    assert!(classify::is_dag(net.graph()));
}

#[test]
fn layered_dag_at_scale() {
    let (layers, width, fan) = (100, 100, 2);
    let mut rng = StdRng::seed_from_u64(0x1A7E_12ED);
    let net = layered_dag(&mut rng, layers, width, fan).unwrap();
    assert_valid(&net, layers * width + 3);
    // 1 + gateway fan-out + per-layer fan edges (plus ≤ width repairs each)
    // + last-layer edges to t.
    let min_edges = 1 + width + (layers - 1) * width * fan + width;
    let max_edges = min_edges + (layers - 1) * width;
    assert!(net.edge_count() >= min_edges);
    assert!(net.edge_count() <= max_edges);
    assert!(classify::is_dag(net.graph()));
}

#[test]
fn random_dag_at_scale() {
    let mut rng = StdRng::seed_from_u64(0xDA6_2026);
    // Edge probability 2/n keeps the expected all-pairs extras linear.
    let net = random_dag(&mut rng, N, 2.0 / N as f64).unwrap();
    assert_valid(&net, N + 2);
    assert!(net.edge_count() > N);
    assert!(net.edge_count() < 4 * N);
    assert!(classify::is_dag(net.graph()));
}

#[test]
fn random_cyclic_at_scale() {
    let mut rng = StdRng::seed_from_u64(0xC1C_2026);
    let net = random_cyclic(&mut rng, N, 1.0 / N as f64, 1.0 / N as f64).unwrap();
    assert_valid(&net, N + 2);
    assert!(net.edge_count() > N);
    assert!(net.edge_count() < 4 * N);
}

#[test]
fn cycle_with_tail_at_scale() {
    let net = cycle_with_tail(N).unwrap();
    assert_valid(&net, N + 2);
    assert_eq!(net.edge_count(), N + 2);
    assert!(!classify::is_dag(net.graph()));
}

#[test]
fn nested_cycles_at_scale() {
    let (count, len) = (100, 100);
    let net = nested_cycles(count, len).unwrap();
    assert_valid(&net, count * len + 2);
    // count·len cycle edges + count − 1 chaining edges + s/t attachments.
    assert_eq!(net.edge_count(), count * len + (count - 1) + 2);
    assert!(!classify::is_dag(net.graph()));
}
