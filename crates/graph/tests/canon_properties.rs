//! Property coverage for the canonicalization pass: across **all 11 generator
//! families** the sweep exposes, random vertex relabelings and edge-insertion
//! reorderings never change the canonical form or fingerprint; and a pinned
//! corpus of small pairwise non-isomorphic networks never collides.
//!
//! The first property is what the sweep's deduplication rests on (isomorphic
//! units cluster together); the second keeps the clustering from being
//! vacuously "correct" by merging everything.

use anet_graph::canon::{canonical_fingerprint, canonical_form};
use anet_graph::generators::{
    chain_gn, complete_dag, cycle_with_tail, diamond_stack, layered_dag, nested_cycles,
    path_network, random_cyclic, random_dag, random_grounded_tree, star_network,
};
use anet_graph::{DiGraph, Network, NodeId};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One representative constructor per generator family, indexed the same way
/// a sweep spec would pick topologies. `size` is kept small so refinement and
/// relabeling stay exhaustive-ish under proptest.
fn family(index: usize, size: usize, seed: u64) -> Network {
    let internal = 1 + size % 5;
    let mut rng = StdRng::seed_from_u64(seed);
    match index % 11 {
        0 => chain_gn(1 + size % 6).unwrap(),
        1 => path_network(1 + size % 6).unwrap(),
        2 => star_network(1 + size % 5).unwrap(),
        3 => complete_dag(1 + size % 5).unwrap(),
        4 => diamond_stack(1 + size % 4).unwrap(),
        5 => cycle_with_tail(3 + size % 4).unwrap(),
        6 => nested_cycles(1 + size % 3, 3 + size % 3).unwrap(),
        7 => random_dag(&mut rng, internal, 0.3).unwrap(),
        8 => random_cyclic(&mut rng, internal, 0.25, 0.15).unwrap(),
        9 => layered_dag(&mut rng, 1 + size % 3, 1 + size % 3, 2).unwrap(),
        _ => random_grounded_tree(&mut rng, internal, 2 + size % 3, 0.3).unwrap(),
    }
}

/// Rebuilds `network` with vertices renamed by a seeded random permutation
/// and edges inserted in a rotated order — an isomorphic copy that shares
/// neither vertex ids nor port numbering with the original.
fn random_relabel(network: &Network, seed: u64, rotate: usize) -> Network {
    let g = network.graph();
    let n = g.node_count();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..i + 1));
    }
    let mut h = DiGraph::with_capacity(n);
    h.add_nodes(n);
    let edges: Vec<_> = g.edges().collect();
    for i in 0..edges.len() {
        let e = edges[(i + rotate) % edges.len()];
        let (src, dst) = g.edge_endpoints(e);
        h.add_edge(NodeId(perm[src.index()]), NodeId(perm[dst.index()]));
    }
    Network::new(
        h,
        NodeId(perm[network.root().index()]),
        NodeId(perm[network.terminal().index()]),
    )
    .expect("relabeling preserves network validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn isomorphic_relabelings_share_fingerprint(
        index in 0usize..11,
        size in 0usize..12,
        gen_seed in 0u64..1000,
        perm_seed in 0u64..1000,
        rotate in 0usize..7,
    ) {
        let network = family(index, size, gen_seed);
        let base = canonical_form(&network);
        let relabeled = random_relabel(&network, perm_seed, rotate);
        let got = canonical_form(&relabeled);
        prop_assert_eq!(&got.form, &base.form, "family {} diverged under relabeling", index % 11);
        prop_assert_eq!(got.form.fingerprint(), base.form.fingerprint());
        prop_assert_eq!(
            canonical_fingerprint(&relabeled),
            canonical_fingerprint(&network)
        );
    }

    #[test]
    fn canonical_rebuild_is_a_fixed_point(
        index in 0usize..11,
        size in 0usize..12,
        gen_seed in 0u64..1000,
    ) {
        let network = family(index, size, gen_seed);
        let labeling = canonical_form(&network);
        let rebuilt = labeling.form.to_network().expect("canonical forms rebuild");
        let again = canonical_form(&rebuilt);
        prop_assert_eq!(&again.form, &labeling.form);
        let identity: Vec<usize> = (0..rebuilt.node_count()).collect();
        prop_assert_eq!(again.permutation, identity);
    }
}

/// A pinned corpus of small pairwise **non-isomorphic** networks, one or more
/// per family. Canonical forms — and, transitively, fingerprints — must be
/// pairwise distinct, so dedup clusters never merge genuinely different
/// experiments.
#[test]
fn pinned_non_isomorphic_corpus_does_not_collide() {
    let mut rng = StdRng::seed_from_u64(7);
    let corpus: Vec<(&str, Network)> = vec![
        ("chain_gn(1)", chain_gn(1).unwrap()),
        ("chain_gn(2)", chain_gn(2).unwrap()),
        ("chain_gn(3)", chain_gn(3).unwrap()),
        ("path(2)", path_network(2).unwrap()),
        ("path(3)", path_network(3).unwrap()),
        ("star(2)", star_network(2).unwrap()),
        ("star(3)", star_network(3).unwrap()),
        // complete_dag(2) is omitted: two internal vertices with all forward
        // edges *is* the 2-internal path, and the labeling rightly merges them.
        ("complete_dag(3)", complete_dag(3).unwrap()),
        ("complete_dag(4)", complete_dag(4).unwrap()),
        ("diamond_stack(1)", diamond_stack(1).unwrap()),
        ("diamond_stack(2)", diamond_stack(2).unwrap()),
        ("cycle_with_tail(3)", cycle_with_tail(3).unwrap()),
        ("cycle_with_tail(4)", cycle_with_tail(4).unwrap()),
        // nested_cycles(1, k) is omitted: a single nested cycle of length k
        // is exactly cycle_with_tail(k), and the labeling rightly merges them.
        ("nested_cycles(2,3)", nested_cycles(2, 3).unwrap()),
        ("nested_cycles(2,4)", nested_cycles(2, 4).unwrap()),
        ("nested_cycles(3,3)", nested_cycles(3, 3).unwrap()),
        ("random_dag(4)", random_dag(&mut rng, 4, 0.5).unwrap()),
        (
            "random_cyclic(4)",
            random_cyclic(&mut rng, 4, 0.4, 0.4).unwrap(),
        ),
        ("layered_dag(2,2)", layered_dag(&mut rng, 2, 2, 2).unwrap()),
        (
            "random_grounded_tree(5)",
            random_grounded_tree(&mut rng, 5, 3, 0.5).unwrap(),
        ),
    ];
    for (i, (name_a, a)) in corpus.iter().enumerate() {
        for (name_b, b) in corpus.iter().skip(i + 1) {
            let form_a = canonical_form(a).form;
            let form_b = canonical_form(b).form;
            assert_ne!(
                form_a, form_b,
                "{name_a} and {name_b} share a canonical form"
            );
            assert_ne!(
                form_a.fingerprint(),
                form_b.fingerprint(),
                "{name_a} and {name_b} collide in fingerprint"
            );
        }
    }
}
