//! The commodity-preserving bandwidth lower bound (Theorem 3.8, Figure 4).

use anet_core::dag_broadcast::{DagBroadcast, ForwardingMode};
use anet_core::{Payload, ScalarCommodity};
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::FifoScheduler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use anet_graph::generators::skeleton;

/// The outcome of the Theorem 3.8 experiment for one skeleton parameter `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkeletonOutcome {
    /// The skeleton parameter (number of even-indexed `u` vertices).
    pub n: usize,
    /// Number of vertices of each generated skeleton.
    pub nodes: usize,
    /// Number of edges of each generated skeleton.
    pub edges: usize,
    /// How many subsets `S` were tested (`2^n`, or a sample if that is too many).
    pub subsets_tested: usize,
    /// How many distinct collector quantities were observed.
    pub distinct_quantities: usize,
    /// Whether every tested subset produced a different quantity at the collector —
    /// the heart of the `2^n`-symbols argument.
    pub all_distinct: bool,
    /// `⌈log₂ subsets⌉`: the bits any encoding needs on the collector edge, which is
    /// `Ω(n) = Ω(|E|)` when all quantities are distinct.
    pub min_bits_on_collector_edge: u64,
    /// The largest single message (in bits) observed on the collector's outgoing
    /// edge under this crate's concrete encoding.
    pub observed_collector_message_bits: u64,
}

/// Runs a commodity-preserving protocol on the Figure 4 skeleton for (up to
/// `max_subsets`) subsets `S` and checks that the collector vertex `w` receives a
/// different total quantity for every subset.
pub fn skeleton_experiment<C: ScalarCommodity>(n: usize, max_subsets: usize) -> SkeletonOutcome {
    assert!(n >= 1, "skeleton parameter must be positive");
    let total_subsets = 1usize.checked_shl(n as u32).unwrap_or(usize::MAX);
    let exhaustive = total_subsets <= max_subsets;
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ n as u64);
    let mut subsets: Vec<Vec<bool>> = if exhaustive {
        (0..total_subsets)
            .map(|mask| (0..n).map(|j| mask & (1 << j) != 0).collect())
            .collect()
    } else {
        (0..max_subsets)
            .map(|_| (0..n).map(|_| rng.gen_bool(0.5)).collect())
            .collect()
    };
    // Sampling can repeat a subset; duplicates would trivially repeat a quantity
    // and say nothing about the lower bound, so test each subset once.
    subsets.sort();
    subsets.dedup();

    let mut quantities: Vec<String> = Vec::with_capacity(subsets.len());
    let mut nodes = 0;
    let mut edges = 0;
    let mut observed_bits = 0u64;
    for subset in &subsets {
        let sk = skeleton(n, subset).expect("valid skeleton parameters");
        nodes = sk.network.node_count();
        edges = sk.network.edge_count();
        let protocol = DagBroadcast::<C>::new(Payload::empty(), ForwardingMode::Eager);
        let result = run(
            &sk.network,
            &protocol,
            &mut FifoScheduler::new(),
            ExecutionConfig::default(),
        );
        let w_state = &result.states[sk.w.index()];
        quantities.push(w_state.accumulated.canonical_key());
        observed_bits = observed_bits.max(result.metrics.per_edge_bits[sk.w_to_t_edge.index()]);
    }
    let tested = quantities.len();
    quantities.sort();
    quantities.dedup();
    let distinct = quantities.len();
    SkeletonOutcome {
        n,
        nodes,
        edges,
        subsets_tested: tested,
        distinct_quantities: distinct,
        all_distinct: distinct == tested,
        min_bits_on_collector_edge: anet_num::bits::alphabet_index_bits(tested as u64),
        observed_collector_message_bits: observed_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_core::{ExactCommodity, Pow2Commodity};

    #[test]
    fn every_subset_gives_a_distinct_quantity() {
        for n in [1usize, 2, 3, 4, 5] {
            let outcome = skeleton_experiment::<Pow2Commodity>(n, 1 << n);
            assert_eq!(outcome.subsets_tested, 1 << n);
            assert!(outcome.all_distinct, "n = {n}");
            assert_eq!(outcome.min_bits_on_collector_edge, n as u64);
        }
    }

    #[test]
    fn naive_commodity_is_also_commodity_preserving_and_distinct() {
        let outcome = skeleton_experiment::<ExactCommodity>(4, 16);
        assert!(outcome.all_distinct);
    }

    #[test]
    fn collector_bits_grow_linearly_with_n() {
        // The Ω(|E|) bandwidth shape: the bits needed to *name* the collector
        // quantity grow linearly in n (and |E| = Θ(n)).
        let small = skeleton_experiment::<Pow2Commodity>(2, 4);
        let large = skeleton_experiment::<Pow2Commodity>(6, 64);
        assert!(large.min_bits_on_collector_edge >= small.min_bits_on_collector_edge + 4);
        assert!(large.observed_collector_message_bits > small.observed_collector_message_bits);
        assert!(large.edges > small.edges);
    }

    #[test]
    fn sampling_mode_caps_the_number_of_subsets() {
        let outcome = skeleton_experiment::<Pow2Commodity>(12, 32);
        assert!(outcome.subsets_tested <= 32 && outcome.subsets_tested > 1);
        assert!(outcome.distinct_quantities <= outcome.subsets_tested);
        // With duplicates removed, distinct subsets always give distinct quantities.
        assert!(outcome.all_distinct);
    }
}
