//! The label-length lower bound via tree pruning (Theorem 5.2, Figure 6).

use anet_core::labeling::{label_bits, run_labeling};
use anet_graph::generators::{full_grounded_tree, pruned_tree};
use anet_sim::scheduler::FifoScheduler;

/// The outcome of one pruning experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PruningOutcome {
    /// Tree height `h`.
    pub height: usize,
    /// Tree arity `d`.
    pub arity: usize,
    /// Vertices of the pruned network (`h + 3`).
    pub pruned_nodes: usize,
    /// Bits of the deep path vertex's label in the pruned network.
    pub pruned_deep_label_bits: u64,
    /// Bits of the same vertex's label in the full tree (only computed when the
    /// full tree is small enough to simulate).
    pub full_deep_label_bits: Option<u64>,
    /// Whether the labels along the whole replayed path coincide in the two
    /// networks (the pruning argument's key step).
    pub labels_match_along_path: Option<bool>,
    /// The asymptotic shape the bound predicts: `h · log₂ d` bits.
    pub h_log_d: f64,
}

impl PruningOutcome {
    /// Measured deep-label bits divided by `h log d`; bounded below by a positive
    /// constant across the sweep if the lower bound's shape holds.
    pub fn normalized_label_bits(&self) -> f64 {
        self.pruned_deep_label_bits as f64 / self.h_log_d.max(1.0)
    }
}

/// Runs the labelling protocol on the pruned tree of parameters `(height, arity)`
/// and, when `compare_with_full_tree` is set, also on the full tree, verifying that
/// the deep vertex's label is identical in both.
pub fn pruning_experiment(
    height: usize,
    arity: usize,
    compare_with_full_tree: bool,
) -> PruningOutcome {
    let (pruned, path) = pruned_tree(height, arity).expect("arity >= 2");
    let pruned_report =
        run_labeling(&pruned, &mut FifoScheduler::new()).expect("default budget suffices");
    assert!(
        pruned_report.terminated,
        "labelling must terminate on the pruned tree"
    );
    let deep = *path.last().expect("path is non-empty");
    let pruned_deep_label_bits = label_bits(pruned_report.label_of(deep));

    let (full_deep_label_bits, labels_match_along_path) = if compare_with_full_tree {
        let full = full_grounded_tree(height, arity).expect("arity >= 2");
        let full_report =
            run_labeling(&full, &mut FifoScheduler::new()).expect("default budget suffices");
        assert!(full_report.terminated);
        // The leftmost root-to-leaf path of the full tree follows out-port 0.
        let g = full.graph();
        let mut full_path = vec![g.edge_dst(g.out_edges(full.root())[0])];
        for _ in 0..height {
            let last = *full_path.last().expect("non-empty");
            full_path.push(g.edge_dst(g.out_edges(last)[0]));
        }
        let matches = full_path
            .iter()
            .zip(path.iter())
            .all(|(f, p)| full_report.label_of(*f) == pruned_report.label_of(*p));
        (
            Some(label_bits(
                full_report.label_of(*full_path.last().expect("non-empty")),
            )),
            Some(matches),
        )
    } else {
        (None, None)
    };

    PruningOutcome {
        height,
        arity,
        pruned_nodes: pruned.node_count(),
        pruned_deep_label_bits,
        full_deep_label_bits,
        labels_match_along_path,
        h_log_d: height as f64 * (arity as f64).log2(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruned_and_full_trees_give_identical_deep_labels() {
        for (h, d) in [(2usize, 2usize), (3, 2), (3, 3), (2, 4)] {
            let outcome = pruning_experiment(h, d, true);
            assert_eq!(outcome.labels_match_along_path, Some(true), "h={h} d={d}");
            assert_eq!(
                outcome.full_deep_label_bits,
                Some(outcome.pruned_deep_label_bits)
            );
            assert_eq!(outcome.pruned_nodes, h + 3);
        }
    }

    #[test]
    fn deep_label_bits_scale_like_h_log_d() {
        // The lower-bound shape: the deep label needs Ω(h log d) bits even though
        // the pruned network has only h + 3 vertices.
        let base = pruning_experiment(8, 4, false);
        let taller = pruning_experiment(32, 4, false);
        let wider = pruning_experiment(8, 16, false);
        assert!(taller.pruned_deep_label_bits >= base.pruned_deep_label_bits + 32);
        assert!(wider.pruned_deep_label_bits >= base.pruned_deep_label_bits + 8);
        // Normalised against h log d the measurements stay within a constant band.
        for o in [&base, &taller, &wider] {
            let r = o.normalized_label_bits();
            assert!(r > 0.5 && r < 20.0, "normalised ratio {r}");
        }
    }

    #[test]
    fn label_length_exceeds_information_theoretic_minimum_of_the_full_tree() {
        // The full tree of height h and arity d has d^h leaves, so *some* leaf needs
        // at least h·log2(d) label bits; the pruned replay shows our protocol's
        // deep label indeed carries that much.
        let o = pruning_experiment(10, 8, false);
        assert!(o.pruned_deep_label_bits as f64 >= o.h_log_d);
    }
}
