//! # anet-lowerbounds — executable lower-bound machinery
//!
//! The paper's lower bounds (Theorems 3.2, 3.6, 3.8 and 5.2) are constructive:
//! each one exhibits a family of networks and an argument about what any correct
//! protocol must transmit on them. This crate turns those constructions into code
//! that can be *run* against the protocols of [`anet_core`]:
//!
//! * [`alphabet`] — extracts the transmitted alphabet `Σ_G` of a run and the
//!   information-theoretic bits needed to distinguish its symbols.
//! * [`chain_family`] — the chain family `G_n` of Figure 5: any correct protocol
//!   needs `Ω(n)` distinct termination symbols, hence `Ω(|E| log |E|)` total
//!   communication (Theorem 3.2).
//! * [`linear_cut`] — Lemmas 3.3–3.7: linear-cut snapshots are terminating
//!   multisets, no cut multiset strictly contains another, and symbols must differ
//!   along branching ancestor/descendant edge pairs.
//! * [`skeleton`] — Theorem 3.8: on the Figure 4 skeletons, a commodity-preserving
//!   protocol transports `2^n` distinguishable quantities over a single edge, so
//!   its bandwidth is `Ω(|E|)` bits.
//! * [`pruning`] — Theorem 5.2: pruning a full tree down to `h + 3` vertices
//!   preserves the deep vertex's label, which therefore needs `Ω(|V| log d_out)`
//!   bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod chain_family;
pub mod linear_cut;
pub mod pruning;
pub mod skeleton;
