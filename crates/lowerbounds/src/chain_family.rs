//! The chain family `G_n` (Figure 5) and the Theorem 3.2 measurement.

use anet_core::{Payload, ScalarCommodity};
use anet_graph::generators::chain_gn;

use crate::alphabet::{tree_broadcast_alphabet, AlphabetStats};

/// One row of the Theorem 3.2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainFamilyPoint {
    /// The family parameter `n` (number of internal vertices).
    pub n: usize,
    /// `|E| = 2n`.
    pub edges: usize,
    /// Alphabet statistics of the run.
    pub stats: AlphabetStats,
    /// The paper's lower bound on the number of distinct symbols any correct
    /// protocol needs on `G_n` (`Ω(n)`; Lemma 3.7 gives `n + 1` when counting the
    /// initial symbol, `n` among the symbols our encoding distinguishes).
    pub symbol_lower_bound: usize,
    /// `c · |E| log₂ |E|` with `c = 1`: the shape the total communication must
    /// follow asymptotically.
    pub e_log_e: f64,
}

impl ChainFamilyPoint {
    /// The measured total bits divided by `|E| log |E|`: should stay bounded by a
    /// constant across the sweep (the Theorem 3.1 upper-bound shape).
    pub fn normalized_total_bits(&self) -> f64 {
        self.stats.total_bits as f64 / self.e_log_e
    }
}

/// Runs the grounded-tree broadcast on `G_n` for each `n` and collects the
/// Theorem 3.2 measurements.
pub fn chain_family_experiment<C: ScalarCommodity>(
    ns: &[usize],
    payload_bits: u64,
) -> Vec<ChainFamilyPoint> {
    ns.iter()
        .map(|&n| {
            let network = chain_gn(n).expect("n >= 1");
            let stats = tree_broadcast_alphabet::<C>(&network, Payload::synthetic(payload_bits));
            let edges = network.edge_count();
            ChainFamilyPoint {
                n,
                edges,
                stats,
                symbol_lower_bound: n,
                e_log_e: edges as f64 * (edges as f64).log2().max(1.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_core::Pow2Commodity;

    #[test]
    fn alphabet_meets_the_lower_bound_exactly() {
        for point in chain_family_experiment::<Pow2Commodity>(&[2, 4, 8, 32], 0) {
            assert!(
                point.stats.distinct_symbols >= point.symbol_lower_bound,
                "n = {}",
                point.n
            );
            // The power-of-two protocol is optimal: it uses no more than the bound
            // plus a constant.
            assert!(point.stats.distinct_symbols <= point.symbol_lower_bound + 1);
        }
    }

    #[test]
    fn total_bits_follow_e_log_e_shape() {
        let points = chain_family_experiment::<Pow2Commodity>(&[8, 16, 32, 64, 128], 0);
        let ratios: Vec<f64> = points
            .iter()
            .map(ChainFamilyPoint::normalized_total_bits)
            .collect();
        // The normalised ratio must not blow up: allow a factor-three drift across a
        // 16x size sweep (it would grow unboundedly if the protocol were, say,
        // quadratic).
        let first = ratios.first().copied().unwrap();
        let last = ratios.last().copied().unwrap();
        assert!(last < first * 3.0, "ratios {ratios:?}");
    }

    #[test]
    fn payload_contributes_linearly_in_edges() {
        let without = chain_family_experiment::<Pow2Commodity>(&[32], 0);
        let with = chain_family_experiment::<Pow2Commodity>(&[32], 1024);
        let delta = with[0].stats.total_bits - without[0].stats.total_bits;
        let edges = with[0].edges as u64;
        assert!(delta >= edges * 1024);
        assert!(delta <= edges * (1024 + 64));
    }
}
