//! Executable versions of the linear-cut lemmas (Lemmas 3.3, 3.5, 3.7 and
//! Theorem 3.6) behind the grounded-tree communication lower bound.

use anet_core::tree_broadcast::TreeBroadcast;
use anet_core::{Payload, ScalarCommodity};
use anet_graph::linear_cut::{contract_beyond_cut, contract_with_auxiliary, enumerate_linear_cuts};
use anet_graph::{EdgeId, Network, NodeId};
use anet_sim::engine::{run, ExecutionConfig, RunResult};
use anet_sim::scheduler::FifoScheduler;
use anet_sim::trace::Trace;

/// The aggregated outcome of checking every linear-cut lemma on one network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutLemmasOutcome {
    /// Number of linear cuts examined.
    pub cuts_examined: usize,
    /// Lemma 3.3: on a grounded tree every edge carried exactly one message.
    pub one_message_per_edge: bool,
    /// Lemma 3.5: for every cut, the protocol terminates on the contracted network
    /// `G*` and the multiset entering the terminal there equals the multiset that
    /// crossed the cut in the original run.
    pub cut_multisets_terminating: bool,
    /// Theorem 3.6: no cut multiset is a strict sub-multiset of another.
    pub no_strict_submultiset_pair: bool,
    /// Theorem 3.6 (contrapositive construction): redirecting part of a cut to an
    /// auxiliary vertex `t*` makes the protocol refuse to terminate.
    pub auxiliary_networks_never_terminate: bool,
    /// Lemma 3.7: symbols differ along ancestor/descendant edge pairs separated by
    /// a branching vertex.
    pub branching_pairs_distinct: bool,
}

impl CutLemmasOutcome {
    /// True when every lemma held.
    pub fn all_hold(&self) -> bool {
        self.one_message_per_edge
            && self.cut_multisets_terminating
            && self.no_strict_submultiset_pair
            && self.auxiliary_networks_never_terminate
            && self.branching_pairs_distinct
    }
}

type TreeRun<C> =
    RunResult<anet_core::tree_broadcast::TreeState<C>, anet_core::tree_broadcast::TreeMessage<C>>;

fn traced_run<C: ScalarCommodity>(network: &Network) -> TreeRun<C> {
    let protocol = TreeBroadcast::<C>::new(Payload::empty());
    run(
        network,
        &protocol,
        &mut FifoScheduler::new(),
        ExecutionConfig::with_trace(),
    )
}

fn multiset<C: ScalarCommodity>(
    trace: &Trace<anet_core::tree_broadcast::TreeMessage<C>>,
    edges: &[EdgeId],
) -> Vec<String> {
    trace.multiset_on_edges(edges, |m| m.value.canonical_key())
}

/// Is `a` a strict sub-multiset of `b`? Both inputs must be sorted.
fn is_strict_submultiset(a: &[String], b: &[String]) -> bool {
    if a.len() >= b.len() {
        return false;
    }
    let mut bi = 0usize;
    for item in a {
        loop {
            if bi >= b.len() {
                return false;
            }
            if &b[bi] == item {
                bi += 1;
                break;
            }
            if b[bi].as_str() > item.as_str() {
                return false;
            }
            bi += 1;
        }
    }
    true
}

/// Checks Lemmas 3.3, 3.5, 3.7 and Theorem 3.6 on `network` (a grounded tree),
/// examining at most `cut_limit` linear cuts.
pub fn verify_cut_lemmas<C: ScalarCommodity>(
    network: &Network,
    cut_limit: usize,
) -> CutLemmasOutcome {
    let base = traced_run::<C>(network);
    let base_trace = base.trace.as_ref().expect("trace requested");
    let one_message_per_edge = base.metrics.per_edge_messages.iter().all(|&c| c == 1);

    let cuts = enumerate_linear_cuts(network, cut_limit);
    let mut cut_multisets: Vec<Vec<String>> = Vec::with_capacity(cuts.len());
    let mut cut_multisets_terminating = true;
    let mut auxiliary_networks_never_terminate = true;

    for cut in &cuts {
        let crossing = cut.crossing_edges(network);
        let observed = multiset::<C>(base_trace, &crossing);

        // Lemma 3.5: run on the contracted network G*; it must terminate and the
        // multiset entering its terminal must equal the observed cut multiset.
        let (g_star, _) = contract_beyond_cut(network, cut).expect("valid cut");
        let star_run = traced_run::<C>(&g_star);
        if !star_run.outcome.terminated() {
            cut_multisets_terminating = false;
        }
        let star_trace = star_run.trace.as_ref().expect("trace requested");
        let terminal_edges: Vec<EdgeId> = g_star.graph().in_edges(g_star.terminal()).to_vec();
        let star_terminal_multiset = multiset::<C>(star_trace, &terminal_edges);
        if star_terminal_multiset != observed {
            cut_multisets_terminating = false;
        }

        // Theorem 3.6 construction: peel one crossing edge off to an auxiliary
        // vertex; the protocol must now refuse to terminate.
        if crossing.len() >= 2 {
            let (g_aux, _, _) = contract_with_auxiliary(network, cut, &[0]).expect("valid cut");
            let aux_run = traced_run::<C>(&g_aux);
            if aux_run.outcome.terminated() {
                auxiliary_networks_never_terminate = false;
            }
        }

        cut_multisets.push(observed);
    }

    // Theorem 3.6: compare every pair of cut multisets.
    let mut no_strict_submultiset_pair = true;
    for i in 0..cut_multisets.len() {
        for j in 0..cut_multisets.len() {
            if i != j && is_strict_submultiset(&cut_multisets[i], &cut_multisets[j]) {
                no_strict_submultiset_pair = false;
            }
        }
    }

    CutLemmasOutcome {
        cuts_examined: cuts.len(),
        one_message_per_edge,
        cut_multisets_terminating,
        no_strict_submultiset_pair,
        auxiliary_networks_never_terminate,
        branching_pairs_distinct: verify_branching_pairs::<C>(network, base_trace),
    }
}

/// Lemma 3.7: if edge `e'` is an ancestor of edge `e''` and some vertex strictly
/// between them (from the head of `e'` to the tail of `e''`, inclusive) has
/// out-degree at least two, then the symbols transmitted on `e'` and `e''` differ.
fn verify_branching_pairs<C: ScalarCommodity>(
    network: &Network,
    trace: &Trace<anet_core::tree_broadcast::TreeMessage<C>>,
) -> bool {
    let g = network.graph();
    let symbol_of = |edge: EdgeId| -> Option<String> {
        trace
            .messages_on_edge(edge)
            .first()
            .map(|m| m.value.canonical_key())
    };
    // For a grounded tree, walk up the unique in-edges to find ancestor paths.
    let parent_edge = |node: NodeId| -> Option<EdgeId> { g.in_edges(node).first().copied() };
    for e2 in g.edges() {
        // Reconstruct the root path of e2's tail and remember whether a branching
        // vertex has been passed.
        let mut current = g.edge_src(e2);
        let mut branching_seen = g.out_degree(current) >= 2;
        while let Some(pe) = parent_edge(current) {
            // pe is an ancestor edge of e2: its head is `current`.
            if branching_seen {
                match (symbol_of(pe), symbol_of(e2)) {
                    (Some(a), Some(b)) if a == b => return false,
                    _ => {}
                }
            }
            current = g.edge_src(pe);
            if current == network.root() {
                break;
            }
            if g.out_degree(current) >= 2 {
                branching_seen = true;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_core::{ExactCommodity, Pow2Commodity};
    use anet_graph::generators::{
        chain_gn, full_grounded_tree, random_grounded_tree, star_network,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lemmas_hold_on_the_chain_family() {
        for n in [2usize, 4, 7] {
            let outcome = verify_cut_lemmas::<Pow2Commodity>(&chain_gn(n).unwrap(), 1 << 12);
            assert_eq!(outcome.cuts_examined, n + 1);
            assert!(outcome.all_hold(), "n = {n}: {outcome:?}");
        }
    }

    #[test]
    fn lemmas_hold_on_assorted_grounded_trees() {
        let mut rng = StdRng::seed_from_u64(7);
        let nets = vec![
            star_network(5).unwrap(),
            full_grounded_tree(2, 3).unwrap(),
            random_grounded_tree(&mut rng, 10, 3, 0.5).unwrap(),
        ];
        for net in &nets {
            let outcome = verify_cut_lemmas::<Pow2Commodity>(net, 4096);
            assert!(outcome.cuts_examined > 0);
            assert!(outcome.all_hold(), "{outcome:?}");
        }
    }

    #[test]
    fn lemmas_hold_for_the_naive_rule_too() {
        let outcome = verify_cut_lemmas::<ExactCommodity>(&chain_gn(5).unwrap(), 4096);
        assert!(outcome.all_hold(), "{outcome:?}");
    }

    #[test]
    fn strict_submultiset_helper() {
        let a = vec!["a".to_owned(), "b".to_owned()];
        let b = vec!["a".to_owned(), "a".to_owned(), "b".to_owned()];
        assert!(is_strict_submultiset(&a, &b));
        assert!(!is_strict_submultiset(&b, &a));
        assert!(!is_strict_submultiset(&a, &a));
        let c = vec!["a".to_owned(), "c".to_owned()];
        assert!(!is_strict_submultiset(&c, &b));
    }
}
