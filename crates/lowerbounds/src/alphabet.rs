//! Transmitted-alphabet extraction (`Σ_G` in the paper's notation).

use anet_core::tree_broadcast::TreeBroadcast;
use anet_core::{Payload, ScalarCommodity};
use anet_graph::Network;
use anet_num::bits;
use anet_sim::engine::{run, ExecutionConfig};
use anet_sim::scheduler::FifoScheduler;

/// The alphabet statistics of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphabetStats {
    /// Total messages transmitted.
    pub messages: u64,
    /// Number of *distinct* termination symbols transmitted (ignoring the payload,
    /// which is identical in every message).
    pub distinct_symbols: usize,
    /// `⌈log₂ distinct_symbols⌉` — the minimum bits any encoding needs for an
    /// average symbol, the quantity the communication lower bound multiplies by
    /// `|E|`.
    pub min_symbol_bits: u64,
    /// Total bits actually transmitted (under the crate's concrete encodings).
    pub total_bits: u64,
    /// Maximum bits transmitted over a single edge (required bandwidth).
    pub bandwidth_bits: u64,
}

/// Runs the grounded-tree broadcast on `network` and extracts its alphabet
/// statistics.
pub fn tree_broadcast_alphabet<C: ScalarCommodity>(
    network: &Network,
    payload: Payload,
) -> AlphabetStats {
    let protocol = TreeBroadcast::<C>::new(payload);
    let result = run(
        network,
        &protocol,
        &mut FifoScheduler::new(),
        ExecutionConfig::with_trace(),
    );
    let trace = result.trace.expect("trace recording was requested");
    let distinct = trace.distinct_symbols(|m| m.value.canonical_key());
    AlphabetStats {
        messages: result.metrics.messages_sent,
        distinct_symbols: distinct.len(),
        min_symbol_bits: bits::alphabet_index_bits(distinct.len() as u64),
        total_bits: result.metrics.total_bits,
        bandwidth_bits: result.metrics.max_edge_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_core::{ExactCommodity, Pow2Commodity};
    use anet_graph::generators::{chain_gn, path_network, star_network};

    #[test]
    fn path_needs_a_single_symbol() {
        // Every vertex has out-degree one, so the unit commodity is forwarded
        // unchanged: one distinct symbol suffices.
        let stats =
            tree_broadcast_alphabet::<Pow2Commodity>(&path_network(10).unwrap(), Payload::empty());
        assert_eq!(stats.distinct_symbols, 1);
        assert_eq!(stats.min_symbol_bits, 0);
        assert_eq!(stats.messages, 11);
    }

    #[test]
    fn star_needs_two_symbols() {
        // The hub splits 1 into equal powers of two; the root edge carries 1.
        let stats =
            tree_broadcast_alphabet::<Pow2Commodity>(&star_network(8).unwrap(), Payload::empty());
        assert_eq!(stats.distinct_symbols, 2);
    }

    #[test]
    fn chain_alphabet_grows_linearly() {
        for n in [2usize, 4, 8, 16] {
            let stats =
                tree_broadcast_alphabet::<Pow2Commodity>(&chain_gn(n).unwrap(), Payload::empty());
            assert_eq!(stats.distinct_symbols, n, "n = {n}");
            assert!(stats.min_symbol_bits >= (n as f64).log2().floor() as u64);
        }
    }

    #[test]
    fn naive_rule_produces_no_more_symbols_but_bigger_ones() {
        let net = chain_gn(12).unwrap();
        let pow2 = tree_broadcast_alphabet::<Pow2Commodity>(&net, Payload::empty());
        let naive = tree_broadcast_alphabet::<ExactCommodity>(&net, Payload::empty());
        assert_eq!(pow2.distinct_symbols, naive.distinct_symbols);
        // On the chain the values are powers of two either way, so total bits are
        // comparable; the divergence shows up on trees with non-power-of-two
        // degrees (exercised in the E1 bench).
        assert!(naive.total_bits >= pow2.total_bits);
    }
}
