//! Differential properties: the optimised fast paths versus the retained
//! reference implementations in `anet_num::reference`.
//!
//! Mirrors the simulation engine's `run_full_scan` cross-check: the fast
//! small-value `Dyadic` arithmetic (inline `u64` mantissa) and the linear
//! two-pointer `IntervalUnion` merges must be *bit-identical* — value-equal
//! results with identical canonical interval lists — to the original
//! always-heap / collect-sort-merge implementations, across
//!
//! * random interval soups (overlapping, unordered, empty),
//! * boundary-touching and adjacent-merge grids, and
//! * deep-exponent dyadics crossing the inline→heap mantissa boundary.

use anet_num::{reference, BigUint, Dyadic, Interval, IntervalUnion};
use proptest::prelude::*;

/// Strategy: a dyadic whose mantissa straddles the inline→heap boundary.
///
/// `bits` ranges over 0..=96, so mantissas land well below, exactly at, and
/// well above the 64-bit inline limit; `low` fills in arbitrary low bits and
/// `exp` pushes the exponent past word size.
fn boundary_dyadic() -> impl Strategy<Value = Dyadic> {
    (0u32..99, any::<u64>(), 0u32..100).prop_map(|(bits, low, exp)| {
        let mantissa = match bits {
            0 => BigUint::zero(), // exact zero, a case with no leading bit
            1 => BigUint::from(low),
            _ => &BigUint::pow2(bits - 1) + &BigUint::from(low),
        };
        Dyadic::from_parts(mantissa, exp)
    })
}

/// Strategy: a small dyadic in `[0, 1)` with a dyadic-grid endpoint, the shape
/// protocol endpoints actually take.
fn grid_dyadic() -> impl Strategy<Value = Dyadic> {
    (0u64..1 << 16, 0u32..17).prop_map(|(m, e)| Dyadic::from_u64_parts(m % (1 << e.max(1)), e))
}

/// Strategy: an arbitrary (possibly empty) interval with grid endpoints.
fn grid_interval() -> impl Strategy<Value = Interval> {
    (grid_dyadic(), grid_dyadic()).prop_map(|(a, b)| {
        if a <= b {
            Interval::new(a, b).expect("ordered")
        } else {
            Interval::new(b, a).expect("ordered")
        }
    })
}

/// Strategy: an interval union built from a random soup of up to 8 intervals.
fn soup_union() -> impl Strategy<Value = IntervalUnion> {
    prop::collection::vec(grid_interval(), 0..8).prop_map(IntervalUnion::from_intervals)
}

/// Strategy: a union of cells from a coarse grid — adjacent and
/// boundary-touching intervals are overwhelmingly likely, exercising the
/// merge-on-touch rule of the canonical form.
fn adjacent_union() -> impl Strategy<Value = IntervalUnion> {
    prop::collection::vec((0u64..30, 1u64..4), 0..8).prop_map(|cells| {
        IntervalUnion::from_intervals(cells.into_iter().map(|(start, len)| {
            Interval::from_dyadic_parts(start, (start + len).min(32), 5).expect("ordered")
        }))
    })
}

/// Asserts that a union satisfies the endpoint-array canonical-form contract
/// the linear merges rely on: even length, strictly increasing (so intervals
/// are non-empty, sorted, pairwise disjoint and non-adjacent), empty ⟺ absent.
fn assert_canonical(u: &IntervalUnion) -> Result<(), proptest::test_runner::TestCaseError> {
    let e = u.endpoints();
    prop_assert_eq!(e.len() % 2, 0, "endpoint array has odd length");
    prop_assert_eq!(e.is_empty(), u.is_empty());
    prop_assert_eq!(e.len() / 2, u.interval_count());
    for w in e.windows(2) {
        prop_assert!(
            w[0] < w[1],
            "endpoint array not strictly increasing: {:?}",
            u
        );
    }
    Ok(())
}

/// Monotone widening that pushes every endpoint mantissa past the 64-bit
/// inline limit: multiplication by the heap constant `1 + 2^-70` preserves
/// strict order (and zero), so a widened union is canonical iff the original
/// was, but every non-zero endpoint takes the heap `BigUint` path.
fn widen_to_heap(u: &IntervalUnion) -> IntervalUnion {
    let factor = Dyadic::from_parts(&BigUint::pow2(70) + &BigUint::one(), 70);
    IntervalUnion::from_intervals(u.iter().map(|iv| {
        Interval::new(iv.lo() * &factor, iv.hi() * &factor).expect("widening is monotone")
    }))
}

/// Strategy: a soup union with every endpoint on the heap mantissa path.
fn heap_union() -> impl Strategy<Value = IntervalUnion> {
    soup_union().prop_map(|u| widen_to_heap(&u))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // ---- Dyadic fast path vs always-heap reference -------------------------

    #[test]
    fn dyadic_cmp_matches_reference(a in boundary_dyadic(), b in boundary_dyadic()) {
        prop_assert_eq!(a.cmp(&b), reference::dyadic_cmp(&a, &b));
    }

    #[test]
    fn dyadic_add_matches_reference(a in boundary_dyadic(), b in boundary_dyadic()) {
        let fast = &a + &b;
        let slow = reference::dyadic_add(&a, &b);
        prop_assert_eq!(&fast, &slow);
        // Representation invariant: inline iff the mantissa fits a u64.
        prop_assert_eq!(fast.is_inline(), fast.mantissa().to_u64().is_some());
    }

    #[test]
    fn dyadic_sub_matches_reference(a in boundary_dyadic(), b in boundary_dyadic()) {
        let fast = a.checked_sub(&b);
        let slow = reference::dyadic_checked_sub(&a, &b);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn dyadic_mul_matches_reference(a in boundary_dyadic(), b in boundary_dyadic()) {
        // Cap the exponents so the product exponent cannot overflow u32.
        let fast = &a * &b;
        let slow = reference::dyadic_mul(&a, &b);
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.is_inline(), fast.mantissa().to_u64().is_some());
    }

    #[test]
    fn dyadic_small_chain_stays_inline_and_exact(m in 1u64..1 << 20, e in 0u32..24, k in 1u32..40) {
        // Repeated halvings — the protocols' actual workload — must stay on the
        // inline path and agree with the reference at every step.
        let mut x = Dyadic::from_u64_parts(m, e);
        for _ in 0..k {
            let halved = x.halve();
            prop_assert!(halved.is_inline());
            prop_assert_eq!(reference::dyadic_add(&halved, &halved), x);
            x = halved;
        }
    }

    // ---- IntervalUnion linear merges vs collect-sort-merge reference -------

    #[test]
    fn union_matches_reference_on_soups(a in soup_union(), b in soup_union()) {
        let fast = a.union(&b);
        prop_assert_eq!(&fast, &reference::union(&a, &b));
        assert_canonical(&fast)?;
    }

    #[test]
    fn intersection_matches_reference_on_soups(a in soup_union(), b in soup_union()) {
        let fast = a.intersection(&b);
        prop_assert_eq!(&fast, &reference::intersection(&a, &b));
        assert_canonical(&fast)?;
    }

    #[test]
    fn difference_matches_reference_on_soups(a in soup_union(), b in soup_union()) {
        let fast = a.difference(&b);
        prop_assert_eq!(&fast, &reference::difference(&a, &b));
        assert_canonical(&fast)?;
    }

    #[test]
    fn set_ops_match_reference_on_adjacent_grids(a in adjacent_union(), b in adjacent_union()) {
        prop_assert_eq!(a.union(&b), reference::union(&a, &b));
        prop_assert_eq!(a.intersection(&b), reference::intersection(&a, &b));
        prop_assert_eq!(a.difference(&b), reference::difference(&a, &b));
        prop_assert_eq!(b.difference(&a), reference::difference(&b, &a));
    }

    #[test]
    fn in_place_ops_match_out_of_place(a in soup_union(), b in adjacent_union()) {
        let mut u = a.clone();
        let changed = u.union_in_place(&b);
        prop_assert_eq!(&u, &reference::union(&a, &b));
        prop_assert_eq!(changed, u != a);

        let mut i = a.clone();
        let changed = i.intersect_assign(&b);
        prop_assert_eq!(&i, &reference::intersection(&a, &b));
        prop_assert_eq!(changed, i != a);

        let mut s = a.clone();
        let changed = s.subtract_assign(&b);
        prop_assert_eq!(&s, &reference::difference(&a, &b));
        prop_assert_eq!(changed, s != a);
    }

    #[test]
    fn derived_predicates_match_reference(a in soup_union(), b in soup_union()) {
        prop_assert_eq!(a.intersects(&b), !reference::intersection(&a, &b).is_empty());
        prop_assert_eq!(a.is_subset_of(&b), reference::difference(&a, &b).is_empty());
        prop_assert_eq!(b.is_subset_of(&a), reference::difference(&b, &a).is_empty());
    }

    #[test]
    fn point_membership_matches_linear_scan(a in soup_union(), p in grid_dyadic()) {
        let linear = a.iter().any(|iv| iv.contains(&p));
        prop_assert_eq!(a.contains_point(&p), linear);
    }

    #[test]
    fn set_algebra_laws_hold(a in soup_union(), b in soup_union()) {
        // (a \ b) ∪ (a ∩ b) = a, and the operands' union absorbs both.
        let recombined = a.difference(&b).union(&a.intersection(&b));
        prop_assert_eq!(&recombined, &a);
        let u = a.union(&b);
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
        prop_assert!(!a.difference(&b).intersects(&b));
    }

    // ---- Inline→heap Dyadic boundary, under the endpoint-array merges -------

    #[test]
    fn set_ops_match_reference_on_heap_endpoints(a in heap_union(), b in heap_union()) {
        for iv in a.iter().chain(b.iter()) {
            prop_assert!(iv.lo().is_zero() || !iv.lo().is_inline());
            prop_assert!(!iv.hi().is_inline(), "widened hi endpoint stayed inline");
        }
        let u = a.union(&b);
        prop_assert_eq!(&u, &reference::union(&a, &b));
        assert_canonical(&u)?;
        prop_assert_eq!(a.intersection(&b), reference::intersection(&a, &b));
        prop_assert_eq!(a.difference(&b), reference::difference(&a, &b));
        prop_assert_eq!(b.difference(&a), reference::difference(&b, &a));
    }

    #[test]
    fn set_ops_match_reference_across_the_inline_heap_boundary(a in soup_union(), b in soup_union()) {
        // Mixed-representation operands: one inline, one heap-widened.
        let hb = widen_to_heap(&b);
        prop_assert_eq!(a.union(&hb), reference::union(&a, &hb));
        prop_assert_eq!(a.intersection(&hb), reference::intersection(&a, &hb));
        prop_assert_eq!(a.difference(&hb), reference::difference(&a, &hb));
        prop_assert_eq!(hb.difference(&a), reference::difference(&hb, &a));
    }

    // ---- Copy-on-write aliasing contract ------------------------------------

    #[test]
    fn cow_mutation_never_touches_the_sibling_handle(
        a in soup_union(),
        b in adjacent_union(),
        op in 0usize..3,
    ) {
        let sibling = a.clone();
        prop_assert!(sibling.shares_storage_with(&a));
        let frozen = a.deep_clone();
        // Empty handles have no buffer to share; non-empty deep clones never share.
        prop_assert_eq!(frozen.shares_storage_with(&a), a.is_empty());

        let mut writer = a.clone();
        let (changed, expected) = match op {
            0 => (writer.union_in_place(&b), reference::union(&a, &b)),
            1 => (writer.intersect_assign(&b), reference::intersection(&a, &b)),
            _ => (writer.subtract_assign(&b), reference::difference(&a, &b)),
        };
        prop_assert_eq!(&writer, &expected);
        prop_assert_eq!(changed, writer != a);
        // The sibling handles still observe the original value...
        prop_assert_eq!(&sibling, &frozen);
        prop_assert_eq!(&a, &frozen);
        // ...and a genuine change detached the writer from the shared buffer.
        if changed {
            prop_assert!(!writer.shares_storage_with(&a));
        }
        assert_canonical(&writer)?;
    }

    #[test]
    fn empty_union_in_place_shares_instead_of_copying(a in soup_union()) {
        let mut acc = IntervalUnion::empty();
        let changed = acc.union_in_place(&a);
        prop_assert_eq!(changed, !a.is_empty());
        prop_assert_eq!(&acc, &a);
        prop_assert!(acc.shares_storage_with(&a), "∅ ∪ x must alias x");
        // O(1) clones share; deep clones never do (unless both are empty).
        prop_assert!(a.clone().shares_storage_with(&a));
        prop_assert_eq!(a.deep_clone().shares_storage_with(&a), a.is_empty());
    }
}
