//! Property-based tests for the arithmetic substrate.
//!
//! The protocols' correctness proofs rest on exact algebraic identities
//! (commodity preservation, monotone set algebra), so the arithmetic layer is
//! exercised here with randomised inputs rather than hand-picked cases only.

use anet_num::partition::{canonical_partition, even_split, pow2_split};
use anet_num::{BigUint, Dyadic, Interval, IntervalUnion, Ratio};
use proptest::prelude::*;

/// Strategy: an arbitrary `BigUint` of up to ~128 bits.
fn biguint() -> impl Strategy<Value = BigUint> {
    (any::<u64>(), any::<u64>(), 0u32..64)
        .prop_map(|(a, b, shift)| (&(BigUint::from(a) << 64) + &BigUint::from(b)) >> shift)
}

/// Strategy: a dyadic value in `[0, 1)` with up to 24 fractional bits.
fn unit_dyadic() -> impl Strategy<Value = Dyadic> {
    (0u32..(1 << 24), Just(24u32)).prop_map(|(m, e)| Dyadic::from_parts(BigUint::from(m), e))
}

/// Strategy: an interval inside `[0, 1)`.
fn unit_interval() -> impl Strategy<Value = Interval> {
    (unit_dyadic(), unit_dyadic()).prop_map(|(a, b)| {
        if a <= b {
            Interval::new(a, b).expect("ordered")
        } else {
            Interval::new(b, a).expect("ordered")
        }
    })
}

/// Strategy: an interval union made of up to 6 random intervals.
fn unit_union() -> impl Strategy<Value = IntervalUnion> {
    prop::collection::vec(unit_interval(), 0..6).prop_map(IntervalUnion::from_intervals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- BigUint ring laws -------------------------------------------------

    #[test]
    fn biguint_add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn biguint_add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn biguint_mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn biguint_mul_distributes(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn biguint_sub_inverts_add(a in biguint(), b in biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn biguint_div_rem_reconstructs(a in biguint(), b in biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn biguint_gcd_divides_both(a in biguint(), b in biguint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).unwrap().1.is_zero());
            prop_assert!(b.div_rem(&g).unwrap().1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn biguint_decimal_round_trip(a in biguint()) {
        let s = a.to_string();
        prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn biguint_shift_round_trip(a in biguint(), s in 0u32..200) {
        prop_assert_eq!((&a << s) >> s, a);
    }

    // ---- Dyadic / Ratio ----------------------------------------------------

    #[test]
    fn dyadic_add_commutes(a in unit_dyadic(), b in unit_dyadic()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn dyadic_sub_inverts_add(a in unit_dyadic(), b in unit_dyadic()) {
        prop_assert_eq!((&a + &b).checked_sub(&b).unwrap(), a);
    }

    #[test]
    fn dyadic_order_agrees_with_f64(a in unit_dyadic(), b in unit_dyadic()) {
        // f64 with 24 fractional bits is exact, so ordering must agree.
        prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
    }

    #[test]
    fn dyadic_ratio_conversion_preserves_order(a in unit_dyadic(), b in unit_dyadic()) {
        let (ra, rb) = (Ratio::from_dyadic(&a), Ratio::from_dyadic(&b));
        prop_assert_eq!(a.cmp(&b), ra.cmp(&rb));
    }

    // ---- Splitting rules: commodity preservation ----------------------------

    #[test]
    fn pow2_split_preserves_commodity(x in unit_dyadic(), d in 1usize..20) {
        let parts = pow2_split(&x, d).unwrap();
        prop_assert_eq!(parts.len(), d);
        let sum = parts.iter().fold(Dyadic::zero(), |acc, p| &acc + p);
        prop_assert_eq!(sum, x);
    }

    #[test]
    fn even_split_preserves_commodity(n in 0u64..1_000_000, den in 1u64..1_000_000, d in 1usize..20) {
        let x = Ratio::new(BigUint::from(n), BigUint::from(den)).unwrap();
        let parts = even_split(&x, d).unwrap();
        let mut sum = Ratio::zero();
        for p in &parts {
            sum += p;
        }
        prop_assert_eq!(sum, x);
    }

    // ---- Interval unions: boolean-algebra laws ------------------------------

    #[test]
    fn union_is_commutative(a in unit_union(), b in unit_union()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_is_associative(a in unit_union(), b in unit_union(), c in unit_union()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn union_is_idempotent(a in unit_union()) {
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn intersection_is_commutative(a in unit_union(), b in unit_union()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn intersection_distributes_over_union(a in unit_union(), b in unit_union(), c in unit_union()) {
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
    }

    #[test]
    fn difference_partitions_the_left_operand(a in unit_union(), b in unit_union()) {
        let kept = a.difference(&b);
        let removed = a.intersection(&b);
        prop_assert!(!kept.intersects(&removed));
        prop_assert_eq!(kept.union(&removed), a);
    }

    #[test]
    fn difference_then_union_restores_superset(a in unit_union(), b in unit_union()) {
        // (a \ b) ∪ b ⊇ a
        prop_assert!(a.is_subset_of(&a.difference(&b).union(&b)));
    }

    #[test]
    fn subset_iff_union_absorbs(a in unit_union(), b in unit_union()) {
        prop_assert_eq!(a.is_subset_of(&b), a.union(&b) == b);
    }

    #[test]
    fn total_length_is_additive_for_disjoint(a in unit_union(), b in unit_union()) {
        let b_only = b.difference(&a);
        let combined = a.union(&b_only);
        prop_assert_eq!(combined.total_length(), &a.total_length() + &b_only.total_length());
    }

    // ---- Canonical partition (the Section 4 rule) ----------------------------

    #[test]
    fn canonical_partition_is_disjoint_and_covering(alpha in unit_union(), d in 1usize..10) {
        let parts = canonical_partition(&alpha, d).unwrap();
        prop_assert_eq!(parts.len(), d);
        let mut acc = IntervalUnion::empty();
        for (i, p) in parts.iter().enumerate() {
            prop_assert!(!acc.intersects(p), "part {} overlaps earlier parts", i);
            acc.union_in_place(p);
        }
        prop_assert_eq!(acc, alpha);
    }

    #[test]
    fn interval_split_is_exact(lo in unit_dyadic(), len_num in 1u32..(1 << 20), k in 1usize..12) {
        let len = Dyadic::from_parts(BigUint::from(len_num), 24);
        let hi = &lo + &len;
        let interval = Interval::new(lo, hi).unwrap();
        let parts = interval.split(k).unwrap();
        prop_assert_eq!(parts.len(), k);
        let total = parts.iter().map(Interval::length).fold(Dyadic::zero(), |a, b| &a + &b);
        prop_assert_eq!(total, interval.length());
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].hi(), w[1].lo());
        }
    }
}
