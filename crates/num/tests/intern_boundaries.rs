//! Direct coverage of `IdSet` word-boundary behaviour and edge cases that the
//! mapping protocol only exercises indirectly: sets straddling the 64-bit word
//! boundary (sizes 63/64/65), `difference_drain` with empty operands, and
//! `union_with` growth in both directions.

use anet_num::intern::IdSet;

/// Dense sets of exactly `n` ids `0..n`, the word-boundary workhorses.
fn dense(n: u32) -> IdSet {
    (0..n).collect()
}

#[test]
fn dense_sets_across_the_word_boundary() {
    for n in [63u32, 64, 65] {
        let set = dense(n);
        assert_eq!(set.len(), n as usize, "size {n}");
        assert!(!set.is_empty());
        for id in 0..n {
            assert!(set.contains(id), "size {n} missing id {id}");
        }
        assert!(!set.contains(n), "size {n} must not contain {n}");
        assert!(!set.contains(n + 63));
        assert!(!set.contains(n + 64));
        assert_eq!(set.iter().collect::<Vec<_>>(), (0..n).collect::<Vec<_>>());
        // Re-inserting every id reports nothing fresh and changes nothing.
        let mut again = set.clone();
        for id in 0..n {
            assert!(!again.insert(id), "size {n} re-insert of {id}");
        }
        assert_eq!(again, set);
        // Inserting exactly the next id grows by one (crossing the boundary
        // for n = 64).
        assert!(again.insert(n));
        assert_eq!(again.len(), n as usize + 1);
        assert!(again.contains(n));
        assert_ne!(again, set);
    }
}

#[test]
fn boundary_ids_alone() {
    // Single-bit sets at the extremes of each word.
    for id in [0u32, 63, 64, 65, 127, 128] {
        let mut set = IdSet::new();
        assert!(set.insert(id));
        assert_eq!(set.len(), 1);
        assert!(set.contains(id));
        assert!(id == 0 || !set.contains(id - 1));
        assert!(!set.contains(id + 1));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![id]);
    }
}

#[test]
fn difference_drain_with_empty_self_is_a_no_op() {
    let empty = IdSet::new();
    // Into an empty sink.
    let mut sink = IdSet::new();
    let mut out = Vec::new();
    empty.difference_drain(&mut sink, &mut out);
    assert!(out.is_empty());
    assert!(sink.is_empty());
    assert_eq!(sink, IdSet::new());
    // Into a populated sink: the sink is untouched.
    let mut sink: IdSet = [5u32, 64, 700].into_iter().collect();
    let before = sink.clone();
    empty.difference_drain(&mut sink, &mut out);
    assert!(out.is_empty());
    assert_eq!(sink, before);
    assert_eq!(sink.len(), 3);
}

#[test]
fn difference_drain_into_empty_sink_drains_everything() {
    for n in [63u32, 64, 65] {
        let known = dense(n);
        let mut sink = IdSet::new();
        let mut out = Vec::new();
        known.difference_drain(&mut sink, &mut out);
        assert_eq!(out, (0..n).collect::<Vec<_>>(), "size {n}");
        assert_eq!(sink, known, "size {n}: sink must equal the drained set");
        assert_eq!(sink.len(), n as usize);
    }
}

#[test]
fn difference_drain_straddling_the_boundary() {
    // known covers both sides of the 64-bit boundary; sent covers one side.
    let known: IdSet = [62u32, 63, 64, 65].into_iter().collect();
    let mut sent: IdSet = [62u32, 63].into_iter().collect();
    let mut out = Vec::new();
    known.difference_drain(&mut sent, &mut out);
    assert_eq!(out, vec![64, 65]);
    assert_eq!(sent, known);
}

#[test]
fn union_with_growth_in_both_directions() {
    for (small_n, large_n) in [(63u32, 64u32), (63, 65), (64, 65), (1, 130)] {
        let small = dense(small_n);
        let large = dense(large_n);
        // Growing union: the short word vector must extend.
        let mut grown = small.clone();
        grown.union_with(&large);
        assert_eq!(grown, large, "{small_n} ∪= {large_n}");
        assert_eq!(grown.len(), large_n as usize);
        // Shrinking direction: union with a subset changes nothing.
        let mut kept = large.clone();
        kept.union_with(&small);
        assert_eq!(kept, large, "{large_n} ∪= {small_n}");
        assert_eq!(kept.len(), large_n as usize);
    }
}

#[test]
fn union_with_empty_operands() {
    let set: IdSet = [3u32, 64, 129].into_iter().collect();
    let mut grown = set.clone();
    grown.union_with(&IdSet::new());
    assert_eq!(grown, set);
    let mut empty = IdSet::new();
    empty.union_with(&set);
    assert_eq!(empty, set);
    assert_eq!(empty.len(), 3);
    let mut both = IdSet::new();
    both.union_with(&IdSet::new());
    assert!(both.is_empty());
}

#[test]
fn union_with_disjoint_words_counts_len_exactly() {
    // Disjoint halves split exactly at the boundary.
    let low: IdSet = (0u32..64).collect();
    let high: IdSet = (64u32..128).collect();
    let mut all = low.clone();
    all.union_with(&high);
    assert_eq!(all.len(), 128);
    assert_eq!(all, dense(128));
    // Partial overlap across the boundary double-counts nothing.
    let a: IdSet = (60u32..70).collect();
    let b: IdSet = (65u32..75).collect();
    let mut u = a.clone();
    u.union_with(&b);
    assert_eq!(u.len(), 15);
    assert_eq!(u.iter().collect::<Vec<_>>(), (60..75).collect::<Vec<_>>());
}

#[test]
fn with_capacity_behaves_like_new() {
    let mut a = IdSet::with_capacity(129);
    let mut b = IdSet::new();
    assert_eq!(a, b);
    for id in [0u32, 63, 64, 128] {
        assert_eq!(a.insert(id), b.insert(id));
    }
    assert_eq!(a, b);
    assert_eq!(a.len(), 4);
}
