//! The paper's commodity-splitting rules.
//!
//! * [`pow2_split`] — the grounded-tree rule of Section 3.1: a vertex of out-degree
//!   `d` that received flow `x` forwards `x / 2^⌈log₂ d⌉` on its first
//!   `2d − 2^⌈log₂ d⌉` outgoing edges and `x / 2^{⌈log₂ d⌉−1}` on the rest.
//!   Every transmitted value stays a power of two, so it can be encoded by its
//!   exponent alone — this is what brings total communication down to
//!   `O(|E| log |E|)`.
//! * [`even_split`] — the naive rule (`x / d` on every edge), kept as the ablation
//!   baseline the paper improves upon (`O(|E|^{3/2})` total communication).
//! * [`canonical_partition`] — the interval-union partition of Section 4
//!   (re-exported from [`crate::IntervalUnion`]'s module).
//!
//! All rules are *commodity preserving*: the outgoing parts sum (or union) back to
//! the incoming commodity exactly. Property tests in this module and in the
//! protocol crates check that invariant directly.

use crate::{Dyadic, NumError, Ratio};

pub use crate::interval_union::{canonical_partition, canonical_partition_nonempty};

/// `⌈log₂ d⌉` for `d >= 1`.
///
/// # Panics
///
/// Panics if `d == 0` (a vertex with zero out-degree never splits anything).
pub fn ceil_log2(d: usize) -> u32 {
    assert!(d > 0, "ceil_log2 of zero");
    usize::BITS - (d - 1).leading_zeros()
}

/// Splits the scalar commodity `x` among `d` outgoing edges using the paper's
/// power-of-two rule; the returned vector has length `d` and sums to exactly `x`.
///
/// If `x` itself is a (non-negative) power of two, every part is again a power of
/// two — the invariant the protocol's encoding relies on.
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `d == 0`.
pub fn pow2_split(x: &Dyadic, d: usize) -> Result<Vec<Dyadic>, NumError> {
    if d == 0 {
        return Err(NumError::EmptyPartition);
    }
    let log = ceil_log2(d);
    // First `2d - 2^log` edges carry x / 2^log, the rest carry x / 2^(log-1).
    let pow = 1usize << log;
    let small_count = 2 * d - pow;
    let mut parts = Vec::with_capacity(d);
    for i in 0..d {
        if i < small_count {
            parts.push(x.div_pow2(log));
        } else {
            parts.push(x.div_pow2(log - 1));
        }
    }
    Ok(parts)
}

/// Splits the scalar commodity `x` evenly among `d` outgoing edges (`x / d` each) —
/// the naive rule used as the E1 ablation baseline.
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `d == 0`.
pub fn even_split(x: &Ratio, d: usize) -> Result<Vec<Ratio>, NumError> {
    if d == 0 {
        return Err(NumError::EmptyPartition);
    }
    let part = x.div_u32(u32::try_from(d).map_err(|_| NumError::EmptyPartition)?)?;
    Ok(vec![part; d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    #[test]
    fn ceil_log2_small_values() {
        let expected = [
            (1usize, 0u32),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
        ];
        for (d, e) in expected {
            assert_eq!(ceil_log2(d), e, "d = {d}");
        }
    }

    #[test]
    #[should_panic(expected = "ceil_log2 of zero")]
    fn ceil_log2_zero_panics() {
        ceil_log2(0);
    }

    #[test]
    fn pow2_split_is_commodity_preserving() {
        for d in 1..=16usize {
            let x = Dyadic::from_pow2_neg(3);
            let parts = pow2_split(&x, d).unwrap();
            assert_eq!(parts.len(), d);
            let sum = parts.iter().fold(Dyadic::zero(), |a, b| &a + b);
            assert_eq!(sum, x, "d = {d}");
        }
    }

    #[test]
    fn pow2_split_of_unit_stays_pow2() {
        for d in 1..=32usize {
            let parts = pow2_split(&Dyadic::one(), d).unwrap();
            for p in &parts {
                assert!(p.is_pow2(), "d = {d}, part {p}");
            }
        }
    }

    #[test]
    fn pow2_split_matches_paper_example() {
        // d = 3: ⌈log 3⌉ = 2, 2·3 − 4 = 2 edges get x/4, one edge gets x/2.
        let parts = pow2_split(&Dyadic::one(), 3).unwrap();
        assert_eq!(parts[0], Dyadic::from_pow2_neg(2));
        assert_eq!(parts[1], Dyadic::from_pow2_neg(2));
        assert_eq!(parts[2], Dyadic::from_pow2_neg(1));
        // d = 5: ⌈log 5⌉ = 3, 10 − 8 = 2 edges get x/8, three edges get x/4.
        let parts = pow2_split(&Dyadic::one(), 5).unwrap();
        assert_eq!(
            parts
                .iter()
                .filter(|p| **p == Dyadic::from_pow2_neg(3))
                .count(),
            2
        );
        assert_eq!(
            parts
                .iter()
                .filter(|p| **p == Dyadic::from_pow2_neg(2))
                .count(),
            3
        );
    }

    #[test]
    fn pow2_split_degree_one_forwards_unchanged() {
        let x = Dyadic::from_parts(BigUint::from(5u64), 4);
        assert_eq!(pow2_split(&x, 1).unwrap(), vec![x]);
    }

    #[test]
    fn pow2_split_zero_parts_is_error() {
        assert!(pow2_split(&Dyadic::one(), 0).is_err());
    }

    #[test]
    fn even_split_is_commodity_preserving() {
        for d in 1..=12usize {
            let parts = even_split(&Ratio::one(), d).unwrap();
            assert_eq!(parts.len(), d);
            let mut sum = Ratio::zero();
            for p in &parts {
                sum += p;
            }
            assert!(sum.is_one(), "d = {d}");
        }
    }

    #[test]
    fn even_split_zero_parts_is_error() {
        assert!(even_split(&Ratio::one(), 0).is_err());
    }

    #[test]
    fn exponent_growth_is_logarithmic_in_degree() {
        // Splitting repeatedly through out-degree-d vertices grows the exponent by
        // ⌈log₂ d⌉ per hop — the crux of the O(|E| log |E|) upper bound.
        let mut x = Dyadic::one();
        for hop in 1..=20u32 {
            x = pow2_split(&x, 6).unwrap()[0].clone();
            assert_eq!(x.pow2_neg_exponent(), Some(3 * hop));
        }
    }
}
