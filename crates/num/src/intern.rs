//! Hash-consing interners and dense-id bitsets.
//!
//! The flooding protocols repeatedly ship the *same* facts (labelled vertex and
//! edge records) over many edges. Keeping those facts as owned values makes
//! every hop pay a deep clone and every set operation a tree comparison. This
//! module provides the identifier economy that avoids both:
//!
//! * [`Interner`] — a hash-consing arena mapping values to **dense** `u32` ids:
//!   the first occurrence of a value is stored once and assigned the next free
//!   id; every later occurrence resolves to the same id. Density (ids are
//!   exactly `0..len`) is what makes the companion bitset representation work.
//! * [`IdSet`] — a growable bitset over such dense ids with the word-level set
//!   operations a flooding protocol needs: `insert`, `contains`, and the fused
//!   [`difference_drain`](IdSet::difference_drain) that computes "what is new"
//!   and marks it as seen in a single pass (the combination the mapping
//!   protocol runs per activation). The bulk
//!   [`union_with`](IdSet::union_with) is provision for the protocols named in
//!   the ROADMAP follow-up (`labeling`/`general_broadcast`), which merge whole
//!   sets rather than drain diffs.
//!
//! # Invariants
//!
//! * **Id density** — [`Interner::intern`] assigns ids `0, 1, 2, …` in first-use
//!   order and never reuses or frees an id; `resolve(id)` is a plain slice
//!   index. A bitset over the ids of an interner with `n` values therefore
//!   occupies `⌈n / 64⌉` words.
//! * **Hash consing** — two values compare equal if and only if they intern to
//!   the same id, so protocols may replace value equality by `u32` equality.
//! * **Logical set equality** — [`IdSet`] comparisons ignore trailing zero
//!   words: a set grown by a large insert and a compact set holding the same
//!   ids are equal.
//!
//! Interners deliberately do **not** implement any wire-size accounting: an id
//! is a run-local name, not something a protocol may transmit for free. Callers
//! that flood interned values must still account the *encoded* values (see
//! `anet_core::mapping`, whose messages carry id slices but charge the full
//! record encoding to the wire).

use std::collections::HashMap;
use std::hash::Hash;

use crate::fnv::FnvBuildHasher;

/// A hash-consing arena assigning dense `u32` ids to values.
///
/// See the [module docs](self) for the id-density and hash-consing invariants.
/// The lookup map hashes with the workspace's unkeyed [`crate::Fnv1a`] (via
/// [`FnvBuildHasher`]) rather than the standard library's keyed SipHash: the
/// keys are protocol-generated records, not attacker input, and FNV is faster
/// on the short keys interners see. Ids were always assigned in insertion
/// order, so the swap cannot change any id — it is purely a hot-path speedup
/// (the `bench_scaling` baseline records the before/after microbenchmark).
///
/// # Example
///
/// ```
/// use anet_num::intern::Interner;
///
/// let mut table = Interner::new();
/// let a = table.intern(&"alpha");
/// let b = table.intern(&"beta");
/// assert_eq!(table.intern(&"alpha"), a); // hash-consed: same value, same id
/// assert_eq!((a, b), (0, 1)); // dense, first-use order
/// assert_eq!(table.resolve(b), &"beta");
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T> {
    lookup: HashMap<T, u32, FnvBuildHasher>,
    values: Vec<T>,
}

// Manual impl: an empty interner exists for any `T`, Default-or-not.
impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            lookup: HashMap::default(),
            values: Vec::new(),
        }
    }
}

impl<T: Clone + Eq + Hash> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Returns the id of `value`, interning it first if it is new.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct values are interned.
    pub fn intern(&mut self, value: &T) -> u32 {
        if let Some(&id) = self.lookup.get(value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("interner overflow: > u32::MAX values");
        self.lookup.insert(value.clone(), id);
        self.values.push(value.clone());
        id
    }

    /// Like [`intern`](Self::intern), taking ownership (one clone fewer on a
    /// miss). Provision for adopters that build values to intern rather than
    /// interning borrowed message contents (see the ROADMAP
    /// `labeling`/`general_broadcast` follow-up); the mapping protocol interns
    /// borrowed records and uses [`intern`](Self::intern).
    pub fn intern_owned(&mut self, value: T) -> u32 {
        if let Some(&id) = self.lookup.get(&value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("interner overflow: > u32::MAX values");
        self.lookup.insert(value.clone(), id);
        self.values.push(value);
        id
    }

    /// The id of `value`, if it has been interned.
    pub fn get(&self, value: &T) -> Option<u32> {
        self.lookup.get(value).copied()
    }

    /// The value behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &T {
        &self.values[id as usize]
    }

    /// Number of interned values (equivalently: the next id to be assigned).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(id, value)` pairs in id (first-use) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v))
    }
}

/// A growable bitset over dense `u32` ids.
///
/// Built for the flooding pattern `new = known \ sent; sent ∪= known`, which
/// [`difference_drain`](Self::difference_drain) performs word-by-word in one
/// pass. Equality is *logical*: trailing zero words do not distinguish sets.
///
/// # Example
///
/// ```
/// use anet_num::intern::IdSet;
///
/// let mut known = IdSet::new();
/// known.insert(3);
/// known.insert(70);
/// let mut sent = IdSet::new();
/// sent.insert(3);
/// let mut fresh = Vec::new();
/// known.difference_drain(&mut sent, &mut fresh);
/// assert_eq!(fresh, vec![70]); // only the unseen id drains out…
/// assert!(sent.contains(70)); // …and is now marked as seen
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IdSet::default()
    }

    /// Creates an empty set with room for ids `0..capacity` pre-allocated.
    /// Provision for callers that know their interner's size up front (the
    /// mapping protocol's sets start empty and grow with the flood, so it uses
    /// [`new`](Self::new)).
    pub fn with_capacity(capacity: usize) -> Self {
        IdSet {
            words: Vec::with_capacity(capacity.div_ceil(64)),
            len: 0,
        }
    }

    fn grow_for(&mut self, id: u32) {
        let word = id as usize / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
    }

    /// Inserts `id`; returns whether it was newly inserted.
    pub fn insert(&mut self, id: u32) -> bool {
        self.grow_for(id);
        let (word, bit) = (id as usize / 64, id % 64);
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        self.words
            .get(id as usize / 64)
            .is_some_and(|w| w & (1 << (id % 64)) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every id.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Word-level union: adds every id of `other` to `self`.
    pub fn union_with(&mut self, other: &IdSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            self.len += (b & !*a).count_ones() as usize;
            *a |= b;
        }
    }

    /// The fused flooding step: pushes every id in `self` but **not** in `sink`
    /// into `out` (ascending), and inserts those ids into `sink` — a single
    /// word-level pass over both bitsets, O(words + new ids) instead of the
    /// O(|self|) value-set difference it replaces.
    pub fn difference_drain(&self, sink: &mut IdSet, out: &mut Vec<u32>) {
        if sink.words.len() < self.words.len() {
            sink.words.resize(self.words.len(), 0);
        }
        for (w, (&a, b)) in self.words.iter().zip(&mut sink.words).enumerate() {
            let mut fresh = a & !*b;
            sink.len += fresh.count_ones() as usize;
            *b |= a;
            while fresh != 0 {
                out.push(w as u32 * 64 + fresh.trailing_zeros());
                fresh &= fresh - 1;
            }
        }
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            std::iter::successors((word != 0).then_some(word), |&x| {
                let rest = x & (x - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |x| w as u32 * 64 + x.trailing_zeros())
        })
    }
}

impl PartialEq for IdSet {
    fn eq(&self, other: &IdSet) -> bool {
        if self.len != other.len {
            return false;
        }
        let (short, long) = if self.words.len() <= other.words.len() {
            (&self.words, &other.words)
        } else {
            (&other.words, &self.words)
        };
        short.iter().zip(long.iter()).all(|(a, b)| a == b)
            && long[short.len()..].iter().all(|&w| w == 0)
    }
}

impl Eq for IdSet {}

impl FromIterator<u32> for IdSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut set = IdSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

/// An id set with a representation chosen by expected occupancy.
///
/// A plain [`IdSet`] occupies `⌈max_id / 64⌉` words *regardless of how many
/// ids it holds*. That is perfect for a set that will eventually hold most of
/// an interner's ids (the mapping terminal's `known`), and catastrophic for a
/// set that holds a handful of ids drawn from a huge id space — at
/// n = 10⁵ nodes, per-vertex bitsets over a ~10⁶-record interner would cost
/// gigabytes. `IdBag` lets each owner pick at construction time:
///
/// * [`IdBag::sparse`] — a sorted `Vec<u32>`: O(ids held) memory, O(log n)
///   lookup, O(n) insert (fine for the small sets internal vertices hold);
/// * [`IdBag::dense`] — a plain [`IdSet`]: O(max id) memory, O(1) everything
///   (the terminal, which absorbs every record in the run).
///
/// All operations observe **identical semantics** in both representations —
/// in particular [`difference_drain`](IdBag::difference_drain) drains fresh
/// ids in ascending order exactly like [`IdSet::difference_drain`], so a
/// protocol switching a state field from `IdSet` to `IdBag` produces
/// bit-identical message batches. Equality is logical (representation-blind).
#[derive(Debug, Clone)]
pub enum IdBag {
    /// Sorted vector of ids — memory proportional to the ids actually held.
    Sparse(Vec<u32>),
    /// Bitset over the id space — memory proportional to the largest id.
    Dense(IdSet),
}

impl IdBag {
    /// An empty bag in the sorted-vector representation.
    pub fn sparse() -> Self {
        IdBag::Sparse(Vec::new())
    }

    /// An empty bag in the bitset representation.
    pub fn dense() -> Self {
        IdBag::Dense(IdSet::new())
    }

    /// Inserts `id`; returns whether it was newly inserted.
    pub fn insert(&mut self, id: u32) -> bool {
        match self {
            IdBag::Sparse(ids) => match ids.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    ids.insert(pos, id);
                    true
                }
            },
            IdBag::Dense(set) => set.insert(id),
        }
    }

    /// Whether `id` is in the bag.
    pub fn contains(&self, id: u32) -> bool {
        match self {
            IdBag::Sparse(ids) => ids.binary_search(&id).is_ok(),
            IdBag::Dense(set) => set.contains(id),
        }
    }

    /// Number of ids held.
    pub fn len(&self) -> usize {
        match self {
            IdBag::Sparse(ids) => ids.len(),
            IdBag::Dense(set) => set.len(),
        }
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match self {
            IdBag::Sparse(ids) => Box::new(ids.iter().copied()),
            IdBag::Dense(set) => Box::new(set.iter()),
        }
    }

    /// The fused flooding step of [`IdSet::difference_drain`], representation
    /// aware: pushes every id in `self` but **not** in `sink` into `out` (in
    /// ascending order) and inserts those ids into `sink`.
    ///
    /// Matched representations use the fast path (word-level for dense pairs,
    /// a two-pointer merge for sparse pairs); mismatched pairs fall back to
    /// per-id lookups with the same observable behaviour.
    pub fn difference_drain(&self, sink: &mut IdBag, out: &mut Vec<u32>) {
        match (self, sink) {
            (IdBag::Dense(a), IdBag::Dense(b)) => a.difference_drain(b, out),
            (IdBag::Sparse(a), IdBag::Sparse(b)) => {
                let start = out.len();
                let mut i = 0;
                for &id in a {
                    while i < b.len() && b[i] < id {
                        i += 1;
                    }
                    if i >= b.len() || b[i] != id {
                        out.push(id);
                    }
                }
                if out.len() > start {
                    let mut merged = Vec::with_capacity(b.len() + out.len() - start);
                    let (mut i, mut j) = (0, start);
                    while i < b.len() && j < out.len() {
                        if b[i] < out[j] {
                            merged.push(b[i]);
                            i += 1;
                        } else {
                            merged.push(out[j]);
                            j += 1;
                        }
                    }
                    merged.extend_from_slice(&b[i..]);
                    merged.extend_from_slice(&out[j..]);
                    *b = merged;
                }
            }
            (a, sink) => {
                for id in a.iter() {
                    if sink.insert(id) {
                        out.push(id);
                    }
                }
            }
        }
    }
}

impl PartialEq for IdBag {
    fn eq(&self, other: &IdBag) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for IdBag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_dense_ids_in_first_use_order() {
        let mut t = Interner::new();
        assert!(t.is_empty());
        let ids: Vec<u32> = ["a", "b", "a", "c", "b"]
            .iter()
            .map(|s| t.intern(s))
            .collect();
        assert_eq!(ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.resolve(2), &"c");
        assert_eq!(t.get(&"b"), Some(1));
        assert_eq!(t.get(&"z"), None);
        let listed: Vec<(u32, &&str)> = t.iter().collect();
        assert_eq!(listed, vec![(0, &"a"), (1, &"b"), (2, &"c")]);
    }

    #[test]
    fn intern_owned_agrees_with_intern() {
        let mut t = Interner::new();
        let a = t.intern(&String::from("x"));
        assert_eq!(t.intern_owned(String::from("x")), a);
        assert_eq!(t.intern_owned(String::from("y")), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn idset_insert_contains_len() {
        let mut s = IdSet::new();
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert!(!s.insert(63));
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(1000));
        assert!(!s.contains(1) && !s.contains(999) && !s.contains(100_000));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 1000]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(0));
    }

    #[test]
    fn idset_equality_is_logical() {
        let mut a = IdSet::new();
        a.insert(5);
        a.insert(500); // grows to many words
        let mut b = IdSet::new();
        b.insert(5);
        assert_ne!(a, b);
        // After matching contents, trailing zero words must not matter.
        let mut c: IdSet = [5u32, 500].into_iter().collect();
        assert_eq!(a, c);
        c.insert(7);
        assert_ne!(a, c);
        let compact: IdSet = [5u32].into_iter().collect();
        let mut grown = IdSet::new();
        grown.insert(900);
        grown.clear();
        grown.insert(5);
        assert_eq!(compact, grown);
    }

    #[test]
    fn union_with_tracks_len_across_word_boundaries() {
        let a: IdSet = [1u32, 64, 129].into_iter().collect();
        let b: IdSet = [1u32, 2, 200].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 5);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 64, 129, 200]);
        // Union with a shorter set must not shrink the word vector.
        let mut v = b.clone();
        v.union_with(&a);
        assert_eq!(u, v);
    }

    #[test]
    fn difference_drain_reports_and_marks_new_ids() {
        let known: IdSet = [0u32, 3, 64, 130, 131].into_iter().collect();
        let mut sent: IdSet = [3u32, 130].into_iter().collect();
        let mut fresh = Vec::new();
        known.difference_drain(&mut sent, &mut fresh);
        assert_eq!(fresh, vec![0, 64, 131]);
        assert_eq!(sent.len(), 5);
        // Idempotent: nothing new on a second pass.
        fresh.clear();
        known.difference_drain(&mut sent, &mut fresh);
        assert!(fresh.is_empty());
        assert_eq!(sent, known);
    }

    #[test]
    fn difference_drain_into_longer_sink() {
        let known: IdSet = [1u32].into_iter().collect();
        let mut sent: IdSet = [700u32].into_iter().collect();
        let mut fresh = Vec::new();
        known.difference_drain(&mut sent, &mut fresh);
        assert_eq!(fresh, vec![1]);
        assert!(sent.contains(700) && sent.contains(1));
        assert_eq!(sent.len(), 2);
    }

    fn bag_from(ids: &[u32], dense: bool) -> IdBag {
        let mut bag = if dense {
            IdBag::dense()
        } else {
            IdBag::sparse()
        };
        for &id in ids {
            bag.insert(id);
        }
        bag
    }

    #[test]
    fn idbag_representations_agree_on_basic_ops() {
        for dense in [false, true] {
            let mut bag = bag_from(&[5, 900, 5, 64], dense);
            assert_eq!(bag.len(), 3);
            assert!(bag.contains(900) && bag.contains(5) && !bag.contains(6));
            assert!(!bag.insert(64));
            assert!(bag.insert(63));
            assert_eq!(bag.iter().collect::<Vec<_>>(), vec![5, 63, 64, 900]);
            assert!(!bag.is_empty());
        }
        assert!(IdBag::sparse().is_empty());
        // Logical equality crosses representations.
        assert_eq!(bag_from(&[1, 2, 130], false), bag_from(&[130, 1, 2], true));
        assert_ne!(bag_from(&[1, 2], false), bag_from(&[1, 3], true));
    }

    #[test]
    fn idbag_difference_drain_matches_idset_in_every_pairing() {
        let known_ids = [0u32, 3, 64, 130, 131];
        let sent_ids = [3u32, 130, 700];
        // Ground truth from the bitset implementation.
        let known_set: IdSet = known_ids.into_iter().collect();
        let mut sent_set: IdSet = sent_ids.into_iter().collect();
        let mut expect = Vec::new();
        known_set.difference_drain(&mut sent_set, &mut expect);
        for (kd, sd) in [(false, false), (true, true), (false, true), (true, false)] {
            let known = bag_from(&known_ids, kd);
            let mut sent = bag_from(&sent_ids, sd);
            let mut fresh = vec![99u32]; // pre-existing scratch content survives
            known.difference_drain(&mut sent, &mut fresh);
            assert_eq!(fresh[0], 99, "dense = {kd}/{sd}");
            assert_eq!(fresh[1..], expect[..], "dense = {kd}/{sd}");
            assert_eq!(sent.len(), 6, "dense = {kd}/{sd}");
            for id in known.iter() {
                assert!(sent.contains(id), "dense = {kd}/{sd}");
            }
            // Idempotent: a second pass drains nothing.
            fresh.clear();
            known.difference_drain(&mut sent, &mut fresh);
            assert!(fresh.is_empty(), "dense = {kd}/{sd}");
        }
    }
}
