use std::fmt;

/// Error type for the arithmetic substrate.
///
/// Arithmetic in this crate is deliberately restricted to the non-negative
/// quantities that appear in the paper's protocols, so "impossible" operations
/// (subtracting a larger value from a smaller one, building an interval whose
/// endpoints are out of order, splitting into zero parts, …) are reported through
/// this error rather than silently wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NumError {
    /// Subtraction would have produced a negative value.
    Underflow,
    /// Division by zero was attempted.
    DivisionByZero,
    /// An interval `[a, b)` was requested with `a > b`.
    InvalidInterval {
        /// Rendered lower endpoint.
        lo: String,
        /// Rendered upper endpoint.
        hi: String,
    },
    /// An interval or value outside the unit interval `[0, 1)` was supplied where
    /// the protocols require a sub-unit quantity.
    OutsideUnit,
    /// A partition into zero parts was requested.
    EmptyPartition,
    /// A value could not be parsed from its textual representation.
    Parse(String),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::Underflow => write!(f, "subtraction underflow on unsigned quantity"),
            NumError::DivisionByZero => write!(f, "division by zero"),
            NumError::InvalidInterval { lo, hi } => {
                write!(
                    f,
                    "invalid interval: lower endpoint {lo} exceeds upper endpoint {hi}"
                )
            }
            NumError::OutsideUnit => write!(f, "value lies outside the unit interval [0, 1)"),
            NumError::EmptyPartition => write!(f, "cannot partition into zero parts"),
            NumError::Parse(s) => write!(f, "parse error: {s}"),
        }
    }
}

impl std::error::Error for NumError {}
