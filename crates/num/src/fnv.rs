//! The workspace's stock *stable* hash: incremental FNV-1a over 64 bits.
//!
//! Pure integer arithmetic, so values are identical across platforms,
//! processes and runs — unlike [`std::hash::Hasher`] implementations, which
//! make no such promise. It backs trace digests, the sweep subsystem's
//! partitioner and file fingerprints, and the graph canonical fingerprints,
//! so the magic constants live in exactly one place.

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorbs a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// A [`std::hash::Hasher`] adapter over [`Fnv1a`], so the workspace's stable
/// hash can back `HashMap`s directly.
///
/// SipHash (the standard-library default) is keyed per process to resist
/// collision flooding — pointless for the workspace's interners, whose keys
/// are protocol-generated records, and measurably slower on the short keys
/// they hash. FNV-1a is unkeyed, so it is also deterministic across runs;
/// note that interner *ids* never depended on hasher state in the first
/// place (they are assigned in insertion order), so this swap is purely a
/// speed change.
#[derive(Debug, Clone, Default)]
pub struct FnvHasher(Fnv1a);

impl std::hash::Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.0.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// [`std::hash::BuildHasher`] for [`FnvHasher`] — plug into
/// `HashMap::with_hasher` or a `HashMap<K, V, FnvBuildHasher>` type alias.
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(Fnv1a::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors: the empty string hashes to the offset
        // basis; "a" and "foobar" to the published 64-bit values.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn hasher_adapter_matches_raw_fnv() {
        use std::hash::{BuildHasher, Hasher};
        let mut adapted = FnvBuildHasher.build_hasher();
        adapted.write(b"foobar");
        let mut raw = Fnv1a::new();
        raw.write(b"foobar");
        assert_eq!(adapted.finish(), raw.finish());
        // Unkeyed: two independent builders agree.
        let mut again = FnvBuildHasher.build_hasher();
        again.write(b"foobar");
        assert_eq!(adapted.finish(), again.finish());
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }
}
