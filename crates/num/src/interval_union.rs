//! Finite unions of disjoint intervals over `[0, 1)` — the commodity of the
//! general-graph protocols (Definition 4.1).

use std::fmt;

use crate::{bits, Dyadic, Interval, NumError};

/// An element of `U[0, 1)`: a finite union of disjoint half-open intervals.
///
/// The representation is canonical — intervals are sorted, non-empty, pairwise
/// disjoint, and *non-adjacent* (touching intervals are merged) — so two values
/// compare equal with `==` exactly when they denote the same point set.
///
/// All set operations (`union`, `intersection`, `difference`) are exact.
///
/// # Example
///
/// ```
/// use anet_num::{Interval, IntervalUnion};
///
/// let left = IntervalUnion::from(Interval::from_dyadic_parts(0, 1, 1)?);  // [0, 1/2)
/// let right = IntervalUnion::from(Interval::from_dyadic_parts(1, 2, 1)?); // [1/2, 1)
/// assert_eq!(left.union(&right), IntervalUnion::unit());
/// assert!(left.intersection(&right).is_empty());
/// # Ok::<(), anet_num::NumError>(())
/// ```
/// Ordering is lexicographic on the canonical interval list (useful for ordered
/// containers and deterministic reports); it is *not* the subset order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IntervalUnion {
    /// Sorted, disjoint, non-empty, non-adjacent intervals.
    intervals: Vec<Interval>,
}

impl IntervalUnion {
    /// The empty union (the paper's `[0, 0)` state component).
    pub fn empty() -> Self {
        IntervalUnion {
            intervals: Vec::new(),
        }
    }

    /// The full unit interval `[0, 1)`.
    pub fn unit() -> Self {
        IntervalUnion {
            intervals: vec![Interval::unit()],
        }
    }

    /// Builds a union from arbitrary (possibly overlapping, unordered, empty)
    /// intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut v: Vec<Interval> = intervals.into_iter().filter(|i| !i.is_empty()).collect();
        v.sort_by(|a, b| a.lo().cmp(b.lo()).then_with(|| a.hi().cmp(b.hi())));
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            match out.last_mut() {
                Some(last) if iv.lo() <= last.hi() => {
                    // Overlapping or adjacent: extend.
                    if iv.hi() > last.hi() {
                        *last = Interval::new(last.lo().clone(), iv.hi().clone())
                            .expect("sorted endpoints are ordered");
                    }
                }
                _ => out.push(iv),
            }
        }
        IntervalUnion { intervals: out }
    }

    /// Returns `true` if the union contains no points.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Returns `true` if the union is exactly `[0, 1)` — the terminal's acceptance
    /// condition `α ∪ β = [0, 1)`.
    pub fn is_unit(&self) -> bool {
        self.intervals.len() == 1
            && self.intervals[0].lo().is_zero()
            && self.intervals[0].hi().is_one()
    }

    /// The disjoint intervals making up the union, in increasing order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of maximal disjoint intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Iterates over the maximal disjoint intervals in increasing order.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.intervals.iter()
    }

    /// Total measure of the union.
    pub fn total_length(&self) -> Dyadic {
        self.intervals
            .iter()
            .map(Interval::length)
            .fold(Dyadic::zero(), |a, b| &a + &b)
    }

    /// Returns `true` if the point lies in the union.
    pub fn contains_point(&self, point: &Dyadic) -> bool {
        self.intervals.iter().any(|i| i.contains(point))
    }

    /// Set union.
    pub fn union(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        IntervalUnion::from_intervals(self.intervals.iter().chain(other.intervals.iter()).cloned())
    }

    /// In-place set union; returns `true` if the value changed.
    ///
    /// The general-graph protocol sends a message on an edge *iff* the relevant
    /// state component changed (Section 4), so change detection is part of the API.
    pub fn union_in_place(&mut self, other: &IntervalUnion) -> bool {
        if other.is_empty() {
            return false;
        }
        let merged = self.union(other);
        if merged == *self {
            false
        } else {
            *self = merged;
            true
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &IntervalUnion) -> IntervalUnion {
        let mut out = Vec::new();
        // Two-pointer sweep over the sorted interval lists.
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = &self.intervals[i];
            let b = &other.intervals[j];
            let inter = a.intersection(b);
            if !inter.is_empty() {
                out.push(inter);
            }
            if a.hi() <= b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalUnion::from_intervals(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        let mut out: Vec<Interval> = Vec::new();
        for a in &self.intervals {
            // Carve the overlapping pieces of `other` out of `a`.
            let mut cursor = a.lo().clone();
            for b in &other.intervals {
                if b.hi() <= &cursor {
                    continue;
                }
                if b.lo() >= a.hi() {
                    break;
                }
                // b overlaps [cursor, a.hi)
                if b.lo() > &cursor {
                    out.push(
                        Interval::new(cursor.clone(), b.lo().clone())
                            .expect("cursor < b.lo within a"),
                    );
                }
                if b.hi() < a.hi() {
                    cursor = b.hi().clone();
                } else {
                    cursor = a.hi().clone();
                    break;
                }
            }
            if &cursor < a.hi() {
                out.push(Interval::new(cursor, a.hi().clone()).expect("cursor < a.hi"));
            }
        }
        IntervalUnion::from_intervals(out)
    }

    /// Returns `true` if `self ⊆ other`.
    pub fn is_subset_of(&self, other: &IntervalUnion) -> bool {
        self.difference(other).is_empty()
    }

    /// Returns `true` if the two unions share at least one point.
    pub fn intersects(&self, other: &IntervalUnion) -> bool {
        !self.intersection(other).is_empty()
    }

    /// Bits needed to transmit the union: a gamma-coded interval count followed by
    /// each interval's self-delimited endpoints.
    ///
    /// Theorem 4.3 bounds this by `O(|E| · |V| log d_out)` for any union transmitted
    /// by the general-graph protocol.
    pub fn wire_bits(&self) -> u64 {
        bits::elias_gamma_bits(self.intervals.len() as u64)
            + self
                .intervals
                .iter()
                .map(Interval::endpoint_bits)
                .sum::<u64>()
    }
}

impl From<Interval> for IntervalUnion {
    fn from(interval: Interval) -> Self {
        IntervalUnion::from_intervals(std::iter::once(interval))
    }
}

impl FromIterator<Interval> for IntervalUnion {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalUnion::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalUnion {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        let extra = IntervalUnion::from_intervals(iter);
        self.union_in_place(&extra);
    }
}

impl<'a> IntoIterator for &'a IntervalUnion {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

impl fmt::Display for IntervalUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        let parts: Vec<String> = self.intervals.iter().map(|i| i.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

impl fmt::Debug for IntervalUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IntervalUnion({self})")
    }
}

/// Partitions an interval union `α` into `parts` disjoint interval unions whose
/// union is `α`, following the paper's *canonical partition* (Section 4):
///
/// write `α = I₁ ∪ … ∪ I_r` (maximal intervals in increasing order); split the first
/// interval `I₁` into `parts - 1` pieces with [`Interval::split`]; the pieces become
/// parts `1 … parts-1`, and the remaining intervals `I₂ ∪ … ∪ I_r` become the final
/// part.
///
/// When `α` is empty, every part is empty. When `parts == 1` the single part is `α`.
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `parts == 0`.
pub fn canonical_partition(
    alpha: &IntervalUnion,
    parts: usize,
) -> Result<Vec<IntervalUnion>, NumError> {
    if parts == 0 {
        return Err(NumError::EmptyPartition);
    }
    if parts == 1 {
        return Ok(vec![alpha.clone()]);
    }
    if alpha.is_empty() {
        return Ok(vec![IntervalUnion::empty(); parts]);
    }
    let first = &alpha.intervals()[0];
    let rest: IntervalUnion = IntervalUnion::from_intervals(alpha.intervals()[1..].iter().cloned());
    let mut out: Vec<IntervalUnion> = first
        .split(parts - 1)?
        .into_iter()
        .map(IntervalUnion::from)
        .collect();
    out.push(rest);
    Ok(out)
}

/// Like [`canonical_partition`], but guarantees that **every** part is non-empty
/// whenever `alpha` itself is non-empty: when `alpha` consists of a single maximal
/// interval, that interval is split into `parts` pieces (instead of `parts - 1`
/// pieces plus an empty remainder).
///
/// The labelling and mapping protocols use this variant so that every vertex
/// reachable from the root is guaranteed to eventually receive interval mass —
/// and therefore a non-empty label — on every out-edge of its predecessors. The
/// paper's literal partition can starve the *last* out-port when the incoming mass
/// is a single interval, which would leave some vertices unlabelled on certain
/// topologies; see DESIGN.md ("Substitutions and clarifications").
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `parts == 0`.
pub fn canonical_partition_nonempty(
    alpha: &IntervalUnion,
    parts: usize,
) -> Result<Vec<IntervalUnion>, NumError> {
    if parts == 0 {
        return Err(NumError::EmptyPartition);
    }
    if parts == 1 || alpha.is_empty() || alpha.interval_count() > 1 {
        return canonical_partition(alpha, parts);
    }
    // A single maximal interval: split it into `parts` non-empty pieces.
    let out: Vec<IntervalUnion> = alpha.intervals()[0]
        .split(parts)?
        .into_iter()
        .map(IntervalUnion::from)
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    fn iv(lo: u64, hi: u64, exp: u32) -> Interval {
        Interval::from_dyadic_parts(lo, hi, exp).unwrap()
    }

    fn union_of(list: &[(u64, u64, u32)]) -> IntervalUnion {
        IntervalUnion::from_intervals(list.iter().map(|&(l, h, e)| iv(l, h, e)))
    }

    #[test]
    fn canonical_form_merges_overlaps_and_adjacency() {
        let u = union_of(&[(0, 2, 3), (2, 4, 3), (6, 7, 3), (5, 6, 3)]);
        // [0,1/4) ∪ [1/4,1/2) merge; [5/8,6/8) ∪ [6/8,7/8) merge.
        assert_eq!(u.interval_count(), 2);
        assert_eq!(u, union_of(&[(0, 4, 3), (5, 7, 3)]));
    }

    #[test]
    fn empty_intervals_are_dropped() {
        let u = IntervalUnion::from_intervals(vec![Interval::empty(), iv(1, 1, 4)]);
        assert!(u.is_empty());
        assert_eq!(u, IntervalUnion::empty());
        assert_eq!(u, IntervalUnion::default());
    }

    #[test]
    fn unit_detection() {
        assert!(IntervalUnion::unit().is_unit());
        assert!(!IntervalUnion::empty().is_unit());
        // Two halves reassemble into the unit.
        let u = union_of(&[(0, 1, 1), (1, 2, 1)]);
        assert!(u.is_unit());
        // Missing a piece: not the unit.
        let v = union_of(&[(0, 1, 2), (2, 4, 2)]);
        assert!(!v.is_unit());
    }

    #[test]
    fn union_covers_both_operands() {
        let a = union_of(&[(0, 2, 3)]);
        let b = union_of(&[(4, 6, 3)]);
        let u = a.union(&b);
        assert_eq!(u, union_of(&[(0, 2, 3), (4, 6, 3)]));
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert_eq!(a.union(&IntervalUnion::empty()), a);
        assert_eq!(IntervalUnion::empty().union(&b), b);
    }

    #[test]
    fn union_in_place_reports_change() {
        let mut a = union_of(&[(0, 2, 3)]);
        assert!(!a.union_in_place(&IntervalUnion::empty()));
        assert!(!a.union_in_place(&union_of(&[(0, 1, 3)]))); // already covered
        assert!(a.union_in_place(&union_of(&[(4, 5, 3)])));
        assert_eq!(a, union_of(&[(0, 2, 3), (4, 5, 3)]));
    }

    #[test]
    fn intersection_cases() {
        let a = union_of(&[(0, 4, 3), (6, 8, 3)]);
        let b = union_of(&[(2, 7, 3)]);
        assert_eq!(a.intersection(&b), union_of(&[(2, 4, 3), (6, 7, 3)]));
        assert_eq!(b.intersection(&a), a.intersection(&b));
        assert!(a.intersection(&IntervalUnion::empty()).is_empty());
        assert!(!a.intersects(&union_of(&[(4, 6, 3)])));
        assert!(a.intersects(&union_of(&[(3, 5, 3)])));
    }

    #[test]
    fn difference_cases() {
        let a = IntervalUnion::unit();
        let b = union_of(&[(1, 2, 2)]); // [1/4, 1/2)
        let d = a.difference(&b);
        assert_eq!(d, union_of(&[(0, 1, 2), (2, 4, 2)]));
        // Removing what we kept plus what we removed gives the empty set.
        assert!(a.difference(&d).difference(&b).is_empty());
        // Difference with self or a superset is empty.
        assert!(a.difference(&a).is_empty());
        assert!(b.difference(&a).is_empty());
        // Difference with empty leaves the value unchanged.
        assert_eq!(a.difference(&IntervalUnion::empty()), a);
    }

    #[test]
    fn difference_across_multiple_intervals() {
        let a = union_of(&[(0, 3, 3), (4, 8, 3)]);
        let b = union_of(&[(1, 2, 3), (5, 6, 3), (7, 8, 3)]);
        let d = a.difference(&b);
        assert_eq!(d, union_of(&[(0, 1, 3), (2, 3, 3), (4, 5, 3), (6, 7, 3)]));
    }

    #[test]
    fn subset_relation() {
        let a = union_of(&[(0, 2, 3), (4, 6, 3)]);
        let sub = union_of(&[(0, 1, 3), (5, 6, 3)]);
        assert!(sub.is_subset_of(&a));
        assert!(!a.is_subset_of(&sub));
        assert!(IntervalUnion::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&IntervalUnion::unit()));
    }

    #[test]
    fn total_length_and_contains_point() {
        let a = union_of(&[(0, 1, 2), (2, 3, 2)]);
        assert_eq!(a.total_length(), Dyadic::from_pow2_neg(1));
        assert!(a.contains_point(&Dyadic::zero()));
        assert!(a.contains_point(&Dyadic::from_pow2_neg(1)));
        assert!(!a.contains_point(&Dyadic::from_pow2_neg(2)));
        assert!(!a.contains_point(&Dyadic::from_parts(BigUint::from(3u64), 2)));
    }

    #[test]
    fn canonical_partition_is_a_partition() {
        let alpha = union_of(&[(0, 3, 3), (5, 7, 3)]);
        for parts in 1..=8usize {
            let pieces = canonical_partition(&alpha, parts).unwrap();
            assert_eq!(pieces.len(), parts);
            // Pairwise disjoint.
            for i in 0..pieces.len() {
                for j in i + 1..pieces.len() {
                    assert!(
                        !pieces[i].intersects(&pieces[j]),
                        "parts {i} and {j} overlap for split into {parts}"
                    );
                }
            }
            // Union reassembles alpha.
            let mut total = IntervalUnion::empty();
            for p in &pieces {
                total.union_in_place(p);
            }
            assert_eq!(total, alpha, "partition into {parts} loses mass");
        }
    }

    #[test]
    fn canonical_partition_of_unit_gives_nonempty_leading_parts() {
        // Used for labels: every vertex with out-degree d keeps piece 0 of a
        // (d+1)-way partition, which must be non-empty whenever the input is.
        for parts in 2..=9usize {
            let pieces = canonical_partition(&IntervalUnion::unit(), parts).unwrap();
            for (idx, p) in pieces.iter().enumerate().take(parts - 1) {
                assert!(!p.is_empty(), "piece {idx} of {parts} is empty");
            }
        }
    }

    #[test]
    fn canonical_partition_edge_cases() {
        assert!(canonical_partition(&IntervalUnion::unit(), 0).is_err());
        let single = canonical_partition(&IntervalUnion::unit(), 1).unwrap();
        assert_eq!(single, vec![IntervalUnion::unit()]);
        let of_empty = canonical_partition(&IntervalUnion::empty(), 4).unwrap();
        assert!(of_empty.iter().all(IntervalUnion::is_empty));
    }

    #[test]
    fn canonical_partition_single_interval_last_part_empty() {
        // With a single maximal interval, the "rest" part is empty, as in the paper.
        let alpha = IntervalUnion::unit();
        let pieces = canonical_partition(&alpha, 4).unwrap();
        assert!(pieces[3].is_empty());
        assert!(!pieces[0].is_empty());
    }

    #[test]
    fn nonempty_partition_never_starves_a_part() {
        for parts in 1..=8usize {
            let pieces = canonical_partition_nonempty(&IntervalUnion::unit(), parts).unwrap();
            assert_eq!(pieces.len(), parts);
            let mut acc = IntervalUnion::empty();
            for p in &pieces {
                assert!(!p.is_empty(), "part empty for {parts}-way split");
                assert!(!acc.intersects(p));
                acc.union_in_place(p);
            }
            assert!(acc.is_unit());
        }
    }

    #[test]
    fn nonempty_partition_falls_back_for_fragmented_input() {
        let alpha = union_of(&[(0, 3, 3), (5, 7, 3)]);
        let a = canonical_partition(&alpha, 4).unwrap();
        let b = canonical_partition_nonempty(&alpha, 4).unwrap();
        assert_eq!(a, b);
        assert!(canonical_partition_nonempty(&IntervalUnion::unit(), 0).is_err());
        let of_empty = canonical_partition_nonempty(&IntervalUnion::empty(), 3).unwrap();
        assert!(of_empty.iter().all(IntervalUnion::is_empty));
    }

    #[test]
    fn wire_bits_grow_with_fragmentation() {
        let coarse = IntervalUnion::unit();
        let fine = union_of(&[(0, 1, 4), (2, 3, 4), (4, 5, 4), (6, 7, 4)]);
        assert!(fine.wire_bits() > coarse.wire_bits());
        assert!(IntervalUnion::empty().wire_bits() >= 1);
    }

    #[test]
    fn from_iterator_and_extend() {
        let parts = Interval::unit().split(4).unwrap();
        let collected: IntervalUnion = parts.iter().cloned().collect();
        assert!(collected.is_unit());
        let mut partial = IntervalUnion::from(parts[0].clone());
        partial.extend(parts[1..].iter().cloned());
        assert!(partial.is_unit());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(IntervalUnion::empty().to_string(), "∅");
        assert!(IntervalUnion::unit().to_string().contains("[0, 1)"));
    }
}
