//! Finite unions of disjoint intervals over `[0, 1)` — the commodity of the
//! general-graph protocols (Definition 4.1).

use std::cell::RefCell;
use std::fmt;

use crate::{bits, Dyadic, Interval, NumError};

/// An element of `U[0, 1)`: a finite union of disjoint half-open intervals.
///
/// # The canonical-form contract
///
/// The representation is canonical — the interval list is **sorted by lower
/// endpoint, non-empty, pairwise disjoint and non-adjacent** (touching
/// intervals are merged), so two values compare equal with `==` exactly when
/// they denote the same point set. Every constructor and operation maintains
/// this invariant, and the set operations *rely* on it: [`IntervalUnion::union`],
/// [`IntervalUnion::intersection`] and [`IntervalUnion::difference`] are linear
/// two-pointer merges over the two canonical operand lists (O(n + m) endpoint
/// comparisons, no sorting, no re-canonicalisation pass) whose output is
/// canonical by construction. Strict non-adjacency is what makes that work: a
/// gap between consecutive intervals is a *strict* gap, so a merge never needs
/// to look more than one interval back. The original collect-sort-merge
/// implementations are retained in [`crate::reference`] for differential
/// testing.
///
/// The in-place variants ([`IntervalUnion::union_in_place`],
/// [`IntervalUnion::intersect_assign`], [`IntervalUnion::subtract_assign`])
/// merge into a scratch buffer and swap, so steady-state protocol traffic
/// performs no allocation beyond endpoint clones (which are themselves
/// allocation-free while endpoints stay on the [`Dyadic`] inline fast path);
/// the `*_with` variants take an explicit reusable scratch buffer, the plain
/// ones use a thread-local one.
///
/// All set operations (`union`, `intersection`, `difference`) are exact.
///
/// # Example
///
/// ```
/// use anet_num::{Interval, IntervalUnion};
///
/// let left = IntervalUnion::from(Interval::from_dyadic_parts(0, 1, 1)?);  // [0, 1/2)
/// let right = IntervalUnion::from(Interval::from_dyadic_parts(1, 2, 1)?); // [1/2, 1)
/// assert_eq!(left.union(&right), IntervalUnion::unit());
/// assert!(left.intersection(&right).is_empty());
/// # Ok::<(), anet_num::NumError>(())
/// ```
/// Ordering is lexicographic on the canonical interval list (useful for ordered
/// containers and deterministic reports); it is *not* the subset order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IntervalUnion {
    /// Sorted, disjoint, non-empty, non-adjacent intervals.
    intervals: Vec<Interval>,
}

thread_local! {
    /// Reusable merge buffer for the in-place ops without an explicit scratch.
    static SCRATCH: RefCell<Vec<Interval>> = const { RefCell::new(Vec::new()) };
}

/// Appends `iv` (non-empty, with `iv.lo` no smaller than any pushed lower
/// endpoint) to a canonical prefix, merging overlap or adjacency with the last
/// interval.
#[inline]
fn push_merged(out: &mut Vec<Interval>, iv: &Interval) {
    match out.last_mut() {
        Some(last) if iv.lo() <= last.hi() => {
            // Overlapping or adjacent: extend.
            if iv.hi() > last.hi() {
                last.set_hi(iv.hi().clone());
            }
        }
        _ => out.push(iv.clone()),
    }
}

/// Linear merge of two canonical interval lists into their union; `out` is
/// canonical by construction.
///
/// The open run is tracked by *reference* into the operand lists and endpoints
/// are cloned only when an output interval is emitted, so a merge that
/// collapses many touching intervals performs O(output) clones, not O(input).
fn union_into<'a>(mut a: &'a [Interval], mut b: &'a [Interval], out: &mut Vec<Interval>) {
    debug_assert!(out.is_empty());
    let mut next = || -> Option<&'a Interval> {
        match (a.split_first(), b.split_first()) {
            (Some((x, rest)), Some((y, _))) if x.lo() <= y.lo() => {
                a = rest;
                Some(x)
            }
            (_, Some((y, rest))) => {
                b = rest;
                Some(y)
            }
            (Some((x, rest)), None) => {
                a = rest;
                Some(x)
            }
            (None, None) => None,
        }
    };
    let Some(first) = next() else {
        return;
    };
    let (mut lo, mut hi) = (first.lo(), first.hi());
    while let Some(iv) = next() {
        if iv.lo() <= hi {
            // Overlapping or adjacent: extend the open run.
            if iv.hi() > hi {
                hi = iv.hi();
            }
        } else {
            out.push(Interval::new_unchecked(lo.clone(), hi.clone()));
            lo = iv.lo();
            hi = iv.hi();
        }
    }
    out.push(Interval::new_unchecked(lo.clone(), hi.clone()));
}

/// Linear merge of two canonical interval lists into their intersection.
///
/// Output pieces inherit sortedness, and consecutive pieces are separated by a
/// strict gap (whichever operand interval ended starts its successor strictly
/// beyond the piece's end, by non-adjacency), so `out` is canonical.
fn intersection_into(a: &[Interval], b: &[Interval], out: &mut Vec<Interval>) {
    debug_assert!(out.is_empty());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = &a[i];
        let y = &b[j];
        let inter = x.intersection(y);
        if !inter.is_empty() {
            out.push(inter);
        }
        if x.hi() <= y.hi() {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Linear sweep computing `a \ b` for canonical interval lists; `out` is
/// canonical by construction (pieces of one `a`-interval are strictly
/// separated by carved `b`-mass, and distinct `a`-intervals by `a`'s own gaps).
fn difference_into(a: &[Interval], b: &[Interval], out: &mut Vec<Interval>) {
    debug_assert!(out.is_empty());
    let mut j = 0usize;
    for x in a {
        // b-intervals entirely before x cannot affect x or any later a-interval.
        while j < b.len() && b[j].hi() <= x.lo() {
            j += 1;
        }
        // The sweep cursor is a reference into the operands; endpoints are
        // cloned only when a surviving piece is emitted.
        let mut cursor: &Dyadic = x.lo();
        let mut k = j;
        loop {
            if k >= b.len() || b[k].lo() >= x.hi() {
                if cursor < x.hi() {
                    out.push(Interval::new_unchecked(cursor.clone(), x.hi().clone()));
                }
                break;
            }
            let y = &b[k];
            if y.lo() > cursor {
                out.push(Interval::new_unchecked(cursor.clone(), y.lo().clone()));
            }
            if y.hi() < x.hi() {
                cursor = y.hi();
                // y is strictly inside x, hence before every later a-interval.
                k += 1;
                j = k;
            } else {
                // y covers the tail of x (nothing of x survives past it) and may
                // still overlap the next a-interval: do not advance past it.
                break;
            }
        }
    }
}

impl IntervalUnion {
    /// The empty union (the paper's `[0, 0)` state component).
    pub fn empty() -> Self {
        IntervalUnion {
            intervals: Vec::new(),
        }
    }

    /// The full unit interval `[0, 1)`.
    pub fn unit() -> Self {
        IntervalUnion {
            intervals: vec![Interval::unit()],
        }
    }

    /// Wraps a list that is already canonical (debug-asserted).
    fn from_canonical(intervals: Vec<Interval>) -> Self {
        let out = IntervalUnion { intervals };
        out.debug_assert_canonical();
        out
    }

    #[inline]
    fn debug_assert_canonical(&self) {
        #[cfg(debug_assertions)]
        {
            for iv in &self.intervals {
                debug_assert!(!iv.is_empty(), "canonical list holds an empty interval");
            }
            for w in self.intervals.windows(2) {
                debug_assert!(
                    w[0].hi() < w[1].lo(),
                    "canonical list is not sorted/disjoint/non-adjacent"
                );
            }
        }
    }

    /// Builds a union from arbitrary (possibly overlapping, unordered, empty)
    /// intervals.
    ///
    /// This is the collect-sort-merge constructor for *non-canonical* input; the
    /// set operations below never call it, operating linearly on their already
    /// canonical operands instead.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut v: Vec<Interval> = intervals.into_iter().filter(|i| !i.is_empty()).collect();
        v.sort_by(|a, b| a.lo().cmp(b.lo()).then_with(|| a.hi().cmp(b.hi())));
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            push_merged(&mut out, &iv);
        }
        IntervalUnion { intervals: out }
    }

    /// Returns `true` if the union contains no points.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Returns `true` if the union is exactly `[0, 1)` — the terminal's acceptance
    /// condition `α ∪ β = [0, 1)`.
    pub fn is_unit(&self) -> bool {
        self.intervals.len() == 1
            && self.intervals[0].lo().is_zero()
            && self.intervals[0].hi().is_one()
    }

    /// The disjoint intervals making up the union, in increasing order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Number of maximal disjoint intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Iterates over the maximal disjoint intervals in increasing order.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.intervals.iter()
    }

    /// Total measure of the union.
    pub fn total_length(&self) -> Dyadic {
        let mut total = Dyadic::zero();
        for iv in &self.intervals {
            total += &iv.length();
        }
        total
    }

    /// Returns `true` if the point lies in the union.
    pub fn contains_point(&self, point: &Dyadic) -> bool {
        // Binary search over the sorted lower endpoints.
        let idx = self.intervals.partition_point(|iv| iv.lo() <= point);
        idx > 0 && point < self.intervals[idx - 1].hi()
    }

    /// Set union — a linear merge of the two canonical operands.
    pub fn union(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::new();
        union_into(&self.intervals, &other.intervals, &mut out);
        IntervalUnion::from_canonical(out)
    }

    /// In-place set union; returns `true` if the value changed.
    ///
    /// The general-graph protocol sends a message on an edge *iff* the relevant
    /// state component changed (Section 4), so change detection is part of the API.
    ///
    /// Merges through a reusable thread-local scratch buffer; steady-state calls
    /// do not allocate. Use [`IntervalUnion::union_in_place_with`] to thread an
    /// explicit scratch buffer instead.
    pub fn union_in_place(&mut self, other: &IntervalUnion) -> bool {
        SCRATCH.with(|scratch| self.union_in_place_with(other, &mut scratch.borrow_mut()))
    }

    /// [`IntervalUnion::union_in_place`] with an explicit scratch buffer, which
    /// is left cleared (capacity retained) for reuse.
    pub fn union_in_place_with(
        &mut self,
        other: &IntervalUnion,
        scratch: &mut Vec<Interval>,
    ) -> bool {
        if other.is_empty() {
            return false;
        }
        if self.is_empty() {
            self.intervals.extend(other.intervals.iter().cloned());
            return true;
        }
        scratch.clear();
        union_into(&self.intervals, &other.intervals, scratch);
        self.adopt_if_changed(scratch)
    }

    /// Set intersection — a linear merge of the two canonical operands.
    pub fn intersection(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() || other.is_empty() {
            return IntervalUnion::empty();
        }
        let mut out = Vec::new();
        intersection_into(&self.intervals, &other.intervals, &mut out);
        IntervalUnion::from_canonical(out)
    }

    /// In-place set intersection; returns `true` if the value changed.
    ///
    /// Merges through a reusable thread-local scratch buffer; see
    /// [`IntervalUnion::intersect_assign_with`] for the explicit-scratch variant.
    pub fn intersect_assign(&mut self, other: &IntervalUnion) -> bool {
        SCRATCH.with(|scratch| self.intersect_assign_with(other, &mut scratch.borrow_mut()))
    }

    /// [`IntervalUnion::intersect_assign`] with an explicit scratch buffer, which
    /// is left cleared (capacity retained) for reuse.
    pub fn intersect_assign_with(
        &mut self,
        other: &IntervalUnion,
        scratch: &mut Vec<Interval>,
    ) -> bool {
        if self.is_empty() {
            return false;
        }
        if other.is_empty() {
            self.intervals.clear();
            return true;
        }
        scratch.clear();
        intersection_into(&self.intervals, &other.intervals, scratch);
        self.adopt_if_changed(scratch)
    }

    /// Set difference `self \ other` — a linear sweep over the two canonical
    /// operands.
    pub fn difference(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::new();
        difference_into(&self.intervals, &other.intervals, &mut out);
        IntervalUnion::from_canonical(out)
    }

    /// In-place set difference `self \= other`; returns `true` if the value
    /// changed.
    ///
    /// Merges through a reusable thread-local scratch buffer; see
    /// [`IntervalUnion::subtract_assign_with`] for the explicit-scratch variant.
    pub fn subtract_assign(&mut self, other: &IntervalUnion) -> bool {
        SCRATCH.with(|scratch| self.subtract_assign_with(other, &mut scratch.borrow_mut()))
    }

    /// [`IntervalUnion::subtract_assign`] with an explicit scratch buffer, which
    /// is left cleared (capacity retained) for reuse.
    pub fn subtract_assign_with(
        &mut self,
        other: &IntervalUnion,
        scratch: &mut Vec<Interval>,
    ) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        scratch.clear();
        difference_into(&self.intervals, &other.intervals, scratch);
        self.adopt_if_changed(scratch)
    }

    /// Swaps in the merged list when it differs from the current value; always
    /// leaves `scratch` cleared with its capacity intact.
    fn adopt_if_changed(&mut self, scratch: &mut Vec<Interval>) -> bool {
        let changed = *scratch != self.intervals;
        if changed {
            std::mem::swap(&mut self.intervals, scratch);
            self.debug_assert_canonical();
        }
        scratch.clear();
        changed
    }

    /// Returns `true` if `self ⊆ other`. Allocation-free: since `other` is
    /// canonical (non-adjacent), each interval of `self` must lie inside a
    /// *single* maximal interval of `other`.
    pub fn is_subset_of(&self, other: &IntervalUnion) -> bool {
        let mut j = 0usize;
        for iv in &self.intervals {
            while j < other.intervals.len() && other.intervals[j].hi() < iv.hi() {
                j += 1;
            }
            match other.intervals.get(j) {
                Some(cover) if cover.lo() <= iv.lo() => {}
                _ => return false,
            }
        }
        true
    }

    /// Returns `true` if the two unions share at least one point.
    /// Allocation-free two-pointer sweep with early exit.
    pub fn intersects(&self, other: &IntervalUnion) -> bool {
        let (a, b) = (&self.intervals, &other.intervals);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let x = &a[i];
            let y = &b[j];
            if x.lo() < y.hi() && y.lo() < x.hi() {
                return true;
            }
            if x.hi() <= y.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Bits needed to transmit the union: a gamma-coded interval count followed by
    /// each interval's self-delimited endpoints.
    ///
    /// Theorem 4.3 bounds this by `O(|E| · |V| log d_out)` for any union transmitted
    /// by the general-graph protocol.
    pub fn wire_bits(&self) -> u64 {
        bits::elias_gamma_bits(self.intervals.len() as u64)
            + self
                .intervals
                .iter()
                .map(Interval::endpoint_bits)
                .sum::<u64>()
    }
}

impl From<Interval> for IntervalUnion {
    fn from(interval: Interval) -> Self {
        if interval.is_empty() {
            IntervalUnion::empty()
        } else {
            IntervalUnion {
                intervals: vec![interval],
            }
        }
    }
}

impl FromIterator<Interval> for IntervalUnion {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalUnion::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalUnion {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        let extra = IntervalUnion::from_intervals(iter);
        self.union_in_place(&extra);
    }
}

impl<'a> IntoIterator for &'a IntervalUnion {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

impl fmt::Display for IntervalUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        let parts: Vec<String> = self.intervals.iter().map(|i| i.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

impl fmt::Debug for IntervalUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IntervalUnion({self})")
    }
}

/// Partitions an interval union `α` into `parts` disjoint interval unions whose
/// union is `α`, following the paper's *canonical partition* (Section 4):
///
/// write `α = I₁ ∪ … ∪ I_r` (maximal intervals in increasing order); split the first
/// interval `I₁` into `parts - 1` pieces with [`Interval::split`]; the pieces become
/// parts `1 … parts-1`, and the remaining intervals `I₂ ∪ … ∪ I_r` become the final
/// part.
///
/// When `α` is empty, every part is empty. When `parts == 1` the single part is `α`.
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `parts == 0`.
pub fn canonical_partition(
    alpha: &IntervalUnion,
    parts: usize,
) -> Result<Vec<IntervalUnion>, NumError> {
    if parts == 0 {
        return Err(NumError::EmptyPartition);
    }
    if parts == 1 {
        return Ok(vec![alpha.clone()]);
    }
    if alpha.is_empty() {
        return Ok(vec![IntervalUnion::empty(); parts]);
    }
    let first = &alpha.intervals()[0];
    let rest = IntervalUnion::from_canonical(alpha.intervals()[1..].to_vec());
    let mut out: Vec<IntervalUnion> = first
        .split(parts - 1)?
        .into_iter()
        .map(IntervalUnion::from)
        .collect();
    out.push(rest);
    Ok(out)
}

/// Like [`canonical_partition`], but guarantees that **every** part is non-empty
/// whenever `alpha` itself is non-empty: when `alpha` consists of a single maximal
/// interval, that interval is split into `parts` pieces (instead of `parts - 1`
/// pieces plus an empty remainder).
///
/// The labelling and mapping protocols use this variant so that every vertex
/// reachable from the root is guaranteed to eventually receive interval mass —
/// and therefore a non-empty label — on every out-edge of its predecessors. The
/// paper's literal partition can starve the *last* out-port when the incoming mass
/// is a single interval, which would leave some vertices unlabelled on certain
/// topologies; see DESIGN.md ("Substitutions and clarifications").
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `parts == 0`.
pub fn canonical_partition_nonempty(
    alpha: &IntervalUnion,
    parts: usize,
) -> Result<Vec<IntervalUnion>, NumError> {
    if parts == 0 {
        return Err(NumError::EmptyPartition);
    }
    if parts == 1 || alpha.is_empty() || alpha.interval_count() > 1 {
        return canonical_partition(alpha, parts);
    }
    // A single maximal interval: split it into `parts` non-empty pieces.
    let out: Vec<IntervalUnion> = alpha.intervals()[0]
        .split(parts)?
        .into_iter()
        .map(IntervalUnion::from)
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    fn iv(lo: u64, hi: u64, exp: u32) -> Interval {
        Interval::from_dyadic_parts(lo, hi, exp).unwrap()
    }

    fn union_of(list: &[(u64, u64, u32)]) -> IntervalUnion {
        IntervalUnion::from_intervals(list.iter().map(|&(l, h, e)| iv(l, h, e)))
    }

    #[test]
    fn canonical_form_merges_overlaps_and_adjacency() {
        let u = union_of(&[(0, 2, 3), (2, 4, 3), (6, 7, 3), (5, 6, 3)]);
        // [0,1/4) ∪ [1/4,1/2) merge; [5/8,6/8) ∪ [6/8,7/8) merge.
        assert_eq!(u.interval_count(), 2);
        assert_eq!(u, union_of(&[(0, 4, 3), (5, 7, 3)]));
    }

    #[test]
    fn empty_intervals_are_dropped() {
        let u = IntervalUnion::from_intervals(vec![Interval::empty(), iv(1, 1, 4)]);
        assert!(u.is_empty());
        assert_eq!(u, IntervalUnion::empty());
        assert_eq!(u, IntervalUnion::default());
        assert!(IntervalUnion::from(Interval::empty()).is_empty());
    }

    #[test]
    fn unit_detection() {
        assert!(IntervalUnion::unit().is_unit());
        assert!(!IntervalUnion::empty().is_unit());
        // Two halves reassemble into the unit.
        let u = union_of(&[(0, 1, 1), (1, 2, 1)]);
        assert!(u.is_unit());
        // Missing a piece: not the unit.
        let v = union_of(&[(0, 1, 2), (2, 4, 2)]);
        assert!(!v.is_unit());
    }

    #[test]
    fn union_covers_both_operands() {
        let a = union_of(&[(0, 2, 3)]);
        let b = union_of(&[(4, 6, 3)]);
        let u = a.union(&b);
        assert_eq!(u, union_of(&[(0, 2, 3), (4, 6, 3)]));
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert_eq!(a.union(&IntervalUnion::empty()), a);
        assert_eq!(IntervalUnion::empty().union(&b), b);
    }

    #[test]
    fn union_merges_adjacency_across_operands() {
        // A bridge interval in `b` fuses two `a`-intervals into one.
        let a = union_of(&[(0, 1, 3), (2, 3, 3)]);
        let b = union_of(&[(1, 2, 3)]);
        assert_eq!(a.union(&b), union_of(&[(0, 3, 3)]));
        assert_eq!(b.union(&a), union_of(&[(0, 3, 3)]));
    }

    #[test]
    fn union_in_place_reports_change() {
        let mut a = union_of(&[(0, 2, 3)]);
        assert!(!a.union_in_place(&IntervalUnion::empty()));
        assert!(!a.union_in_place(&union_of(&[(0, 1, 3)]))); // already covered
        assert!(a.union_in_place(&union_of(&[(4, 5, 3)])));
        assert_eq!(a, union_of(&[(0, 2, 3), (4, 5, 3)]));
    }

    #[test]
    fn in_place_ops_with_explicit_scratch() {
        let mut scratch = Vec::new();
        let mut a = union_of(&[(0, 4, 3), (6, 8, 3)]);
        assert!(a.union_in_place_with(&union_of(&[(4, 5, 3)]), &mut scratch));
        assert_eq!(a, union_of(&[(0, 5, 3), (6, 8, 3)]));
        assert!(scratch.is_empty());
        let cap = scratch.capacity();
        assert!(cap > 0, "scratch capacity is retained for reuse");
        assert!(a.intersect_assign_with(&union_of(&[(2, 7, 3)]), &mut scratch));
        assert_eq!(a, union_of(&[(2, 5, 3), (6, 7, 3)]));
        assert!(a.subtract_assign_with(&union_of(&[(3, 4, 3)]), &mut scratch));
        assert_eq!(a, union_of(&[(2, 3, 3), (4, 5, 3), (6, 7, 3)]));
    }

    #[test]
    fn intersect_assign_reports_change() {
        let mut a = union_of(&[(0, 4, 3)]);
        assert!(!a.intersect_assign(&union_of(&[(0, 8, 3)]))); // superset: no change
        assert!(a.intersect_assign(&union_of(&[(1, 2, 3)])));
        assert_eq!(a, union_of(&[(1, 2, 3)]));
        assert!(a.intersect_assign(&IntervalUnion::empty()));
        assert!(a.is_empty());
        assert!(!a.intersect_assign(&IntervalUnion::unit())); // empty stays empty
    }

    #[test]
    fn subtract_assign_reports_change() {
        let mut a = union_of(&[(0, 4, 3)]);
        assert!(!a.subtract_assign(&IntervalUnion::empty()));
        assert!(!a.subtract_assign(&union_of(&[(5, 6, 3)]))); // disjoint: no change
        assert!(a.subtract_assign(&union_of(&[(1, 2, 3)])));
        assert_eq!(a, union_of(&[(0, 1, 3), (2, 4, 3)]));
        assert!(a.subtract_assign(&IntervalUnion::unit()));
        assert!(a.is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = union_of(&[(0, 4, 3), (6, 8, 3)]);
        let b = union_of(&[(2, 7, 3)]);
        assert_eq!(a.intersection(&b), union_of(&[(2, 4, 3), (6, 7, 3)]));
        assert_eq!(b.intersection(&a), a.intersection(&b));
        assert!(a.intersection(&IntervalUnion::empty()).is_empty());
        assert!(!a.intersects(&union_of(&[(4, 6, 3)])));
        assert!(a.intersects(&union_of(&[(3, 5, 3)])));
    }

    #[test]
    fn difference_cases() {
        let a = IntervalUnion::unit();
        let b = union_of(&[(1, 2, 2)]); // [1/4, 1/2)
        let d = a.difference(&b);
        assert_eq!(d, union_of(&[(0, 1, 2), (2, 4, 2)]));
        // Removing what we kept plus what we removed gives the empty set.
        assert!(a.difference(&d).difference(&b).is_empty());
        // Difference with self or a superset is empty.
        assert!(a.difference(&a).is_empty());
        assert!(b.difference(&a).is_empty());
        // Difference with empty leaves the value unchanged.
        assert_eq!(a.difference(&IntervalUnion::empty()), a);
    }

    #[test]
    fn difference_across_multiple_intervals() {
        let a = union_of(&[(0, 3, 3), (4, 8, 3)]);
        let b = union_of(&[(1, 2, 3), (5, 6, 3), (7, 8, 3)]);
        let d = a.difference(&b);
        assert_eq!(d, union_of(&[(0, 1, 3), (2, 3, 3), (4, 5, 3), (6, 7, 3)]));
    }

    #[test]
    fn difference_with_spanning_subtrahend() {
        // One b-interval covering the tail of a₁ and the head of a₂ must be
        // consulted for both (the sweep may not advance past it).
        let a = union_of(&[(0, 3, 4), (5, 9, 4), (11, 12, 4)]);
        let b = union_of(&[(2, 6, 4), (8, 16, 4)]);
        assert_eq!(a.difference(&b), union_of(&[(0, 2, 4), (6, 8, 4)]));
    }

    #[test]
    fn subset_relation() {
        let a = union_of(&[(0, 2, 3), (4, 6, 3)]);
        let sub = union_of(&[(0, 1, 3), (5, 6, 3)]);
        assert!(sub.is_subset_of(&a));
        assert!(!a.is_subset_of(&sub));
        assert!(IntervalUnion::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&IntervalUnion::unit()));
        // An interval spanning a gap of the candidate superset is not covered.
        let spanning = union_of(&[(1, 5, 3)]);
        assert!(!spanning.is_subset_of(&a));
    }

    #[test]
    fn total_length_and_contains_point() {
        let a = union_of(&[(0, 1, 2), (2, 3, 2)]);
        assert_eq!(a.total_length(), Dyadic::from_pow2_neg(1));
        assert!(a.contains_point(&Dyadic::zero()));
        assert!(a.contains_point(&Dyadic::from_pow2_neg(1)));
        assert!(!a.contains_point(&Dyadic::from_pow2_neg(2)));
        assert!(!a.contains_point(&Dyadic::from_parts(BigUint::from(3u64), 2)));
        assert!(!IntervalUnion::empty().contains_point(&Dyadic::zero()));
        assert!(!a.contains_point(&Dyadic::one()));
    }

    #[test]
    fn canonical_partition_is_a_partition() {
        let alpha = union_of(&[(0, 3, 3), (5, 7, 3)]);
        for parts in 1..=8usize {
            let pieces = canonical_partition(&alpha, parts).unwrap();
            assert_eq!(pieces.len(), parts);
            // Pairwise disjoint.
            for i in 0..pieces.len() {
                for j in i + 1..pieces.len() {
                    assert!(
                        !pieces[i].intersects(&pieces[j]),
                        "parts {i} and {j} overlap for split into {parts}"
                    );
                }
            }
            // Union reassembles alpha.
            let mut total = IntervalUnion::empty();
            for p in &pieces {
                total.union_in_place(p);
            }
            assert_eq!(total, alpha, "partition into {parts} loses mass");
        }
    }

    #[test]
    fn canonical_partition_of_unit_gives_nonempty_leading_parts() {
        // Used for labels: every vertex with out-degree d keeps piece 0 of a
        // (d+1)-way partition, which must be non-empty whenever the input is.
        for parts in 2..=9usize {
            let pieces = canonical_partition(&IntervalUnion::unit(), parts).unwrap();
            for (idx, p) in pieces.iter().enumerate().take(parts - 1) {
                assert!(!p.is_empty(), "piece {idx} of {parts} is empty");
            }
        }
    }

    #[test]
    fn canonical_partition_edge_cases() {
        assert!(canonical_partition(&IntervalUnion::unit(), 0).is_err());
        let single = canonical_partition(&IntervalUnion::unit(), 1).unwrap();
        assert_eq!(single, vec![IntervalUnion::unit()]);
        let of_empty = canonical_partition(&IntervalUnion::empty(), 4).unwrap();
        assert!(of_empty.iter().all(IntervalUnion::is_empty));
    }

    #[test]
    fn canonical_partition_single_interval_last_part_empty() {
        // With a single maximal interval, the "rest" part is empty, as in the paper.
        let alpha = IntervalUnion::unit();
        let pieces = canonical_partition(&alpha, 4).unwrap();
        assert!(pieces[3].is_empty());
        assert!(!pieces[0].is_empty());
    }

    #[test]
    fn nonempty_partition_never_starves_a_part() {
        for parts in 1..=8usize {
            let pieces = canonical_partition_nonempty(&IntervalUnion::unit(), parts).unwrap();
            assert_eq!(pieces.len(), parts);
            let mut acc = IntervalUnion::empty();
            for p in &pieces {
                assert!(!p.is_empty(), "part empty for {parts}-way split");
                assert!(!acc.intersects(p));
                acc.union_in_place(p);
            }
            assert!(acc.is_unit());
        }
    }

    #[test]
    fn nonempty_partition_falls_back_for_fragmented_input() {
        let alpha = union_of(&[(0, 3, 3), (5, 7, 3)]);
        let a = canonical_partition(&alpha, 4).unwrap();
        let b = canonical_partition_nonempty(&alpha, 4).unwrap();
        assert_eq!(a, b);
        assert!(canonical_partition_nonempty(&IntervalUnion::unit(), 0).is_err());
        let of_empty = canonical_partition_nonempty(&IntervalUnion::empty(), 3).unwrap();
        assert!(of_empty.iter().all(IntervalUnion::is_empty));
    }

    #[test]
    fn wire_bits_grow_with_fragmentation() {
        let coarse = IntervalUnion::unit();
        let fine = union_of(&[(0, 1, 4), (2, 3, 4), (4, 5, 4), (6, 7, 4)]);
        assert!(fine.wire_bits() > coarse.wire_bits());
        assert!(IntervalUnion::empty().wire_bits() >= 1);
    }

    #[test]
    fn from_iterator_and_extend() {
        let parts = Interval::unit().split(4).unwrap();
        let collected: IntervalUnion = parts.iter().cloned().collect();
        assert!(collected.is_unit());
        let mut partial = IntervalUnion::from(parts[0].clone());
        partial.extend(parts[1..].iter().cloned());
        assert!(partial.is_unit());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(IntervalUnion::empty().to_string(), "∅");
        assert!(IntervalUnion::unit().to_string().contains("[0, 1)"));
    }
}
