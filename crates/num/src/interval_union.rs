//! Finite unions of disjoint intervals over `[0, 1)` — the commodity of the
//! general-graph protocols (Definition 4.1).

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use crate::{bits, Dyadic, Interval, NumError};

/// An element of `U[0, 1)`: a finite union of disjoint half-open intervals.
///
/// # Representation: the flattened endpoint array
///
/// The value is stored as one dense buffer of alternating endpoints
/// `[lo₀, hi₀, lo₁, hi₁, …]` (a `Vec<Dyadic>`) rather than a list of interval
/// structs. The buffer obeys three invariants, which together are the
/// **canonical-form contract**:
///
/// 1. **Even length** — endpoints come in `(lo, hi)` pairs; pair `i` denotes
///    the half-open interval `[e[2i], e[2i+1])`.
/// 2. **Strictly increasing** — `e[k] < e[k+1]` for every `k`. Within a pair
///    this says the interval is non-empty (`lo < hi`); across pairs
///    (`hi_i < lo_{i+1}`, the *canonical gap rule*) it says consecutive
///    intervals are disjoint **and non-adjacent** — touching intervals are
///    merged at construction time, so a gap between pairs is always a strict
///    gap of positive measure.
/// 3. **Empty is empty** — the empty set is the absent buffer, never a
///    zero-length one, so `is_empty` is a null check.
///
/// Two values compare equal with `==` exactly when they denote the same point
/// set. The set operations *rely* on canonicity: [`IntervalUnion::union`],
/// [`IntervalUnion::intersection`] and [`IntervalUnion::difference`] are
/// linear two-pointer merges that walk the two flat buffers in one pass
/// (O(n + m) endpoint comparisons, no sorting, no re-canonicalisation, and —
/// because the buffer is one contiguous allocation of endpoints — half the
/// pointer traffic of the former `Vec<Interval>`-of-pairs layout). Strict
/// non-adjacency is what makes that work: a merge never needs to look more
/// than one emitted pair back. The original collect-sort-merge
/// implementations are retained in [`crate::reference`] for differential
/// testing.
///
/// # Copy-on-write aliasing contract
///
/// The endpoint buffer lives behind an [`Arc`]; [`Clone`] is an O(1)
/// reference-count bump, never a copy of the endpoints. This is the per-out-
/// port hot path of the labelling and general-broadcast protocols: a label
/// flooded on `d` edges is **one** buffer with `d + 1` handles, exactly like
/// the `Arc<[RecordId]>` slices of the mapping protocol.
///
/// Writers respect the aliasing: the in-place operations
/// ([`IntervalUnion::union_in_place`], [`IntervalUnion::intersect_assign`],
/// [`IntervalUnion::subtract_assign`]) merge into a scratch buffer and then
/// *adopt* the result — reusing the existing allocation when this handle is
/// the buffer's sole owner, and allocating a fresh buffer (leaving every
/// sibling handle untouched) when the buffer is shared. Mutating through one
/// handle therefore **never** changes the value observed through another;
/// sharing is an invisible optimisation, observable only through
/// [`IntervalUnion::shares_storage_with`] (and the allocator). Steady-state
/// unshared traffic performs no allocation beyond endpoint clones (which are
/// themselves allocation-free while endpoints stay on the [`Dyadic`] inline
/// fast path); the `*_with` variants take an explicit reusable scratch
/// buffer, the plain ones use a thread-local one.
///
/// All set operations (`union`, `intersection`, `difference`) are exact, and
/// [`IntervalUnion::wire_bits`] still charges the *encoded intervals* — the
/// paper's bit counts are a property of the value, not of how many handles
/// share its buffer.
///
/// # Example
///
/// ```
/// use anet_num::{Interval, IntervalUnion};
///
/// let left = IntervalUnion::from(Interval::from_dyadic_parts(0, 1, 1)?);  // [0, 1/2)
/// let right = IntervalUnion::from(Interval::from_dyadic_parts(1, 2, 1)?); // [1/2, 1)
/// assert_eq!(left.union(&right), IntervalUnion::unit());
/// assert!(left.intersection(&right).is_empty());
///
/// // Cloning shares the endpoint buffer; writers copy before mutating.
/// let shared = left.clone();
/// assert!(shared.shares_storage_with(&left));
/// let mut writer = shared.clone();
/// writer.union_in_place(&right);
/// assert!(writer.is_unit());
/// assert_eq!(shared, left); // the sibling handle is untouched
/// # Ok::<(), anet_num::NumError>(())
/// ```
/// Ordering is lexicographic on the endpoint array (equivalently, on the
/// canonical interval list — useful for ordered containers and deterministic
/// reports); it is *not* the subset order.
#[derive(Clone, Default)]
pub struct IntervalUnion {
    /// `None` ⟺ the empty set; `Some` holds the canonical endpoint buffer
    /// (non-empty, even length, strictly increasing).
    endpoints: Option<Arc<Vec<Dyadic>>>,
}

thread_local! {
    /// Reusable merge buffer for the in-place ops without an explicit scratch.
    static SCRATCH: RefCell<Vec<Dyadic>> = const { RefCell::new(Vec::new()) };
}

/// Picks the interval with the smaller lower endpoint off the front of `a` or
/// `b` (cursors `i`/`j` advance by a whole pair), for the union merge.
#[inline]
fn next_pair<'a>(
    a: &'a [Dyadic],
    b: &'a [Dyadic],
    i: &mut usize,
    j: &mut usize,
) -> Option<(&'a Dyadic, &'a Dyadic)> {
    let from_a = match (a.get(*i), b.get(*j)) {
        (Some(x), Some(y)) => x <= y,
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => return None,
    };
    if from_a {
        let pair = (&a[*i], &a[*i + 1]);
        *i += 2;
        Some(pair)
    } else {
        let pair = (&b[*j], &b[*j + 1]);
        *j += 2;
        Some(pair)
    }
}

/// Linear merge of two canonical endpoint arrays into their union; `out` is
/// canonical by construction.
///
/// The open run is tracked by *reference* into the operand buffers and
/// endpoints are cloned only when an output pair is emitted, so a merge that
/// collapses many touching intervals performs O(output) clones, not O(input).
fn union_into(a: &[Dyadic], b: &[Dyadic], out: &mut Vec<Dyadic>) {
    debug_assert!(out.is_empty());
    let (mut i, mut j) = (0usize, 0usize);
    let Some((first_lo, first_hi)) = next_pair(a, b, &mut i, &mut j) else {
        return;
    };
    let (mut lo, mut hi) = (first_lo, first_hi);
    while let Some((l, h)) = next_pair(a, b, &mut i, &mut j) {
        if l <= hi {
            // Overlapping or adjacent: extend the open run.
            if h > hi {
                hi = h;
            }
        } else {
            out.push(lo.clone());
            out.push(hi.clone());
            lo = l;
            hi = h;
        }
    }
    out.push(lo.clone());
    out.push(hi.clone());
}

/// Linear merge of two canonical endpoint arrays into their intersection.
///
/// Output pieces inherit sortedness, and consecutive pieces are separated by a
/// strict gap (whichever operand interval ended starts its successor strictly
/// beyond the piece's end, by non-adjacency), so `out` is canonical.
fn intersection_into(a: &[Dyadic], b: &[Dyadic], out: &mut Vec<Dyadic>) {
    debug_assert!(out.is_empty());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (xl, xh) = (&a[i], &a[i + 1]);
        let (yl, yh) = (&b[j], &b[j + 1]);
        let lo = if xl >= yl { xl } else { yl };
        let hi = if xh <= yh { xh } else { yh };
        if lo < hi {
            out.push(lo.clone());
            out.push(hi.clone());
        }
        if xh <= yh {
            i += 2;
        } else {
            j += 2;
        }
    }
}

/// Linear sweep computing `a \ b` for canonical endpoint arrays; `out` is
/// canonical by construction (pieces of one `a`-interval are strictly
/// separated by carved `b`-mass, and distinct `a`-intervals by `a`'s own gaps).
fn difference_into(a: &[Dyadic], b: &[Dyadic], out: &mut Vec<Dyadic>) {
    debug_assert!(out.is_empty());
    let mut j = 0usize;
    let mut i = 0usize;
    while i < a.len() {
        let (xl, xh) = (&a[i], &a[i + 1]);
        // b-intervals entirely before x cannot affect x or any later a-interval.
        while j < b.len() && &b[j + 1] <= xl {
            j += 2;
        }
        // The sweep cursor is a reference into the operands; endpoints are
        // cloned only when a surviving piece is emitted.
        let mut cursor: &Dyadic = xl;
        let mut k = j;
        loop {
            if k >= b.len() || &b[k] >= xh {
                if cursor < xh {
                    out.push(cursor.clone());
                    out.push(xh.clone());
                }
                break;
            }
            let (yl, yh) = (&b[k], &b[k + 1]);
            if yl > cursor {
                out.push(cursor.clone());
                out.push(yl.clone());
            }
            if yh < xh {
                cursor = yh;
                // y is strictly inside x, hence before every later a-interval.
                k += 2;
                j = k;
            } else {
                // y covers the tail of x (nothing of x survives past it) and may
                // still overlap the next a-interval: do not advance past it.
                break;
            }
        }
        i += 2;
    }
}

/// Borrowing iterator over the maximal disjoint intervals of an
/// [`IntervalUnion`], yielding each pair of endpoints as an owned
/// [`Interval`] (two endpoint clones per item — allocation-free while the
/// endpoints stay on the [`Dyadic`] inline fast path).
#[derive(Debug, Clone)]
pub struct Intervals<'a> {
    rest: &'a [Dyadic],
}

impl Iterator for Intervals<'_> {
    type Item = Interval;

    fn next(&mut self) -> Option<Interval> {
        if self.rest.len() < 2 {
            return None;
        }
        let iv = Interval::new_unchecked(self.rest[0].clone(), self.rest[1].clone());
        self.rest = &self.rest[2..];
        Some(iv)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rest.len() / 2;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Intervals<'_> {}

impl IntervalUnion {
    /// The empty union (the paper's `[0, 0)` state component). Allocation-free.
    pub fn empty() -> Self {
        IntervalUnion { endpoints: None }
    }

    /// The full unit interval `[0, 1)`.
    pub fn unit() -> Self {
        IntervalUnion::from_endpoints(vec![Dyadic::zero(), Dyadic::one()])
    }

    /// Wraps an endpoint buffer that is already canonical (debug-asserted).
    fn from_endpoints(endpoints: Vec<Dyadic>) -> Self {
        let out = IntervalUnion {
            endpoints: if endpoints.is_empty() {
                None
            } else {
                Some(Arc::new(endpoints))
            },
        };
        out.debug_assert_canonical();
        out
    }

    #[inline]
    fn debug_assert_canonical(&self) {
        #[cfg(debug_assertions)]
        {
            let e = self.endpoints();
            debug_assert!(e.len().is_multiple_of(2), "endpoint array has odd length");
            debug_assert!(
                self.endpoints.as_ref().is_none_or(|v| !v.is_empty()),
                "empty set must be the absent buffer"
            );
            for w in e.windows(2) {
                debug_assert!(
                    w[0] < w[1],
                    "endpoint array is not strictly increasing (empty, unsorted, \
                     overlapping or adjacent intervals)"
                );
            }
        }
    }

    /// The flattened canonical endpoint array `[lo₀, hi₀, lo₁, hi₁, …]`:
    /// even length, strictly increasing (see the type-level invariants).
    #[inline]
    pub fn endpoints(&self) -> &[Dyadic] {
        self.endpoints.as_ref().map_or(&[], |v| v.as_slice())
    }

    /// Returns `true` if `self` and `other` share one endpoint buffer — i.e.
    /// one is an O(1) copy-on-write clone of the other (or both are empty)
    /// and no writer has detached them since. Equal values in separate
    /// buffers return `false`; this observes the *sharing*, not the value.
    #[inline]
    pub fn shares_storage_with(&self, other: &IntervalUnion) -> bool {
        match (&self.endpoints, &other.endpoints) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// A clone that copies the endpoint buffer instead of sharing it.
    ///
    /// Protocol code never needs this — sharing is semantically invisible —
    /// but the retained reference protocols use it to model the pre-CoW
    /// deep-clone-per-out-port cost, and tests use it to pin the aliasing
    /// contract.
    pub fn deep_clone(&self) -> Self {
        IntervalUnion {
            endpoints: self
                .endpoints
                .as_ref()
                .map(|v| Arc::new(Vec::clone(v.as_ref()))),
        }
    }

    /// Builds a union from arbitrary (possibly overlapping, unordered, empty)
    /// intervals.
    ///
    /// This is the collect-sort-merge constructor for *non-canonical* input; the
    /// set operations below never call it, operating linearly on their already
    /// canonical operands instead.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> Self {
        let mut v: Vec<Interval> = intervals.into_iter().filter(|i| !i.is_empty()).collect();
        v.sort_by(|a, b| a.lo().cmp(b.lo()).then_with(|| a.hi().cmp(b.hi())));
        let mut out: Vec<Dyadic> = Vec::with_capacity(2 * v.len());
        for iv in v {
            let (lo, hi) = iv.into_parts();
            match out.last_mut() {
                // Overlapping or adjacent with the open pair: extend.
                Some(last_hi) if lo <= *last_hi => {
                    if hi > *last_hi {
                        *last_hi = hi;
                    }
                }
                _ => {
                    out.push(lo);
                    out.push(hi);
                }
            }
        }
        IntervalUnion::from_endpoints(out)
    }

    /// Returns `true` if the union contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_none()
    }

    /// Returns `true` if the union is exactly `[0, 1)` — the terminal's acceptance
    /// condition `α ∪ β = [0, 1)`.
    pub fn is_unit(&self) -> bool {
        let e = self.endpoints();
        e.len() == 2 && e[0].is_zero() && e[1].is_one()
    }

    /// Number of maximal disjoint intervals.
    #[inline]
    pub fn interval_count(&self) -> usize {
        self.endpoints().len() / 2
    }

    /// Iterates over the maximal disjoint intervals in increasing order.
    pub fn iter(&self) -> Intervals<'_> {
        Intervals {
            rest: self.endpoints(),
        }
    }

    /// The first (smallest) maximal interval, if any.
    pub fn first_interval(&self) -> Option<Interval> {
        let e = self.endpoints();
        (!e.is_empty()).then(|| Interval::new_unchecked(e[0].clone(), e[1].clone()))
    }

    /// Total measure of the union.
    pub fn total_length(&self) -> Dyadic {
        let mut total = Dyadic::zero();
        let e = self.endpoints();
        let mut i = 0;
        while i < e.len() {
            let len = e[i + 1]
                .checked_sub(&e[i])
                .expect("endpoint invariant lo < hi");
            total += &len;
            i += 2;
        }
        total
    }

    /// Returns `true` if the point lies in the union.
    pub fn contains_point(&self, point: &Dyadic) -> bool {
        // Binary search over the flat endpoint array: the number of endpoints
        // `<= point` is odd exactly when `point` falls inside a pair (it has
        // passed a `lo` but not the matching `hi`).
        self.endpoints().partition_point(|e| e <= point) % 2 == 1
    }

    /// Set union — a linear merge of the two canonical operands.
    ///
    /// The trivial cases (either operand empty, or both handles sharing one
    /// buffer) return an O(1) shared handle instead of merging.
    pub fn union(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() || self.shares_storage_with(other) {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (a, b) = (self.endpoints(), other.endpoints());
        let mut out = Vec::with_capacity(a.len() + b.len());
        union_into(a, b, &mut out);
        IntervalUnion::from_endpoints(out)
    }

    /// In-place set union; returns `true` if the value changed.
    ///
    /// The general-graph protocol sends a message on an edge *iff* the relevant
    /// state component changed (Section 4), so change detection is part of the API.
    ///
    /// Merges through a reusable thread-local scratch buffer; steady-state calls
    /// on unshared values do not allocate, and a call on a *shared* value
    /// detaches this handle only (copy-on-write — every sibling handle keeps
    /// the old value). Use [`IntervalUnion::union_in_place_with`] to thread an
    /// explicit scratch buffer instead.
    pub fn union_in_place(&mut self, other: &IntervalUnion) -> bool {
        SCRATCH.with(|scratch| self.union_in_place_with(other, &mut scratch.borrow_mut()))
    }

    /// [`IntervalUnion::union_in_place`] with an explicit scratch buffer, which
    /// is left cleared (capacity retained) for reuse.
    pub fn union_in_place_with(
        &mut self,
        other: &IntervalUnion,
        scratch: &mut Vec<Dyadic>,
    ) -> bool {
        if other.is_empty() || self.shares_storage_with(other) {
            return false;
        }
        if self.is_empty() {
            // ∅ ∪ x = x: share x's buffer instead of copying it. This is how an
            // unchanged label floods onward as one buffer with many handles.
            self.endpoints = other.endpoints.clone();
            return true;
        }
        // Accumulator fast path: `other` splits into a (possibly empty) prefix
        // of parts already contained in `self` and a (possibly empty) suffix of
        // parts lying entirely at or above `self`'s top endpoint. The union is
        // then `self` with the suffix appended (coalescing the boundary pair
        // when the two touch) — O(|other| log |self|) binary searches and an
        // O(|suffix|) amortised append instead of the O(|self| + |other|)
        // merge below. This is the shape of a monotonically growing
        // accumulator: a terminal absorbing mass in ascending positional order
        // receives deltas whose parts are either re-deliveries it already
        // covers (the same mass routed over another path) or fresh mass above
        // everything seen so far. `other`'s parts are ascending, so once one
        // part starts at or above the top, all later parts do too.
        {
            let own = self.endpoints.as_mut().expect("checked non-empty");
            let other_buf = other.endpoints();
            let top = own.len() - 1;
            let mut append_from = None;
            let mut fits = true;
            for (k, part) in other_buf.chunks_exact(2).enumerate() {
                if part[0] >= own[top] {
                    append_from = Some(2 * k);
                    break;
                }
                // `pos` = number of own endpoints ≤ part start. Odd means the
                // start falls inside own part `(pos - 1) / 2` (half-open: a
                // start equal to an own *end* lands in the gap, `pos` even),
                // and the part is covered iff its end stays at or below that
                // own part's end.
                let pos = own.partition_point(|e| *e <= part[0]);
                if pos % 2 == 0 || part[1] > own[pos] {
                    fits = false;
                    break;
                }
            }
            if fits {
                let Some(from) = append_from else {
                    // Every part of `other` was already covered: no-op union.
                    return false;
                };
                let suffix = &other_buf[from..];
                let touching = suffix[0] == own[top];
                let buf = Arc::make_mut(own);
                if touching {
                    *buf.last_mut().expect("non-empty buffer") = suffix[1].clone();
                    buf.extend_from_slice(&suffix[2..]);
                } else {
                    buf.extend_from_slice(suffix);
                }
                self.debug_assert_canonical();
                // The suffix holds mass at or above `self`'s old top endpoint,
                // none of which `self` covered: the union strictly grew.
                return true;
            }
        }
        scratch.clear();
        union_into(self.endpoints(), other.endpoints(), scratch);
        self.adopt_if_changed(scratch)
    }

    /// Set intersection — a linear merge of the two canonical operands.
    pub fn intersection(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() || other.is_empty() {
            return IntervalUnion::empty();
        }
        if self.shares_storage_with(other) {
            return self.clone();
        }
        let mut out = Vec::new();
        intersection_into(self.endpoints(), other.endpoints(), &mut out);
        IntervalUnion::from_endpoints(out)
    }

    /// In-place set intersection; returns `true` if the value changed.
    ///
    /// Merges through a reusable thread-local scratch buffer (copy-on-write on
    /// shared values, like [`IntervalUnion::union_in_place`]); see
    /// [`IntervalUnion::intersect_assign_with`] for the explicit-scratch variant.
    pub fn intersect_assign(&mut self, other: &IntervalUnion) -> bool {
        SCRATCH.with(|scratch| self.intersect_assign_with(other, &mut scratch.borrow_mut()))
    }

    /// [`IntervalUnion::intersect_assign`] with an explicit scratch buffer, which
    /// is left cleared (capacity retained) for reuse.
    pub fn intersect_assign_with(
        &mut self,
        other: &IntervalUnion,
        scratch: &mut Vec<Dyadic>,
    ) -> bool {
        if self.is_empty() || self.shares_storage_with(other) {
            return false;
        }
        if other.is_empty() {
            self.endpoints = None;
            return true;
        }
        scratch.clear();
        intersection_into(self.endpoints(), other.endpoints(), scratch);
        self.adopt_if_changed(scratch)
    }

    /// Set difference `self \ other` — a linear sweep over the two canonical
    /// operands.
    pub fn difference(&self, other: &IntervalUnion) -> IntervalUnion {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        if self.shares_storage_with(other) {
            return IntervalUnion::empty();
        }
        let mut out = Vec::new();
        difference_into(self.endpoints(), other.endpoints(), &mut out);
        IntervalUnion::from_endpoints(out)
    }

    /// In-place set difference `self \= other`; returns `true` if the value
    /// changed.
    ///
    /// Merges through a reusable thread-local scratch buffer (copy-on-write on
    /// shared values, like [`IntervalUnion::union_in_place`]); see
    /// [`IntervalUnion::subtract_assign_with`] for the explicit-scratch variant.
    pub fn subtract_assign(&mut self, other: &IntervalUnion) -> bool {
        SCRATCH.with(|scratch| self.subtract_assign_with(other, &mut scratch.borrow_mut()))
    }

    /// [`IntervalUnion::subtract_assign`] with an explicit scratch buffer, which
    /// is left cleared (capacity retained) for reuse.
    pub fn subtract_assign_with(
        &mut self,
        other: &IntervalUnion,
        scratch: &mut Vec<Dyadic>,
    ) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        if self.shares_storage_with(other) {
            // x \ x = ∅, and x is non-empty here.
            self.endpoints = None;
            return true;
        }
        scratch.clear();
        difference_into(self.endpoints(), other.endpoints(), scratch);
        self.adopt_if_changed(scratch)
    }

    /// Swaps in the merged endpoint buffer when it differs from the current
    /// value; always leaves `scratch` cleared (capacity retained where
    /// possible).
    ///
    /// This is where copy-on-write happens: a uniquely owned buffer is reused
    /// in place (allocation-free steady state), a shared one is left to its
    /// sibling handles and replaced by a fresh buffer.
    fn adopt_if_changed(&mut self, scratch: &mut Vec<Dyadic>) -> bool {
        let changed = self.endpoints() != scratch.as_slice();
        if changed {
            if scratch.is_empty() {
                self.endpoints = None;
            } else {
                match self.endpoints.as_mut().and_then(Arc::get_mut) {
                    // Sole owner: recycle the existing allocation.
                    Some(vec) => std::mem::swap(vec, scratch),
                    // Shared (or empty): detach into a fresh buffer. The
                    // scratch buffer is donated to the new value, so this one
                    // path gives up the scratch capacity.
                    None => self.endpoints = Some(Arc::new(std::mem::take(scratch))),
                }
            }
            self.debug_assert_canonical();
        }
        scratch.clear();
        changed
    }

    /// Returns `true` if `self ⊆ other`. Allocation-free: since `other` is
    /// canonical (non-adjacent), each interval of `self` must lie inside a
    /// *single* maximal interval of `other`.
    pub fn is_subset_of(&self, other: &IntervalUnion) -> bool {
        if self.shares_storage_with(other) {
            return true;
        }
        let (a, b) = (self.endpoints(), other.endpoints());
        let mut j = 0usize;
        let mut i = 0usize;
        while i < a.len() {
            let (lo, hi) = (&a[i], &a[i + 1]);
            while j < b.len() && &b[j + 1] < hi {
                j += 2;
            }
            if j >= b.len() || &b[j] > lo {
                return false;
            }
            i += 2;
        }
        true
    }

    /// Returns `true` if the two unions share at least one point.
    /// Allocation-free two-pointer sweep with early exit.
    pub fn intersects(&self, other: &IntervalUnion) -> bool {
        if self.shares_storage_with(other) {
            return !self.is_empty();
        }
        let (a, b) = (self.endpoints(), other.endpoints());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            let (xl, xh) = (&a[i], &a[i + 1]);
            let (yl, yh) = (&b[j], &b[j + 1]);
            if xl < yh && yl < xh {
                return true;
            }
            if xh <= yh {
                i += 2;
            } else {
                j += 2;
            }
        }
        false
    }

    /// Bits needed to transmit the union: a gamma-coded interval count followed by
    /// each interval's self-delimited endpoints.
    ///
    /// This charges the **encoded intervals**, independent of buffer sharing:
    /// a label flooded as one shared buffer with many handles still pays full
    /// price on every edge, so Theorem 4.3's `O(|E| · |V| log d_out)` bound is
    /// accounted exactly as before.
    pub fn wire_bits(&self) -> u64 {
        let e = self.endpoints();
        bits::elias_gamma_bits((e.len() / 2) as u64)
            + e.iter()
                .map(|d| bits::length_prefixed_bits(d.positional_bits()))
                .sum::<u64>()
    }
}

impl PartialEq for IntervalUnion {
    fn eq(&self, other: &Self) -> bool {
        self.shares_storage_with(other) || self.endpoints() == other.endpoints()
    }
}

impl Eq for IntervalUnion {}

impl PartialOrd for IntervalUnion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IntervalUnion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic on the flat endpoint arrays — identical to the former
        // lexicographic order on interval lists, because pairs are fixed-width.
        self.endpoints().cmp(other.endpoints())
    }
}

impl std::hash::Hash for IntervalUnion {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.endpoints().hash(state);
    }
}

impl From<Interval> for IntervalUnion {
    fn from(interval: Interval) -> Self {
        if interval.is_empty() {
            IntervalUnion::empty()
        } else {
            let (lo, hi) = interval.into_parts();
            IntervalUnion::from_endpoints(vec![lo, hi])
        }
    }
}

impl FromIterator<Interval> for IntervalUnion {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        IntervalUnion::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalUnion {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        let extra = IntervalUnion::from_intervals(iter);
        self.union_in_place(&extra);
    }
}

impl<'a> IntoIterator for &'a IntervalUnion {
    type Item = Interval;
    type IntoIter = Intervals<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for IntervalUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        let parts: Vec<String> = self.iter().map(|i| i.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

impl fmt::Debug for IntervalUnion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IntervalUnion({self})")
    }
}

/// Partitions an interval union `α` into `parts` disjoint interval unions whose
/// union is `α`, following the paper's *canonical partition* (Section 4):
///
/// write `α = I₁ ∪ … ∪ I_r` (maximal intervals in increasing order); split the first
/// interval `I₁` into `parts - 1` pieces with [`Interval::split`]; the pieces become
/// parts `1 … parts-1`, and the remaining intervals `I₂ ∪ … ∪ I_r` become the final
/// part.
///
/// When `α` is empty, every part is empty. When `parts == 1` the single part is `α`.
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `parts == 0`.
pub fn canonical_partition(
    alpha: &IntervalUnion,
    parts: usize,
) -> Result<Vec<IntervalUnion>, NumError> {
    if parts == 0 {
        return Err(NumError::EmptyPartition);
    }
    if parts == 1 {
        return Ok(vec![alpha.clone()]);
    }
    if alpha.is_empty() {
        return Ok(vec![IntervalUnion::empty(); parts]);
    }
    let e = alpha.endpoints();
    let first = Interval::new_unchecked(e[0].clone(), e[1].clone());
    let rest = IntervalUnion::from_endpoints(e[2..].to_vec());
    let mut out: Vec<IntervalUnion> = first
        .split(parts - 1)?
        .into_iter()
        .map(IntervalUnion::from)
        .collect();
    out.push(rest);
    Ok(out)
}

/// Like [`canonical_partition`], but guarantees that **every** part is non-empty
/// whenever `alpha` itself is non-empty: when `alpha` consists of a single maximal
/// interval, that interval is split into `parts` pieces (instead of `parts - 1`
/// pieces plus an empty remainder).
///
/// The labelling and mapping protocols use this variant so that every vertex
/// reachable from the root is guaranteed to eventually receive interval mass —
/// and therefore a non-empty label — on every out-edge of its predecessors. The
/// paper's literal partition can starve the *last* out-port when the incoming mass
/// is a single interval, which would leave some vertices unlabelled on certain
/// topologies; see DESIGN.md ("Substitutions and clarifications").
///
/// # Errors
///
/// Returns [`NumError::EmptyPartition`] when `parts == 0`.
pub fn canonical_partition_nonempty(
    alpha: &IntervalUnion,
    parts: usize,
) -> Result<Vec<IntervalUnion>, NumError> {
    if parts == 0 {
        return Err(NumError::EmptyPartition);
    }
    if parts == 1 || alpha.is_empty() || alpha.interval_count() > 1 {
        return canonical_partition(alpha, parts);
    }
    // A single maximal interval: split it into `parts` non-empty pieces.
    let out: Vec<IntervalUnion> = alpha
        .first_interval()
        .expect("non-empty union has a first interval")
        .split(parts)?
        .into_iter()
        .map(IntervalUnion::from)
        .collect();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    fn iv(lo: u64, hi: u64, exp: u32) -> Interval {
        Interval::from_dyadic_parts(lo, hi, exp).unwrap()
    }

    fn union_of(list: &[(u64, u64, u32)]) -> IntervalUnion {
        IntervalUnion::from_intervals(list.iter().map(|&(l, h, e)| iv(l, h, e)))
    }

    #[test]
    fn canonical_form_merges_overlaps_and_adjacency() {
        let u = union_of(&[(0, 2, 3), (2, 4, 3), (6, 7, 3), (5, 6, 3)]);
        // [0,1/4) ∪ [1/4,1/2) merge; [5/8,6/8) ∪ [6/8,7/8) merge.
        assert_eq!(u.interval_count(), 2);
        assert_eq!(u, union_of(&[(0, 4, 3), (5, 7, 3)]));
        assert_eq!(u.endpoints().len(), 4);
    }

    #[test]
    fn empty_intervals_are_dropped() {
        let u = IntervalUnion::from_intervals(vec![Interval::empty(), iv(1, 1, 4)]);
        assert!(u.is_empty());
        assert_eq!(u, IntervalUnion::empty());
        assert_eq!(u, IntervalUnion::default());
        assert!(IntervalUnion::from(Interval::empty()).is_empty());
        assert!(u.endpoints().is_empty());
    }

    #[test]
    fn unit_detection() {
        assert!(IntervalUnion::unit().is_unit());
        assert!(!IntervalUnion::empty().is_unit());
        // Two halves reassemble into the unit.
        let u = union_of(&[(0, 1, 1), (1, 2, 1)]);
        assert!(u.is_unit());
        // Missing a piece: not the unit.
        let v = union_of(&[(0, 1, 2), (2, 4, 2)]);
        assert!(!v.is_unit());
    }

    /// Every shape the accumulator fast path in
    /// [`IntervalUnion::union_in_place_with`] distinguishes — pure append
    /// (touching and gapped), contained no-op, contained-prefix + append-
    /// suffix, and the fall-through cases the general merge must still own —
    /// checked against the out-of-place [`IntervalUnion::union`].
    #[test]
    fn union_in_place_accumulator_fast_paths_match_union() {
        type Parts = &'static [(u64, u64, u32)];
        let cases: &[(Parts, Parts)] = &[
            // Append, gapped: other strictly above self's top.
            (&[(0, 1, 3)], &[(4, 5, 3)]),
            // Append, touching: boundary pair must coalesce.
            (&[(0, 2, 3)], &[(2, 3, 3), (5, 6, 3)]),
            // Contained no-op: every part re-delivers covered mass.
            (&[(0, 4, 3), (5, 7, 3)], &[(1, 2, 3), (5, 6, 3)]),
            // Contained prefix + appended suffix (the β-delta shape: old
            // ancestor labels below, one fresh label above).
            (&[(0, 2, 3), (3, 4, 3)], &[(0, 1, 3), (5, 6, 3)]),
            // Fall-through: a part overlaps self's top part but pokes past
            // its end.
            (&[(0, 2, 3), (4, 6, 3)], &[(5, 7, 3)]),
            // Fall-through: a fresh part inside an interior gap.
            (&[(0, 1, 3), (6, 7, 3)], &[(3, 4, 3)]),
            // Fall-through: a part straddles a gap between self's parts.
            (&[(0, 2, 3), (4, 6, 3)], &[(1, 5, 3)]),
        ];
        for (a_parts, b_parts) in cases {
            let a = union_of(a_parts);
            let b = union_of(b_parts);
            let expected = a.union(&b);
            let mut acc = a.clone();
            let changed = acc.union_in_place(&b);
            assert_eq!(acc, expected, "a = {a:?}, b = {b:?}");
            assert_eq!(changed, acc != a, "a = {a:?}, b = {b:?}");
        }
    }

    /// The append arm of the fast path must copy-on-write, never mutate a
    /// buffer other handles still see.
    #[test]
    fn union_in_place_append_respects_shared_storage() {
        let a = union_of(&[(0, 1, 3)]);
        let shared = a.clone();
        let mut acc = a.clone();
        assert!(acc.union_in_place(&union_of(&[(2, 3, 3)])));
        assert_eq!(shared, a, "shared handle must keep the pre-append value");
        assert_eq!(acc, union_of(&[(0, 1, 3), (2, 3, 3)]));
    }

    #[test]
    fn union_covers_both_operands() {
        let a = union_of(&[(0, 2, 3)]);
        let b = union_of(&[(4, 6, 3)]);
        let u = a.union(&b);
        assert_eq!(u, union_of(&[(0, 2, 3), (4, 6, 3)]));
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert_eq!(a.union(&IntervalUnion::empty()), a);
        assert_eq!(IntervalUnion::empty().union(&b), b);
    }

    #[test]
    fn union_merges_adjacency_across_operands() {
        // A bridge interval in `b` fuses two `a`-intervals into one.
        let a = union_of(&[(0, 1, 3), (2, 3, 3)]);
        let b = union_of(&[(1, 2, 3)]);
        assert_eq!(a.union(&b), union_of(&[(0, 3, 3)]));
        assert_eq!(b.union(&a), union_of(&[(0, 3, 3)]));
    }

    #[test]
    fn union_in_place_reports_change() {
        let mut a = union_of(&[(0, 2, 3)]);
        assert!(!a.union_in_place(&IntervalUnion::empty()));
        assert!(!a.union_in_place(&union_of(&[(0, 1, 3)]))); // already covered
        assert!(a.union_in_place(&union_of(&[(4, 5, 3)])));
        assert_eq!(a, union_of(&[(0, 2, 3), (4, 5, 3)]));
    }

    #[test]
    fn in_place_ops_with_explicit_scratch() {
        let mut scratch = Vec::new();
        let mut a = union_of(&[(0, 4, 3), (6, 8, 3)]);
        assert!(a.union_in_place_with(&union_of(&[(4, 5, 3)]), &mut scratch));
        assert_eq!(a, union_of(&[(0, 5, 3), (6, 8, 3)]));
        assert!(scratch.is_empty());
        let cap = scratch.capacity();
        assert!(cap > 0, "scratch capacity is retained for reuse");
        assert!(a.intersect_assign_with(&union_of(&[(2, 7, 3)]), &mut scratch));
        assert_eq!(a, union_of(&[(2, 5, 3), (6, 7, 3)]));
        assert!(a.subtract_assign_with(&union_of(&[(3, 4, 3)]), &mut scratch));
        assert_eq!(a, union_of(&[(2, 3, 3), (4, 5, 3), (6, 7, 3)]));
    }

    #[test]
    fn intersect_assign_reports_change() {
        let mut a = union_of(&[(0, 4, 3)]);
        assert!(!a.intersect_assign(&union_of(&[(0, 8, 3)]))); // superset: no change
        assert!(a.intersect_assign(&union_of(&[(1, 2, 3)])));
        assert_eq!(a, union_of(&[(1, 2, 3)]));
        assert!(a.intersect_assign(&IntervalUnion::empty()));
        assert!(a.is_empty());
        assert!(!a.intersect_assign(&IntervalUnion::unit())); // empty stays empty
    }

    #[test]
    fn subtract_assign_reports_change() {
        let mut a = union_of(&[(0, 4, 3)]);
        assert!(!a.subtract_assign(&IntervalUnion::empty()));
        assert!(!a.subtract_assign(&union_of(&[(5, 6, 3)]))); // disjoint: no change
        assert!(a.subtract_assign(&union_of(&[(1, 2, 3)])));
        assert_eq!(a, union_of(&[(0, 1, 3), (2, 4, 3)]));
        assert!(a.subtract_assign(&IntervalUnion::unit()));
        assert!(a.is_empty());
    }

    #[test]
    fn intersection_cases() {
        let a = union_of(&[(0, 4, 3), (6, 8, 3)]);
        let b = union_of(&[(2, 7, 3)]);
        assert_eq!(a.intersection(&b), union_of(&[(2, 4, 3), (6, 7, 3)]));
        assert_eq!(b.intersection(&a), a.intersection(&b));
        assert!(a.intersection(&IntervalUnion::empty()).is_empty());
        assert!(!a.intersects(&union_of(&[(4, 6, 3)])));
        assert!(a.intersects(&union_of(&[(3, 5, 3)])));
    }

    #[test]
    fn difference_cases() {
        let a = IntervalUnion::unit();
        let b = union_of(&[(1, 2, 2)]); // [1/4, 1/2)
        let d = a.difference(&b);
        assert_eq!(d, union_of(&[(0, 1, 2), (2, 4, 2)]));
        // Removing what we kept plus what we removed gives the empty set.
        assert!(a.difference(&d).difference(&b).is_empty());
        // Difference with self or a superset is empty.
        assert!(a.difference(&a).is_empty());
        assert!(b.difference(&a).is_empty());
        // Difference with empty leaves the value unchanged.
        assert_eq!(a.difference(&IntervalUnion::empty()), a);
    }

    #[test]
    fn difference_across_multiple_intervals() {
        let a = union_of(&[(0, 3, 3), (4, 8, 3)]);
        let b = union_of(&[(1, 2, 3), (5, 6, 3), (7, 8, 3)]);
        let d = a.difference(&b);
        assert_eq!(d, union_of(&[(0, 1, 3), (2, 3, 3), (4, 5, 3), (6, 7, 3)]));
    }

    #[test]
    fn difference_with_spanning_subtrahend() {
        // One b-interval covering the tail of a₁ and the head of a₂ must be
        // consulted for both (the sweep may not advance past it).
        let a = union_of(&[(0, 3, 4), (5, 9, 4), (11, 12, 4)]);
        let b = union_of(&[(2, 6, 4), (8, 16, 4)]);
        assert_eq!(a.difference(&b), union_of(&[(0, 2, 4), (6, 8, 4)]));
    }

    #[test]
    fn subset_relation() {
        let a = union_of(&[(0, 2, 3), (4, 6, 3)]);
        let sub = union_of(&[(0, 1, 3), (5, 6, 3)]);
        assert!(sub.is_subset_of(&a));
        assert!(!a.is_subset_of(&sub));
        assert!(IntervalUnion::empty().is_subset_of(&a));
        assert!(a.is_subset_of(&IntervalUnion::unit()));
        // An interval spanning a gap of the candidate superset is not covered.
        let spanning = union_of(&[(1, 5, 3)]);
        assert!(!spanning.is_subset_of(&a));
    }

    #[test]
    fn total_length_and_contains_point() {
        let a = union_of(&[(0, 1, 2), (2, 3, 2)]);
        assert_eq!(a.total_length(), Dyadic::from_pow2_neg(1));
        assert!(a.contains_point(&Dyadic::zero()));
        assert!(a.contains_point(&Dyadic::from_pow2_neg(1)));
        assert!(!a.contains_point(&Dyadic::from_pow2_neg(2)));
        assert!(!a.contains_point(&Dyadic::from_parts(BigUint::from(3u64), 2)));
        assert!(!IntervalUnion::empty().contains_point(&Dyadic::zero()));
        assert!(!a.contains_point(&Dyadic::one()));
    }

    #[test]
    fn clone_shares_storage_and_writers_detach() {
        let a = union_of(&[(0, 2, 3), (4, 6, 3)]);
        let b = a.clone();
        assert!(b.shares_storage_with(&a));
        assert_eq!(a, b);

        // A no-op write does not detach.
        let mut c = a.clone();
        assert!(!c.union_in_place(&union_of(&[(0, 1, 3)])));
        assert!(c.shares_storage_with(&a));

        // A real write detaches this handle and leaves the siblings untouched.
        let mut d = a.clone();
        assert!(d.union_in_place(&union_of(&[(7, 8, 3)])));
        assert!(!d.shares_storage_with(&a));
        assert_eq!(a, b, "sibling changed by a CoW write");
        assert_eq!(a, union_of(&[(0, 2, 3), (4, 6, 3)]));
        assert_eq!(d, union_of(&[(0, 2, 3), (4, 6, 3), (7, 8, 3)]));
    }

    #[test]
    fn union_into_empty_self_shares_the_operand_buffer() {
        let label = union_of(&[(1, 3, 3)]);
        let mut acc = IntervalUnion::empty();
        assert!(acc.union_in_place(&label));
        assert!(acc.shares_storage_with(&label), "∅ ∪ x must alias x");
        // Equal values in distinct buffers do not count as shared.
        assert!(!label.deep_clone().shares_storage_with(&label));
        assert_eq!(label.deep_clone(), label);
        // Empty handles trivially share (there is no buffer to differ on).
        assert!(IntervalUnion::empty().shares_storage_with(&IntervalUnion::empty()));
        assert!(IntervalUnion::empty()
            .deep_clone()
            .shares_storage_with(&IntervalUnion::empty()));
    }

    #[test]
    fn shared_operand_fast_paths_are_exact() {
        let a = union_of(&[(0, 2, 3), (4, 6, 3)]);
        let b = a.clone();
        assert_eq!(a.union(&b), a);
        assert_eq!(a.intersection(&b), a);
        assert!(a.difference(&b).is_empty());
        assert!(a.is_subset_of(&b));
        assert!(a.intersects(&b));
        let mut c = a.clone();
        assert!(!c.union_in_place(&b));
        assert!(!c.intersect_assign(&b));
        assert!(c.subtract_assign(&b));
        assert!(c.is_empty());
    }

    #[test]
    fn canonical_partition_is_a_partition() {
        let alpha = union_of(&[(0, 3, 3), (5, 7, 3)]);
        for parts in 1..=8usize {
            let pieces = canonical_partition(&alpha, parts).unwrap();
            assert_eq!(pieces.len(), parts);
            // Pairwise disjoint.
            for i in 0..pieces.len() {
                for j in i + 1..pieces.len() {
                    assert!(
                        !pieces[i].intersects(&pieces[j]),
                        "parts {i} and {j} overlap for split into {parts}"
                    );
                }
            }
            // Union reassembles alpha.
            let mut total = IntervalUnion::empty();
            for p in &pieces {
                total.union_in_place(p);
            }
            assert_eq!(total, alpha, "partition into {parts} loses mass");
        }
    }

    #[test]
    fn canonical_partition_of_unit_gives_nonempty_leading_parts() {
        // Used for labels: every vertex with out-degree d keeps piece 0 of a
        // (d+1)-way partition, which must be non-empty whenever the input is.
        for parts in 2..=9usize {
            let pieces = canonical_partition(&IntervalUnion::unit(), parts).unwrap();
            for (idx, p) in pieces.iter().enumerate().take(parts - 1) {
                assert!(!p.is_empty(), "piece {idx} of {parts} is empty");
            }
        }
    }

    #[test]
    fn canonical_partition_edge_cases() {
        assert!(canonical_partition(&IntervalUnion::unit(), 0).is_err());
        let single = canonical_partition(&IntervalUnion::unit(), 1).unwrap();
        assert_eq!(single, vec![IntervalUnion::unit()]);
        let of_empty = canonical_partition(&IntervalUnion::empty(), 4).unwrap();
        assert!(of_empty.iter().all(IntervalUnion::is_empty));
    }

    #[test]
    fn canonical_partition_single_interval_last_part_empty() {
        // With a single maximal interval, the "rest" part is empty, as in the paper.
        let alpha = IntervalUnion::unit();
        let pieces = canonical_partition(&alpha, 4).unwrap();
        assert!(pieces[3].is_empty());
        assert!(!pieces[0].is_empty());
    }

    #[test]
    fn nonempty_partition_never_starves_a_part() {
        for parts in 1..=8usize {
            let pieces = canonical_partition_nonempty(&IntervalUnion::unit(), parts).unwrap();
            assert_eq!(pieces.len(), parts);
            let mut acc = IntervalUnion::empty();
            for p in &pieces {
                assert!(!p.is_empty(), "part empty for {parts}-way split");
                assert!(!acc.intersects(p));
                acc.union_in_place(p);
            }
            assert!(acc.is_unit());
        }
    }

    #[test]
    fn nonempty_partition_falls_back_for_fragmented_input() {
        let alpha = union_of(&[(0, 3, 3), (5, 7, 3)]);
        let a = canonical_partition(&alpha, 4).unwrap();
        let b = canonical_partition_nonempty(&alpha, 4).unwrap();
        assert_eq!(a, b);
        assert!(canonical_partition_nonempty(&IntervalUnion::unit(), 0).is_err());
        let of_empty = canonical_partition_nonempty(&IntervalUnion::empty(), 3).unwrap();
        assert!(of_empty.iter().all(IntervalUnion::is_empty));
    }

    #[test]
    fn wire_bits_grow_with_fragmentation() {
        let coarse = IntervalUnion::unit();
        let fine = union_of(&[(0, 1, 4), (2, 3, 4), (4, 5, 4), (6, 7, 4)]);
        assert!(fine.wire_bits() > coarse.wire_bits());
        assert!(IntervalUnion::empty().wire_bits() >= 1);
        // Sharing is invisible to the wire accounting.
        assert_eq!(fine.clone().wire_bits(), fine.wire_bits());
        assert_eq!(fine.deep_clone().wire_bits(), fine.wire_bits());
        // Identical to the per-interval encoding the intervals would charge.
        let per_interval: u64 = fine.iter().map(|iv| iv.endpoint_bits()).sum();
        assert_eq!(fine.wire_bits(), bits::elias_gamma_bits(4) + per_interval);
    }

    #[test]
    fn iteration_and_first_interval() {
        let u = union_of(&[(0, 1, 3), (2, 3, 3), (5, 6, 3)]);
        let listed: Vec<Interval> = u.iter().collect();
        assert_eq!(listed, vec![iv(0, 1, 3), iv(2, 3, 3), iv(5, 6, 3)]);
        assert_eq!(u.iter().len(), 3);
        assert_eq!(u.first_interval(), Some(iv(0, 1, 3)));
        assert_eq!(IntervalUnion::empty().first_interval(), None);
        // Borrowing IntoIterator matches iter().
        let via_into: Vec<Interval> = (&u).into_iter().collect();
        assert_eq!(via_into, listed);
    }

    #[test]
    fn from_iterator_and_extend() {
        let parts = Interval::unit().split(4).unwrap();
        let collected: IntervalUnion = parts.iter().cloned().collect();
        assert!(collected.is_unit());
        let mut partial = IntervalUnion::from(parts[0].clone());
        partial.extend(parts[1..].iter().cloned());
        assert!(partial.is_unit());
    }

    #[test]
    fn ord_and_hash_follow_the_endpoint_array() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = union_of(&[(0, 1, 3)]);
        let b = union_of(&[(0, 1, 3), (2, 3, 3)]);
        assert!(a < b, "prefix orders before its extension");
        assert!(IntervalUnion::empty() < a);
        let hash = |u: &IntervalUnion| {
            let mut h = DefaultHasher::new();
            u.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&a.deep_clone()));
        assert_eq!(hash(&a), hash(&a.clone()));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(IntervalUnion::empty().to_string(), "∅");
        assert!(IntervalUnion::unit().to_string().contains("[0, 1)"));
    }
}
