//! Self-delimiting bit-size accounting.
//!
//! The paper's complexity statements count bits on the wire. Messages contain
//! variable-length numbers (exponents, mantissas, interval counts), so any honest
//! accounting must use *self-delimiting* codes — a receiver must be able to tell
//! where one field ends and the next begins. This module provides the sizes of two
//! standard codes used throughout the workspace:
//!
//! * [`elias_gamma_bits`] — the Elias-gamma code for positive integers, `2⌊log₂ n⌋ + 1`
//!   bits. Used for exponents and counts; this is what makes the power-of-two
//!   commodity rule cost `O(log |E|)` bits per edge.
//! * [`length_prefixed_bits`] — a bit string preceded by its gamma-coded length.
//!   Used for mantissas and binary-point expansions.

/// Number of bits of the Elias-gamma code of `n + 1` (so that `n = 0` is encodable).
///
/// # Example
///
/// ```
/// use anet_num::bits::elias_gamma_bits;
///
/// assert_eq!(elias_gamma_bits(0), 1);   // encodes 1
/// assert_eq!(elias_gamma_bits(1), 3);   // encodes 2
/// assert_eq!(elias_gamma_bits(6), 5);   // encodes 7
/// ```
pub fn elias_gamma_bits(n: u64) -> u64 {
    let v = n + 1;
    2 * (63 - v.leading_zeros() as u64) + 1
}

/// Number of bits to transmit a `payload_bits`-bit string with a gamma-coded length
/// prefix, so the receiver knows where it ends.
pub fn length_prefixed_bits(payload_bits: u64) -> u64 {
    elias_gamma_bits(payload_bits) + payload_bits
}

/// Number of bits of the minimal binary representation of `n` (`1` for zero, by
/// convention, since "nothing at all" still occupies a distinguishable slot).
pub fn plain_bits(n: u64) -> u64 {
    if n == 0 {
        1
    } else {
        64 - u64::from(n.leading_zeros())
    }
}

/// Information-theoretic lower bound on the bits needed to name one element out of
/// an alphabet of `size` distinct symbols: `⌈log₂ size⌉`, with 0 for degenerate
/// alphabets.
pub fn alphabet_index_bits(size: u64) -> u64 {
    if size <= 1 {
        0
    } else {
        64 - u64::from((size - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_code_sizes() {
        // value encoded is n+1; gamma(v) = 2*floor(log2 v)+1
        assert_eq!(elias_gamma_bits(0), 1);
        assert_eq!(elias_gamma_bits(1), 3);
        assert_eq!(elias_gamma_bits(2), 3);
        assert_eq!(elias_gamma_bits(3), 5);
        assert_eq!(elias_gamma_bits(7), 7);
        assert_eq!(elias_gamma_bits(100), 13);
    }

    #[test]
    fn gamma_is_monotone() {
        let mut prev = 0;
        for n in 0..10_000u64 {
            let b = elias_gamma_bits(n);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn gamma_is_logarithmic() {
        for k in 1..60u32 {
            let n = 1u64 << k;
            assert!(elias_gamma_bits(n) <= 2 * u64::from(k) + 3);
        }
    }

    #[test]
    fn length_prefix_adds_logarithmic_overhead() {
        assert_eq!(length_prefixed_bits(0), 1);
        assert!(length_prefixed_bits(1000) < 1000 + 2 * 11);
        assert!(length_prefixed_bits(1000) >= 1000);
    }

    #[test]
    fn plain_bits_matches_bit_length() {
        assert_eq!(plain_bits(0), 1);
        assert_eq!(plain_bits(1), 1);
        assert_eq!(plain_bits(2), 2);
        assert_eq!(plain_bits(255), 8);
        assert_eq!(plain_bits(256), 9);
    }

    #[test]
    fn alphabet_index_bits_is_ceil_log2() {
        assert_eq!(alphabet_index_bits(0), 0);
        assert_eq!(alphabet_index_bits(1), 0);
        assert_eq!(alphabet_index_bits(2), 1);
        assert_eq!(alphabet_index_bits(3), 2);
        assert_eq!(alphabet_index_bits(4), 2);
        assert_eq!(alphabet_index_bits(5), 3);
        assert_eq!(alphabet_index_bits(1 << 20), 20);
        assert_eq!(alphabet_index_bits((1 << 20) + 1), 21);
    }
}
