//! Exact non-negative rationals.
//!
//! The *naive* grounded-tree broadcast rule sends `x / d` on each of the `d`
//! outgoing edges, which produces denominators that are products of out-degrees
//! along the root path — not powers of two in general. [`Ratio`] provides exact
//! arithmetic for that rule so the E1 ablation can measure precisely how many bits
//! the naive rule needs compared with the paper's power-of-two rule.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign};

use crate::{BigUint, Dyadic, NumError};

/// An exact non-negative rational `numerator / denominator` in lowest terms.
///
/// # Example
///
/// ```
/// use anet_num::Ratio;
///
/// let third = Ratio::new(1u64.into(), 3u64.into()).unwrap();
/// let sixth = Ratio::new(1u64.into(), 6u64.into()).unwrap();
/// assert_eq!(&third + &sixth, Ratio::new(1u64.into(), 2u64.into()).unwrap());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    numerator: BigUint,
    denominator: BigUint,
}

impl Ratio {
    /// The value zero.
    pub fn zero() -> Self {
        Ratio {
            numerator: BigUint::zero(),
            denominator: BigUint::one(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        Ratio {
            numerator: BigUint::one(),
            denominator: BigUint::one(),
        }
    }

    /// Builds `numerator / denominator`, reducing to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DivisionByZero`] if `denominator` is zero.
    pub fn new(numerator: BigUint, denominator: BigUint) -> Result<Self, NumError> {
        if denominator.is_zero() {
            return Err(NumError::DivisionByZero);
        }
        let mut r = Ratio {
            numerator,
            denominator,
        };
        r.reduce();
        Ok(r)
    }

    /// Builds a rational from an integer.
    pub fn from_u64(v: u64) -> Self {
        Ratio {
            numerator: BigUint::from(v),
            denominator: BigUint::one(),
        }
    }

    fn reduce(&mut self) {
        if self.numerator.is_zero() {
            self.denominator = BigUint::one();
            return;
        }
        let g = self.numerator.gcd(&self.denominator);
        if !g.is_one() {
            self.numerator = self
                .numerator
                .div_rem(&g)
                .expect("gcd of non-zero values is non-zero")
                .0;
            self.denominator = self
                .denominator
                .div_rem(&g)
                .expect("gcd of non-zero values is non-zero")
                .0;
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.numerator.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.numerator == self.denominator
    }

    /// The reduced numerator.
    pub fn numerator(&self) -> &BigUint {
        &self.numerator
    }

    /// The reduced denominator.
    pub fn denominator(&self) -> &BigUint {
        &self.denominator
    }

    /// Divides the value by a small positive integer exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DivisionByZero`] if `d` is zero.
    pub fn div_u32(&self, d: u32) -> Result<Ratio, NumError> {
        if d == 0 {
            return Err(NumError::DivisionByZero);
        }
        Ratio::new(self.numerator.clone(), self.denominator.mul_small(d))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Underflow`] when `other > self`.
    pub fn checked_sub(&self, other: &Ratio) -> Result<Ratio, NumError> {
        let a = &self.numerator * &other.denominator;
        let b = &other.numerator * &self.denominator;
        Ratio::new(a.checked_sub(&b)?, &self.denominator * &other.denominator)
    }

    /// Converts a dyadic into a rational.
    pub fn from_dyadic(d: &Dyadic) -> Ratio {
        Ratio {
            numerator: d.mantissa(),
            denominator: BigUint::pow2(d.exponent()),
        }
    }

    /// Approximate `f64` value (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.numerator.to_f64() / self.denominator.to_f64()
    }

    /// Bits needed to write down the reduced numerator and denominator.
    ///
    /// This is the quantity the paper's complexity accounting charges for a scalar
    /// commodity that is *not* constrained to powers of two.
    pub fn representation_bits(&self) -> u64 {
        self.numerator.bit_len().max(1) + self.denominator.bit_len().max(1)
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        (&self.numerator * &other.denominator).cmp(&(&other.numerator * &self.denominator))
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        let num = &(&self.numerator * &rhs.denominator) + &(&rhs.numerator * &self.denominator);
        Ratio::new(num, &self.denominator * &rhs.denominator)
            .expect("product of non-zero denominators is non-zero")
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        &self + &rhs
    }
}

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = &*self + rhs;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denominator.is_one() {
            write!(f, "{}", self.numerator)
        } else {
            write!(f, "{}/{}", self.numerator, self.denominator)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self} ≈ {})", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64, d: u64) -> Ratio {
        Ratio::new(BigUint::from(n), BigUint::from(d)).unwrap()
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(6, 9), r(2, 3));
        assert_eq!(r(0, 7), Ratio::zero());
        assert!(r(5, 5).is_one());
    }

    #[test]
    fn zero_denominator_is_error() {
        assert!(Ratio::new(BigUint::one(), BigUint::zero()).is_err());
        assert!(Ratio::one().div_u32(0).is_err());
    }

    #[test]
    fn addition_reduces() {
        assert_eq!(&r(1, 3) + &r(1, 6), r(1, 2));
        assert_eq!(&r(1, 2) + &r(1, 2), Ratio::one());
        assert_eq!(&Ratio::zero() + &r(3, 7), r(3, 7));
    }

    #[test]
    fn naive_split_sums_back_to_whole() {
        // Splitting 1 into d equal parts and summing them must give exactly 1
        // for any out-degree d — the commodity-preservation invariant.
        for d in 1..=12u32 {
            let part = Ratio::one().div_u32(d).unwrap();
            let mut acc = Ratio::zero();
            for _ in 0..d {
                acc += &part;
            }
            assert!(acc.is_one(), "d = {d}");
        }
    }

    #[test]
    fn subtraction_and_underflow() {
        assert_eq!(r(3, 4).checked_sub(&r(1, 4)).unwrap(), r(1, 2));
        assert_eq!(r(1, 4).checked_sub(&r(3, 4)), Err(NumError::Underflow));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(2, 3) > r(1, 2));
        assert!(r(5, 10) == r(1, 2));
        assert!(Ratio::zero() < r(1, 1000));
    }

    #[test]
    fn dyadic_conversion_preserves_value() {
        let d = Dyadic::from_parts(BigUint::from(5u64), 3);
        assert_eq!(Ratio::from_dyadic(&d), r(5, 8));
        assert_eq!(Ratio::from_dyadic(&Dyadic::zero()), Ratio::zero());
    }

    #[test]
    fn representation_bits_grow_with_denominator() {
        let shallow = r(1, 2);
        let mut deep = Ratio::one();
        for _ in 0..50 {
            deep = deep.div_u32(3).unwrap();
        }
        assert!(deep.representation_bits() > shallow.representation_bits());
        assert!(deep.representation_bits() >= 50); // 3^50 needs ~79 bits
    }

    #[test]
    fn display_formats() {
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(Ratio::from_u64(7).to_string(), "7");
        assert!(!format!("{:?}", r(1, 3)).is_empty());
    }

    #[test]
    fn to_f64_is_close() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
    }
}
