//! Specification-grade reference implementations of the commodity algebra.
//!
//! The production paths are optimised: [`crate::Dyadic`] arithmetic runs on an
//! inline `u64` mantissa whenever the value fits in a machine word, and the
//! [`crate::IntervalUnion`] set operations are linear two-pointer merges over
//! the canonical operands. This module keeps the original, slower-but-obvious
//! implementations alive:
//!
//! * the dyadic operations always widen both operands to [`BigUint`] mantissas
//!   aligned to a common exponent (the pre-fast-path semantics), and
//! * the set operations funnel through [`IntervalUnion::from_intervals`] —
//!   collect, sort, merge — instead of exploiting the operands' canonical form,
//!   and their results never alias an operand's endpoint buffer
//!   ([`IntervalUnion::deep_clone`] on the trivial cases): the pre-copy-on-write
//!   owned-value semantics.
//!
//! They exist purely for **differential testing**, mirroring the simulation
//! engine's `anet_sim::reference::run_full_scan` pattern: the property suite in
//! `tests/differential.rs` generates adversarial inputs (interval soups,
//! boundary-touching unions, dyadics crossing the inline→heap mantissa
//! boundary) and asserts the fast paths are bit-identical to these references.
//! Do not use them on hot paths.

use std::cmp::Ordering;

use crate::{BigUint, Dyadic, Interval, IntervalUnion, NumError};

/// Widens both operands to `BigUint` mantissas over the common exponent
/// `max(ea, eb)` — the alignment every reference operation starts from.
fn aligned(a: &Dyadic, b: &Dyadic) -> (BigUint, BigUint, u32) {
    let exp = a.exponent().max(b.exponent());
    let ma = a.mantissa() << (exp - a.exponent());
    let mb = b.mantissa() << (exp - b.exponent());
    (ma, mb, exp)
}

/// Reference comparison: always via aligned `BigUint` mantissas.
pub fn dyadic_cmp(a: &Dyadic, b: &Dyadic) -> Ordering {
    let (ma, mb, _) = aligned(a, b);
    ma.cmp(&mb)
}

/// Reference addition: always via aligned `BigUint` mantissas.
pub fn dyadic_add(a: &Dyadic, b: &Dyadic) -> Dyadic {
    let (ma, mb, exp) = aligned(a, b);
    Dyadic::from_parts(&ma + &mb, exp)
}

/// Reference checked subtraction: always via aligned `BigUint` mantissas.
///
/// # Errors
///
/// Returns [`NumError::Underflow`] when `b > a`.
pub fn dyadic_checked_sub(a: &Dyadic, b: &Dyadic) -> Result<Dyadic, NumError> {
    let (ma, mb, exp) = aligned(a, b);
    Ok(Dyadic::from_parts(ma.checked_sub(&mb)?, exp))
}

/// Reference multiplication: always via `BigUint` mantissas.
pub fn dyadic_mul(a: &Dyadic, b: &Dyadic) -> Dyadic {
    Dyadic::from_parts(
        &a.mantissa() * &b.mantissa(),
        a.exponent()
            .checked_add(b.exponent())
            .expect("dyadic exponent overflow"),
    )
}

/// Reference union: collect both interval lists, then sort-and-merge through
/// [`IntervalUnion::from_intervals`].
pub fn union(a: &IntervalUnion, b: &IntervalUnion) -> IntervalUnion {
    if a.is_empty() {
        return b.deep_clone();
    }
    if b.is_empty() {
        return a.deep_clone();
    }
    IntervalUnion::from_intervals(a.iter().chain(b.iter()))
}

/// Reference intersection: pairwise sweep over owned interval lists,
/// re-canonicalised through [`IntervalUnion::from_intervals`].
pub fn intersection(a: &IntervalUnion, b: &IntervalUnion) -> IntervalUnion {
    let av: Vec<Interval> = a.iter().collect();
    let bv: Vec<Interval> = b.iter().collect();
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < av.len() && j < bv.len() {
        let x = &av[i];
        let y = &bv[j];
        let inter = x.intersection(y);
        if !inter.is_empty() {
            out.push(inter);
        }
        if x.hi() <= y.hi() {
            i += 1;
        } else {
            j += 1;
        }
    }
    IntervalUnion::from_intervals(out)
}

/// Reference difference `a \ b`: carve each interval of `b` out of each interval
/// of `a` with a restarting inner scan, re-canonicalised through
/// [`IntervalUnion::from_intervals`].
pub fn difference(a: &IntervalUnion, b: &IntervalUnion) -> IntervalUnion {
    if a.is_empty() || b.is_empty() {
        return a.deep_clone();
    }
    let bv: Vec<Interval> = b.iter().collect();
    let mut out: Vec<Interval> = Vec::new();
    for x in a.iter() {
        let mut cursor = x.lo().clone();
        for y in &bv {
            if y.hi() <= &cursor {
                continue;
            }
            if y.lo() >= x.hi() {
                break;
            }
            // y overlaps [cursor, x.hi)
            if y.lo() > &cursor {
                out.push(
                    Interval::new(cursor.clone(), y.lo().clone()).expect("cursor < y.lo within x"),
                );
            }
            if y.hi() < x.hi() {
                cursor = y.hi().clone();
            } else {
                cursor = x.hi().clone();
                break;
            }
        }
        if &cursor < x.hi() {
            out.push(Interval::new(cursor, x.hi().clone()).expect("cursor < x.hi"));
        }
    }
    IntervalUnion::from_intervals(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64, exp: u32) -> Interval {
        Interval::from_dyadic_parts(lo, hi, exp).unwrap()
    }

    fn union_of(list: &[(u64, u64, u32)]) -> IntervalUnion {
        IntervalUnion::from_intervals(list.iter().map(|&(l, h, e)| iv(l, h, e)))
    }

    #[test]
    fn reference_set_ops_match_known_values() {
        let a = union_of(&[(0, 4, 3), (6, 8, 3)]);
        let b = union_of(&[(2, 7, 3)]);
        assert_eq!(union(&a, &b), union_of(&[(0, 8, 3)]));
        assert_eq!(intersection(&a, &b), union_of(&[(2, 4, 3), (6, 7, 3)]));
        assert_eq!(difference(&a, &b), union_of(&[(0, 2, 3), (7, 8, 3)]));
        assert_eq!(union(&a, &IntervalUnion::empty()), a);
        assert_eq!(difference(&a, &IntervalUnion::empty()), a);
        assert!(intersection(&a, &IntervalUnion::empty()).is_empty());
    }

    #[test]
    fn reference_dyadic_ops_match_known_values() {
        let a = Dyadic::from_u64_parts(3, 3);
        let b = Dyadic::from_pow2_neg(2);
        assert_eq!(dyadic_add(&a, &b), Dyadic::from_u64_parts(5, 3));
        assert_eq!(
            dyadic_checked_sub(&a, &b).unwrap(),
            Dyadic::from_pow2_neg(3)
        );
        assert_eq!(dyadic_checked_sub(&b, &a), Err(crate::NumError::Underflow));
        assert_eq!(dyadic_mul(&a, &b), Dyadic::from_u64_parts(3, 5));
        assert_eq!(dyadic_cmp(&a, &b), Ordering::Greater);
        assert_eq!(dyadic_cmp(&b, &a), Ordering::Less);
        assert_eq!(dyadic_cmp(&a, &a), Ordering::Equal);
    }
}
