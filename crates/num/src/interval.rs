//! Half-open intervals `[a, b)` with dyadic endpoints (Definition 4.1 of the paper).

use std::fmt;

use crate::{BigUint, Dyadic, NumError};

/// A half-open interval `[lo, hi)` with dyadic endpoints and `lo <= hi`.
///
/// The interval `[a, a)` is *the* empty interval; all empty intervals compare equal
/// to each other only if their endpoints coincide, so protocol code uses
/// [`Interval::is_empty`] rather than comparing against a particular empty value.
///
/// # Example
///
/// ```
/// use anet_num::{Dyadic, Interval};
///
/// let unit = Interval::unit();
/// let parts = unit.split(3)?;
/// assert_eq!(parts.len(), 3);
/// let total: Dyadic = parts.iter().map(Interval::length).fold(Dyadic::zero(), |a, b| &a + &b);
/// assert!(total.is_one());
/// # Ok::<(), anet_num::NumError>(())
/// ```
/// Ordering is lexicographic on `(lo, hi)`, which is what sorted interval lists and
/// ordered containers of protocol records need; it is *not* a containment order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    lo: Dyadic,
    hi: Dyadic,
}

impl Interval {
    /// Builds `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInterval`] when `lo > hi`.
    pub fn new(lo: Dyadic, hi: Dyadic) -> Result<Self, NumError> {
        if lo > hi {
            return Err(NumError::InvalidInterval {
                lo: lo.to_string(),
                hi: hi.to_string(),
            });
        }
        Ok(Interval { lo, hi })
    }

    /// Builds `[lo, hi)` from endpoints already known to be ordered — the
    /// allocation-free constructor the canonical linear merges use.
    #[inline]
    pub(crate) fn new_unchecked(lo: Dyadic, hi: Dyadic) -> Self {
        debug_assert!(
            lo <= hi,
            "interval endpoints out of order: lo={lo:?} hi={hi:?}"
        );
        Interval { lo, hi }
    }

    /// Decomposes the interval into its `(lo, hi)` endpoints — how intervals
    /// enter the flattened endpoint array of [`crate::IntervalUnion`] without
    /// an extra clone.
    #[inline]
    pub fn into_parts(self) -> (Dyadic, Dyadic) {
        (self.lo, self.hi)
    }

    /// The canonical empty interval `[0, 0)`.
    pub fn empty() -> Self {
        Interval {
            lo: Dyadic::zero(),
            hi: Dyadic::zero(),
        }
    }

    /// The unit interval `[0, 1)` — the commodity injected by the root.
    pub fn unit() -> Self {
        Interval {
            lo: Dyadic::zero(),
            hi: Dyadic::one(),
        }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(&self) -> &Dyadic {
        &self.lo
    }

    /// Upper endpoint (exclusive).
    #[inline]
    pub fn hi(&self) -> &Dyadic {
        &self.hi
    }

    /// Returns `true` if the interval contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// The length `hi - lo`.
    pub fn length(&self) -> Dyadic {
        self.hi
            .checked_sub(&self.lo)
            .expect("interval invariant lo <= hi")
    }

    /// Returns `true` if `point` lies in `[lo, hi)`.
    #[inline]
    pub fn contains(&self, point: &Dyadic) -> bool {
        &self.lo <= point && point < &self.hi
    }

    /// Returns `true` if the other interval is fully contained in this one.
    /// The empty interval is contained in every interval (paper convention).
    pub fn contains_interval(&self, other: &Interval) -> bool {
        if other.is_empty() {
            return true;
        }
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Returns `true` if the two intervals share at least one point.
    pub fn intersects(&self, other: &Interval) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The intersection of two intervals (possibly empty).
    pub fn intersection(&self, other: &Interval) -> Interval {
        let lo = if self.lo >= other.lo {
            self.lo.clone()
        } else {
            other.lo.clone()
        };
        let hi = if self.hi <= other.hi {
            self.hi.clone()
        } else {
            other.hi.clone()
        };
        if lo >= hi {
            Interval::empty()
        } else {
            Interval { lo, hi }
        }
    }

    /// Splits the interval into `k >= 1` disjoint sub-intervals covering it exactly,
    /// using the paper's rule (proof of Theorem 4.3):
    ///
    /// let `N` be the smallest power of two with `N >= k` and `Δ = (hi - lo) / N`;
    /// produce `k - 1` intervals of length `Δ` and one final interval of length
    /// `(hi - lo) - (k - 1)Δ`.
    ///
    /// Each produced endpoint extends the binary expansion of the original endpoints
    /// by `O(log k)` bits, which is what bounds label and endpoint sizes.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::EmptyPartition`] when `k == 0`.
    pub fn split(&self, k: usize) -> Result<Vec<Interval>, NumError> {
        if k == 0 {
            return Err(NumError::EmptyPartition);
        }
        if k == 1 {
            return Ok(vec![self.clone()]);
        }
        if self.is_empty() {
            return Ok(vec![Interval::empty(); k]);
        }
        let log = usize::BITS - (k - 1).leading_zeros(); // ceil(log2 k)
        let delta = self.length().div_pow2(log);
        let mut parts = Vec::with_capacity(k);
        let mut cursor = self.lo.clone();
        for _ in 0..k - 1 {
            let next = &cursor + &delta;
            parts.push(Interval {
                lo: cursor,
                hi: next.clone(),
            });
            cursor = next;
        }
        parts.push(Interval {
            lo: cursor,
            hi: self.hi.clone(),
        });
        Ok(parts)
    }

    /// Bits needed to write down both endpoints as binary-point expansions, with
    /// self-delimiting length prefixes.
    pub fn endpoint_bits(&self) -> u64 {
        crate::bits::length_prefixed_bits(self.lo.positional_bits())
            + crate::bits::length_prefixed_bits(self.hi.positional_bits())
    }

    /// Convenience constructor for tests and examples: the interval
    /// `[num_lo/2^exp, num_hi/2^exp)`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidInterval`] when the endpoints are out of order.
    pub fn from_dyadic_parts(num_lo: u64, num_hi: u64, exp: u32) -> Result<Self, NumError> {
        Interval::new(
            Dyadic::from_parts(BigUint::from(num_lo), exp),
            Dyadic::from_parts(BigUint::from(num_hi), exp),
        )
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::empty()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {})", self.lo.to_f64(), self.hi.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64, exp: u32) -> Interval {
        Interval::from_dyadic_parts(lo, hi, exp).unwrap()
    }

    #[test]
    fn construction_validates_order() {
        assert!(Interval::new(Dyadic::one(), Dyadic::zero()).is_err());
        assert!(Interval::new(Dyadic::zero(), Dyadic::zero()).is_ok());
    }

    #[test]
    fn unit_and_empty() {
        assert!(Interval::empty().is_empty());
        assert!(!Interval::unit().is_empty());
        assert!(Interval::unit().length().is_one());
        assert_eq!(Interval::default(), Interval::empty());
    }

    #[test]
    fn contains_point_is_half_open() {
        let i = iv(1, 3, 2); // [1/4, 3/4)
        assert!(i.contains(&Dyadic::from_pow2_neg(2)));
        assert!(i.contains(&Dyadic::from_pow2_neg(1)));
        assert!(!i.contains(&Dyadic::from_parts(BigUint::from(3u64), 2)));
        assert!(!i.contains(&Dyadic::zero()));
    }

    #[test]
    fn empty_interval_is_subset_of_everything() {
        let i = iv(1, 3, 2);
        assert!(i.contains_interval(&Interval::empty()));
        assert!(Interval::empty().contains_interval(&Interval::empty()));
        assert!(!Interval::empty().contains_interval(&i));
    }

    #[test]
    fn intersection_cases() {
        let a = iv(0, 2, 2); // [0, 1/2)
        let b = iv(1, 3, 2); // [1/4, 3/4)
        let c = iv(2, 4, 2); // [1/2, 1)
        assert_eq!(a.intersection(&b), iv(1, 2, 2));
        assert!(a.intersection(&c).is_empty());
        assert!(!a.intersects(&c));
        assert!(a.intersects(&b));
        assert_eq!(b.intersection(&b), b);
        assert!(a.intersection(&Interval::empty()).is_empty());
    }

    #[test]
    fn split_covers_exactly_and_in_order() {
        for k in 1..=17usize {
            let parts = Interval::unit().split(k).unwrap();
            assert_eq!(parts.len(), k);
            // Consecutive and covering: each part starts where the previous ended.
            assert_eq!(parts[0].lo(), &Dyadic::zero());
            for w in parts.windows(2) {
                assert_eq!(w[0].hi(), w[1].lo());
            }
            assert!(parts[k - 1].hi().is_one());
            // All non-empty.
            for p in &parts {
                assert!(!p.is_empty(), "k = {k}, part {p}");
            }
            // Total length is 1.
            let total = parts
                .iter()
                .map(Interval::length)
                .fold(Dyadic::zero(), |a, b| &a + &b);
            assert!(total.is_one());
        }
    }

    #[test]
    fn split_matches_paper_rule_sizes() {
        // k = 3: N = 4, Δ = 1/4, parts of length 1/4, 1/4, 1/2.
        let parts = Interval::unit().split(3).unwrap();
        assert_eq!(parts[0].length(), Dyadic::from_pow2_neg(2));
        assert_eq!(parts[1].length(), Dyadic::from_pow2_neg(2));
        assert_eq!(parts[2].length(), Dyadic::from_pow2_neg(1));
        // k = 4 (already a power of two): four quarters.
        let parts = Interval::unit().split(4).unwrap();
        for p in &parts {
            assert_eq!(p.length(), Dyadic::from_pow2_neg(2));
        }
    }

    #[test]
    fn split_of_empty_and_zero_parts() {
        assert!(Interval::unit().split(0).is_err());
        let parts = Interval::empty().split(5).unwrap();
        assert_eq!(parts.len(), 5);
        assert!(parts.iter().all(Interval::is_empty));
    }

    #[test]
    fn split_nested_endpoints_grow_logarithmically() {
        // Splitting repeatedly into d parts adds ceil(log2 d) fractional bits per level.
        let mut current = Interval::unit();
        for level in 1..=10u64 {
            current = current.split(5).unwrap()[0].clone();
            assert!(u64::from(current.lo().exponent()) <= 3 * level);
            assert!(u64::from(current.hi().exponent()) <= 3 * level);
        }
    }

    #[test]
    fn endpoint_bits_is_positive_and_monotone_under_nesting() {
        let coarse = Interval::unit();
        let fine = coarse.split(8).unwrap()[3].clone();
        assert!(fine.endpoint_bits() > coarse.endpoint_bits());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Interval::unit().to_string(), "[0, 1)");
        assert!(!format!("{:?}", iv(1, 2, 3)).is_empty());
    }
}
