//! Exact dyadic rationals (binary-point numbers of finite representation).
//!
//! The paper chooses interval endpoints and scalar commodities to be *"binary-point
//! numbers of finite representation, i.e., a sum of powers of 2 with a finite number
//! of summands"* (Section 4). [`Dyadic`] is exactly that set of numbers, restricted
//! to non-negative values: `mantissa / 2^exponent` with an arbitrary-precision
//! mantissa.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::{BigUint, NumError};

/// A non-negative dyadic rational `mantissa / 2^exponent`.
///
/// The value is kept in canonical form: the mantissa is odd (or zero, in which case
/// the exponent is zero). Equality and ordering are therefore value-based.
///
/// # Example
///
/// ```
/// use anet_num::Dyadic;
///
/// let half = Dyadic::from_pow2_neg(1);
/// let quarter = Dyadic::from_pow2_neg(2);
/// assert_eq!(&half + &quarter, Dyadic::from_parts(3u64.into(), 2)); // 3/4
/// assert!(quarter < half);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dyadic {
    mantissa: BigUint,
    exponent: u32,
}

impl Dyadic {
    /// The value zero.
    pub fn zero() -> Self {
        Dyadic {
            mantissa: BigUint::zero(),
            exponent: 0,
        }
    }

    /// The value one.
    pub fn one() -> Self {
        Dyadic {
            mantissa: BigUint::one(),
            exponent: 0,
        }
    }

    /// Builds `mantissa / 2^exponent`, normalising to canonical form.
    pub fn from_parts(mantissa: BigUint, exponent: u32) -> Self {
        let mut d = Dyadic { mantissa, exponent };
        d.normalize();
        d
    }

    /// Returns `2^-k`, the commodity value after `k` binary halvings.
    pub fn from_pow2_neg(k: u32) -> Self {
        Dyadic {
            mantissa: BigUint::one(),
            exponent: k,
        }
    }

    /// Builds a dyadic from an integer.
    pub fn from_u64(v: u64) -> Self {
        Dyadic::from_parts(BigUint::from(v), 0)
    }

    fn normalize(&mut self) {
        if self.mantissa.is_zero() {
            self.exponent = 0;
            return;
        }
        if let Some(tz) = self.mantissa.trailing_zeros() {
            let reduce = (tz as u32).min(self.exponent);
            if reduce > 0 {
                self.mantissa = &self.mantissa >> reduce;
                self.exponent -= reduce;
            }
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.exponent == 0 && self.mantissa.is_one()
    }

    /// The canonical (odd or zero) mantissa.
    pub fn mantissa(&self) -> &BigUint {
        &self.mantissa
    }

    /// The canonical exponent: the number of bits after the binary point.
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// Returns `true` if the value is an exact (non-negative) power of two,
    /// including `1 = 2^0`. Zero is not a power of two.
    pub fn is_pow2(&self) -> bool {
        self.mantissa.is_one()
    }

    /// For a power of two `2^-k` (with `k >= 0`), returns `k`. Returns `None` for
    /// any other value (including values `> 1`).
    pub fn pow2_neg_exponent(&self) -> Option<u32> {
        if self.mantissa.is_one() {
            Some(self.exponent)
        } else {
            None
        }
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Underflow`] when `other > self`.
    pub fn checked_sub(&self, other: &Dyadic) -> Result<Dyadic, NumError> {
        let exp = self.exponent.max(other.exponent);
        let a = &self.mantissa << (exp - self.exponent);
        let b = &other.mantissa << (exp - other.exponent);
        Ok(Dyadic::from_parts(a.checked_sub(&b)?, exp))
    }

    /// Divides by `2^k` exactly.
    pub fn div_pow2(&self, k: u32) -> Dyadic {
        if self.is_zero() {
            return Dyadic::zero();
        }
        Dyadic {
            mantissa: self.mantissa.clone(),
            exponent: self.exponent + k,
        }
    }

    /// Multiplies by `2^k` exactly.
    pub fn mul_pow2(&self, k: u32) -> Dyadic {
        if self.is_zero() {
            return Dyadic::zero();
        }
        if k <= self.exponent {
            Dyadic {
                mantissa: self.mantissa.clone(),
                exponent: self.exponent - k,
            }
        } else {
            Dyadic::from_parts(&self.mantissa << (k - self.exponent), 0)
        }
    }

    /// Halves the value exactly.
    pub fn halve(&self) -> Dyadic {
        self.div_pow2(1)
    }

    /// Multiplies by a small integer exactly.
    pub fn mul_u32(&self, factor: u32) -> Dyadic {
        Dyadic::from_parts(self.mantissa.mul_small(factor), self.exponent)
    }

    /// Approximate `f64` value (for reporting only; never used in protocol logic).
    pub fn to_f64(&self) -> f64 {
        self.mantissa.to_f64() / 2f64.powi(self.exponent as i32)
    }

    /// Number of bits in a positional binary-point representation of the value:
    /// the bits of the integer part plus the bits after the binary point.
    ///
    /// This is the size the paper ascribes to an interval endpoint: the endpoint is
    /// "written down" as a binary expansion, and each canonical partition appends
    /// `O(log k)` further bits to it (Theorem 4.3).
    pub fn positional_bits(&self) -> u64 {
        let int_bits = if self.mantissa.bit_len() > u64::from(self.exponent) {
            self.mantissa.bit_len() - u64::from(self.exponent)
        } else {
            0
        };
        int_bits + u64::from(self.exponent)
    }

    /// Renders the value as a binary-point expansion, e.g. `0.1011` or `1.0`.
    pub fn to_binary_string(&self) -> String {
        if self.is_zero() {
            return "0.0".to_owned();
        }
        let int_part = &self.mantissa >> self.exponent;
        let frac = if self.exponent == 0 {
            BigUint::zero()
        } else {
            // mantissa mod 2^exponent
            self.mantissa
                .clone()
                .checked_sub(&(&int_part << self.exponent))
                .expect("int part <= value")
        };
        let mut s = format!("{int_part:b}.");
        if self.exponent == 0 {
            s.push('0');
        } else {
            for i in (0..self.exponent).rev() {
                s.push(if frac.bit(u64::from(i)) { '1' } else { '0' });
            }
        }
        s
    }
}

impl Default for Dyadic {
    fn default() -> Self {
        Dyadic::zero()
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        let exp = self.exponent.max(other.exponent);
        let a = &self.mantissa << (exp - self.exponent);
        let b = &other.mantissa << (exp - other.exponent);
        a.cmp(&b)
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Dyadic {
    type Output = Dyadic;
    fn add(self, rhs: &Dyadic) -> Dyadic {
        let exp = self.exponent.max(rhs.exponent);
        let a = &self.mantissa << (exp - self.exponent);
        let b = &rhs.mantissa << (exp - rhs.exponent);
        Dyadic::from_parts(&a + &b, exp)
    }
}

impl Add for Dyadic {
    type Output = Dyadic;
    fn add(self, rhs: Dyadic) -> Dyadic {
        &self + &rhs
    }
}

impl AddAssign<&Dyadic> for Dyadic {
    fn add_assign(&mut self, rhs: &Dyadic) {
        *self = &*self + rhs;
    }
}

impl Sub for &Dyadic {
    type Output = Dyadic;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`Dyadic::checked_sub`] for a fallible version.
    fn sub(self, rhs: &Dyadic) -> Dyadic {
        self.checked_sub(rhs)
            .expect("Dyadic subtraction underflow; use checked_sub")
    }
}

impl Sub for Dyadic {
    type Output = Dyadic;
    fn sub(self, rhs: Dyadic) -> Dyadic {
        &self - &rhs
    }
}

impl Mul for &Dyadic {
    type Output = Dyadic;
    fn mul(self, rhs: &Dyadic) -> Dyadic {
        Dyadic::from_parts(
            &self.mantissa * &rhs.mantissa,
            self.exponent
                .checked_add(rhs.exponent)
                .expect("dyadic exponent overflow"),
        )
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exponent == 0 {
            write!(f, "{}", self.mantissa)
        } else {
            write!(f, "{}/2^{}", self.mantissa, self.exponent)
        }
    }
}

impl fmt::Debug for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dyadic({self} ≈ {})", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_enforced() {
        let d = Dyadic::from_parts(BigUint::from(4u64), 3); // 4/8 = 1/2
        assert_eq!(d, Dyadic::from_pow2_neg(1));
        assert_eq!(d.exponent(), 1);
        assert!(d.mantissa().is_one());
    }

    #[test]
    fn zero_normalizes_exponent() {
        let d = Dyadic::from_parts(BigUint::zero(), 17);
        assert!(d.is_zero());
        assert_eq!(d.exponent(), 0);
        assert_eq!(d, Dyadic::default());
    }

    #[test]
    fn halving_chain_matches_pow2() {
        let mut x = Dyadic::one();
        for k in 1..=64u32 {
            x = x.halve();
            assert_eq!(x, Dyadic::from_pow2_neg(k));
            assert!(x.is_pow2());
            assert_eq!(x.pow2_neg_exponent(), Some(k));
        }
    }

    #[test]
    fn addition_of_halves_is_one() {
        let h = Dyadic::from_pow2_neg(1);
        assert!((&h + &h).is_one());
        let q = Dyadic::from_pow2_neg(2);
        assert_eq!(&(&q + &q) + &h, Dyadic::one());
    }

    #[test]
    fn addition_with_different_exponents() {
        // 3/8 + 1/4 = 5/8
        let a = Dyadic::from_parts(BigUint::from(3u64), 3);
        let b = Dyadic::from_pow2_neg(2);
        assert_eq!(&a + &b, Dyadic::from_parts(BigUint::from(5u64), 3));
    }

    #[test]
    fn subtraction_and_underflow() {
        let a = Dyadic::from_parts(BigUint::from(5u64), 3);
        let b = Dyadic::from_pow2_neg(3);
        assert_eq!(&a - &b, Dyadic::from_pow2_neg(1));
        assert_eq!(b.checked_sub(&a), Err(NumError::Underflow));
    }

    #[test]
    fn ordering_matches_value() {
        let third_ish = Dyadic::from_parts(BigUint::from(341u64), 10); // ~0.333
        let half = Dyadic::from_pow2_neg(1);
        assert!(third_ish < half);
        assert!(half > third_ish);
        assert!(Dyadic::zero() < third_ish);
        assert!(half < Dyadic::one());
    }

    #[test]
    fn multiplication_is_exact() {
        let a = Dyadic::from_parts(BigUint::from(3u64), 2); // 3/4
        let b = Dyadic::from_parts(BigUint::from(5u64), 3); // 5/8
        assert_eq!(&a * &b, Dyadic::from_parts(BigUint::from(15u64), 5));
    }

    #[test]
    fn mul_div_pow2_round_trip() {
        let a = Dyadic::from_parts(BigUint::from(7u64), 5);
        assert_eq!(a.div_pow2(3).mul_pow2(3), a);
        assert_eq!(a.mul_pow2(5), Dyadic::from_u64(7));
        assert_eq!(a.mul_pow2(7), Dyadic::from_u64(28));
        assert_eq!(Dyadic::zero().mul_pow2(10), Dyadic::zero());
    }

    #[test]
    fn mul_u32_matches_repeated_add() {
        let a = Dyadic::from_pow2_neg(4);
        let mut acc = Dyadic::zero();
        for _ in 0..5 {
            acc += &a;
        }
        assert_eq!(a.mul_u32(5), acc);
    }

    #[test]
    fn positional_bits_counts_point_expansion() {
        assert_eq!(Dyadic::zero().positional_bits(), 0);
        assert_eq!(Dyadic::one().positional_bits(), 1);
        assert_eq!(Dyadic::from_pow2_neg(7).positional_bits(), 7);
        // 5/8 = 0.101 needs 3 fractional bits.
        assert_eq!(
            Dyadic::from_parts(BigUint::from(5u64), 3).positional_bits(),
            3
        );
        // 3 = 11 binary needs 2 bits.
        assert_eq!(Dyadic::from_u64(3).positional_bits(), 2);
    }

    #[test]
    fn binary_string_rendering() {
        assert_eq!(Dyadic::zero().to_binary_string(), "0.0");
        assert_eq!(Dyadic::one().to_binary_string(), "1.0");
        assert_eq!(Dyadic::from_pow2_neg(2).to_binary_string(), "0.01");
        assert_eq!(
            Dyadic::from_parts(BigUint::from(5u64), 3).to_binary_string(),
            "0.101"
        );
    }

    #[test]
    fn to_f64_is_close() {
        let d = Dyadic::from_parts(BigUint::from(5u64), 3);
        assert!((d.to_f64() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dyadic::from_u64(3).to_string(), "3");
        assert_eq!(Dyadic::from_pow2_neg(3).to_string(), "1/2^3");
        assert!(!format!("{:?}", Dyadic::zero()).is_empty());
    }
}
