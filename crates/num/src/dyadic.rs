//! Exact dyadic rationals (binary-point numbers of finite representation).
//!
//! The paper chooses interval endpoints and scalar commodities to be *"binary-point
//! numbers of finite representation, i.e., a sum of powers of 2 with a finite number
//! of summands"* (Section 4). [`Dyadic`] is exactly that set of numbers, restricted
//! to non-negative values: `mantissa / 2^exponent` with an arbitrary-precision
//! mantissa.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::{BigUint, NumError};

/// The mantissa of a [`Dyadic`]: an inline machine word for the overwhelmingly
/// common case, spilling to an arbitrary-precision [`BigUint`] only when the
/// value genuinely needs more than 64 bits.
///
/// # Representation invariant
///
/// `Big` is used **iff** the mantissa does not fit in a `u64`. A mantissa that
/// fits is always stored as `Small`, so two equal values have identical
/// representations and the derived `PartialEq`/`Hash` are value-based.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Mantissa {
    /// Mantissa fits in a machine word — no heap allocation anywhere.
    Small(u64),
    /// Mantissa exceeds `u64::MAX` (more than 64 significant bits).
    Big(BigUint),
}

/// A non-negative dyadic rational `mantissa / 2^exponent`.
///
/// # Representation invariants
///
/// The value is kept in canonical form at all times:
///
/// 1. the mantissa is odd whenever `exponent > 0` (zero has `exponent == 0`), so
///    equal values have equal `(mantissa, exponent)` pairs;
/// 2. the mantissa is stored **inline as a `u64`** whenever it fits, and spills
///    to a heap-allocated [`BigUint`] only beyond 64 significant bits.
///
/// Invariant 2 is the small-value fast path: interval endpoints produced by
/// repeated halvings and canonical partitions stay within a machine word for
/// all practical network depths, so comparisons, `+`, `-` and normalisation
/// run branch-cheap inline `u64`/`u128` arithmetic and **never allocate**. The
/// `BigUint` spill path preserves exactness for adversarially deep values; the
/// two representations never coexist for the same value, so equality and
/// hashing stay value-based. The always-heap implementations are retained in
/// [`crate::reference`] for differential testing.
///
/// # Example
///
/// ```
/// use anet_num::Dyadic;
///
/// let half = Dyadic::from_pow2_neg(1);
/// let quarter = Dyadic::from_pow2_neg(2);
/// assert_eq!(&half + &quarter, Dyadic::from_u64_parts(3, 2)); // 3/4
/// assert!(quarter < half);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dyadic {
    mantissa: Mantissa,
    exponent: u32,
}

/// Bit length of a non-zero `u64` mantissa.
#[inline]
fn bit_len_u64(m: u64) -> u32 {
    u64::BITS - m.leading_zeros()
}

impl Dyadic {
    /// The value zero.
    #[inline]
    pub fn zero() -> Self {
        Dyadic {
            mantissa: Mantissa::Small(0),
            exponent: 0,
        }
    }

    /// The value one.
    #[inline]
    pub fn one() -> Self {
        Dyadic {
            mantissa: Mantissa::Small(1),
            exponent: 0,
        }
    }

    /// Builds `mantissa / 2^exponent`, normalising to canonical form (this
    /// includes demoting a heap mantissa that fits in a `u64` to the inline
    /// representation).
    pub fn from_parts(mantissa: BigUint, exponent: u32) -> Self {
        match mantissa.to_u64() {
            Some(small) => Dyadic::from_u64_parts(small, exponent),
            None => {
                let mut d = Dyadic {
                    mantissa: Mantissa::Big(mantissa),
                    exponent,
                };
                d.normalize_big();
                d
            }
        }
    }

    /// Builds `mantissa / 2^exponent` from an inline mantissa — the
    /// allocation-free constructor for endpoints with at most 64 mantissa bits.
    #[inline]
    pub fn from_u64_parts(mantissa: u64, exponent: u32) -> Self {
        if mantissa == 0 {
            return Dyadic::zero();
        }
        let reduce = (mantissa.trailing_zeros()).min(exponent);
        Dyadic {
            mantissa: Mantissa::Small(mantissa >> reduce),
            exponent: exponent - reduce,
        }
    }

    /// Builds `mantissa / 2^exponent` from a double-word intermediate, spilling
    /// to the heap only when more than 64 bits survive normalisation.
    #[inline]
    fn from_u128_parts(mantissa: u128, exponent: u32) -> Self {
        if mantissa == 0 {
            return Dyadic::zero();
        }
        let reduce = (mantissa.trailing_zeros()).min(exponent);
        let m = mantissa >> reduce;
        let exponent = exponent - reduce;
        match u64::try_from(m) {
            Ok(small) => Dyadic {
                mantissa: Mantissa::Small(small),
                exponent,
            },
            Err(_) => Dyadic {
                mantissa: Mantissa::Big(BigUint::from_u128(m)),
                exponent,
            },
        }
    }

    /// Returns `2^-k`, the commodity value after `k` binary halvings.
    #[inline]
    pub fn from_pow2_neg(k: u32) -> Self {
        Dyadic {
            mantissa: Mantissa::Small(1),
            exponent: k,
        }
    }

    /// Builds a dyadic from an integer.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Dyadic {
            mantissa: Mantissa::Small(v),
            exponent: 0,
        }
    }

    /// Restores canonical form for a heap mantissa: strips the trailing zeros
    /// covered by the exponent and demotes to the inline representation when 64
    /// bits suffice.
    fn normalize_big(&mut self) {
        let Mantissa::Big(big) = &self.mantissa else {
            return;
        };
        if big.is_zero() {
            self.mantissa = Mantissa::Small(0);
            self.exponent = 0;
            return;
        }
        if let Some(tz) = big.trailing_zeros() {
            let reduce = u32::try_from(tz).unwrap_or(u32::MAX).min(self.exponent);
            if reduce > 0 {
                let reduced = big >> reduce;
                self.exponent -= reduce;
                self.mantissa = match reduced.to_u64() {
                    Some(small) => Mantissa::Small(small),
                    None => Mantissa::Big(reduced),
                };
                return;
            }
        }
        if let Some(small) = big.to_u64() {
            self.mantissa = Mantissa::Small(small);
        }
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.mantissa, Mantissa::Small(0))
    }

    /// Returns `true` if the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.exponent == 0 && matches!(self.mantissa, Mantissa::Small(1))
    }

    /// The canonical (odd or zero) mantissa, widened to a [`BigUint`].
    ///
    /// This is a reporting/interop accessor: it allocates when the mantissa is
    /// inline. Hot paths use [`Dyadic::mantissa_bit_len`] or
    /// [`Dyadic::inline_mantissa`] instead.
    pub fn mantissa(&self) -> BigUint {
        match &self.mantissa {
            Mantissa::Small(m) => BigUint::from(*m),
            Mantissa::Big(b) => b.clone(),
        }
    }

    /// The inline mantissa, when the value is on the small-value fast path.
    #[inline]
    pub fn inline_mantissa(&self) -> Option<u64> {
        match &self.mantissa {
            Mantissa::Small(m) => Some(*m),
            Mantissa::Big(_) => None,
        }
    }

    /// Returns `true` while the mantissa is stored inline (≤ 64 significant
    /// bits — no heap allocation held by this value).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.mantissa, Mantissa::Small(_))
    }

    /// Number of significant bits of the mantissa (`0` for zero).
    #[inline]
    pub fn mantissa_bit_len(&self) -> u64 {
        match &self.mantissa {
            Mantissa::Small(0) => 0,
            Mantissa::Small(m) => u64::from(bit_len_u64(*m)),
            Mantissa::Big(b) => b.bit_len(),
        }
    }

    /// The canonical exponent: the number of bits after the binary point.
    #[inline]
    pub fn exponent(&self) -> u32 {
        self.exponent
    }

    /// Returns `true` if the value is an exact (non-negative) power of two,
    /// including `1 = 2^0`. Zero is not a power of two.
    #[inline]
    pub fn is_pow2(&self) -> bool {
        matches!(self.mantissa, Mantissa::Small(1))
    }

    /// For a power of two `2^-k` (with `k >= 0`), returns `k`. Returns `None` for
    /// any other value (including values `> 1`).
    #[inline]
    pub fn pow2_neg_exponent(&self) -> Option<u32> {
        if self.is_pow2() {
            Some(self.exponent)
        } else {
            None
        }
    }

    /// The aligned big-mantissa pair `(a << (e - ea), b << (e - eb))` with
    /// `e = max(ea, eb)` — the slow path shared by comparison, addition and
    /// subtraction when either operand has spilled to the heap.
    fn aligned_big(&self, other: &Dyadic) -> (BigUint, BigUint, u32) {
        let exp = self.exponent.max(other.exponent);
        let a = self.mantissa() << (exp - self.exponent);
        let b = other.mantissa() << (exp - other.exponent);
        (a, b, exp)
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Underflow`] when `other > self`.
    pub fn checked_sub(&self, other: &Dyadic) -> Result<Dyadic, NumError> {
        if let (Mantissa::Small(ma), Mantissa::Small(mb)) = (&self.mantissa, &other.mantissa) {
            let exp = self.exponent.max(other.exponent);
            let sa = exp - self.exponent;
            let sb = exp - other.exponent;
            if sa < 64 && sb < 64 {
                let va = u128::from(*ma) << sa;
                let vb = u128::from(*mb) << sb;
                return match va.checked_sub(vb) {
                    Some(diff) => Ok(Dyadic::from_u128_parts(diff, exp)),
                    None => Err(NumError::Underflow),
                };
            }
        }
        let (a, b, exp) = self.aligned_big(other);
        Ok(Dyadic::from_parts(a.checked_sub(&b)?, exp))
    }

    /// Divides by `2^k` exactly.
    #[inline]
    pub fn div_pow2(&self, k: u32) -> Dyadic {
        if self.is_zero() {
            return Dyadic::zero();
        }
        if self.exponent == 0 {
            // An integer may have an even mantissa; renormalise so the new
            // positive exponent keeps the mantissa odd.
            return match &self.mantissa {
                Mantissa::Small(m) => Dyadic::from_u64_parts(*m, k),
                Mantissa::Big(b) => Dyadic::from_parts(b.clone(), k),
            };
        }
        // Canonical with a positive exponent means the mantissa is already odd.
        Dyadic {
            mantissa: self.mantissa.clone(),
            exponent: self
                .exponent
                .checked_add(k)
                .expect("dyadic exponent overflow"),
        }
    }

    /// Multiplies by `2^k` exactly.
    pub fn mul_pow2(&self, k: u32) -> Dyadic {
        if self.is_zero() {
            return Dyadic::zero();
        }
        if k <= self.exponent {
            return Dyadic {
                mantissa: self.mantissa.clone(),
                exponent: self.exponent - k,
            };
        }
        let shift = k - self.exponent;
        match &self.mantissa {
            Mantissa::Small(m) if shift <= 64 => {
                Dyadic::from_u128_parts(u128::from(*m) << shift, 0)
            }
            _ => Dyadic::from_parts(self.mantissa() << shift, 0),
        }
    }

    /// Halves the value exactly.
    #[inline]
    pub fn halve(&self) -> Dyadic {
        self.div_pow2(1)
    }

    /// Multiplies by a small integer exactly.
    pub fn mul_u32(&self, factor: u32) -> Dyadic {
        match &self.mantissa {
            Mantissa::Small(m) => {
                Dyadic::from_u128_parts(u128::from(*m) * u128::from(factor), self.exponent)
            }
            Mantissa::Big(b) => Dyadic::from_parts(b.mul_small(factor), self.exponent),
        }
    }

    /// Approximate `f64` value (for reporting only; never used in protocol logic).
    pub fn to_f64(&self) -> f64 {
        let m = match &self.mantissa {
            Mantissa::Small(m) => *m as f64,
            Mantissa::Big(b) => b.to_f64(),
        };
        m / 2f64.powi(self.exponent as i32)
    }

    /// Number of bits in a positional binary-point representation of the value:
    /// the bits of the integer part plus the bits after the binary point.
    ///
    /// This is the size the paper ascribes to an interval endpoint: the endpoint is
    /// "written down" as a binary expansion, and each canonical partition appends
    /// `O(log k)` further bits to it (Theorem 4.3).
    pub fn positional_bits(&self) -> u64 {
        let bits = self.mantissa_bit_len();
        let int_bits = bits.saturating_sub(u64::from(self.exponent));
        int_bits + u64::from(self.exponent)
    }

    /// Renders the value as a binary-point expansion, e.g. `0.1011` or `1.0`.
    pub fn to_binary_string(&self) -> String {
        if self.is_zero() {
            return "0.0".to_owned();
        }
        let mantissa = self.mantissa();
        let int_part = &mantissa >> self.exponent;
        let frac = if self.exponent == 0 {
            BigUint::zero()
        } else {
            // mantissa mod 2^exponent
            mantissa
                .checked_sub(&(&int_part << self.exponent))
                .expect("int part <= value")
        };
        let mut s = format!("{int_part:b}.");
        if self.exponent == 0 {
            s.push('0');
        } else {
            for i in (0..self.exponent).rev() {
                s.push(if frac.bit(u64::from(i)) { '1' } else { '0' });
            }
        }
        s
    }
}

impl Default for Dyadic {
    fn default() -> Self {
        Dyadic::zero()
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.mantissa, &other.mantissa) {
            (Mantissa::Small(ma), Mantissa::Small(mb)) => {
                let (ma, mb) = (*ma, *mb);
                if self.exponent == other.exponent || ma == 0 || mb == 0 {
                    return ma.cmp(&mb);
                }
                // Compare the binary-point position of the leading bit first;
                // only equal magnitudes need aligned mantissas, and then the
                // exponent difference equals the bit-length difference, < 64.
                let pa = i64::from(bit_len_u64(ma)) - i64::from(self.exponent);
                let pb = i64::from(bit_len_u64(mb)) - i64::from(other.exponent);
                if pa != pb {
                    return pa.cmp(&pb);
                }
                if self.exponent >= other.exponent {
                    u128::from(ma).cmp(&(u128::from(mb) << (self.exponent - other.exponent)))
                } else {
                    (u128::from(ma) << (other.exponent - self.exponent)).cmp(&u128::from(mb))
                }
            }
            // Equal scales compare by mantissa alone; a spilled mantissa always
            // exceeds an inline one (> 64 significant bits vs at most 64).
            (Mantissa::Small(_), Mantissa::Big(_)) if self.exponent == other.exponent => {
                Ordering::Less
            }
            (Mantissa::Big(_), Mantissa::Small(_)) if self.exponent == other.exponent => {
                Ordering::Greater
            }
            (Mantissa::Big(a), Mantissa::Big(b)) if self.exponent == other.exponent => a.cmp(b),
            _ => {
                // At least one operand spilled to the heap, so it is non-zero;
                // the inline side may still be zero, which the leading-bit
                // position formula below does not cover.
                if self.is_zero() {
                    return Ordering::Less;
                }
                if other.is_zero() {
                    return Ordering::Greater;
                }
                // Mixed scales: the magnitude pre-check usually decides without
                // allocating aligned mantissas.
                let pa = i128::from(self.mantissa_bit_len()) - i128::from(self.exponent);
                let pb = i128::from(other.mantissa_bit_len()) - i128::from(other.exponent);
                match pa.cmp(&pb) {
                    Ordering::Equal => {
                        let (a, b, _) = self.aligned_big(other);
                        a.cmp(&b)
                    }
                    ord => ord,
                }
            }
        }
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Dyadic {
    type Output = Dyadic;
    fn add(self, rhs: &Dyadic) -> Dyadic {
        if let (Mantissa::Small(ma), Mantissa::Small(mb)) = (&self.mantissa, &rhs.mantissa) {
            let exp = self.exponent.max(rhs.exponent);
            let sa = exp - self.exponent;
            let sb = exp - rhs.exponent;
            if sa < 64 && sb < 64 {
                // Each summand is < 2^127, so the u128 sum cannot overflow.
                let sum = (u128::from(*ma) << sa) + (u128::from(*mb) << sb);
                return Dyadic::from_u128_parts(sum, exp);
            }
        }
        let (a, b, exp) = self.aligned_big(rhs);
        Dyadic::from_parts(&a + &b, exp)
    }
}

impl Add for Dyadic {
    type Output = Dyadic;
    fn add(self, rhs: Dyadic) -> Dyadic {
        &self + &rhs
    }
}

impl AddAssign<&Dyadic> for Dyadic {
    fn add_assign(&mut self, rhs: &Dyadic) {
        *self = &*self + rhs;
    }
}

impl Sub for &Dyadic {
    type Output = Dyadic;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`Dyadic::checked_sub`] for a fallible version.
    fn sub(self, rhs: &Dyadic) -> Dyadic {
        self.checked_sub(rhs)
            .expect("Dyadic subtraction underflow; use checked_sub")
    }
}

impl Sub for Dyadic {
    type Output = Dyadic;
    fn sub(self, rhs: Dyadic) -> Dyadic {
        &self - &rhs
    }
}

impl Mul for &Dyadic {
    type Output = Dyadic;
    fn mul(self, rhs: &Dyadic) -> Dyadic {
        let exp = self
            .exponent
            .checked_add(rhs.exponent)
            .expect("dyadic exponent overflow");
        if let (Mantissa::Small(ma), Mantissa::Small(mb)) = (&self.mantissa, &rhs.mantissa) {
            return Dyadic::from_u128_parts(u128::from(*ma) * u128::from(*mb), exp);
        }
        Dyadic::from_parts(&self.mantissa() * &rhs.mantissa(), exp)
    }
}

impl fmt::Display for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.mantissa, self.exponent) {
            (Mantissa::Small(m), 0) => write!(f, "{m}"),
            (Mantissa::Small(m), e) => write!(f, "{m}/2^{e}"),
            (Mantissa::Big(b), 0) => write!(f, "{b}"),
            (Mantissa::Big(b), e) => write!(f, "{b}/2^{e}"),
        }
    }
}

impl fmt::Debug for Dyadic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dyadic({self} ≈ {})", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_enforced() {
        let d = Dyadic::from_parts(BigUint::from(4u64), 3); // 4/8 = 1/2
        assert_eq!(d, Dyadic::from_pow2_neg(1));
        assert_eq!(d.exponent(), 1);
        assert!(d.mantissa().is_one());
        assert_eq!(d.inline_mantissa(), Some(1));
    }

    #[test]
    fn zero_normalizes_exponent() {
        let d = Dyadic::from_parts(BigUint::zero(), 17);
        assert!(d.is_zero());
        assert_eq!(d.exponent(), 0);
        assert_eq!(d, Dyadic::default());
        assert_eq!(Dyadic::from_u64_parts(0, 9), Dyadic::zero());
    }

    #[test]
    fn halving_chain_matches_pow2() {
        let mut x = Dyadic::one();
        for k in 1..=64u32 {
            x = x.halve();
            assert_eq!(x, Dyadic::from_pow2_neg(k));
            assert!(x.is_pow2());
            assert_eq!(x.pow2_neg_exponent(), Some(k));
        }
    }

    #[test]
    fn addition_of_halves_is_one() {
        let h = Dyadic::from_pow2_neg(1);
        assert!((&h + &h).is_one());
        let q = Dyadic::from_pow2_neg(2);
        assert_eq!(&(&q + &q) + &h, Dyadic::one());
    }

    #[test]
    fn addition_with_different_exponents() {
        // 3/8 + 1/4 = 5/8
        let a = Dyadic::from_u64_parts(3, 3);
        let b = Dyadic::from_pow2_neg(2);
        assert_eq!(&a + &b, Dyadic::from_u64_parts(5, 3));
    }

    #[test]
    fn subtraction_and_underflow() {
        let a = Dyadic::from_u64_parts(5, 3);
        let b = Dyadic::from_pow2_neg(3);
        assert_eq!(&a - &b, Dyadic::from_pow2_neg(1));
        assert_eq!(b.checked_sub(&a), Err(NumError::Underflow));
    }

    #[test]
    fn ordering_matches_value() {
        let third_ish = Dyadic::from_u64_parts(341, 10); // ~0.333
        let half = Dyadic::from_pow2_neg(1);
        assert!(third_ish < half);
        assert!(half > third_ish);
        assert!(Dyadic::zero() < third_ish);
        assert!(half < Dyadic::one());
    }

    #[test]
    fn ordering_across_far_exponents() {
        // Exponent gaps larger than a word must still compare correctly.
        let tiny = Dyadic::from_pow2_neg(500);
        let small = Dyadic::from_u64_parts(3, 2);
        assert!(tiny < small);
        assert!(small > tiny);
        assert_eq!(tiny.cmp(&tiny), Ordering::Equal);
        assert_eq!((&tiny + &small).checked_sub(&small).unwrap(), tiny);
    }

    #[test]
    fn multiplication_is_exact() {
        let a = Dyadic::from_u64_parts(3, 2); // 3/4
        let b = Dyadic::from_u64_parts(5, 3); // 5/8
        assert_eq!(&a * &b, Dyadic::from_u64_parts(15, 5));
    }

    #[test]
    fn mul_div_pow2_round_trip() {
        let a = Dyadic::from_u64_parts(7, 5);
        assert_eq!(a.div_pow2(3).mul_pow2(3), a);
        assert_eq!(a.mul_pow2(5), Dyadic::from_u64(7));
        assert_eq!(a.mul_pow2(7), Dyadic::from_u64(28));
        assert_eq!(Dyadic::zero().mul_pow2(10), Dyadic::zero());
    }

    #[test]
    fn mul_u32_matches_repeated_add() {
        let a = Dyadic::from_pow2_neg(4);
        let mut acc = Dyadic::zero();
        for _ in 0..5 {
            acc += &a;
        }
        assert_eq!(a.mul_u32(5), acc);
    }

    #[test]
    fn inline_heap_boundary_round_trips() {
        // u64::MAX stays inline; one more bit spills to the heap; halving the
        // spilled value back below 64 bits demotes it to inline again.
        let max = Dyadic::from_u64(u64::MAX);
        assert!(max.is_inline());
        let spilled = &max + &Dyadic::one();
        assert!(!spilled.is_inline());
        assert_eq!(spilled.mantissa(), BigUint::pow2(64));
        assert_eq!(&spilled - &Dyadic::one(), max);
        // 2^64 has a single set bit: dividing by 2^64 renormalises to 1 inline.
        let back = spilled.div_pow2(64);
        assert!(back.is_inline());
        assert!(back.is_one());
        // A genuinely odd wide mantissa stays on the heap through add/sub.
        let wide = Dyadic::from_parts(BigUint::pow2(80) + BigUint::one(), 90);
        assert!(!wide.is_inline());
        let doubled = &wide + &wide;
        assert!(!doubled.is_inline());
        assert_eq!(doubled, wide.mul_pow2(1));
        assert_eq!(doubled.checked_sub(&wide).unwrap(), wide);
    }

    #[test]
    fn zero_orders_below_heap_values() {
        // Regression: the mixed-representation magnitude pre-check must not be
        // applied to zero (its leading-bit position is undefined).
        let heap = Dyadic::from_parts(BigUint::pow2(66) + BigUint::one(), 69);
        assert!(!heap.is_inline());
        assert!(Dyadic::zero() < heap);
        assert!(heap > Dyadic::zero());
        assert_eq!(Dyadic::zero().cmp(&heap), Ordering::Less);
        assert_eq!(heap.cmp(&Dyadic::zero()), Ordering::Greater);
    }

    #[test]
    fn mixed_representation_arithmetic_is_exact() {
        let big = Dyadic::from_parts(BigUint::pow2(70) + BigUint::one(), 75);
        let small = Dyadic::from_pow2_neg(75);
        let sum = &big + &small;
        assert_eq!(sum.checked_sub(&small).unwrap(), big);
        assert!(big > small);
        assert!(small < big);
        assert_eq!(&big * &Dyadic::one(), big);
    }

    #[test]
    fn positional_bits_counts_point_expansion() {
        assert_eq!(Dyadic::zero().positional_bits(), 0);
        assert_eq!(Dyadic::one().positional_bits(), 1);
        assert_eq!(Dyadic::from_pow2_neg(7).positional_bits(), 7);
        // 5/8 = 0.101 needs 3 fractional bits.
        assert_eq!(Dyadic::from_u64_parts(5, 3).positional_bits(), 3);
        // 3 = 11 binary needs 2 bits.
        assert_eq!(Dyadic::from_u64(3).positional_bits(), 2);
    }

    #[test]
    fn binary_string_rendering() {
        assert_eq!(Dyadic::zero().to_binary_string(), "0.0");
        assert_eq!(Dyadic::one().to_binary_string(), "1.0");
        assert_eq!(Dyadic::from_pow2_neg(2).to_binary_string(), "0.01");
        assert_eq!(Dyadic::from_u64_parts(5, 3).to_binary_string(), "0.101");
    }

    #[test]
    fn to_f64_is_close() {
        let d = Dyadic::from_u64_parts(5, 3);
        assert!((d.to_f64() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dyadic::from_u64(3).to_string(), "3");
        assert_eq!(Dyadic::from_pow2_neg(3).to_string(), "1/2^3");
        assert!(!format!("{:?}", Dyadic::zero()).is_empty());
        let big = Dyadic::from_parts(BigUint::pow2(70), 90);
        assert_eq!(big.to_string(), "1/2^20");
        let wide = Dyadic::from_parts(BigUint::pow2(70) + BigUint::one(), 1);
        assert!(wide.to_string().contains("/2^1"));
    }
}
