//! # anet-num — exact arithmetic for anonymous-network protocols
//!
//! The protocols of *Langberg, Schwartz, Bruck (PODC 2007)* transmit *commodities*:
//! scalar flow values on grounded trees and DAGs, and interval unions over `[0, 1)`
//! on general graphs. The paper's complexity theorems count the number of **bits**
//! needed to represent those commodities, so the arithmetic must be exact and the
//! representation size must be measurable. This crate provides that substrate:
//!
//! * [`BigUint`] — arbitrary-precision natural numbers (no external bignum crate).
//! * [`Dyadic`] — non-negative binary-point numbers `m / 2^k` of finite
//!   representation, exactly the numbers the paper chooses for interval endpoints.
//! * [`Ratio`] — exact non-negative rationals, used by the *naive* `x/d` flow rule
//!   that the paper's power-of-two rule improves upon (the E1 ablation).
//! * [`Interval`] — half-open intervals `[a, b)` with dyadic endpoints.
//! * [`IntervalUnion`] — finite unions of disjoint intervals, the commodity of the
//!   general-graph broadcasting and labelling protocols (Definition 4.1), stored
//!   as one flattened endpoint array behind a copy-on-write handle: cloning a
//!   value — the protocols' per-out-port hot path — is an O(1) refcount bump,
//!   and the two-pointer set merges walk dense endpoint buffers.
//! * [`partition`] — the paper's splitting rules: the power-of-two scalar rule of
//!   Section 3.1 and the canonical interval partition of Section 4.
//! * [`bits`] — self-delimiting integer codes used to account for wire sizes.
//! * [`Fnv1a`] — the workspace's stable 64-bit FNV-1a hasher: trace digests,
//!   sweep fingerprints and graph canonical fingerprints all share its
//!   constants, so equal hashes mean the same bytes on every platform.
//! * [`intern`] — hash-consing [`Interner`] arenas (values → dense `u32` ids) and
//!   [`IdSet`] bitsets, the identifier economy behind the record-flooding
//!   protocols.
//!
//! # Example
//!
//! ```
//! use anet_num::{Dyadic, Interval, IntervalUnion};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = Interval::unit();                 // [0, 1)
//! let parts = unit.split(3)?;                  // canonical 3-way split
//! let reassembled: IntervalUnion = parts.iter().cloned().collect();
//! assert_eq!(reassembled, IntervalUnion::unit());
//! assert_eq!(parts[0].length(), Dyadic::from_pow2_neg(2)); // 1/4
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod biguint;
pub mod bits;
mod dyadic;
mod error;
mod fnv;
pub mod intern;
mod interval;
mod interval_union;
pub mod partition;
mod ratio;
pub mod reference;

pub use biguint::BigUint;
pub use dyadic::Dyadic;
pub use error::NumError;
pub use fnv::{Fnv1a, FnvBuildHasher, FnvHasher};
pub use intern::{IdBag, IdSet, Interner};
pub use interval::Interval;
pub use interval_union::IntervalUnion;
pub use ratio::Ratio;
