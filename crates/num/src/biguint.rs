//! Arbitrary-precision natural numbers.
//!
//! The commodities transmitted by the paper's protocols shrink geometrically with
//! network depth (`x / 2^⌈log d⌉` per hop, or `x / d` for the naive rule), so their
//! exact numerators and denominators quickly exceed machine words. This module
//! provides a small, dependency-free unsigned bignum sufficient for the protocols
//! and for measuring representation sizes: addition, subtraction, multiplication,
//! shifts, full division with remainder, gcd and bit-level inspection.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};

use crate::NumError;

/// Limb type: 32-bit limbs with 64-bit intermediates keep the implementation simple
/// and portable while being fast enough for the protocol sizes exercised here.
type Limb = u32;
type DoubleLimb = u64;
const LIMB_BITS: u32 = 32;

/// An arbitrary-precision natural number (non-negative integer).
///
/// Stored as little-endian limbs with no trailing zero limbs (canonical form);
/// zero is the empty limb vector.
///
/// # Example
///
/// ```
/// use anet_num::BigUint;
///
/// let a = BigUint::from(1u64 << 40);
/// let b = &a * &a;
/// assert_eq!(b.bit_len(), 81);
/// assert_eq!(b >> 40, a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<Limb>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `2^k`.
    pub fn pow2(k: u32) -> Self {
        BigUint::one() << k
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even. Zero is considered even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of bits in the minimal binary representation (`0` for zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * u64::from(LIMB_BITS)
                    + u64::from(LIMB_BITS - top.leading_zeros())
            }
        }
    }

    /// Returns bit `i` (little-endian; bit 0 is the least significant).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / u64::from(LIMB_BITS)) as usize;
        let off = (i % u64::from(LIMB_BITS)) as u32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * u64::from(LIMB_BITS) + u64::from(l.trailing_zeros()));
            }
        }
        None
    }

    /// Builds a value from a `u128` (the widest intermediate the inline dyadic
    /// fast path produces).
    pub fn from_u128(v: u128) -> Self {
        let mut out = BigUint {
            limbs: vec![
                v as Limb,
                (v >> 32) as Limb,
                (v >> 64) as Limb,
                (v >> 96) as Limb,
            ],
        };
        out.normalize();
        out
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut acc: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            acc |= u128::from(l) << (32 * i);
        }
        Some(acc)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (saturates to `f64::INFINITY` when too large).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * (DoubleLimb::from(u32::MAX) as f64 + 1.0) + f64::from(l);
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Checked subtraction; returns an error instead of underflowing.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Underflow`] when `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Result<BigUint, NumError> {
        if other > self {
            return Err(NumError::Underflow);
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut d = a - b - borrow;
            if d < 0 {
                d += i64::from(u32::MAX) + 1;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(d as Limb);
        }
        debug_assert_eq!(borrow, 0);
        let mut out = BigUint { limbs };
        out.normalize();
        Ok(out)
    }

    /// Division with remainder.
    ///
    /// Uses simple binary long division: `O(n²)` in the bit length, which is ample
    /// for the operand sizes produced by the protocols.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DivisionByZero`] when `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> Result<(BigUint, BigUint), NumError> {
        if divisor.is_zero() {
            return Err(NumError::DivisionByZero);
        }
        if self < divisor {
            return Ok((BigUint::zero(), self.clone()));
        }
        if divisor.is_one() {
            return Ok((self.clone(), BigUint::zero()));
        }
        // Fast path: single-limb divisor.
        if divisor.limbs.len() == 1 {
            let d = DoubleLimb::from(divisor.limbs[0]);
            let mut rem: DoubleLimb = 0;
            let mut q = vec![0 as Limb; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << LIMB_BITS) | DoubleLimb::from(self.limbs[i]);
                q[i] = (cur / d) as Limb;
                rem = cur % d;
            }
            let mut quotient = BigUint { limbs: q };
            quotient.normalize();
            return Ok((quotient, BigUint::from(rem as u64)));
        }
        // General case: shift-and-subtract long division.
        let shift = self.bit_len() - divisor.bit_len();
        let mut remainder = self.clone();
        let mut quotient = BigUint::zero();
        let mut current = divisor.clone() << (shift as u32);
        for i in (0..=shift).rev() {
            if current <= remainder {
                remainder = remainder
                    .checked_sub(&current)
                    .expect("current <= remainder by comparison");
                quotient.set_bit(i);
            }
            current = current >> 1;
        }
        Ok((quotient, remainder))
    }

    fn set_bit(&mut self, i: u64) {
        let limb = (i / u64::from(LIMB_BITS)) as usize;
        let off = (i % u64::from(LIMB_BITS)) as u32;
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Greatest common divisor (binary GCD). `gcd(0, 0) == 0`.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let az = a.trailing_zeros().unwrap_or(0);
        let bz = b.trailing_zeros().unwrap_or(0);
        let common = az.min(bz);
        a = a >> (az as u32);
        b = b >> (bz as u32);
        // Both odd from here on.
        loop {
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a = a.checked_sub(&b).expect("a >= b");
            if a.is_zero() {
                break;
            }
            let z = a.trailing_zeros().unwrap_or(0);
            a = a >> (z as u32);
        }
        if a.is_zero() {
            b << (common as u32)
        } else {
            a << (common as u32)
        }
    }

    /// Multiplies by a small factor in place.
    pub fn mul_small(&self, factor: u32) -> BigUint {
        if factor == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: DoubleLimb = 0;
        for &l in &self.limbs {
            let prod = DoubleLimb::from(l) * DoubleLimb::from(factor) + carry;
            limbs.push(prod as Limb);
            carry = prod >> LIMB_BITS;
        }
        if carry > 0 {
            limbs.push(carry as Limb);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Raises `self` to the power `exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Parse`] if the string is empty or contains non-digits.
    pub fn from_decimal_str(s: &str) -> Result<BigUint, NumError> {
        if s.is_empty() {
            return Err(NumError::Parse("empty string".to_owned()));
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| NumError::Parse(format!("invalid digit {c:?}")))?;
            acc = acc.mul_small(10);
            acc += BigUint::from(d as u64);
        }
        Ok(acc)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        let mut out = BigUint {
            limbs: vec![v as Limb, (v >> 32) as Limb],
        };
        out.normalize();
        out
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(u64::from(v))
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry: DoubleLimb = 0;
        for i in 0..long.limbs.len() {
            let sum = DoubleLimb::from(long.limbs[i])
                + DoubleLimb::from(short.limbs.get(i).copied().unwrap_or(0))
                + carry;
            limbs.push(sum as Limb);
            carry = sum >> LIMB_BITS;
        }
        if carry > 0 {
            limbs.push(carry as Limb);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<BigUint> for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        *self = &*self + &rhs;
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`BigUint::checked_sub`] for a fallible version.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow; use checked_sub")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0 as Limb; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: DoubleLimb = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = DoubleLimb::from(limbs[i + j])
                    + DoubleLimb::from(a) * DoubleLimb::from(b)
                    + carry;
                limbs[i + j] = cur as Limb;
                carry = cur >> LIMB_BITS;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let cur = DoubleLimb::from(limbs[k]) + carry;
                limbs[k] = cur as Limb;
                carry = cur >> LIMB_BITS;
                k += 1;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Shl<u32> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: u32) -> BigUint {
        &self << shift
    }
}

impl Shl<u32> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: u32) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        let bit_shift = shift % LIMB_BITS;
        let mut limbs = vec![0 as Limb; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry: Limb = 0;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl Shr<u32> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: u32) -> BigUint {
        &self >> shift
    }
}

impl Shr<u32> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: u32) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        let bit_shift = shift % LIMB_BITS;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut limbs: Vec<Limb> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            for i in 0..limbs.len() {
                let high = if i + 1 < limbs.len() {
                    limbs[i + 1] << (LIMB_BITS - bit_shift)
                } else {
                    0
                };
                limbs[i] = (limbs[i] >> bit_shift) | high;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^9 produces decimal chunks.
        let chunk = BigUint::from(1_000_000_000u64);
        let mut value = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !value.is_zero() {
            let (q, r) = value.div_rem(&chunk).expect("chunk is non-zero");
            parts.push(r.to_u64().expect("remainder below 10^9 fits in u64"));
            value = q;
        }
        let mut s = String::new();
        for (i, part) in parts.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&part.to_string());
            } else {
                s.push_str(&format!("{part:09}"));
            }
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, &l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:08x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, &l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:b}")?;
            } else {
                write!(f, "{l:032b}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn from_u64_round_trips() {
        for v in [0u64, 1, 2, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            assert_eq!(BigUint::from(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn from_u128_round_trips() {
        for v in [
            0u128,
            1,
            u128::from(u64::MAX),
            u128::from(u64::MAX) + 1,
            u128::MAX,
        ] {
            let big = BigUint::from_u128(v);
            assert_eq!(big.to_u128(), Some(v));
            if let Ok(small) = u64::try_from(v) {
                assert_eq!(big, BigUint::from(small));
            }
        }
        assert_eq!(BigUint::pow2(128).to_u128(), None);
        assert_eq!(
            BigUint::from_u128(u128::MAX),
            (BigUint::pow2(128) - BigUint::one())
        );
    }

    #[test]
    fn addition_matches_u64() {
        for (a, b) in [
            (0u64, 0u64),
            (1, 2),
            (u32::MAX as u64, 1),
            (1 << 40, 1 << 41),
        ] {
            let sum = &BigUint::from(a) + &BigUint::from(b);
            assert_eq!(sum.to_u64(), Some(a + b));
        }
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let sum = &a + &BigUint::one();
        assert_eq!(sum.bit_len(), 65);
        assert_eq!(sum.to_u64(), None);
        assert_eq!((sum - BigUint::one()).to_u64(), Some(u64::MAX));
    }

    #[test]
    fn subtraction_matches_u64() {
        let a = BigUint::from(123_456_789_012_345u64);
        let b = BigUint::from(987_654_321u64);
        assert_eq!((&a - &b).to_u64(), Some(123_456_789_012_345 - 987_654_321));
    }

    #[test]
    fn subtraction_underflow_is_error() {
        let err = BigUint::one().checked_sub(&BigUint::from(2u64));
        assert_eq!(err, Err(NumError::Underflow));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics_via_operator() {
        let _ = BigUint::zero() - BigUint::one();
    }

    #[test]
    fn multiplication_matches_u128() {
        let cases = [
            (0u64, 17u64),
            (1, u64::MAX),
            (0xdead_beef, 0xcafe_babe),
            (u64::MAX, u64::MAX),
        ];
        for (a, b) in cases {
            let prod = &BigUint::from(a) * &BigUint::from(b);
            let expect = u128::from(a) * u128::from(b);
            let lo = (prod.clone() >> 0).to_u64();
            if expect <= u128::from(u64::MAX) {
                assert_eq!(lo, Some(expect as u64));
            } else {
                assert_eq!((prod.clone() >> 64).to_u64(), Some((expect >> 64) as u64));
                let mask = &prod - &(BigUint::from((expect >> 64) as u64) << 64);
                assert_eq!(mask.to_u64(), Some(expect as u64));
            }
        }
    }

    #[test]
    fn shifts_are_inverse() {
        let v = BigUint::from(0x1234_5678_9abc_def0u64);
        for s in [0u32, 1, 31, 32, 33, 64, 100] {
            assert_eq!((v.clone() << s) >> s, v);
        }
    }

    #[test]
    fn shift_right_to_zero() {
        assert_eq!(BigUint::from(5u64) >> 3, BigUint::zero());
    }

    #[test]
    fn bit_len_and_bits() {
        let v = BigUint::pow2(100);
        assert_eq!(v.bit_len(), 101);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert!(!v.bit(101));
        assert_eq!(v.trailing_zeros(), Some(100));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
    }

    #[test]
    fn ordering_is_numeric() {
        let small = BigUint::from(u64::MAX);
        let big = BigUint::pow2(65);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big), Ordering::Equal);
    }

    #[test]
    fn division_small_divisor() {
        let v = BigUint::from(1_000_000_007u64 * 97 + 13);
        let (q, r) = v.div_rem(&BigUint::from(1_000_000_007u64)).unwrap();
        assert_eq!(q.to_u64(), Some(97));
        assert_eq!(r.to_u64(), Some(13));
    }

    #[test]
    fn division_large_divisor() {
        let a = BigUint::pow2(200) + BigUint::from(12345u64);
        let b = BigUint::pow2(100) + BigUint::one();
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(
            BigUint::one().div_rem(&BigUint::zero()),
            Err(NumError::DivisionByZero)
        );
    }

    #[test]
    fn division_smaller_than_divisor() {
        let (q, r) = BigUint::from(3u64).div_rem(&BigUint::from(10u64)).unwrap();
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(3));
    }

    #[test]
    fn gcd_matches_euclid() {
        let cases = [
            (12u64, 18u64, 6u64),
            (0, 5, 5),
            (5, 0, 5),
            (17, 13, 1),
            (48, 180, 12),
        ];
        for (a, b, g) in cases {
            assert_eq!(
                BigUint::from(a).gcd(&BigUint::from(b)).to_u64(),
                Some(g),
                "gcd({a},{b})"
            );
        }
    }

    #[test]
    fn gcd_of_large_powers() {
        // b = 6·2^150 = 3·2^151 divides a = 9·2^200, so gcd(a, b) = b.
        let a = BigUint::pow2(200).mul_small(9);
        let b = BigUint::pow2(150).mul_small(6);
        assert_eq!(a.gcd(&b), b);
        // And cases where neither divides the other:
        // gcd(9·2^200, 5·2^101) = 2^101, gcd(5·2^101, 15·2^101) = 5·2^101.
        let c = BigUint::pow2(100).mul_small(10);
        assert_eq!(a.gcd(&c), BigUint::pow2(101));
        assert_eq!(
            c.gcd(&BigUint::pow2(101).mul_small(15)),
            BigUint::pow2(101).mul_small(5)
        );
    }

    #[test]
    fn pow_matches_shift_for_two() {
        assert_eq!(BigUint::from(2u64).pow(10), BigUint::pow2(10));
        assert_eq!(BigUint::from(3u64).pow(5).to_u64(), Some(243));
        assert_eq!(BigUint::from(7u64).pow(0), BigUint::one());
    }

    #[test]
    fn decimal_display_round_trips() {
        let cases = [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
        ];
        for c in cases {
            let v = BigUint::from_decimal_str(c).unwrap();
            assert_eq!(v.to_string(), c);
        }
    }

    #[test]
    fn decimal_parse_rejects_garbage() {
        assert!(BigUint::from_decimal_str("").is_err());
        assert!(BigUint::from_decimal_str("12x4").is_err());
    }

    #[test]
    fn hex_and_binary_formatting() {
        let v = BigUint::from(0xdead_beefu64);
        assert_eq!(format!("{v:x}"), "deadbeef");
        assert_eq!(format!("{:b}", BigUint::from(5u64)), "101");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
    }

    #[test]
    fn to_f64_is_close() {
        let v = BigUint::from(1u64 << 52);
        assert_eq!(v.to_f64(), (1u64 << 52) as f64);
        let big = BigUint::pow2(300);
        assert!(big.to_f64() > 1e90);
    }

    #[test]
    fn mul_small_matches_mul() {
        let v = BigUint::from(0xffff_ffff_ffffu64);
        assert_eq!(v.mul_small(1000), &v * &BigUint::from(1000u64));
        assert_eq!(v.mul_small(0), BigUint::zero());
    }
}
