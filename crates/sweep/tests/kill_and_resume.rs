//! Kill-and-resume: a shard whose JSONL file was truncated mid-line (as a
//! killed process leaves it) must resume from its checkpoint, re-run only the
//! lost units, and still produce a merged output byte-identical to a clean
//! run.

use std::fs;
use std::path::PathBuf;

use anet_sweep::{
    merge_shard_files, run_shard_to_file, Manifest, Partition, ProtocolSpec, SweepSpec,
    TopologySpec,
};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anet-sweep-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn spec() -> SweepSpec {
    SweepSpec {
        protocols: vec![ProtocolSpec::Mapping, ProtocolSpec::Labeling],
        topologies: vec![
            TopologySpec::ChainGn { n: 4 },
            TopologySpec::CompleteDag { internal: 4 },
            TopologySpec::CycleWithTail { k: 5 },
        ],
        seeds: vec![0, 1],
        random_schedulers: 1,
        max_deliveries: 1_000_000,
        scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
    }
}

#[test]
fn truncated_shard_resumes_to_identical_merged_output() {
    let dir = test_dir("kill-resume");
    let spec = spec();
    let manifest = Manifest::from_spec(&spec);
    let shards = 2;
    let partition = Partition::Hash;
    let shard_paths: Vec<PathBuf> = (0..shards)
        .map(|s| dir.join(format!("shard-{s}.jsonl")))
        .collect();

    // Clean 2-shard run.
    for (shard, path) in shard_paths.iter().enumerate() {
        let outcome = run_shard_to_file(&spec, &manifest, shards, partition, shard, path, false)
            .expect("clean shard run");
        assert_eq!(outcome.reused, 0);
    }
    let clean_merged = dir.join("merged-clean.jsonl");
    merge_shard_files(manifest.len(), &shard_paths, &clean_merged).expect("clean merge");
    let clean_bytes = fs::read(&clean_merged).expect("read clean merge");

    // Kill: truncate shard 1 mid-file — a partial last line, as a process
    // killed mid-write leaves behind. The first line is the spec header.
    let victim = &shard_paths[1];
    let contents = fs::read_to_string(victim).expect("read victim shard");
    let complete_records = contents.lines().count() - 1;
    assert!(complete_records >= 3, "test needs a few units on shard 1");
    let cut = contents.len() * 3 / 5;
    fs::write(victim, &contents[..cut]).expect("truncate victim shard");
    let surviving = fs::read_to_string(victim)
        .unwrap()
        .lines()
        .filter(|l| anet_sweep::RunRecord::parse_line(l).is_some())
        .count();
    assert!(
        surviving < complete_records,
        "truncation lost at least one unit"
    );

    // Without --resume the merge must refuse the torn file.
    let torn_merged = dir.join("merged-torn.jsonl");
    let err = merge_shard_files(manifest.len(), &shard_paths, &torn_merged)
        .expect_err("torn shard cannot merge");
    assert!(err.to_string().contains("invalid record"), "{err}");

    // Resume: only the lost units re-run; the survivors are reused.
    let outcome = run_shard_to_file(&spec, &manifest, shards, partition, 1, victim, true)
        .expect("resumed shard run");
    assert_eq!(outcome.reused, surviving);
    assert_eq!(outcome.executed, complete_records - surviving);
    assert!(outcome.executed > 0, "resume must re-run the torn tail");
    assert!(outcome.reused > 0, "resume must reuse the intact prefix");

    // The merged output is byte-identical to the clean run.
    let resumed_merged = dir.join("merged-resumed.jsonl");
    merge_shard_files(manifest.len(), &shard_paths, &resumed_merged).expect("resumed merge");
    assert_eq!(
        fs::read(&resumed_merged).expect("read resumed"),
        clean_bytes
    );

    // Resuming an already-complete shard executes nothing.
    let noop = run_shard_to_file(&spec, &manifest, shards, partition, 1, victim, true)
        .expect("no-op resume");
    assert_eq!(noop.executed, 0);
    assert_eq!(noop.reused, complete_records);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_discards_checkpoints_from_an_edited_spec() {
    // A checkpoint's record indices are positions in *its* spec's manifest;
    // resuming with an edited spec must discard it wholesale, or stale records
    // would be spliced into the wrong units of the new manifest.
    let dir = test_dir("resume-edited-spec");
    let old = spec();
    let path = dir.join("shard-0.jsonl");
    run_shard_to_file(
        &old,
        &Manifest::from_spec(&old),
        1,
        Partition::Hash,
        0,
        &path,
        false,
    )
    .expect("checkpoint under the old spec");

    // Edit 1: reorder topologies — same units, different indices.
    let mut reordered = old.clone();
    reordered.topologies.reverse();
    let manifest = Manifest::from_spec(&reordered);
    let outcome = run_shard_to_file(&reordered, &manifest, 1, Partition::Hash, 0, &path, true)
        .expect("resume under reordered spec");
    assert_eq!(outcome.reused, 0, "stale checkpoint must not be reused");
    assert_eq!(outcome.executed, manifest.len());
    let merged = dir.join("merged.jsonl");
    merge_shard_files(manifest.len(), std::slice::from_ref(&path), &merged).expect("merge");
    let clean = anet_sweep::run_sweep_in_process(&reordered, 1, Partition::Hash).unwrap();
    assert_eq!(fs::read_to_string(&merged).unwrap(), clean);

    // Edit 2: a changed delivery budget — identical manifest identities, but
    // potentially different run results; still a full re-run.
    let mut rebudgeted = reordered.clone();
    rebudgeted.max_deliveries /= 2;
    let outcome = run_shard_to_file(
        &rebudgeted,
        &Manifest::from_spec(&rebudgeted),
        1,
        Partition::Hash,
        0,
        &path,
        true,
    )
    .expect("resume under rebudgeted spec");
    assert_eq!(outcome.reused, 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_a_missing_file_runs_everything() {
    let dir = test_dir("resume-fresh");
    let spec = spec();
    let manifest = Manifest::from_spec(&spec);
    let path = dir.join("shard-0.jsonl");
    let outcome = run_shard_to_file(&spec, &manifest, 1, Partition::RoundRobin, 0, &path, true)
        .expect("fresh resume run");
    assert_eq!(outcome.reused, 0);
    assert_eq!(outcome.executed, manifest.len());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_discards_checkpoints_from_a_different_partitioning() {
    // A shard file written under round-robin must not poison a hash-partition
    // resume: indices outside the shard's unit set are filtered out.
    let dir = test_dir("resume-foreign");
    let spec = spec();
    let manifest = Manifest::from_spec(&spec);
    let path = dir.join("shard-0.jsonl");
    run_shard_to_file(&spec, &manifest, 2, Partition::RoundRobin, 0, &path, false)
        .expect("round-robin shard run");
    let outcome = run_shard_to_file(&spec, &manifest, 2, Partition::Hash, 0, &path, true)
        .expect("hash resume over foreign checkpoint");
    let hash_units = manifest.shard_units(2, Partition::Hash, 0).len();
    assert_eq!(outcome.executed + outcome.reused, hash_units);
    // The shared units (round-robin ∩ hash for shard 0) are reused; the rest
    // re-ran. Either way the file is now exactly the hash shard (header plus
    // one record per unit).
    let contents = fs::read_to_string(&path).unwrap();
    assert_eq!(contents.lines().count(), hash_units + 1);
    let _ = fs::remove_dir_all(&dir);
}
