//! End-to-end tests of the `sweep` binary's dedup surface: `--no-dedup` vs
//! the default path through real OS processes, the `--cache-dir` warm rerun,
//! the stats sidecars/`stats.json`, and the log-style summary output.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use anet_sweep::DedupStats;

const SWEEP_BIN: &str = env!("CARGO_BIN_EXE_sweep");

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "anet-sweep-dedup-cli-{name}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// A redundancy-heavy spec: `path 2` ≅ `complete-dag 2` and `cycle-with-tail
/// 4` ≅ `nested-cycles 1 4`, so 2 protocols × 4 topologies × 1 seed × 5
/// schedulers = 40 units collapse into 20 clusters.
const SPEC: &str = "\
protocol mapping
protocol labeling
topology path 2
topology complete-dag 2
topology cycle-with-tail 4
topology nested-cycles 1 4
seeds 5
random-schedulers 1
max-deliveries 200000
";

fn run_sweep(args: &[&str]) -> std::process::Output {
    Command::new(SWEEP_BIN)
        .args(args)
        .output()
        .expect("sweep binary runs")
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "sweep failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn sweep_to(dir: &Path, spec_path: &Path, out_name: &str, extra: &[&str]) -> (Vec<u8>, String) {
    let out_dir = dir.join(out_name);
    let mut args = vec![
        "--spec",
        spec_path.to_str().unwrap(),
        "--shards",
        "2",
        "--out",
        out_dir.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let stdout = stdout_of(&run_sweep(&args));
    let merged = fs::read(out_dir.join("merged.jsonl")).expect("merged output exists");
    (merged, stdout)
}

#[test]
fn dedup_matches_no_dedup_and_reports_stats() {
    let dir = test_dir("differential");
    let spec_path = dir.join("redundant.spec");
    fs::write(&spec_path, SPEC).unwrap();
    let cache = dir.join("cache");
    let cache_s = cache.to_str().unwrap().to_owned();

    let (honest, honest_stdout) = sweep_to(&dir, &spec_path, "no-dedup", &["--no-dedup"]);
    assert!(
        !honest_stdout.contains("dedup:"),
        "--no-dedup must not print dedup stats:\n{honest_stdout}"
    );
    assert!(!dir.join("no-dedup/stats.json").exists());

    // Cold cache: byte-identical, every cluster consults the cache. The two
    // shard children share the cache dir *concurrently*, so a faster shard
    // may publish an entry the slower shard then hits — hits are not
    // necessarily zero even on a cold run, but misses must dominate.
    let (cold, cold_stdout) = sweep_to(&dir, &spec_path, "cold", &["--cache-dir", &cache_s]);
    assert_eq!(cold, honest, "dedup diverged from --no-dedup");
    let cold_stats = read_stats(&dir.join("cold/stats.json"));
    assert_eq!(cold_stats.units, 40);
    assert!(cold_stats.cache_misses > 0, "cold cache must mostly miss");
    assert_eq!(
        cold_stats.cache_hits + cold_stats.cache_misses,
        cold_stats.clusters
    );
    assert_eq!(
        cold_stats.units,
        cold_stats.representatives_run + cold_stats.members_by_reference
    );
    assert!(
        cold_stdout.contains(&cold_stats.summary()),
        "parent must print the aggregated summary:\n{cold_stdout}"
    );
    assert!(cold_stdout.contains("shard 0/2 dedup:"), "{cold_stdout}");
    assert!(cold_stdout.contains("shard 1/2 dedup:"), "{cold_stdout}");
    for shard in 0..2 {
        let sidecar = dir.join(format!("cold/shard-{shard}.stats"));
        let line = fs::read_to_string(&sidecar).expect("stats sidecar exists");
        assert!(
            DedupStats::parse_line(line.trim_end_matches('\n')).is_some(),
            "sidecar {} is not canonical: {line}",
            sidecar.display()
        );
    }

    // Warm cache: byte-identical again, every cluster hits, nothing runs.
    let (warm, warm_stdout) = sweep_to(&dir, &spec_path, "warm", &["--cache-dir", &cache_s]);
    assert_eq!(warm, honest, "warm-cache rerun diverged");
    let warm_stats = read_stats(&dir.join("warm/stats.json"));
    assert!(warm_stats.cache_hits > 0, "warm rerun must hit the cache");
    assert_eq!(warm_stats.cache_hits, warm_stats.clusters);
    assert_eq!(warm_stats.representatives_run, 0);
    assert!(warm_stdout.contains(&warm_stats.summary()), "{warm_stdout}");

    // --check agrees and surfaces the stats.json next to the dedup output.
    let a = dir.join("warm/merged.jsonl");
    let b = dir.join("no-dedup/merged.jsonl");
    let check = run_sweep(&["--check", a.to_str().unwrap(), b.to_str().unwrap()]);
    let check_stdout = stdout_of(&check);
    assert!(check_stdout.contains("byte-identical"), "{check_stdout}");
    assert!(
        check_stdout.contains(&warm_stats.summary()),
        "--check must report the adjacent stats.json:\n{check_stdout}"
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dedup_without_cache_dir_reports_no_cache_traffic() {
    let dir = test_dir("no-cache");
    let spec_path = dir.join("redundant.spec");
    fs::write(&spec_path, SPEC).unwrap();

    let (merged, _) = sweep_to(&dir, &spec_path, "plain", &[]);
    let (honest, _) = sweep_to(&dir, &spec_path, "honest", &["--no-dedup"]);
    assert_eq!(merged, honest);
    let stats = read_stats(&dir.join("plain/stats.json"));
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        0,
        "no cache dir given"
    );
    assert_eq!(stats.representatives_run, stats.clusters);

    let _ = fs::remove_dir_all(&dir);
}

fn read_stats(path: &Path) -> DedupStats {
    let contents =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    DedupStats::parse_line(contents.trim_end_matches('\n'))
        .unwrap_or_else(|| panic!("{} is not a canonical stats line", path.display()))
}
