//! The adversarial half of the sweep determinism contract: specs carrying
//! `faults` and `corrupt` scenarios must keep every byte-identity the
//! pristine sweep has — across shard counts, partition strategies, worker
//! threads, dedup/cache, and checkpoint resume — because a unit's fault
//! stream is a pure function of the unit (plan seed, battery seed, battery
//! position), never of scheduling or process layout.
//!
//! Also pins the non-interference property: adding adversarial scenarios to
//! a spec leaves the results of the pristine runs it already had untouched.

use std::fs;
use std::path::PathBuf;

use anet_sweep::{
    dedup_shard_lines, merge_lines, run_shard_to_file_with_opts, shard_lines, Manifest, Partition,
    ProtocolSpec, RunRecord, ScenarioSpec, SweepOptions, SweepSpec, TopologySpec,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anet-fault-sweep-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small spec exercising every scenario kind, with a deliberate isomorphic
/// topology pair (`path 2` ≅ `complete-dag 2`) so the dedup path must prove
/// that equivalence-class members share their fault streams.
fn fault_spec() -> SweepSpec {
    SweepSpec {
        protocols: vec![ProtocolSpec::Mapping, ProtocolSpec::Labeling],
        topologies: vec![
            TopologySpec::ChainGn { n: 4 },
            TopologySpec::CycleWithTail { k: 5 },
            TopologySpec::Path { n: 2 },
            TopologySpec::CompleteDag { internal: 2 },
        ],
        seeds: vec![3],
        random_schedulers: 1,
        max_deliveries: 1_000_000,
        scenarios: vec![
            ScenarioSpec::Pristine,
            ScenarioSpec::Faulty {
                drop_pct: 20,
                dup_pct: 10,
                reorder: 2,
                seed: 9,
                retry: 0,
                crashes: vec![],
            },
            ScenarioSpec::Faulty {
                drop_pct: 100,
                dup_pct: 0,
                reorder: 0,
                seed: 1,
                retry: 0,
                crashes: vec![],
            },
            ScenarioSpec::Corrupt(anet_core::StateCorruption::ScrambledLabels { seed: 11 }),
            ScenarioSpec::Corrupt(anet_core::StateCorruption::LostPartition),
            ScenarioSpec::Corrupt(anet_core::StateCorruption::StaleTerminal),
        ],
    }
}

fn honest_merged(spec: &SweepSpec, manifest: &Manifest, shards: usize, p: Partition) -> String {
    let sets: Result<Vec<_>, _> = (0..shards)
        .map(|s| shard_lines(spec, manifest, shards, p, s))
        .collect();
    merge_lines(manifest.len(), sets.unwrap()).expect("honest merge covers")
}

#[test]
fn sharded_merge_under_faults_is_byte_identical() {
    let spec = fault_spec();
    let manifest = Manifest::from_spec(&spec);
    let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);
    for partition in [Partition::Hash, Partition::RoundRobin] {
        for shards in [2usize, 3] {
            assert_eq!(
                honest_merged(&spec, &manifest, shards, partition),
                baseline,
                "{partition:?} x {shards} shards diverged under fault scenarios"
            );
        }
    }

    // The adversary demonstrably acted: some run was starved by the
    // total-drop plan, some run dropped and duplicated messages, and every
    // unit carries its scenario label.
    let records: Vec<RunRecord> = baseline
        .lines()
        .map(|l| RunRecord::parse_line(l).expect("canonical line"))
        .collect();
    assert_eq!(records.len(), manifest.len());
    assert!(records
        .iter()
        .any(|r| r.outcome == "starved" && r.scenario.starts_with("faults/d100")));
    assert!(records.iter().any(|r| r.dropped > 0 && r.duplicated > 0));
    assert!(records
        .iter()
        .filter(|r| r.scenario == "pristine")
        .all(|r| r.dropped == 0 && r.duplicated == 0 && r.crashed == 0));
    for kind in [
        "corrupt/labels/s11",
        "corrupt/partition",
        "corrupt/stale-terminal",
    ] {
        assert!(
            records.iter().any(|r| r.scenario == kind),
            "missing scenario {kind}"
        );
    }
}

#[test]
fn adversarial_scenarios_do_not_perturb_the_pristine_runs() {
    // The pristine subset of the adversarial sweep equals, field for field
    // (modulo manifest position), the sweep of the same spec without any
    // adversarial scenarios.
    let spec = fault_spec();
    let pristine_spec = SweepSpec {
        scenarios: vec![ScenarioSpec::Pristine],
        ..spec.clone()
    };
    let manifest = Manifest::from_spec(&spec);
    let pristine_manifest = Manifest::from_spec(&pristine_spec);
    let full = honest_merged(&spec, &manifest, 1, Partition::Hash);
    let plain = honest_merged(&pristine_spec, &pristine_manifest, 1, Partition::Hash);
    let strip_index = |jsonl: &str, keep_pristine_only: bool| -> Vec<RunRecord> {
        jsonl
            .lines()
            .map(|l| RunRecord::parse_line(l).expect("canonical line"))
            .filter(|r| !keep_pristine_only || r.scenario == "pristine")
            .map(|mut r| {
                r.index = 0;
                r
            })
            .collect()
    };
    assert_eq!(strip_index(&full, true), strip_index(&plain, false));
}

#[test]
fn dedup_and_cache_equal_honest_under_faults() {
    let spec = fault_spec();
    let manifest = Manifest::from_spec(&spec);
    let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);
    let cache = temp_dir("dedup");

    let (cold_lines, cold) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(merge_lines(manifest.len(), [cold_lines]).unwrap(), baseline);
    assert!(
        cold.members_by_reference > 0,
        "the isomorphic pair must dedup in every scenario"
    );
    assert!(cold.clusters < cold.units);

    let (warm_lines, warm) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(merge_lines(manifest.len(), [warm_lines]).unwrap(), baseline);
    assert_eq!(warm.cache_hits, warm.clusters, "warm cache hits everything");
    assert_eq!(warm.representatives_run, 0);

    let _ = fs::remove_dir_all(&cache);
}

#[test]
fn jobs_and_resume_reproduce_the_clean_fault_shard() {
    let spec = fault_spec();
    let manifest = Manifest::from_spec(&spec);
    let dir = temp_dir("resume");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shard-0.jsonl");
    let opts = SweepOptions {
        jobs: 4,
        resume: false,
        dedup: false,
        cache_dir: None,
    };
    run_shard_to_file_with_opts(&spec, &manifest, 1, Partition::Hash, 0, &path, &opts).unwrap();
    let clean = fs::read_to_string(&path).unwrap();

    // Sequential must agree with jobs=4.
    let seq_path = dir.join("seq.jsonl");
    let seq_opts = SweepOptions { jobs: 1, ..opts };
    run_shard_to_file_with_opts(
        &spec,
        &manifest,
        1,
        Partition::Hash,
        0,
        &seq_path,
        &seq_opts,
    )
    .unwrap();
    assert_eq!(fs::read_to_string(&seq_path).unwrap(), clean);

    // Tear the checkpoint mid-line; a jobs-parallel dedup resume restores it.
    fs::write(&path, &clean[..clean.len() * 2 / 3]).unwrap();
    let resume_opts = SweepOptions {
        jobs: 4,
        resume: true,
        dedup: true,
        cache_dir: None,
    };
    let report =
        run_shard_to_file_with_opts(&spec, &manifest, 1, Partition::Hash, 0, &path, &resume_opts)
            .unwrap();
    assert!(report.outcome.reused > 0, "intact head is reused");
    assert!(report.outcome.executed > 0, "torn tail re-runs");
    assert_eq!(fs::read_to_string(&path).unwrap(), clean);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn committed_fault_spec_parses_and_round_trips() {
    let text = include_str!("../specs/faults.spec");
    let spec = SweepSpec::parse(text).expect("committed fault spec parses");
    assert_eq!(spec.scenarios.len(), 6, "pristine + five adversarial");
    assert!(spec.scenarios[0].is_pristine());
    let reparsed = SweepSpec::parse(&spec.to_spec_string()).expect("canonical form parses");
    assert_eq!(spec, reparsed);
    // Scenario names embed cleanly in JSONL records and unit keys.
    let manifest = Manifest::from_spec(&spec);
    assert_eq!(manifest.len() % spec.scenarios.len(), 0);
    let mut keys: Vec<String> = manifest.units.iter().map(|u| u.key()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), manifest.len(), "unit keys stay unique");
}

/// The committed recovery-cost spec, shared with the CI `recovery_smoke` step.
fn recovery_spec() -> SweepSpec {
    SweepSpec::parse(include_str!("../specs/recovery.spec"))
        .expect("committed recovery spec parses")
}

#[test]
fn committed_recovery_spec_parses_and_round_trips() {
    let spec = recovery_spec();
    // pristine + 3 retry-free ramp points + 4 retry ramp points + crash pair.
    assert_eq!(spec.scenarios.len(), 10);
    assert!(spec.scenarios[0].is_pristine());
    let canonical = spec.to_spec_string();
    assert!(
        !canonical.contains("ramp"),
        "ramps are parse-time sugar; the canonical form lists the points"
    );
    let reparsed = SweepSpec::parse(&canonical).expect("canonical form parses");
    assert_eq!(spec, reparsed);
    let manifest = Manifest::from_spec(&spec);
    let mut keys: Vec<String> = manifest.units.iter().map(|u| u.key()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), manifest.len(), "unit keys stay unique");
}

#[test]
fn recovery_sweep_is_byte_identical_and_quantifies_recovery() {
    let spec = recovery_spec();
    let manifest = Manifest::from_spec(&spec);
    let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);
    for (shards, partition) in [(2, Partition::Hash), (3, Partition::RoundRobin)] {
        assert_eq!(
            honest_merged(&spec, &manifest, shards, partition),
            baseline,
            "{partition:?} x {shards} shards diverged on the recovery spec"
        );
    }

    let records: Vec<RunRecord> = baseline
        .lines()
        .map(|l| RunRecord::parse_line(l).expect("canonical line"))
        .collect();
    assert_eq!(records.len(), manifest.len());

    // Group the sweep by cell (everything but the scenario), so each retry
    // record can be diffed against its same-plan twin.
    use std::collections::HashMap;
    type CellKey = (String, String, String, usize, u64);
    let mut by_cell: HashMap<CellKey, HashMap<String, &RunRecord>> = HashMap::new();
    for r in &records {
        by_cell
            .entry((
                r.protocol.clone(),
                r.topology.clone(),
                r.scheduler.clone(),
                r.battery_index,
                r.seed,
            ))
            .or_default()
            .insert(r.scenario.clone(), r);
    }

    // (a) The ramp's reliable point: a retry variant under a plan that
    // destroys nothing is bit-identical to the pristine run of its cell —
    // the cross-check that keeps the overhead columns honest.
    let strip = |r: &RunRecord| {
        let mut r = r.clone();
        r.index = 0;
        r.scenario.clear();
        r
    };
    for cell in by_cell.values() {
        let retry = cell["faults/d0u0r0s7+t4"];
        let pristine = cell["pristine"];
        assert_eq!(
            strip(retry),
            strip(pristine),
            "reliable-plan retry diverged from pristine"
        );
    }

    // (b) Crash-window reachability: somewhere in the grid the retry-free
    // crash run starves while its retry twin (same plan) terminates ok.
    let crash_free = "faults/d0u0r0s0+c1:0..6";
    let crash_retry = "faults/d0u0r0s0+t8+c1:0..6";
    let crash_recoveries = by_cell
        .values()
        .filter(|cell| {
            let f = cell[crash_free];
            let t = cell[crash_retry];
            f.outcome == "starved" && f.crashed > 0 && t.outcome == "terminated" && t.ok
        })
        .count();
    assert!(
        crash_recoveries > 0,
        "no cell recovered from the crash window via retries"
    );

    // (c) Sustained-drop recovery: at some nonzero ramp intensity a retry
    // run terminates ok where its retry-free twin starved.
    let mut drop_recoveries = 0usize;
    for cell in by_cell.values() {
        for drop in [10u8, 20, 30] {
            let free = cell[format!("faults/d{drop}u0r0s7").as_str()];
            let retry = cell[format!("faults/d{drop}u0r0s7+t4").as_str()];
            if free.outcome == "starved" && retry.outcome == "terminated" && retry.ok {
                drop_recoveries += 1;
            }
        }
    }
    assert!(
        drop_recoveries > 0,
        "no ramp point recovered via retries where its twin starved"
    );

    // (d) Crash scenarios demonstrably act, and the pristine subset equals
    // the sweep of the same spec with no adversarial scenarios at all.
    assert!(records
        .iter()
        .filter(|r| r.scenario == "pristine")
        .all(|r| r.dropped == 0 && r.duplicated == 0 && r.crashed == 0));
    let pristine_spec = SweepSpec {
        scenarios: vec![ScenarioSpec::Pristine],
        ..spec.clone()
    };
    let pristine_manifest = Manifest::from_spec(&pristine_spec);
    let plain = honest_merged(&pristine_spec, &pristine_manifest, 1, Partition::Hash);
    let plain_records: Vec<RunRecord> = plain
        .lines()
        .map(|l| strip(&RunRecord::parse_line(l).expect("canonical line")))
        .collect();
    let pristine_subset: Vec<RunRecord> = records
        .iter()
        .filter(|r| r.scenario == "pristine")
        .map(strip)
        .collect();
    assert_eq!(pristine_subset, plain_records);
}

#[test]
fn dedup_cache_and_resume_reproduce_the_recovery_sweep() {
    let spec = recovery_spec();
    let manifest = Manifest::from_spec(&spec);
    let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);

    let cache = temp_dir("recovery-dedup");
    let (cold_lines, _) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(merge_lines(manifest.len(), [cold_lines]).unwrap(), baseline);
    let (warm_lines, warm) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(merge_lines(manifest.len(), [warm_lines]).unwrap(), baseline);
    assert_eq!(warm.cache_hits, warm.clusters, "warm cache hits everything");
    assert_eq!(warm.representatives_run, 0);
    let _ = fs::remove_dir_all(&cache);

    let dir = temp_dir("recovery-resume");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shard-0.jsonl");
    let opts = SweepOptions {
        jobs: 4,
        resume: false,
        dedup: false,
        cache_dir: None,
    };
    run_shard_to_file_with_opts(&spec, &manifest, 1, Partition::Hash, 0, &path, &opts).unwrap();
    let clean = fs::read_to_string(&path).unwrap();
    fs::write(&path, &clean[..clean.len() / 2]).unwrap();
    let resume_opts = SweepOptions {
        jobs: 4,
        resume: true,
        dedup: true,
        cache_dir: None,
    };
    let report =
        run_shard_to_file_with_opts(&spec, &manifest, 1, Partition::Hash, 0, &path, &resume_opts)
            .unwrap();
    assert!(report.outcome.reused > 0, "intact head is reused");
    assert!(report.outcome.executed > 0, "torn tail re-runs");
    assert_eq!(fs::read_to_string(&path).unwrap(), clean);
    let _ = fs::remove_dir_all(&dir);
}
