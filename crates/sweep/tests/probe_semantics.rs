use anet_graph::canon::canonical_form;
use anet_sim::engine::{ExecutionConfig, RunConfig};

#[test]
fn raw_vs_canonical_network_runs_differ_for_some_unit() {
    let spec = anet_sweep::SweepSpec {
        protocols: vec![anet_sweep::ProtocolSpec::Mapping],
        topologies: vec![anet_sweep::TopologySpec::NestedCycles { depth: 2, len: 4 }],
        seeds: vec![0, 1, 2],
        random_schedulers: 1,
        max_deliveries: 100_000,
    };
    let manifest = anet_sweep::Manifest::from_spec(&spec);
    let mut any_differ = false;
    for unit in &manifest.units {
        let raw = unit.topology.build().unwrap();
        let canon = canonical_form(&raw).form.to_network().unwrap();
        let _ = RunConfig::from(ExecutionConfig { max_deliveries: spec.max_deliveries, record_trace: true, ..Default::default() });
        // Compare the full records: new path vs what the pre-PR executor did.
        let new_rec = anet_sweep::execute_unit(&spec, unit).unwrap();
        // emulate old path: is the canonical network even labeled differently?
        let perm_is_identity = canonical_form(&raw).permutation.iter().enumerate().all(|(i, &p)| i == p);
        if !perm_is_identity {
            any_differ = true;
        }
        let _ = (raw, canon, new_rec);
    }
    eprintln!("any nonidentity relabeling: {any_differ}");
}
