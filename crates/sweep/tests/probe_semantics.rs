//! Semantics probe behind the dedup design: the executor runs every unit on
//! its *canonical* relabeling, so records are pure functions of the
//! equivalence class. This only matters if canonicalization actually
//! relabels something — i.e. the probe below must find at least one unit
//! whose canonical permutation is not the identity, otherwise the
//! dedup-by-canonical-form machinery would be vacuous on this spec.

use anet_graph::canon::canonical_form;

#[test]
fn canonicalization_relabels_some_unit_and_records_stay_canonical() {
    let spec = anet_sweep::SweepSpec {
        protocols: vec![anet_sweep::ProtocolSpec::Mapping],
        topologies: vec![
            anet_sweep::TopologySpec::NestedCycles { count: 2, len: 4 },
            // Generator order happens to be canonical for the structured
            // families; the random families are where relabeling bites.
            anet_sweep::TopologySpec::RandomCyclic {
                internal: 10,
                forward_pct: 15,
                back_pct: 20,
                seed: 3,
            },
        ],
        seeds: vec![0, 1, 2],
        random_schedulers: 1,
        max_deliveries: 100_000,
        scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
    };
    let manifest = anet_sweep::Manifest::from_spec(&spec);
    let mut any_differ = false;
    for unit in &manifest.units {
        let raw = unit.topology.build().unwrap();
        let canon = canonical_form(&raw);
        // The canonical rebuild must round-trip to the same canonical form,
        // or execute_unit's relabeled run would not be class-representative.
        let rebuilt = canon.form.to_network().unwrap();
        assert_eq!(
            canonical_form(&rebuilt).form,
            canon.form,
            "canonical rebuild must be a fixed point"
        );
        if canon.permutation.iter().enumerate().any(|(i, &p)| i != p) {
            any_differ = true;
        }
        // And the unit still executes successfully on the canonical network.
        let record = anet_sweep::execute_unit(&spec, unit).unwrap();
        assert!(record.ok, "canonical-relabeled run must succeed");
    }
    assert!(
        any_differ,
        "probe spec must exercise a nonidentity relabeling"
    );
}
