//! The dedup layer's correctness contract: clustering + representative
//! execution + content-addressed caching produce merged output **byte
//! identical** to the honest one-execution-per-unit path — cold cache, warm
//! cache, corrupted cache, any shard count, either partition strategy.
//!
//! The honest baseline is [`shard_lines`] (exactly what `--no-dedup` runs),
//! so these tests are the in-process half of the `--no-dedup` differential
//! contract; `dedup_cli.rs` pins the same equality through real processes.

use std::fs;
use std::path::PathBuf;

use anet_sweep::{
    dedup_shard_lines, execute_unit, merge_lines, run_shard_to_file_with_opts, shard_lines,
    Manifest, Partition, ProtocolSpec, SweepOptions, SweepSpec, TopologySpec,
};
use proptest::prelude::*;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anet-sweep-dedup-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A spec with deliberate redundancy: `path 2` ≅ `complete-dag 2` and
/// `cycle-with-tail 4` ≅ `nested-cycles 1 4` are isomorphic pairs, so every
/// (protocol, seed, battery) slice has strictly fewer clusters than units.
fn redundant_spec() -> SweepSpec {
    SweepSpec {
        protocols: vec![ProtocolSpec::Mapping, ProtocolSpec::Labeling],
        topologies: vec![
            TopologySpec::Path { n: 2 },
            TopologySpec::CompleteDag { internal: 2 },
            TopologySpec::CycleWithTail { k: 4 },
            TopologySpec::NestedCycles { count: 1, len: 4 },
            TopologySpec::Star { leaves: 3 },
        ],
        seeds: vec![7, 8],
        random_schedulers: 1,
        max_deliveries: 500_000,
        scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
    }
}

/// The honest (no-dedup, no-cache) merged output.
fn honest_merged(spec: &SweepSpec, manifest: &Manifest, shards: usize, p: Partition) -> String {
    let sets: Result<Vec<_>, _> = (0..shards)
        .map(|s| shard_lines(spec, manifest, shards, p, s))
        .collect();
    merge_lines(manifest.len(), sets.unwrap()).expect("honest merge covers")
}

#[test]
fn dedup_merged_output_is_byte_identical_to_honest() {
    let spec = redundant_spec();
    let manifest = Manifest::from_spec(&spec);
    let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);

    for partition in [Partition::Hash, Partition::RoundRobin] {
        for shards in [1usize, 2, 3] {
            let mut sets = Vec::new();
            let mut members = 0;
            for shard in 0..shards {
                let (lines, stats) =
                    dedup_shard_lines(&spec, &manifest, shards, partition, shard, None)
                        .expect("dedup shard runs");
                assert_eq!(stats.cache_hits + stats.cache_misses, 0, "no cache dir");
                assert_eq!(
                    stats.units,
                    stats.representatives_run + stats.members_by_reference
                );
                members += stats.members_by_reference;
                sets.push(lines);
            }
            let merged = merge_lines(manifest.len(), sets).expect("dedup merge covers");
            assert_eq!(
                merged, baseline,
                "dedup diverged from honest ({partition:?} x {shards} shards)"
            );
            // Clustering is per shard, so with several shards an isomorphic
            // pair may be split apart (the cache, not the cluster, dedups
            // across shards) — but a single shard must see the redundancy.
            if shards == 1 {
                assert!(members > 0, "redundant spec must dedup ({partition:?})");
            }
        }
    }
}

#[test]
fn cold_then_warm_cache_stay_byte_identical_and_warm_pass_hits() {
    let spec = redundant_spec();
    let manifest = Manifest::from_spec(&spec);
    let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);
    let cache = temp_dir("warm");

    let (cold_lines, cold) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(merge_lines(manifest.len(), [cold_lines]).unwrap(), baseline);
    assert_eq!(cold.cache_hits, 0, "cold cache cannot hit");
    assert_eq!(cold.cache_misses, cold.clusters);
    assert_eq!(cold.representatives_run, cold.clusters);

    let (warm_lines, warm) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(merge_lines(manifest.len(), [warm_lines]).unwrap(), baseline);
    assert_eq!(
        warm.cache_hits, warm.clusters,
        "warm cache hits every cluster"
    );
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(
        warm.representatives_run, 0,
        "nothing executes on a warm cache"
    );

    // The cache is content-addressed, not run-addressed: a different shard
    // count over the same spec reuses the same entries.
    for shard in 0..2 {
        let (_, stats) =
            dedup_shard_lines(&spec, &manifest, 2, Partition::Hash, shard, Some(&cache)).unwrap();
        assert_eq!(stats.cache_hits, stats.clusters, "shard {shard} re-hits");
    }

    let _ = fs::remove_dir_all(&cache);
}

#[test]
fn corrupted_cache_entries_degrade_to_misses_not_wrong_output() {
    let spec = redundant_spec();
    let manifest = Manifest::from_spec(&spec);
    let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);
    let cache = temp_dir("corrupt");

    let (_, cold) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert!(cold.cache_misses > 0);

    // Mangle every entry a different way: truncate, garbage, emptiness.
    let mut entries: Vec<PathBuf> = fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty());
    for (i, path) in entries.iter().enumerate() {
        match i % 3 {
            0 => {
                let bytes = fs::read_to_string(path).unwrap();
                fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
            }
            1 => fs::write(path, "{\"cache\": \"v1\", garbage\n").unwrap(),
            _ => fs::write(path, "").unwrap(),
        }
    }

    let (lines, stats) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(merge_lines(manifest.len(), [lines]).unwrap(), baseline);
    assert_eq!(stats.cache_hits, 0, "every corrupt entry is a miss");
    assert_eq!(stats.cache_misses, stats.clusters);

    // The re-run repaired the entries in place.
    let (_, repaired) =
        dedup_shard_lines(&spec, &manifest, 1, Partition::Hash, 0, Some(&cache)).unwrap();
    assert_eq!(repaired.cache_hits, repaired.clusters);

    let _ = fs::remove_dir_all(&cache);
}

#[test]
fn member_records_equal_honest_execution_of_the_member() {
    // The rewritten member records are not merely merge-compatible: each one
    // equals what executing that member honestly would produce, bit for bit.
    let spec = redundant_spec();
    let manifest = Manifest::from_spec(&spec);
    let clusters = manifest.cluster_units(&spec).expect("clustering runs");
    let mut multi = 0;
    for cluster in &clusters {
        if cluster.members.len() > 1 {
            multi += 1;
        }
        let rep_record = execute_unit(&spec, &manifest.units[cluster.representative]).unwrap();
        for &member in &cluster.members {
            let unit = &manifest.units[member];
            let honest = execute_unit(&spec, unit).unwrap();
            assert_eq!(rep_record.rebind(unit), honest, "member {}", unit.key());
        }
    }
    assert!(multi > 0, "spec must contain multi-member clusters");
}

#[test]
fn dedup_resume_recovers_a_truncated_checkpoint_byte_identically() {
    let spec = redundant_spec();
    let manifest = Manifest::from_spec(&spec);
    let dir = temp_dir("resume");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shard-0.jsonl");
    let opts = SweepOptions {
        jobs: 1,
        resume: false,
        dedup: true,
        cache_dir: None,
    };
    run_shard_to_file_with_opts(&spec, &manifest, 1, Partition::Hash, 0, &path, &opts).unwrap();
    let clean = fs::read_to_string(&path).unwrap();

    // Tear the checkpoint mid-line and resume with dedup still on: the
    // surviving records are reused, only the missing units re-cluster.
    fs::write(&path, &clean[..clean.len() * 2 / 3]).unwrap();
    let opts = SweepOptions {
        resume: true,
        ..opts
    };
    let report =
        run_shard_to_file_with_opts(&spec, &manifest, 1, Partition::Hash, 0, &path, &opts).unwrap();
    assert!(
        report.outcome.reused > 0,
        "resume must reuse the intact head"
    );
    assert!(report.outcome.executed > 0, "the torn tail must re-run");
    let stats = report.stats.expect("dedup path reports stats");
    assert_eq!(
        stats.units, report.outcome.executed,
        "stats cover only the re-run units"
    );
    assert_eq!(fs::read_to_string(&path).unwrap(), clean);

    let _ = fs::remove_dir_all(&dir);
}

// --- randomized specs: the same strategy space as merge_equivalence.rs ---

fn protocol(choice: u32, bits: u64) -> ProtocolSpec {
    match choice % 3 {
        0 => ProtocolSpec::Mapping,
        1 => ProtocolSpec::Labeling,
        _ => ProtocolSpec::GeneralBroadcast {
            payload_bits: bits % 48,
        },
    }
}

fn topology(choice: u32, size: usize, pct: u8, seed: u64) -> TopologySpec {
    match choice % 8 {
        0 => TopologySpec::ChainGn { n: size },
        1 => TopologySpec::Path { n: size },
        2 => TopologySpec::Star { leaves: size },
        3 => TopologySpec::CompleteDag { internal: size },
        4 => TopologySpec::CycleWithTail { k: size + 2 },
        5 => TopologySpec::NestedCycles {
            count: 1 + size % 2,
            len: 3 + size % 3,
        },
        6 => TopologySpec::RandomDag {
            internal: size,
            edge_pct: pct,
            seed,
        },
        _ => TopologySpec::RandomCyclic {
            internal: size,
            forward_pct: pct,
            back_pct: pct / 2,
            seed,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn dedup_equals_honest_on_random_specs(
        protocol_picks in prop::collection::vec((0u32..3, 0u64..48), 1..3),
        topology_picks in prop::collection::vec((0u32..8, 1usize..6, 0u32..60, 0u64..1000), 1..4),
        seed_base in 0u64..1000,
        random_schedulers in 0usize..3,
        case in 0u64..u64::MAX,
    ) {
        let mut protocols: Vec<ProtocolSpec> = protocol_picks
            .into_iter()
            .map(|(c, b)| protocol(c, b))
            .collect();
        protocols.dedup();
        let mut topologies: Vec<TopologySpec> = topology_picks
            .into_iter()
            .map(|(c, n, p, s)| topology(c, n, p as u8, s))
            .collect();
        topologies.dedup();
        let spec = SweepSpec {
            protocols,
            topologies,
            seeds: vec![seed_base, seed_base + 1],
            random_schedulers,
            max_deliveries: 1_000_000,
            scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
        };
        let manifest = Manifest::from_spec(&spec);
        let baseline = honest_merged(&spec, &manifest, 1, Partition::Hash);
        let cache = temp_dir(&format!("prop-{case:016x}"));

        for partition in [Partition::Hash, Partition::RoundRobin] {
            for shards in [1usize, 3] {
                // Twice per configuration: the first pass may mix cold and
                // warm clusters (shared cache dir), the second is fully warm.
                for _pass in 0..2 {
                    let sets: Result<Vec<_>, _> = (0..shards)
                        .map(|s| {
                            dedup_shard_lines(&spec, &manifest, shards, partition, s, Some(&cache))
                                .map(|(lines, _)| lines)
                        })
                        .collect();
                    let merged = merge_lines(manifest.len(), sets.unwrap()).expect("covers");
                    prop_assert_eq!(
                        &merged,
                        &baseline,
                        "dedup diverged ({:?} x {} shards)",
                        partition,
                        shards
                    );
                }
            }
        }
        let _ = fs::remove_dir_all(&cache);
    }
}
