//! The sweep subsystem's central property: for random sweep specs and every
//! partition count N ∈ {1, 2, 3, 7}, sharded execution + merge yields JSONL
//! byte-identical to a plain single-process pass over the manifest.
//!
//! The baseline is computed *without* the partition/merge machinery (a
//! sequential walk of the manifest), so the property genuinely pins that
//! partitioning covers every unit exactly once and that the merge restores
//! the canonical order — under both partition strategies.

use anet_sweep::{
    execute_unit, merge_lines, shard_lines, Manifest, Partition, ProtocolSpec, SweepSpec,
    TopologySpec,
};
use proptest::prelude::*;

/// A strategy over small, always-valid sweep specs.
fn protocol(choice: u32, bits: u64) -> ProtocolSpec {
    match choice % 3 {
        0 => ProtocolSpec::Mapping,
        1 => ProtocolSpec::Labeling,
        _ => ProtocolSpec::GeneralBroadcast {
            payload_bits: bits % 48,
        },
    }
}

fn topology(choice: u32, size: usize, pct: u8, seed: u64) -> TopologySpec {
    match choice % 8 {
        0 => TopologySpec::ChainGn { n: size },
        1 => TopologySpec::Path { n: size },
        2 => TopologySpec::Star { leaves: size },
        3 => TopologySpec::CompleteDag { internal: size },
        4 => TopologySpec::CycleWithTail { k: size + 2 },
        5 => TopologySpec::NestedCycles {
            count: 1 + size % 2,
            len: 3 + size % 3,
        },
        6 => TopologySpec::RandomDag {
            internal: size,
            edge_pct: pct,
            seed,
        },
        _ => TopologySpec::RandomCyclic {
            internal: size,
            forward_pct: pct,
            back_pct: pct / 2,
            seed,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn sharded_merge_is_byte_identical_to_single_process(
        protocol_picks in prop::collection::vec((0u32..3, 0u64..48), 1..3),
        topology_picks in prop::collection::vec((0u32..8, 1usize..6, 0u32..60, 0u64..1000), 1..4),
        seed_base in 0u64..1000,
        seed_count in 1usize..3,
        random_schedulers in 0usize..3,
    ) {
        let mut protocols: Vec<ProtocolSpec> = protocol_picks
            .into_iter()
            .map(|(c, b)| protocol(c, b))
            .collect();
        protocols.dedup();
        let mut topologies: Vec<TopologySpec> = topology_picks
            .into_iter()
            .map(|(c, n, p, s)| topology(c, n, p as u8, s))
            .collect();
        topologies.dedup();
        let spec = SweepSpec {
            protocols,
            topologies,
            seeds: (seed_base..seed_base + seed_count as u64).collect(),
            random_schedulers,
            max_deliveries: 1_000_000,
            scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
        };

        // Baseline: a sequential pass over the manifest, no sharding involved.
        let manifest = Manifest::from_spec(&spec);
        let mut baseline = String::new();
        for unit in &manifest.units {
            let record = execute_unit(&spec, unit).expect("unit runs");
            baseline.push_str(&record.to_jsonl_line());
            baseline.push('\n');
        }

        for partition in [Partition::Hash, Partition::RoundRobin] {
            for shards in [1usize, 2, 3, 7] {
                let sets: Result<Vec<_>, _> = (0..shards)
                    .map(|s| shard_lines(&spec, &manifest, shards, partition, s))
                    .collect();
                let merged = merge_lines(manifest.len(), sets.unwrap()).expect("merge covers");
                prop_assert_eq!(
                    &merged,
                    &baseline,
                    "{:?} x {} shards diverged from the single-process run",
                    partition,
                    shards
                );
            }
        }
    }
}

/// The same property through the round-tripped *text* form of the spec: what a
/// worker process parses from disk drives the exact same sweep.
#[test]
fn spec_text_round_trip_preserves_sweep_output() {
    let spec = SweepSpec {
        protocols: vec![ProtocolSpec::Mapping, ProtocolSpec::Labeling],
        topologies: vec![
            TopologySpec::ChainGn { n: 4 },
            TopologySpec::RandomCyclic {
                internal: 7,
                forward_pct: 25,
                back_pct: 10,
                seed: 99,
            },
        ],
        seeds: vec![0, 1],
        random_schedulers: 2,
        max_deliveries: 500_000,
        scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
    };
    let reparsed = SweepSpec::parse(&spec.to_spec_string()).expect("canonical form parses");
    let a = anet_sweep::run_sweep_in_process(&spec, 3, Partition::Hash).unwrap();
    let b = anet_sweep::run_sweep_in_process(&reparsed, 3, Partition::Hash).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.lines().count(), Manifest::from_spec(&spec).len());
}
