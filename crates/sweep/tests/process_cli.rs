//! End-to-end tests of the `sweep` binary: real OS processes (the parent
//! self-invokes one child per shard), real files, byte-identical merges.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const SWEEP_BIN: &str = env!("CARGO_BIN_EXE_sweep");

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("anet-sweep-cli-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// A tiny spec: 1 protocol × 2 topologies × 1 seed × 5 schedulers = 10 units.
const SPEC: &str = "\
protocol mapping
topology chain-gn 4
topology random-cyclic 6 20 15 7
seeds 3
random-schedulers 1
max-deliveries 200000
";

fn run_sweep(args: &[&str]) -> std::process::Output {
    Command::new(SWEEP_BIN)
        .args(args)
        .output()
        .expect("sweep binary runs")
}

fn assert_success(out: &std::process::Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn sweep_to(dir: &Path, spec_path: &Path, shards: usize, extra: &[&str]) -> Vec<u8> {
    let out_dir = dir.join(format!("shards-{shards}"));
    let shards_s = shards.to_string();
    let mut args = vec![
        "--spec",
        spec_path.to_str().unwrap(),
        "--shards",
        &shards_s,
        "--out",
        out_dir.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let out = run_sweep(&args);
    assert_success(&out, &format!("sweep --shards {shards}"));
    fs::read(out_dir.join("merged.jsonl")).expect("merged output exists")
}

#[test]
fn process_sharded_runs_merge_byte_identically() {
    let dir = test_dir("merge");
    let spec_path = dir.join("tiny.spec");
    fs::write(&spec_path, SPEC).unwrap();

    let one = sweep_to(&dir, &spec_path, 1, &[]);
    assert_eq!(one.iter().filter(|&&b| b == b'\n').count(), 10);
    for shards in [2usize, 3] {
        let many = sweep_to(&dir, &spec_path, shards, &[]);
        assert_eq!(many, one, "--shards {shards} diverged from --shards 1");
    }
    // Round-robin partitioning merges identically too.
    let rr = sweep_to(&dir, &spec_path, 2, &["--partition", "round-robin"]);
    assert_eq!(rr, one);

    // --check agrees (exit 0) and detects divergence (exit != 0).
    let a = dir.join("shards-1/merged.jsonl");
    let b = dir.join("shards-2/merged.jsonl");
    let check = run_sweep(&["--check", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_success(&check, "--check on identical files");
    let mangled = dir.join("mangled.jsonl");
    let mut contents = fs::read_to_string(&a).unwrap();
    contents = contents.replacen("terminated", "quiescent", 1);
    fs::write(&mangled, contents).unwrap();
    let check = run_sweep(&["--check", a.to_str().unwrap(), mangled.to_str().unwrap()]);
    assert!(!check.status.success(), "--check must flag divergence");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_resume_recovers_a_truncated_shard() {
    let dir = test_dir("resume");
    let spec_path = dir.join("tiny.spec");
    fs::write(&spec_path, SPEC).unwrap();

    let clean = sweep_to(&dir, &spec_path, 2, &[]);

    // Truncate one shard file mid-line and delete the merged output.
    let out_dir = dir.join("shards-2");
    let victim = out_dir.join("shard-1.jsonl");
    let contents = fs::read_to_string(&victim).unwrap();
    assert!(!contents.is_empty());
    fs::write(&victim, &contents[..contents.len() / 2]).unwrap();
    fs::remove_file(out_dir.join("merged.jsonl")).unwrap();

    let resumed = sweep_to(&dir, &spec_path, 2, &["--resume"]);
    assert_eq!(resumed, clean, "--resume merged output diverged");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn run_shard_child_mode_writes_only_its_own_shard() {
    // `--run-shard I` is the internal child mode the parent self-invokes: it
    // must execute exactly one shard's units and never merge.
    let dir = test_dir("spec-file");
    let spec_path = dir.join("tiny.spec");
    fs::write(&spec_path, SPEC).unwrap();
    let out_dir = dir.join("out");
    let out = run_sweep(&[
        "--spec",
        spec_path.to_str().unwrap(),
        "--shards",
        "2",
        "--out",
        out_dir.to_str().unwrap(),
        "--run-shard",
        "0",
    ]);
    assert_success(&out, "--run-shard 0");
    assert!(out_dir.join("shard-0.jsonl").exists());
    assert!(!out_dir.join("shard-1.jsonl").exists());
    assert!(!out_dir.join("merged.jsonl").exists());
    let _ = fs::remove_dir_all(&dir);
}
