//! Intra-shard parallelism equivalence: `--jobs N` must be a pure throughput
//! knob. A shard executed with any worker-thread count writes **byte-identical**
//! output to the sequential shard, because every record line is a pure
//! function of its unit and workers fill pre-assigned slots of the
//! shard-manifest order — threads decide *when* a slot is filled, never
//! *where*.

use std::fs;
use std::path::PathBuf;

use anet_sweep::{
    merge_shard_files, run_shard_to_file, run_shard_to_file_with_jobs, Manifest, Partition,
    ProtocolSpec, SweepSpec, TopologySpec,
};

fn spec() -> SweepSpec {
    SweepSpec {
        protocols: vec![
            ProtocolSpec::Mapping,
            ProtocolSpec::Labeling,
            ProtocolSpec::GeneralBroadcast { payload_bits: 16 },
        ],
        topologies: vec![
            TopologySpec::ChainGn { n: 4 },
            TopologySpec::CycleWithTail { k: 5 },
            TopologySpec::CompleteDag { internal: 5 },
        ],
        seeds: vec![0, 1],
        random_schedulers: 1,
        max_deliveries: 1_000_000,
        scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "anet-jobs-equivalence-{name}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn jobs_four_is_byte_identical_to_jobs_one() {
    let spec = spec();
    let manifest = Manifest::from_spec(&spec);
    for shards in [1usize, 2] {
        for partition in [Partition::Hash, Partition::RoundRobin] {
            let dir = tmp_dir(&format!("j14-{shards}-{partition:?}"));
            for shard in 0..shards {
                let sequential = dir.join(format!("seq-{shard}.jsonl"));
                let parallel = dir.join(format!("par-{shard}.jsonl"));
                let a = run_shard_to_file_with_jobs(
                    &spec,
                    &manifest,
                    shards,
                    partition,
                    shard,
                    &sequential,
                    false,
                    1,
                )
                .expect("sequential shard runs");
                let b = run_shard_to_file_with_jobs(
                    &spec, &manifest, shards, partition, shard, &parallel, false, 4,
                )
                .expect("parallel shard runs");
                assert_eq!(a, b, "shard outcome diverged (shard {shard}/{shards})");
                let bytes_a = fs::read(&sequential).expect("read sequential shard");
                let bytes_b = fs::read(&parallel).expect("read parallel shard");
                assert_eq!(
                    bytes_a, bytes_b,
                    "jobs=4 shard file differs from jobs=1 (shard {shard}/{shards}, {partition:?})"
                );
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn jobs_merged_output_matches_plain_run_shard_to_file() {
    let spec = spec();
    let manifest = Manifest::from_spec(&spec);
    let shards = 2usize;
    let dir = tmp_dir("merged");
    let mut plain_paths = Vec::new();
    let mut jobs_paths = Vec::new();
    for shard in 0..shards {
        let plain = dir.join(format!("plain-{shard}.jsonl"));
        let jobs = dir.join(format!("jobs-{shard}.jsonl"));
        run_shard_to_file(
            &spec,
            &manifest,
            shards,
            Partition::Hash,
            shard,
            &plain,
            false,
        )
        .expect("plain shard runs");
        run_shard_to_file_with_jobs(
            &spec,
            &manifest,
            shards,
            Partition::Hash,
            shard,
            &jobs,
            false,
            4,
        )
        .expect("jobs shard runs");
        plain_paths.push(plain);
        jobs_paths.push(jobs);
    }
    let merged_plain = dir.join("merged-plain.jsonl");
    let merged_jobs = dir.join("merged-jobs.jsonl");
    merge_shard_files(manifest.len(), &plain_paths, &merged_plain).expect("merge plain");
    merge_shard_files(manifest.len(), &jobs_paths, &merged_jobs).expect("merge jobs");
    assert_eq!(
        fs::read(&merged_plain).unwrap(),
        fs::read(&merged_jobs).unwrap(),
        "merged output differs between jobs=1 and jobs=4"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn jobs_compose_with_checkpoint_resume() {
    // A torn checkpoint resumed with jobs=4 must reproduce the clean file:
    // only the missing units are fanned out, reused lines keep their slots.
    let spec = spec();
    let manifest = Manifest::from_spec(&spec);
    let dir = tmp_dir("resume");
    let clean = dir.join("clean.jsonl");
    run_shard_to_file_with_jobs(&spec, &manifest, 1, Partition::Hash, 0, &clean, false, 4)
        .expect("clean shard runs");
    let clean_bytes = fs::read_to_string(&clean).unwrap();

    // Keep the header and the first two record lines, tear the third mid-line.
    let victim = dir.join("victim.jsonl");
    let keep: Vec<&str> = clean_bytes.lines().take(3).collect();
    let torn_tail = &clean_bytes.lines().nth(3).unwrap()[..10];
    fs::write(&victim, format!("{}\n{torn_tail}", keep.join("\n"))).unwrap();

    let outcome =
        run_shard_to_file_with_jobs(&spec, &manifest, 1, Partition::Hash, 0, &victim, true, 4)
            .expect("resumed shard runs");
    assert_eq!(outcome.reused, 2, "the two intact record lines are reused");
    assert_eq!(outcome.executed, manifest.len() - 2);
    assert_eq!(
        fs::read_to_string(&victim).unwrap(),
        clean_bytes,
        "resumed parallel shard differs from the clean run"
    );
    let _ = fs::remove_dir_all(&dir);
}
