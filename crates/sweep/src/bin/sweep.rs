//! The `sweep` CLI: process-sharded sweep execution with merge-equivalent
//! output.
//!
//! ```text
//! sweep [--spec FILE] [--shards N] [--jobs N] [--out DIR]
//!       [--partition hash|round-robin] [--resume]
//!       [--no-dedup] [--cache-dir DIR]
//! sweep --run-shard I --spec FILE --shards N --out DIR [...]   (internal)
//! sweep --check FILE_A FILE_B
//! ```
//!
//! The parent invocation expands the spec into a manifest, re-invokes **its
//! own executable** once per shard with `--run-shard i` (each child writes
//! `shard-i.jsonl` into the output directory), waits for every child, and
//! merges the shard files into `merged.jsonl` in canonical manifest order.
//! Running with `--shards 1` and `--shards N` produces byte-identical merged
//! files; `--check` compares two merged files and, on mismatch, reports which
//! rows differ via `anet_bench::baseline::result_keys`.
//!
//! **Deduplication is on by default**: each shard clusters its pending units
//! by canonical fingerprint and executes one representative per equivalence
//! class; `--cache-dir DIR` adds a content-addressed result cache shared
//! across shards, runs and specs. `--no-dedup` keeps the honest
//! one-execution-per-unit path; merged output is byte-identical either way
//! (the differential contract pinned by tests and CI). Each shard writes its
//! dedup counters to a `shard-i.stats` sidecar; the parent sums them into
//! `stats.json` and prints the run summary. `--check` reports any
//! `stats.json` found next to the files it compares.
//!
//! `--resume` makes each shard reuse the complete records of an existing
//! shard file (a killed shard's torn tail is discarded), re-running only the
//! missing units.
//!
//! `--jobs N` fans each shard's work over `N` scoped worker threads inside
//! the shard process (with dedup, the representatives are what is fanned
//! out). Output is byte-identical to `--jobs 1` — records are pure functions
//! of their units and are assembled in shard-manifest order — so parallelism
//! is purely a throughput knob.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use anet_bench::baseline::result_keys;
use anet_sweep::manifest::fnv1a;
use anet_sweep::{
    merge_shard_files, run_shard_to_file_with_opts, DedupStats, Manifest, Partition, SweepOptions,
    SweepSpec,
};

/// The spec used when no `--spec` is given (committed at
/// `crates/sweep/specs/example.spec`).
const EXAMPLE_SPEC: &str = include_str!("../../specs/example.spec");

#[derive(Debug)]
struct Args {
    spec: Option<PathBuf>,
    shards: usize,
    jobs: usize,
    out: Option<PathBuf>,
    partition: Partition,
    resume: bool,
    dedup: bool,
    cache_dir: Option<PathBuf>,
    run_shard: Option<usize>,
    check: Option<(PathBuf, PathBuf)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--spec FILE] [--shards N] [--jobs N] [--out DIR] \
         [--partition hash|round-robin] [--resume] [--no-dedup] [--cache-dir DIR]\n       \
         sweep --run-shard I --spec FILE --shards N --out DIR (internal)\n       \
         sweep --check FILE_A FILE_B"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: None,
        shards: 1,
        jobs: 1,
        out: None,
        partition: Partition::Hash,
        resume: false,
        dedup: true,
        cache_dir: None,
        run_shard: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--spec" => args.spec = Some(PathBuf::from(value())),
            "--shards" => {
                args.shards = value().parse().unwrap_or_else(|_| usage());
                if args.shards == 0 {
                    usage();
                }
            }
            "--jobs" => {
                args.jobs = value().parse().unwrap_or_else(|_| usage());
                if args.jobs == 0 {
                    usage();
                }
            }
            "--out" => args.out = Some(PathBuf::from(value())),
            "--partition" => args.partition = Partition::parse(&value()).unwrap_or_else(|| usage()),
            "--resume" => args.resume = true,
            "--no-dedup" => args.dedup = false,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value())),
            "--run-shard" => args.run_shard = Some(value().parse().unwrap_or_else(|_| usage())),
            "--check" => {
                let a = PathBuf::from(value());
                let b = PathBuf::from(value());
                args.check = Some((a, b));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn load_spec(path: &Path) -> SweepSpec {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("sweep: cannot read spec {}: {e}", path.display());
        std::process::exit(1);
    });
    SweepSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        std::process::exit(1);
    })
}

fn shard_path(out: &Path, shard: usize) -> PathBuf {
    out.join(format!("shard-{shard}.jsonl"))
}

/// The dedup-counter sidecar a shard child publishes next to its JSONL file.
fn stats_path(out: &Path, shard: usize) -> PathBuf {
    out.join(format!("shard-{shard}.stats"))
}

fn partition_flag(partition: Partition) -> &'static str {
    match partition {
        Partition::Hash => "hash",
        Partition::RoundRobin => "round-robin",
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some((a, b)) = &args.check {
        return check(a, b);
    }

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("target/sweep/shards-{}", args.shards)));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("sweep: cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }

    // Resolve the spec: an explicit file, or the embedded example written into
    // the output directory so child processes (and the curious) can read it.
    let spec_path = match &args.spec {
        Some(path) => path.clone(),
        None => {
            let path = out.join("spec.sweep");
            if let Err(e) = std::fs::write(&path, EXAMPLE_SPEC) {
                eprintln!("sweep: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            path
        }
    };
    let spec = load_spec(&spec_path);
    let manifest = Manifest::from_spec(&spec);

    if let Some(shard) = args.run_shard {
        run_child_shard(&args, &spec, &manifest, &out, shard)
    } else {
        run_parent(&args, &manifest, &spec_path, &out)
    }
}

/// Child mode: run one shard, publish its JSONL file and stats sidecar.
fn run_child_shard(
    args: &Args,
    spec: &SweepSpec,
    manifest: &Manifest,
    out: &Path,
    shard: usize,
) -> ExitCode {
    if shard >= args.shards {
        eprintln!(
            "sweep: --run-shard {shard} out of range for {}",
            args.shards
        );
        return ExitCode::FAILURE;
    }
    let path = shard_path(out, shard);
    let opts = SweepOptions {
        jobs: args.jobs,
        resume: args.resume,
        dedup: args.dedup,
        cache_dir: args.cache_dir.clone(),
    };
    match run_shard_to_file_with_opts(
        spec,
        manifest,
        args.shards,
        args.partition,
        shard,
        &path,
        &opts,
    ) {
        Ok(report) => {
            println!(
                "shard {shard}/{}: {} executed, {} reused -> {}",
                args.shards,
                report.outcome.executed,
                report.outcome.reused,
                path.display()
            );
            if let Some(stats) = &report.stats {
                println!("shard {shard}/{} {}", args.shards, stats.summary());
                let sidecar = stats_path(out, shard);
                if let Err(e) = std::fs::write(&sidecar, format!("{}\n", stats.to_json_line())) {
                    eprintln!("sweep: cannot write {}: {e}", sidecar.display());
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep: shard {shard} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parent mode: self-invoke one child process per shard, merge, aggregate
/// dedup stats.
fn run_parent(args: &Args, manifest: &Manifest, spec_path: &Path, out: &Path) -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("sweep: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut children = Vec::new();
    for shard in 0..args.shards {
        let mut cmd = Command::new(&exe);
        cmd.arg("--spec")
            .arg(spec_path)
            .arg("--shards")
            .arg(args.shards.to_string())
            .arg("--out")
            .arg(out)
            .arg("--partition")
            .arg(partition_flag(args.partition))
            .arg("--jobs")
            .arg(args.jobs.to_string())
            .arg("--run-shard")
            .arg(shard.to_string());
        if args.resume {
            cmd.arg("--resume");
        }
        if !args.dedup {
            cmd.arg("--no-dedup");
        }
        if let Some(dir) = &args.cache_dir {
            cmd.arg("--cache-dir").arg(dir);
        }
        match cmd.spawn() {
            Ok(child) => children.push((shard, child)),
            Err(e) => {
                eprintln!("sweep: cannot spawn shard {shard}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut failed = false;
    for (shard, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("sweep: shard {shard} exited with {status}");
                failed = true;
            }
            Err(e) => {
                eprintln!("sweep: cannot wait for shard {shard}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }

    let shard_paths: Vec<PathBuf> = (0..args.shards).map(|s| shard_path(out, s)).collect();
    let merged_path = out.join("merged.jsonl");
    match merge_shard_files(manifest.len(), &shard_paths, &merged_path) {
        Ok(units) => {
            let bytes = std::fs::read(&merged_path).unwrap_or_default();
            println!(
                "merged {units} units from {} shard(s) -> {} (fnv1a {:016x})",
                args.shards,
                merged_path.display(),
                fnv1a(&bytes)
            );
            if args.dedup {
                match aggregate_stats(out, args.shards) {
                    Ok(total) => println!("{}", total.summary()),
                    Err(e) => {
                        eprintln!("sweep: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Sums the shard stats sidecars into `stats.json` in the output directory.
fn aggregate_stats(out: &Path, shards: usize) -> Result<DedupStats, String> {
    let mut total = DedupStats::default();
    for shard in 0..shards {
        let path = stats_path(out, shard);
        let contents = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let stats = DedupStats::parse_line(contents.trim_end_matches('\n'))
            .ok_or_else(|| format!("{}: not a canonical stats line", path.display()))?;
        total.add(&stats);
    }
    let path = out.join("stats.json");
    std::fs::write(&path, format!("{}\n", total.to_json_line()))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(total)
}

/// Compares two merged JSONL files; on mismatch reports the row-identity
/// diff. Any `stats.json` found next to the inputs is reported alongside.
fn check(a: &Path, b: &Path) -> ExitCode {
    let read = |p: &Path| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("sweep: cannot read {}: {e}", p.display());
            std::process::exit(1);
        })
    };
    let contents_a = read(a);
    let contents_b = read(b);
    for path in [a, b] {
        let stats_file = path.parent().unwrap_or(Path::new(".")).join("stats.json");
        if let Ok(contents) = std::fs::read_to_string(&stats_file) {
            if let Some(stats) = DedupStats::parse_line(contents.trim_end_matches('\n')) {
                println!("{}: {}", stats_file.display(), stats.summary());
            }
        }
    }
    if contents_a == contents_b {
        println!(
            "byte-identical: {} == {} ({} lines)",
            a.display(),
            b.display(),
            contents_a.lines().count()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("sweep: {} and {} differ", a.display(), b.display());
    // Reuse the bench baseline key extractor for a structural diff: wrap the
    // JSONL lines as a `"results"` array and compare row identities.
    let wrap = |contents: &str| {
        let lines: Vec<&str> = contents.lines().collect();
        result_keys(&format!("\"results\": [\n{}\n]", lines.join(",\n")))
    };
    let keys_a = wrap(&contents_a);
    let keys_b = wrap(&contents_b);
    for missing in keys_a.difference(&keys_b).take(10) {
        eprintln!("  only in {}: {missing}", a.display());
    }
    for missing in keys_b.difference(&keys_a).take(10) {
        eprintln!("  only in {}: {missing}", b.display());
    }
    if keys_a == keys_b {
        eprintln!("  (same row identities; files differ in ordering or whitespace)");
    }
    ExitCode::FAILURE
}
