//! The `sweep` CLI: process-sharded sweep execution with merge-equivalent
//! output.
//!
//! ```text
//! sweep [--spec FILE] [--shards N] [--jobs N] [--out DIR]
//!       [--partition hash|round-robin] [--resume]
//! sweep --run-shard I --spec FILE --shards N --out DIR [...]   (internal)
//! sweep --check FILE_A FILE_B
//! ```
//!
//! The parent invocation expands the spec into a manifest, re-invokes **its
//! own executable** once per shard with `--run-shard i` (each child writes
//! `shard-i.jsonl` into the output directory), waits for every child, and
//! merges the shard files into `merged.jsonl` in canonical manifest order.
//! Running with `--shards 1` and `--shards N` produces byte-identical merged
//! files; `--check` compares two merged files and, on mismatch, reports which
//! rows differ via `anet_bench::baseline::result_keys`.
//!
//! `--resume` makes each shard reuse the complete records of an existing
//! shard file (a killed shard's torn tail is discarded), re-running only the
//! missing units.
//!
//! `--jobs N` fans each shard's units over `N` scoped worker threads inside
//! the shard process. Output is byte-identical to `--jobs 1` — records are
//! pure functions of their units and are assembled in shard-manifest order —
//! so parallelism is purely a throughput knob.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use anet_bench::baseline::result_keys;
use anet_sweep::manifest::fnv1a;
use anet_sweep::{merge_shard_files, run_shard_to_file_with_jobs, Manifest, Partition, SweepSpec};

/// The spec used when no `--spec` is given (committed at
/// `crates/sweep/specs/example.spec`).
const EXAMPLE_SPEC: &str = include_str!("../../specs/example.spec");

#[derive(Debug)]
struct Args {
    spec: Option<PathBuf>,
    shards: usize,
    jobs: usize,
    out: Option<PathBuf>,
    partition: Partition,
    resume: bool,
    run_shard: Option<usize>,
    check: Option<(PathBuf, PathBuf)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--spec FILE] [--shards N] [--jobs N] [--out DIR] \
         [--partition hash|round-robin] [--resume]\n       \
         sweep --run-shard I --spec FILE --shards N --out DIR (internal)\n       \
         sweep --check FILE_A FILE_B"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        spec: None,
        shards: 1,
        jobs: 1,
        out: None,
        partition: Partition::Hash,
        resume: false,
        run_shard: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--spec" => args.spec = Some(PathBuf::from(value())),
            "--shards" => {
                args.shards = value().parse().unwrap_or_else(|_| usage());
                if args.shards == 0 {
                    usage();
                }
            }
            "--jobs" => {
                args.jobs = value().parse().unwrap_or_else(|_| usage());
                if args.jobs == 0 {
                    usage();
                }
            }
            "--out" => args.out = Some(PathBuf::from(value())),
            "--partition" => args.partition = Partition::parse(&value()).unwrap_or_else(|| usage()),
            "--resume" => args.resume = true,
            "--run-shard" => args.run_shard = Some(value().parse().unwrap_or_else(|_| usage())),
            "--check" => {
                let a = PathBuf::from(value());
                let b = PathBuf::from(value());
                args.check = Some((a, b));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn load_spec(path: &Path) -> SweepSpec {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("sweep: cannot read spec {}: {e}", path.display());
        std::process::exit(1);
    });
    SweepSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        std::process::exit(1);
    })
}

fn shard_path(out: &Path, shard: usize) -> PathBuf {
    out.join(format!("shard-{shard}.jsonl"))
}

fn partition_flag(partition: Partition) -> &'static str {
    match partition {
        Partition::Hash => "hash",
        Partition::RoundRobin => "round-robin",
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some((a, b)) = &args.check {
        return check(a, b);
    }

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from(format!("target/sweep/shards-{}", args.shards)));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("sweep: cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }

    // Resolve the spec: an explicit file, or the embedded example written into
    // the output directory so child processes (and the curious) can read it.
    let spec_path = match &args.spec {
        Some(path) => path.clone(),
        None => {
            let path = out.join("spec.sweep");
            if let Err(e) = std::fs::write(&path, EXAMPLE_SPEC) {
                eprintln!("sweep: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            path
        }
    };
    let spec = load_spec(&spec_path);
    let manifest = Manifest::from_spec(&spec);

    if let Some(shard) = args.run_shard {
        // Child mode: run one shard and exit.
        if shard >= args.shards {
            eprintln!(
                "sweep: --run-shard {shard} out of range for {}",
                args.shards
            );
            return ExitCode::FAILURE;
        }
        let path = shard_path(&out, shard);
        match run_shard_to_file_with_jobs(
            &spec,
            &manifest,
            args.shards,
            args.partition,
            shard,
            &path,
            args.resume,
            args.jobs,
        ) {
            Ok(outcome) => {
                println!(
                    "shard {shard}/{}: {} executed, {} reused -> {}",
                    args.shards,
                    outcome.executed,
                    outcome.reused,
                    path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sweep: shard {shard} failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        // Parent mode: self-invoke one child process per shard, then merge.
        let exe = match std::env::current_exe() {
            Ok(exe) => exe,
            Err(e) => {
                eprintln!("sweep: cannot locate own executable: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut children = Vec::new();
        for shard in 0..args.shards {
            let mut cmd = Command::new(&exe);
            cmd.arg("--spec")
                .arg(&spec_path)
                .arg("--shards")
                .arg(args.shards.to_string())
                .arg("--out")
                .arg(&out)
                .arg("--partition")
                .arg(partition_flag(args.partition))
                .arg("--jobs")
                .arg(args.jobs.to_string())
                .arg("--run-shard")
                .arg(shard.to_string());
            if args.resume {
                cmd.arg("--resume");
            }
            match cmd.spawn() {
                Ok(child) => children.push((shard, child)),
                Err(e) => {
                    eprintln!("sweep: cannot spawn shard {shard}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut failed = false;
        for (shard, mut child) in children {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    eprintln!("sweep: shard {shard} exited with {status}");
                    failed = true;
                }
                Err(e) => {
                    eprintln!("sweep: cannot wait for shard {shard}: {e}");
                    failed = true;
                }
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }

        let shard_paths: Vec<PathBuf> = (0..args.shards).map(|s| shard_path(&out, s)).collect();
        let merged_path = out.join("merged.jsonl");
        match merge_shard_files(manifest.len(), &shard_paths, &merged_path) {
            Ok(units) => {
                let bytes = std::fs::read(&merged_path).unwrap_or_default();
                println!(
                    "merged {units} units from {} shard(s) -> {} (fnv1a {:016x})",
                    args.shards,
                    merged_path.display(),
                    fnv1a(&bytes)
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sweep: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

/// Compares two merged JSONL files; on mismatch reports the row-identity diff.
fn check(a: &Path, b: &Path) -> ExitCode {
    let read = |p: &Path| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("sweep: cannot read {}: {e}", p.display());
            std::process::exit(1);
        })
    };
    let contents_a = read(a);
    let contents_b = read(b);
    if contents_a == contents_b {
        println!(
            "byte-identical: {} == {} ({} lines)",
            a.display(),
            b.display(),
            contents_a.lines().count()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("sweep: {} and {} differ", a.display(), b.display());
    // Reuse the bench baseline key extractor for a structural diff: wrap the
    // JSONL lines as a `"results"` array and compare row identities.
    let wrap = |contents: &str| {
        let lines: Vec<&str> = contents.lines().collect();
        result_keys(&format!("\"results\": [\n{}\n]", lines.join(",\n")))
    };
    let keys_a = wrap(&contents_a);
    let keys_b = wrap(&contents_b);
    for missing in keys_a.difference(&keys_b).take(10) {
        eprintln!("  only in {}: {missing}", a.display());
    }
    for missing in keys_b.difference(&keys_a).take(10) {
        eprintln!("  only in {}: {missing}", b.display());
    }
    if keys_a == keys_b {
        eprintln!("  (same row identities; files differ in ordering or whitespace)");
    }
    ExitCode::FAILURE
}
