//! Regenerates `BENCH_sweep_dedup.json`: wall-clock of a full sweep pass with
//! deduplication (cold, and warm content-addressed cache) versus the honest
//! `--no-dedup` path, over a redundancy-heavy spec.
//!
//! The spec is built so the redundancy is *provable*, not probabilistic:
//! `random-dag n 100 seed` draws every forward edge with probability 1, so
//! all three seeds collapse onto `complete-dag 7`; `nested-cycles 1 8` is
//! `cycle-with-tail 8`, and `complete-dag 2` is `path 2`. Eight topology
//! lines, three canonical forms — the dedup pass executes ~3x fewer units,
//! and the run cross-checks that its merged output is byte-identical to the
//! honest pass before any timing happens.
//!
//! Usage:
//!
//! * `cargo run --release -p anet-sweep --bin bench_sweep_dedup` — full
//!   measurement; writes `BENCH_sweep_dedup.json` into the current directory
//!   (run from the workspace root) and echoes it.
//! * `... --bin bench_sweep_dedup -- --smoke` — structure-only single pass:
//!   regenerates the JSON with throwaway numbers and key-diffs it against the
//!   committed baseline (exit 1 on drift), mirroring `bench_smoke`.

use anet_bench::baseline::{median_ns, result_keys, SampleConfig};
use anet_sweep::{
    dedup_shard_lines, merge_lines, shard_lines, DedupStats, Manifest, Partition, ProtocolSpec,
    ScenarioSpec, SweepSpec, TopologySpec,
};

const BASELINE_PATH: &str = "BENCH_sweep_dedup.json";

/// 2 protocols x 8 topologies (3 canonical forms) x 2 seeds x 5 schedulers.
fn bench_spec() -> SweepSpec {
    let dense = |seed| TopologySpec::RandomDag {
        internal: 7,
        edge_pct: 100,
        seed,
    };
    SweepSpec {
        protocols: vec![ProtocolSpec::Mapping, ProtocolSpec::Labeling],
        topologies: vec![
            TopologySpec::CompleteDag { internal: 7 },
            dense(1),
            dense(2),
            dense(3),
            TopologySpec::CycleWithTail { k: 8 },
            TopologySpec::NestedCycles { count: 1, len: 8 },
            TopologySpec::Path { n: 2 },
            TopologySpec::CompleteDag { internal: 2 },
        ],
        seeds: vec![11, 12],
        random_schedulers: 1,
        max_deliveries: 1_000_000,
        scenarios: vec![ScenarioSpec::Pristine],
    }
}

fn honest_pass(spec: &SweepSpec, manifest: &Manifest) -> String {
    let lines = shard_lines(spec, manifest, 1, Partition::Hash, 0).expect("honest pass runs");
    merge_lines(manifest.len(), [lines]).expect("honest pass covers")
}

fn dedup_pass(
    spec: &SweepSpec,
    manifest: &Manifest,
    cache: Option<&std::path::Path>,
) -> (String, DedupStats) {
    let (lines, stats) =
        dedup_shard_lines(spec, manifest, 1, Partition::Hash, 0, cache).expect("dedup pass runs");
    (
        merge_lines(manifest.len(), [lines]).expect("dedup pass covers"),
        stats,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        SampleConfig::smoke()
    } else {
        SampleConfig::full()
    };

    let spec = bench_spec();
    let manifest = Manifest::from_spec(&spec);
    let cache = std::env::temp_dir().join(format!(
        "anet-bench-sweep-dedup-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache);

    // Correctness cross-check before any timing: dedup (cold and via a warm
    // cache) must match the honest pass byte for byte.
    let baseline = honest_pass(&spec, &manifest);
    let (cold, stats) = dedup_pass(&spec, &manifest, None);
    assert_eq!(cold, baseline, "dedup output diverged from honest output");
    let (primed, _) = dedup_pass(&spec, &manifest, Some(&cache));
    let (warm, warm_stats) = dedup_pass(&spec, &manifest, Some(&cache));
    assert_eq!(primed, baseline);
    assert_eq!(warm, baseline, "warm-cache output diverged");
    assert_eq!(warm_stats.cache_hits, warm_stats.clusters);
    assert!(
        stats.clusters * 2 <= stats.units,
        "bench spec lost its redundancy: {} units -> {} clusters",
        stats.units,
        stats.clusters
    );

    let no_dedup_ns = median_ns(&cfg, || {
        honest_pass(&spec, &manifest);
    });
    let dedup_ns = median_ns(&cfg, || {
        dedup_pass(&spec, &manifest, None);
    });
    let warm_ns = median_ns(&cfg, || {
        dedup_pass(&spec, &manifest, Some(&cache));
    });
    let _ = std::fs::remove_dir_all(&cache);

    let ratio = |a: u64, b: u64| a as f64 / b.max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"sweep_dedup\",\n  \"unit\": \"ns_per_sweep_median\",\n  \"workload\": \"full single-shard sweep over a redundancy-heavy spec ({} units, {} equivalence classes); see crates/sweep/src/bin/bench_sweep_dedup.rs\",\n  \"results\": [\n    {{\"mode\": \"no-dedup\", \"median_ns\": {}}},\n    {{\"mode\": \"dedup\", \"median_ns\": {}}},\n    {{\"mode\": \"dedup-warm-cache\", \"median_ns\": {}}}\n  ],\n  \"manifest_units\": {},\n  \"clusters\": {},\n  \"speedup_no_dedup_over_dedup\": {:.2},\n  \"speedup_no_dedup_over_warm_cache\": {:.2}\n}}\n",
        stats.units,
        stats.clusters,
        no_dedup_ns,
        dedup_ns,
        warm_ns,
        stats.units,
        stats.clusters,
        ratio(no_dedup_ns, dedup_ns),
        ratio(no_dedup_ns, warm_ns),
    );

    if smoke {
        // Key-drift check against the committed baseline, numbers ignored.
        let committed = match std::fs::read_to_string(BASELINE_PATH) {
            Ok(contents) => contents,
            Err(err) => {
                eprintln!("FAIL {BASELINE_PATH}: cannot read committed baseline: {err}");
                std::process::exit(1);
            }
        };
        let expected = result_keys(&json);
        let actual = result_keys(&committed);
        if expected == actual {
            println!(
                "ok   {BASELINE_PATH}: {} benchmark keys match",
                expected.len()
            );
            return;
        }
        eprintln!("FAIL {BASELINE_PATH}: benchmark keys drifted from the committed baseline");
        for missing in expected.difference(&actual) {
            eprintln!("  bench grid has, baseline lacks: {missing}");
        }
        for stale in actual.difference(&expected) {
            eprintln!("  baseline has, bench grid lacks: {stale}");
        }
        eprintln!("  regenerate with: cargo run --release -p anet-sweep --bin bench_sweep_dedup");
        std::process::exit(1);
    }

    std::fs::write(BASELINE_PATH, &json).expect("write baseline file");
    print!("{json}");
    if no_dedup_ns < dedup_ns * 2 {
        eprintln!(
            "warning: dedup speedup {:.2}x is below the expected 2x",
            ratio(no_dedup_ns, dedup_ns)
        );
    }
}
