//! Shard output files, resumable checkpoints and the order-restoring merge.
//!
//! A shard writes one canonical JSONL line per completed unit to its own file.
//! The file doubles as the shard's **checkpoint**: on a resumed run the shard
//! re-validates every line with [`RunRecord::parse_line`] (which only accepts
//! byte-exact canonical lines, so a truncated tail from a killed process is
//! discarded), keeps the completed units, and re-executes only the rest. The
//! rewrite is atomic (temp file + rename), so a shard file on disk is always a
//! prefix-consistent set of complete lines plus at most one torn tail.
//!
//! Checkpoints are only valid for the spec that produced them: the first line
//! of every shard file is a comment header carrying the FNV-1a fingerprint of
//! the spec's canonical text, and a resume whose current spec does not match
//! discards the whole checkpoint. Record indices are positions in the spec's
//! manifest, so without this gate an edited spec (reordered topologies,
//! changed budget) would silently splice stale records into the wrong units.
//! The header travels *inside* the file, so the atomic rename publishes
//! fingerprint and records together — there is no window in which one
//! describes a different version of the other. Merging skips comment lines,
//! so merged output remains pure records.
//!
//! [`merge_lines`] restores the canonical manifest order: it checks that the
//! shard outputs cover every unit exactly once and emits the lines sorted by
//! unit index. Because every line is a pure function of its unit, the merged
//! bytes are identical for every shard count — the sweep subsystem's central
//! correctness contract.
//!
//! [`run_shard_to_file_with_opts`] adds the dedup/cache pipeline on top:
//! pending units are clustered by canonical fingerprint ([`crate::dedup`]),
//! the content-addressed cache ([`crate::cache`]) resolves whole clusters,
//! only representatives of missed clusters execute, and member lines are
//! rewritten from their representative's record. Because the executor runs
//! every unit on its canonical network, the written file — and therefore the
//! merged output — is byte-identical whether dedup is on or off.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::cache::{CachePayload, ResultCache};
use crate::dedup::{cluster_units, DedupStats};
use crate::exec::execute_unit;
use crate::manifest::{Manifest, Partition, SweepUnit};
use crate::record::RunRecord;
use crate::spec::SweepSpec;
use crate::SweepError;

/// What a shard run did: how many units were executed fresh and how many were
/// reused from a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Units executed in this invocation.
    pub executed: usize,
    /// Units reused from the existing shard file.
    pub reused: usize,
}

/// Options for a shard run — the superset of every knob the `sweep` CLI
/// forwards to its shard children.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Intra-shard worker threads (`<= 1` means sequential).
    pub jobs: usize,
    /// Reuse a matching checkpoint found at the output path.
    pub resume: bool,
    /// Cluster pending units by canonical fingerprint and execute one
    /// representative per equivalence class ([`crate::dedup`]).
    pub dedup: bool,
    /// Content-addressed result cache directory, consulted and fed by the
    /// dedup path. Ignored when `dedup` is off (the honest path never
    /// reads results it did not compute).
    pub cache_dir: Option<PathBuf>,
}

/// A [`ShardOutcome`] plus the dedup counters, when dedup ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Executed/reused unit counts.
    pub outcome: ShardOutcome,
    /// Dedup statistics over this invocation's pending units; `None` when
    /// the shard ran the honest path.
    pub stats: Option<DedupStats>,
}

/// The `(index, line)` pairs of one shard's completed units, in manifest order.
pub type ShardLines = Vec<(usize, String)>;

/// Executes shard `shard` of `shards` in memory and returns its lines.
///
/// # Errors
///
/// Propagates [`execute_unit`] failures.
pub fn shard_lines(
    spec: &SweepSpec,
    manifest: &Manifest,
    shards: usize,
    partition: Partition,
    shard: usize,
) -> Result<ShardLines, SweepError> {
    manifest
        .shard_units(shards, partition, shard)
        .into_iter()
        .map(|unit| execute_unit(spec, unit).map(|record| (unit.index, record.to_jsonl_line())))
        .collect()
}

/// The spec-fingerprint header written as the first line of every shard file.
pub fn spec_header(spec: &SweepSpec) -> String {
    format!(
        "# anet-sweep spec fnv1a {:016x}",
        crate::manifest::fnv1a(spec.to_spec_string().as_bytes())
    )
}

/// Parses the reusable checkpoint lines of an existing shard file's contents:
/// complete, canonical lines whose unit index belongs to `expected`, provided
/// the file's first line is exactly the [`spec_header`] of `spec`. Anything
/// else — a missing or mismatched header (the file was produced by a different
/// spec), torn tails, foreign indices, stale formats — is dropped.
pub fn checkpoint_lines(
    spec: &SweepSpec,
    contents: &str,
    expected: &[usize],
) -> HashMap<usize, String> {
    let mut kept = HashMap::new();
    let mut lines = contents.lines();
    if lines.next() != Some(spec_header(spec).as_str()) {
        return kept;
    }
    let expected: std::collections::HashSet<usize> = expected.iter().copied().collect();
    for line in lines {
        if let Some(record) = RunRecord::parse_line(line) {
            if expected.contains(&record.index) {
                kept.insert(record.index, line.to_owned());
            }
        }
    }
    kept
}

/// Runs shard `shard` of `shards`, writing its JSONL file at `path` (a
/// [`spec_header`] line followed by one record line per unit).
///
/// With `resume`, completed units found in an existing file at `path` are
/// reused instead of re-executed — but only when the file's header proves it
/// was produced by a spec with the same canonical text; any other checkpoint
/// (edited spec, missing header, stale layout) is discarded and the shard runs
/// from scratch. Without `resume` the shard always runs from scratch. The file
/// is rewritten atomically (temp + rename) in shard-manifest order either way,
/// so header and records are always published together.
///
/// # Errors
///
/// Returns I/O errors from the file system and [`execute_unit`] failures.
pub fn run_shard_to_file(
    spec: &SweepSpec,
    manifest: &Manifest,
    shards: usize,
    partition: Partition,
    shard: usize,
    path: &Path,
    resume: bool,
) -> Result<ShardOutcome, SweepError> {
    run_shard_to_file_with_jobs(spec, manifest, shards, partition, shard, path, resume, 1)
}

/// [`run_shard_to_file`] with intra-shard parallelism: the shard's pending
/// units are fanned over `jobs` scoped worker threads (`jobs <= 1` means the
/// plain sequential path), so one shard process can saturate its host.
///
/// The output is **byte-identical to the sequential run** regardless of
/// thread count or timing: every record line is a pure function of its unit,
/// workers write into pre-assigned slots of the shard-manifest order, and the
/// file is emitted in that order — threads only decide *when* a slot is
/// filled, never *where*. Checkpoint reuse composes with parallelism (only
/// missing units are fanned out).
///
/// # Errors
///
/// Returns I/O errors from the file system and [`execute_unit`] failures.
///
/// # Panics
///
/// Propagates panics from worker threads.
#[allow(clippy::too_many_arguments)]
pub fn run_shard_to_file_with_jobs(
    spec: &SweepSpec,
    manifest: &Manifest,
    shards: usize,
    partition: Partition,
    shard: usize,
    path: &Path,
    resume: bool,
    jobs: usize,
) -> Result<ShardOutcome, SweepError> {
    let opts = SweepOptions {
        jobs,
        resume,
        dedup: false,
        cache_dir: None,
    };
    run_shard_to_file_with_opts(spec, manifest, shards, partition, shard, path, &opts)
        .map(|report| report.outcome)
}

/// Executes `(tag, unit)` tasks, fanning over `jobs` scoped worker threads
/// when `jobs > 1`, and returns `(tag, record)` pairs (in worker-stripe
/// order — callers address results by tag, never by position). This is the
/// single execution engine behind both the honest and the dedup shard paths.
fn execute_tagged(
    spec: &SweepSpec,
    tasks: &[(usize, &SweepUnit)],
    jobs: usize,
) -> Result<Vec<(usize, RunRecord)>, SweepError> {
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks
            .iter()
            .map(|&(tag, unit)| execute_unit(spec, unit).map(|record| (tag, record)))
            .collect();
    }
    let workers = jobs.min(tasks.len());
    let worker_results: Vec<Result<Vec<(usize, RunRecord)>, SweepError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    scope.spawn(move || {
                        tasks
                            .iter()
                            .skip(worker)
                            .step_by(workers)
                            .map(|&(tag, unit)| {
                                execute_unit(spec, unit).map(|record| (tag, record))
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep job thread panicked"))
                .collect()
        });
    let mut out = Vec::with_capacity(tasks.len());
    for result in worker_results {
        out.extend(result?);
    }
    Ok(out)
}

/// Produces the lines of `pending` `(tag, unit)` tasks through the dedup
/// pipeline: cluster by canonical fingerprint, consult the cache per cluster,
/// execute only the representatives of missed clusters (jobs-parallel),
/// publish fresh results to the cache, and emit every member's line by
/// rewriting its representative's record ([`RunRecord::rebind`], which
/// asserts the cluster-key fields agree).
///
/// Returns one `(tag, line)` per task plus the [`DedupStats`] of the batch.
/// The lines are byte-identical to honest per-unit execution — the executor
/// runs every unit on its canonical network, so members of a class cannot
/// differ (the property the differential tests pin).
fn execute_tagged_dedup(
    spec: &SweepSpec,
    pending: &[(usize, &SweepUnit)],
    jobs: usize,
    cache_dir: Option<&Path>,
) -> Result<(Vec<(usize, String)>, DedupStats), SweepError> {
    let unit_refs: Vec<&SweepUnit> = pending.iter().map(|&(_, unit)| unit).collect();
    let clusters = cluster_units(spec, &unit_refs)?;
    let cache = match cache_dir {
        Some(dir) => Some(ResultCache::new(dir).map_err(SweepError::Io)?),
        None => None,
    };
    let mut stats = DedupStats {
        units: pending.len(),
        clusters: clusters.len(),
        ..DedupStats::default()
    };

    // Cache pass: resolve whole clusters from the content-addressed store.
    let mut records: Vec<Option<RunRecord>> = vec![None; clusters.len()];
    let mut to_run: Vec<(usize, &SweepUnit)> = Vec::new();
    for (position, cluster) in clusters.iter().enumerate() {
        let representative = pending[cluster.representative].1;
        if let Some(cache) = &cache {
            if let Some(payload) = cache.load(&cluster.fingerprint) {
                stats.cache_hits += 1;
                records[position] = Some(payload.record_for(representative));
                continue;
            }
            stats.cache_misses += 1;
        }
        to_run.push((position, representative));
    }

    // Execution pass: representatives of unresolved clusters only.
    stats.representatives_run = to_run.len();
    stats.members_by_reference = pending.len() - to_run.len();
    for (position, record) in execute_tagged(spec, &to_run, jobs)? {
        if let Some(cache) = &cache {
            cache
                .store(
                    &clusters[position].fingerprint,
                    &CachePayload::from_record(&record),
                )
                .map_err(SweepError::Io)?;
        }
        records[position] = Some(record);
    }

    // Emission pass: every member's line from its cluster's record.
    let mut lines = Vec::with_capacity(pending.len());
    for (cluster, record) in clusters.iter().zip(records) {
        let record = record.expect("every cluster resolved to a record");
        for &member in &cluster.members {
            let (tag, unit) = pending[member];
            lines.push((tag, record.rebind(unit).to_jsonl_line()));
        }
    }
    Ok((lines, stats))
}

/// The fully optioned shard runner: [`run_shard_to_file_with_jobs`] plus the
/// dedup/cache pipeline of [`crate::dedup`]. With `opts.dedup`, the shard's
/// pending units (checkpoint reuse happens first and composes as usual) are
/// clustered by canonical fingerprint and only representatives execute; the
/// written file is byte-identical to the honest path either way.
///
/// # Errors
///
/// Returns I/O errors from the file system (including the cache directory)
/// and [`execute_unit`] failures.
///
/// # Panics
///
/// Propagates panics from worker threads and the [`RunRecord::rebind`]
/// cluster-key assertions.
pub fn run_shard_to_file_with_opts(
    spec: &SweepSpec,
    manifest: &Manifest,
    shards: usize,
    partition: Partition,
    shard: usize,
    path: &Path,
    opts: &SweepOptions,
) -> Result<ShardReport, SweepError> {
    let units = manifest.shard_units(shards, partition, shard);
    let indices: Vec<usize> = units.iter().map(|u| u.index).collect();
    let checkpoint = if opts.resume {
        match fs::read_to_string(path) {
            Ok(contents) => checkpoint_lines(spec, &contents, &indices),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(SweepError::Io(e)),
        }
    } else {
        HashMap::new()
    };

    let mut outcome = ShardOutcome {
        executed: 0,
        reused: 0,
    };
    // Slot-addressed assembly: `slots[k]` is the line of the shard's k-th unit
    // in shard-manifest order, however (and on whatever thread) it was produced.
    let mut slots: Vec<Option<String>> = Vec::with_capacity(units.len());
    let mut pending: Vec<(usize, &SweepUnit)> = Vec::new();
    for unit in &units {
        match checkpoint.get(&unit.index) {
            Some(line) => {
                outcome.reused += 1;
                slots.push(Some(line.clone()));
            }
            None => {
                outcome.executed += 1;
                pending.push((slots.len(), unit));
                slots.push(None);
            }
        }
    }

    let stats = if opts.dedup {
        let (lines, stats) =
            execute_tagged_dedup(spec, &pending, opts.jobs, opts.cache_dir.as_deref())?;
        for (slot, line) in lines {
            slots[slot] = Some(line);
        }
        Some(stats)
    } else {
        for (slot, record) in execute_tagged(spec, &pending, opts.jobs)? {
            slots[slot] = Some(record.to_jsonl_line());
        }
        None
    };
    let lines: Vec<String> = slots
        .into_iter()
        .map(|slot| slot.expect("every shard unit produced a line"))
        .collect();

    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(SweepError::Io)?;
    }
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut file = fs::File::create(&tmp).map_err(SweepError::Io)?;
        writeln!(file, "{}", spec_header(spec)).map_err(SweepError::Io)?;
        for line in &lines {
            writeln!(file, "{line}").map_err(SweepError::Io)?;
        }
        file.sync_all().map_err(SweepError::Io)?;
    }
    fs::rename(&tmp, path).map_err(SweepError::Io)?;
    Ok(ShardReport { outcome, stats })
}

/// The in-memory dedup counterpart of [`shard_lines`]: executes shard `shard`
/// of `shards` through the dedup/cache pipeline and returns its `(index,
/// line)` pairs (in manifest order) together with the batch's [`DedupStats`].
/// The lines are byte-identical to [`shard_lines`] — this is the helper the
/// differential tests drive.
///
/// # Errors
///
/// Propagates execution, cache-I/O and clustering failures.
pub fn dedup_shard_lines(
    spec: &SweepSpec,
    manifest: &Manifest,
    shards: usize,
    partition: Partition,
    shard: usize,
    cache_dir: Option<&Path>,
) -> Result<(ShardLines, DedupStats), SweepError> {
    let units = manifest.shard_units(shards, partition, shard);
    let pending: Vec<(usize, &SweepUnit)> = units.iter().map(|&u| (u.index, u)).collect();
    let (mut lines, stats) = execute_tagged_dedup(spec, &pending, 1, cache_dir)?;
    lines.sort_unstable_by_key(|&(index, _)| index);
    Ok((lines, stats))
}

/// Merges shard line sets back into the canonical manifest order.
///
/// # Errors
///
/// Returns [`SweepError::Merge`] if any unit index is missing, duplicated or
/// out of range for a manifest of `total_units`.
pub fn merge_lines(
    total_units: usize,
    shards: impl IntoIterator<Item = ShardLines>,
) -> Result<String, SweepError> {
    let mut slots: Vec<Option<String>> = vec![None; total_units];
    for shard in shards {
        for (index, line) in shard {
            let slot = slots.get_mut(index).ok_or_else(|| {
                SweepError::Merge(format!(
                    "unit index {index} out of range for manifest of {total_units}"
                ))
            })?;
            if slot.is_some() {
                return Err(SweepError::Merge(format!(
                    "unit index {index} produced by more than one shard"
                )));
            }
            *slot = Some(line);
        }
    }
    let mut out = String::new();
    for (index, slot) in slots.into_iter().enumerate() {
        let line = slot.ok_or_else(|| {
            SweepError::Merge(format!("unit index {index} missing from every shard"))
        })?;
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// Reads shard files and merges them to `out` in canonical order.
///
/// Comment lines (`#…`, in particular the [`spec_header`]) are skipped — the
/// merged output is pure records. Every other line of every shard file must be
/// a complete canonical record (a merge is only attempted after all shards
/// report success; torn files are a resume-time concern, not a merge-time
/// one).
///
/// # Errors
///
/// Returns I/O errors, invalid-record errors and the coverage errors of
/// [`merge_lines`].
pub fn merge_shard_files(
    total_units: usize,
    shard_paths: &[std::path::PathBuf],
    out: &Path,
) -> Result<usize, SweepError> {
    let mut shards = Vec::with_capacity(shard_paths.len());
    for path in shard_paths {
        let contents = fs::read_to_string(path).map_err(SweepError::Io)?;
        let mut lines = Vec::new();
        for line in contents.lines() {
            if line.starts_with('#') {
                continue;
            }
            let record = RunRecord::parse_line(line).ok_or_else(|| {
                SweepError::Merge(format!(
                    "{}: invalid record line (shard incomplete?): {line:?}",
                    path.display()
                ))
            })?;
            lines.push((record.index, line.to_owned()));
        }
        shards.push(lines);
    }
    let merged = merge_lines(total_units, shards)?;
    if let Some(parent) = out.parent() {
        fs::create_dir_all(parent).map_err(SweepError::Io)?;
    }
    // Same atomic publication as shard files: a parent killed mid-merge must
    // leave no torn merged.jsonl for a later --check to misdiagnose.
    let tmp = out.with_extension("jsonl.tmp");
    fs::write(&tmp, &merged).map_err(SweepError::Io)?;
    fs::rename(&tmp, out).map_err(SweepError::Io)?;
    Ok(total_units)
}

/// Executes a whole sweep in the current process — every shard sequentially —
/// and returns the merged JSONL. The `shards = 1` case is the single-process
/// baseline the property tests compare against.
///
/// # Errors
///
/// Propagates execution and merge errors.
pub fn run_sweep_in_process(
    spec: &SweepSpec,
    shards: usize,
    partition: Partition,
) -> Result<String, SweepError> {
    let manifest = Manifest::from_spec(spec);
    let shard_sets: Result<Vec<ShardLines>, SweepError> = (0..shards)
        .map(|shard| shard_lines(spec, &manifest, shards, partition, shard))
        .collect();
    merge_lines(manifest.len(), shard_sets?)
}

/// [`run_sweep_in_process`] with the shards fanned over OS threads (one scoped
/// thread per shard). The merged output is byte-identical to the sequential
/// path regardless of thread timing, because each line is a pure function of
/// its unit and the merge re-sorts by unit index.
///
/// # Errors
///
/// Propagates execution and merge errors.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_sweep_threaded(
    spec: &SweepSpec,
    shards: usize,
    partition: Partition,
) -> Result<String, SweepError> {
    let manifest = Manifest::from_spec(spec);
    let manifest_ref = &manifest;
    let results: Vec<Result<ShardLines, SweepError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move || shard_lines(spec, manifest_ref, shards, partition, shard))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep shard thread panicked"))
            .collect()
    });
    let shard_sets: Result<Vec<ShardLines>, SweepError> = results.into_iter().collect();
    merge_lines(manifest.len(), shard_sets?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ProtocolSpec, TopologySpec};

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            protocols: vec![ProtocolSpec::Mapping],
            topologies: vec![TopologySpec::Path { n: 2 }, TopologySpec::ChainGn { n: 3 }],
            seeds: vec![0],
            random_schedulers: 1,
            max_deliveries: 100_000,
            scenarios: vec![crate::ScenarioSpec::Pristine],
        }
    }

    #[test]
    fn merge_restores_manifest_order() {
        let merged = merge_lines(
            3,
            vec![
                vec![(2, "c".to_owned()), (0, "a".to_owned())],
                vec![(1, "b".to_owned())],
            ],
        )
        .unwrap();
        assert_eq!(merged, "a\nb\nc\n");
    }

    #[test]
    fn merge_rejects_missing_duplicate_and_out_of_range() {
        let missing = merge_lines(2, vec![vec![(0, "a".to_owned())]]).unwrap_err();
        assert!(missing.to_string().contains("missing"), "{missing}");
        let dup = merge_lines(
            2,
            vec![vec![(0, "a".to_owned())], vec![(0, "a".to_owned())]],
        )
        .unwrap_err();
        assert!(dup.to_string().contains("more than one"), "{dup}");
        let range = merge_lines(1, vec![vec![(7, "x".to_owned())]]).unwrap_err();
        assert!(range.to_string().contains("out of range"), "{range}");
    }

    #[test]
    fn threaded_sweep_matches_sequential() {
        let spec = tiny_spec();
        let sequential = run_sweep_in_process(&spec, 1, Partition::Hash).unwrap();
        for shards in [1usize, 2, 4] {
            assert_eq!(
                run_sweep_threaded(&spec, shards, Partition::Hash).unwrap(),
                sequential
            );
        }
    }

    #[test]
    fn checkpoint_keeps_only_complete_expected_lines() {
        let spec = tiny_spec();
        let manifest = Manifest::from_spec(&spec);
        let lines = shard_lines(&spec, &manifest, 1, Partition::RoundRobin, 0).unwrap();
        let mut contents = spec_header(&spec);
        contents.push('\n');
        for (_, line) in &lines {
            contents.push_str(line);
            contents.push('\n');
        }
        let all: Vec<usize> = (0..manifest.len()).collect();
        assert_eq!(
            checkpoint_lines(&spec, &contents, &all).len(),
            manifest.len()
        );
        // A torn tail is dropped; foreign indices are filtered.
        let torn = &contents[..contents.len() - 10];
        let kept = checkpoint_lines(&spec, torn, &all);
        assert_eq!(kept.len(), manifest.len() - 1);
        let only_first = checkpoint_lines(&spec, &contents, &[0]);
        assert_eq!(only_first.len(), 1);
        assert!(only_first.contains_key(&0));
    }

    #[test]
    fn checkpoint_requires_a_matching_spec_header() {
        let spec = tiny_spec();
        let manifest = Manifest::from_spec(&spec);
        let lines = shard_lines(&spec, &manifest, 1, Partition::RoundRobin, 0).unwrap();
        let body: String = lines.iter().map(|(_, line)| format!("{line}\n")).collect();
        let all: Vec<usize> = (0..manifest.len()).collect();
        // No header at all (e.g. a pre-header layout): nothing is reused.
        assert!(checkpoint_lines(&spec, &body, &all).is_empty());
        // A header from an *edited* spec — even one whose manifest identities
        // are unchanged, like a different delivery budget: nothing is reused.
        let mut edited = spec.clone();
        edited.max_deliveries += 1;
        let stale = format!("{}\n{body}", spec_header(&edited));
        assert!(checkpoint_lines(&spec, &stale, &all).is_empty());
        // The matching header accepts the very same body.
        let fresh = format!("{}\n{body}", spec_header(&spec));
        assert_eq!(checkpoint_lines(&spec, &fresh, &all).len(), manifest.len());
    }
}
