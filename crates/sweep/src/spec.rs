//! The declarative sweep specification: protocols × topologies × seeds ×
//! scheduler battery.
//!
//! A [`SweepSpec`] names *families* of executions, exactly the universally
//! quantified statements of the paper: every protocol in the list runs on every
//! topology instance, under every scheduler of the standard battery, for every
//! battery seed. The spec has a canonical line-oriented text form
//! ([`SweepSpec::to_spec_string`] / [`SweepSpec::parse`]) so a sweep can be
//! shipped to worker processes as a file and reproduced exactly.
//!
//! Every random topology carries its **own** generator seed in the spec, so any
//! unit of the sweep can rebuild its network in any process without observing
//! the RNG draws of other topologies. Probabilities are stored as integer
//! percentages to keep the text form free of float formatting questions.

use anet_core::StateCorruption;
use anet_graph::{generators, Network, NetworkError, NodeId};
use anet_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::SweepError;

/// A protocol family to sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// Full topology extraction (`anet_core::mapping`, interned records).
    Mapping,
    /// Unique label assignment (`anet_core::labeling`).
    Labeling,
    /// General-graph broadcast with a synthetic payload of the given size in
    /// bits (`anet_core::general_broadcast`).
    GeneralBroadcast {
        /// `|m|` in bits for the synthetic payload.
        payload_bits: u64,
    },
}

impl ProtocolSpec {
    /// Canonical name, used in manifests and JSONL records.
    pub fn name(&self) -> String {
        match self {
            ProtocolSpec::Mapping => "mapping".to_owned(),
            ProtocolSpec::Labeling => "labeling".to_owned(),
            ProtocolSpec::GeneralBroadcast { payload_bits } => {
                format!("general-broadcast/{payload_bits}")
            }
        }
    }

    /// Canonical spec line (without the `protocol ` keyword).
    fn spec_args(&self) -> String {
        match self {
            ProtocolSpec::Mapping => "mapping".to_owned(),
            ProtocolSpec::Labeling => "labeling".to_owned(),
            ProtocolSpec::GeneralBroadcast { payload_bits } => {
                format!("general-broadcast {payload_bits}")
            }
        }
    }

    fn parse_args(args: &[&str], line: usize) -> Result<Self, SweepError> {
        match args {
            ["mapping"] => Ok(ProtocolSpec::Mapping),
            ["labeling"] => Ok(ProtocolSpec::Labeling),
            ["general-broadcast", bits] => Ok(ProtocolSpec::GeneralBroadcast {
                payload_bits: parse_int(bits, line)?,
            }),
            _ => Err(SweepError::Spec(format!(
                "line {line}: unknown protocol {args:?} (expected `mapping`, `labeling` or `general-broadcast <bits>`)"
            ))),
        }
    }
}

/// A topology instance to sweep: a generator family plus its full parameter
/// set, including the generator seed for random families.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// The lower-bound chain family `G_n`.
    ChainGn {
        /// Number of internal vertices.
        n: usize,
    },
    /// A degenerate grounded tree: a simple path.
    Path {
        /// Number of internal vertices.
        n: usize,
    },
    /// A star: the root feeds a hub which feeds `leaves` leaves.
    Star {
        /// Number of leaves.
        leaves: usize,
    },
    /// The complete DAG on `internal` internal vertices.
    CompleteDag {
        /// Number of internal vertices.
        internal: usize,
    },
    /// `k` stacked diamonds.
    DiamondStack {
        /// Number of diamonds.
        k: usize,
    },
    /// A directed cycle of length `k` with a tail to the terminal.
    CycleWithTail {
        /// Cycle length.
        k: usize,
    },
    /// `count` nested cycles of length `len`.
    NestedCycles {
        /// Number of cycles.
        count: usize,
        /// Length of each cycle.
        len: usize,
    },
    /// A random DAG; `edge_pct` is the extra-edge probability in percent.
    RandomDag {
        /// Number of internal vertices.
        internal: usize,
        /// Extra-edge probability, percent (0–100).
        edge_pct: u8,
        /// Generator seed.
        seed: u64,
    },
    /// A random cyclic digraph; probabilities in percent.
    RandomCyclic {
        /// Number of internal vertices.
        internal: usize,
        /// Extra forward-edge probability, percent (0–100).
        forward_pct: u8,
        /// Back-edge probability, percent (0–100).
        back_pct: u8,
        /// Generator seed.
        seed: u64,
    },
    /// A layered random DAG.
    LayeredDag {
        /// Number of layers.
        layers: usize,
        /// Vertices per layer.
        width: usize,
        /// Out-fan per vertex.
        fan: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A random grounded tree; `extra_pct` is the extra-terminal-edge
    /// probability in percent.
    RandomGroundedTree {
        /// Number of internal vertices.
        internal: usize,
        /// Maximum out-degree (≥ 2).
        max_out: usize,
        /// Extra terminal-edge probability, percent (0–100).
        extra_pct: u8,
        /// Generator seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Canonical instance name, used in manifests and JSONL records. Names
    /// contain no spaces, quotes or commas (the JSONL reader relies on this).
    pub fn name(&self) -> String {
        match *self {
            TopologySpec::ChainGn { n } => format!("chain-gn/{n}"),
            TopologySpec::Path { n } => format!("path/{n}"),
            TopologySpec::Star { leaves } => format!("star/{leaves}"),
            TopologySpec::CompleteDag { internal } => format!("complete-dag/{internal}"),
            TopologySpec::DiamondStack { k } => format!("diamond-stack/{k}"),
            TopologySpec::CycleWithTail { k } => format!("cycle-with-tail/{k}"),
            TopologySpec::NestedCycles { count, len } => format!("nested-cycles/{count}x{len}"),
            TopologySpec::RandomDag {
                internal,
                edge_pct,
                seed,
            } => format!("random-dag/{internal}p{edge_pct}s{seed}"),
            TopologySpec::RandomCyclic {
                internal,
                forward_pct,
                back_pct,
                seed,
            } => format!("random-cyclic/{internal}f{forward_pct}b{back_pct}s{seed}"),
            TopologySpec::LayeredDag {
                layers,
                width,
                fan,
                seed,
            } => format!("layered-dag/{layers}x{width}f{fan}s{seed}"),
            TopologySpec::RandomGroundedTree {
                internal,
                max_out,
                extra_pct,
                seed,
            } => format!("grounded-tree/{internal}o{max_out}p{extra_pct}s{seed}"),
        }
    }

    /// Builds the network. Random families seed their own fresh [`StdRng`], so
    /// construction is independent of every other unit in the sweep — the
    /// property that lets any shard rebuild any unit's network bit-identically.
    pub fn build(&self) -> Result<Network, NetworkError> {
        match *self {
            TopologySpec::ChainGn { n } => generators::chain_gn(n),
            TopologySpec::Path { n } => generators::path_network(n),
            TopologySpec::Star { leaves } => generators::star_network(leaves),
            TopologySpec::CompleteDag { internal } => generators::complete_dag(internal),
            TopologySpec::DiamondStack { k } => generators::diamond_stack(k),
            TopologySpec::CycleWithTail { k } => generators::cycle_with_tail(k),
            TopologySpec::NestedCycles { count, len } => generators::nested_cycles(count, len),
            TopologySpec::RandomDag {
                internal,
                edge_pct,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                generators::random_dag(&mut rng, internal, pct(edge_pct))
            }
            TopologySpec::RandomCyclic {
                internal,
                forward_pct,
                back_pct,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                generators::random_cyclic(&mut rng, internal, pct(forward_pct), pct(back_pct))
            }
            TopologySpec::LayeredDag {
                layers,
                width,
                fan,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                generators::layered_dag(&mut rng, layers, width, fan)
            }
            TopologySpec::RandomGroundedTree {
                internal,
                max_out,
                extra_pct,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(seed);
                generators::random_grounded_tree(&mut rng, internal, max_out, pct(extra_pct))
            }
        }
    }

    /// Canonical spec line (without the `topology ` keyword).
    fn spec_args(&self) -> String {
        match *self {
            TopologySpec::ChainGn { n } => format!("chain-gn {n}"),
            TopologySpec::Path { n } => format!("path {n}"),
            TopologySpec::Star { leaves } => format!("star {leaves}"),
            TopologySpec::CompleteDag { internal } => format!("complete-dag {internal}"),
            TopologySpec::DiamondStack { k } => format!("diamond-stack {k}"),
            TopologySpec::CycleWithTail { k } => format!("cycle-with-tail {k}"),
            TopologySpec::NestedCycles { count, len } => format!("nested-cycles {count} {len}"),
            TopologySpec::RandomDag {
                internal,
                edge_pct,
                seed,
            } => format!("random-dag {internal} {edge_pct} {seed}"),
            TopologySpec::RandomCyclic {
                internal,
                forward_pct,
                back_pct,
                seed,
            } => format!("random-cyclic {internal} {forward_pct} {back_pct} {seed}"),
            TopologySpec::LayeredDag {
                layers,
                width,
                fan,
                seed,
            } => format!("layered-dag {layers} {width} {fan} {seed}"),
            TopologySpec::RandomGroundedTree {
                internal,
                max_out,
                extra_pct,
                seed,
            } => format!("grounded-tree {internal} {max_out} {extra_pct} {seed}"),
        }
    }

    fn parse_args(args: &[&str], line: usize) -> Result<Self, SweepError> {
        let spec = match args {
            ["chain-gn", n] => TopologySpec::ChainGn {
                n: parse_int(n, line)?,
            },
            ["path", n] => TopologySpec::Path {
                n: parse_int(n, line)?,
            },
            ["star", leaves] => TopologySpec::Star {
                leaves: parse_int(leaves, line)?,
            },
            ["complete-dag", internal] => TopologySpec::CompleteDag {
                internal: parse_int(internal, line)?,
            },
            ["diamond-stack", k] => TopologySpec::DiamondStack {
                k: parse_int(k, line)?,
            },
            ["cycle-with-tail", k] => TopologySpec::CycleWithTail {
                k: parse_int(k, line)?,
            },
            ["nested-cycles", count, len] => TopologySpec::NestedCycles {
                count: parse_int(count, line)?,
                len: parse_int(len, line)?,
            },
            ["random-dag", internal, pct, seed] => TopologySpec::RandomDag {
                internal: parse_int(internal, line)?,
                edge_pct: parse_pct(pct, line)?,
                seed: parse_int(seed, line)?,
            },
            ["random-cyclic", internal, fwd, back, seed] => TopologySpec::RandomCyclic {
                internal: parse_int(internal, line)?,
                forward_pct: parse_pct(fwd, line)?,
                back_pct: parse_pct(back, line)?,
                seed: parse_int(seed, line)?,
            },
            ["layered-dag", layers, width, fan, seed] => TopologySpec::LayeredDag {
                layers: parse_int(layers, line)?,
                width: parse_int(width, line)?,
                fan: parse_int(fan, line)?,
                seed: parse_int(seed, line)?,
            },
            ["grounded-tree", internal, max_out, pct, seed] => TopologySpec::RandomGroundedTree {
                internal: parse_int(internal, line)?,
                max_out: parse_int(max_out, line)?,
                extra_pct: parse_pct(pct, line)?,
                seed: parse_int(seed, line)?,
            },
            _ => {
                return Err(SweepError::Spec(format!(
                    "line {line}: unknown topology {args:?}"
                )))
            }
        };
        Ok(spec)
    }
}

/// An execution scenario: the adversary (if any) each run of the sweep is
/// subjected to. Every spec always sweeps the [`ScenarioSpec::Pristine`]
/// scenario; `faults` and `corrupt` directives *add* adversarial scenarios,
/// and every unit of the protocol × topology × seed × battery grid runs once
/// per scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioSpec {
    /// Reliable delivery, clean initial state — the classical sweep.
    Pristine,
    /// Deliveries pass through a [`FaultyScheduler`](anet_sim::FaultyScheduler)
    /// driven by this plan: percentages of drops and duplicates, bounded
    /// reordering depth, a fault-stream seed, optional crash windows, and an
    /// optional retry budget that switches the unit to the re-flood runner
    /// ([`anet_sim::run_recovering`]).
    Faulty {
        /// Per-delivery drop probability in percent (0–100).
        drop_pct: u8,
        /// Per-delivery duplication probability in percent (0–100).
        dup_pct: u8,
        /// Maximum reordering depth (0 disables reordering).
        reorder: usize,
        /// Fault-stream seed, mixed per-unit so each battery cell draws its
        /// own deterministic stream.
        seed: u64,
        /// Re-flood retry budget. `0` runs the pristine single-shot engine;
        /// any larger value runs the unit through
        /// [`anet_sim::run_recovering`] with this round budget.
        retry: u32,
        /// Crash windows `(node, from, until)`: vertex `node` (an index into
        /// the unit's *canonical* relabeling) destroys every delivery
        /// addressed to it during engine steps `[from, until)`. An
        /// out-of-range index matches no vertex and is a no-op.
        crashes: Vec<(usize, u64, u64)>,
    },
    /// The run starts from corrupted protocol state and success is the
    /// protocol's recovery predicate.
    Corrupt(StateCorruption),
}

impl ScenarioSpec {
    /// Canonical name, JSONL-safe, used in manifests, records and cache keys.
    ///
    /// Faulty scenarios keep their historical `faults/d…u…r…s…` form and
    /// append `+t{retry}` / `+c{node}:{from}..{until}` segments only when the
    /// corresponding field is set, so every pre-existing scenario name — and
    /// every unit key, `unit-v2` fingerprint and cache entry derived from it —
    /// is byte-identical to what earlier sweeps produced.
    pub fn name(&self) -> String {
        match self {
            ScenarioSpec::Pristine => "pristine".to_owned(),
            ScenarioSpec::Faulty {
                drop_pct,
                dup_pct,
                reorder,
                seed,
                retry,
                crashes,
            } => {
                let mut name = format!("faults/d{drop_pct}u{dup_pct}r{reorder}s{seed}");
                if *retry > 0 {
                    name.push_str(&format!("+t{retry}"));
                }
                for (node, from, until) in crashes {
                    name.push_str(&format!("+c{node}:{from}..{until}"));
                }
                name
            }
            ScenarioSpec::Corrupt(c) => format!("corrupt/{}", c.name()),
        }
    }

    /// Whether this is the pristine scenario.
    pub fn is_pristine(&self) -> bool {
        matches!(self, ScenarioSpec::Pristine)
    }

    /// The fault plan for one unit of a [`ScenarioSpec::Faulty`] sweep, `None`
    /// otherwise. The plan seed mixes the scenario's fault seed with the
    /// unit's battery seed and battery index — all fields of the dedup
    /// cluster key — so equivalent units draw identical fault streams no
    /// matter which shard, job or dedup representative executes them.
    pub fn fault_plan(&self, battery_seed: u64, battery_index: usize) -> Option<FaultPlan> {
        match self {
            ScenarioSpec::Faulty {
                drop_pct,
                dup_pct,
                reorder,
                seed,
                crashes,
                ..
            } => {
                let mixed = mix64(mix64(seed ^ 0xFA17_0000).wrapping_add(battery_seed))
                    .wrapping_add(battery_index as u64);
                let mut plan = FaultPlan::reliable()
                    .with_drops(*drop_pct)
                    .with_duplicates(*dup_pct)
                    .with_reorder(*reorder)
                    .with_seed(mix64(mixed));
                for &(node, from, until) in crashes {
                    plan = plan.with_crash(NodeId(node), from, until);
                }
                Some(plan)
            }
            _ => None,
        }
    }

    /// The re-flood retry budget of a [`ScenarioSpec::Faulty`] scenario
    /// (0 for every other scenario and for retry-free fault scenarios).
    pub fn retry_budget(&self) -> u32 {
        match self {
            ScenarioSpec::Faulty { retry, .. } => *retry,
            _ => 0,
        }
    }

    /// Canonical spec line (with the directive keyword), or `None` for the
    /// implicit pristine scenario.
    fn spec_line(&self) -> Option<String> {
        match self {
            ScenarioSpec::Pristine => None,
            ScenarioSpec::Faulty {
                drop_pct,
                dup_pct,
                reorder,
                seed,
                retry,
                crashes,
            } => {
                let mut line =
                    format!("faults drop={drop_pct} dup={dup_pct} reorder={reorder} seed={seed}");
                if *retry > 0 {
                    line.push_str(&format!(" retry={retry}"));
                }
                for (node, from, until) in crashes {
                    line.push_str(&format!(" crash={node}:{from}..{until}"));
                }
                Some(line)
            }
            ScenarioSpec::Corrupt(StateCorruption::ScrambledLabels { seed }) => {
                Some(format!("corrupt labels {seed}"))
            }
            ScenarioSpec::Corrupt(StateCorruption::LostPartition) => {
                Some("corrupt partition".to_owned())
            }
            ScenarioSpec::Corrupt(StateCorruption::StaleTerminal) => {
                Some("corrupt stale-terminal".to_owned())
            }
        }
    }

    fn parse_faults(args: &[&str], line: usize) -> Result<Self, SweepError> {
        let (mut drop_pct, mut dup_pct, mut reorder, mut seed) = (0u8, 0u8, 0usize, 0u64);
        let mut retry = 0u32;
        let mut crashes: Vec<(usize, u64, u64)> = Vec::new();
        for token in args {
            let Some((key, value)) = token.split_once('=') else {
                return Err(SweepError::Spec(format!(
                    "line {line}: faults expects key=value tokens, got `{token}`"
                )));
            };
            match key {
                "drop" => drop_pct = parse_pct(value, line)?,
                "dup" => dup_pct = parse_pct(value, line)?,
                "reorder" => reorder = parse_int(value, line)?,
                "seed" => seed = parse_int(value, line)?,
                "retry" => retry = parse_int(value, line)?,
                "crash" => crashes.push(parse_crash(value, line)?),
                _ => {
                    return Err(SweepError::Spec(format!(
                        "line {line}: unknown faults key `{key}` (expected drop/dup/reorder/seed/retry/crash)"
                    )))
                }
            }
        }
        if drop_pct == 0 && dup_pct == 0 && reorder == 0 && crashes.is_empty() && retry == 0 {
            return Err(SweepError::Spec(format!(
                "line {line}: faults scenario injects nothing (set drop, dup, reorder or crash; retry alone is the recovery-overhead baseline)"
            )));
        }
        Ok(ScenarioSpec::Faulty {
            drop_pct,
            dup_pct,
            reorder,
            seed,
            retry,
            crashes,
        })
    }

    /// Expands a `faults ramp drop=A..B step=S …` directive into one ordinary
    /// [`ScenarioSpec::Faulty`] scenario per drop intensity `A, A+S, …` up to
    /// and including `B` (when the stride lands on it). Every other key
    /// (`dup`/`reorder`/`seed`/`retry`/`crash`) is shared by all points. The
    /// expansion is pure parse-time sugar: the canonical text form re-emits
    /// the expanded `faults` lines, so fingerprints, unit keys and caches see
    /// only ordinary fault scenarios.
    fn parse_ramp(args: &[&str], line: usize) -> Result<Vec<Self>, SweepError> {
        let mut drop_range: Option<(u8, u8)> = None;
        let mut step = 0u8;
        let (mut dup_pct, mut reorder, mut seed) = (0u8, 0usize, 0u64);
        let mut retry = 0u32;
        let mut crashes: Vec<(usize, u64, u64)> = Vec::new();
        for token in args {
            let Some((key, value)) = token.split_once('=') else {
                return Err(SweepError::Spec(format!(
                    "line {line}: faults ramp expects key=value tokens, got `{token}`"
                )));
            };
            match key {
                "drop" => {
                    let Some((a, b)) = value.split_once("..") else {
                        return Err(SweepError::Spec(format!(
                            "line {line}: ramp drop expects a range `a..b`, got `{value}`"
                        )));
                    };
                    let a = parse_pct(a, line)?;
                    let b = parse_pct(b, line)?;
                    if a > b {
                        return Err(SweepError::Spec(format!(
                            "line {line}: empty ramp range `{value}`"
                        )));
                    }
                    drop_range = Some((a, b));
                }
                "step" => step = parse_int(value, line)?,
                "dup" => dup_pct = parse_pct(value, line)?,
                "reorder" => reorder = parse_int(value, line)?,
                "seed" => seed = parse_int(value, line)?,
                "retry" => retry = parse_int(value, line)?,
                "crash" => crashes.push(parse_crash(value, line)?),
                _ => {
                    return Err(SweepError::Spec(format!(
                        "line {line}: unknown faults ramp key `{key}` (expected drop/step/dup/reorder/seed/retry/crash)"
                    )))
                }
            }
        }
        let Some((from, until)) = drop_range else {
            return Err(SweepError::Spec(format!(
                "line {line}: faults ramp requires `drop=a..b`"
            )));
        };
        if step == 0 {
            return Err(SweepError::Spec(format!(
                "line {line}: faults ramp requires a nonzero `step`"
            )));
        }
        let mut points = Vec::new();
        let mut drop_pct = from;
        loop {
            if drop_pct == 0 && dup_pct == 0 && reorder == 0 && crashes.is_empty() && retry == 0 {
                return Err(SweepError::Spec(format!(
                    "line {line}: ramp baseline point injects nothing (set retry, dup, reorder or crash)"
                )));
            }
            points.push(ScenarioSpec::Faulty {
                drop_pct,
                dup_pct,
                reorder,
                seed,
                retry,
                crashes: crashes.clone(),
            });
            match drop_pct.checked_add(step) {
                Some(next) if next <= until => drop_pct = next,
                _ => break,
            }
        }
        Ok(points)
    }

    fn parse_corrupt(args: &[&str], line: usize) -> Result<Self, SweepError> {
        let corruption = match args {
            ["labels", seed] => StateCorruption::ScrambledLabels {
                seed: parse_int(seed, line)?,
            },
            ["partition"] => StateCorruption::LostPartition,
            ["stale-terminal"] => StateCorruption::StaleTerminal,
            _ => {
                return Err(SweepError::Spec(format!(
                    "line {line}: unknown corruption {args:?} (expected `labels <seed>`, `partition` or `stale-terminal`)"
                )))
            }
        };
        Ok(ScenarioSpec::Corrupt(corruption))
    }
}

/// SplitMix64 finalizer, used to mix fault-stream seeds per unit.
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pct(p: u8) -> f64 {
    f64::from(p) / 100.0
}

fn parse_int<T: std::str::FromStr>(token: &str, line: usize) -> Result<T, SweepError> {
    token
        .parse()
        .map_err(|_| SweepError::Spec(format!("line {line}: `{token}` is not a valid integer")))
}

fn parse_pct(token: &str, line: usize) -> Result<u8, SweepError> {
    let p: u8 = parse_int(token, line)?;
    if p > 100 {
        return Err(SweepError::Spec(format!(
            "line {line}: percentage {p} out of range (0-100)"
        )));
    }
    Ok(p)
}

/// A crash-window value: `<node>:<from>..<until>` with `[from, until)` in
/// engine steps. The empty window `from == until` is accepted (and covers
/// nothing) so boundary sweeps can be written directly.
fn parse_crash(value: &str, line: usize) -> Result<(usize, u64, u64), SweepError> {
    let malformed = || {
        SweepError::Spec(format!(
            "line {line}: crash expects `<node>:<from>..<until>`, got `{value}`"
        ))
    };
    let (node, window) = value.split_once(':').ok_or_else(malformed)?;
    let (from, until) = window.split_once("..").ok_or_else(malformed)?;
    let node = parse_int(node, line)?;
    let from: u64 = parse_int(from, line)?;
    let until: u64 = parse_int(until, line)?;
    if from > until {
        return Err(SweepError::Spec(format!(
            "line {line}: crash window `{value}` ends before it starts"
        )));
    }
    Ok((node, from, until))
}

/// A full sweep specification.
///
/// The canonical unit order (the order a single-process execution emits
/// records, and the order shard outputs are merged back into) is the nested
/// loop **protocol → topology → seed → battery position**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Protocol families to run.
    pub protocols: Vec<ProtocolSpec>,
    /// Topology instances to run on.
    pub topologies: Vec<TopologySpec>,
    /// Battery seeds: each seeds the random schedulers of one battery sweep.
    pub seeds: Vec<u64>,
    /// Number of seeded random schedulers per battery (battery size is
    /// `4 + random_schedulers`).
    pub random_schedulers: usize,
    /// Delivery budget per run.
    pub max_deliveries: u64,
    /// Execution scenarios. `scenarios[0]` is always
    /// [`ScenarioSpec::Pristine`]; `faults`/`corrupt` directives append
    /// adversarial scenarios after it. A spec with only the pristine scenario
    /// serialises exactly as it did before scenarios existed, so historical
    /// spec files, fingerprints and checkpoints stay valid.
    pub scenarios: Vec<ScenarioSpec>,
}

impl SweepSpec {
    /// Parses the canonical line-oriented text form. Empty lines and `#`
    /// comments are ignored; later `seeds`/`random-schedulers`/
    /// `max-deliveries` lines override earlier ones; `protocol`/`topology`
    /// lines accumulate in order.
    pub fn parse(text: &str) -> Result<SweepSpec, SweepError> {
        let mut spec = SweepSpec {
            protocols: Vec::new(),
            topologies: Vec::new(),
            seeds: vec![0],
            random_schedulers: 2,
            max_deliveries: 10_000_000,
            scenarios: vec![ScenarioSpec::Pristine],
        };
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.as_slice() {
                ["protocol", rest @ ..] => {
                    spec.protocols
                        .push(ProtocolSpec::parse_args(rest, line_no)?);
                }
                ["topology", rest @ ..] => {
                    spec.topologies
                        .push(TopologySpec::parse_args(rest, line_no)?);
                }
                ["seeds", rest @ ..] if !rest.is_empty() => {
                    spec.seeds = parse_seeds(rest, line_no)?;
                }
                ["random-schedulers", n] => {
                    spec.random_schedulers = parse_int(n, line_no)?;
                }
                ["max-deliveries", n] => {
                    spec.max_deliveries = parse_int(n, line_no)?;
                }
                ["faults", "ramp", rest @ ..] => {
                    spec.scenarios
                        .extend(ScenarioSpec::parse_ramp(rest, line_no)?);
                }
                ["faults", rest @ ..] => {
                    spec.scenarios
                        .push(ScenarioSpec::parse_faults(rest, line_no)?);
                }
                ["corrupt", rest @ ..] => {
                    spec.scenarios
                        .push(ScenarioSpec::parse_corrupt(rest, line_no)?);
                }
                _ => {
                    return Err(SweepError::Spec(format!(
                        "line {line_no}: unrecognised directive `{line}`"
                    )))
                }
            }
        }
        if spec.protocols.is_empty() {
            return Err(SweepError::Spec("spec declares no protocols".to_owned()));
        }
        if spec.topologies.is_empty() {
            return Err(SweepError::Spec("spec declares no topologies".to_owned()));
        }
        if spec.seeds.is_empty() {
            return Err(SweepError::Spec("spec declares no seeds".to_owned()));
        }
        Ok(spec)
    }

    /// The canonical text form: parsing it reproduces `self` exactly.
    pub fn to_spec_string(&self) -> String {
        let mut out = String::from("# anet-sweep specification (canonical form)\n");
        for p in &self.protocols {
            out.push_str(&format!("protocol {}\n", p.spec_args()));
        }
        for t in &self.topologies {
            out.push_str(&format!("topology {}\n", t.spec_args()));
        }
        out.push_str("seeds");
        for s in &self.seeds {
            out.push_str(&format!(" {s}"));
        }
        out.push('\n');
        out.push_str(&format!("random-schedulers {}\n", self.random_schedulers));
        out.push_str(&format!("max-deliveries {}\n", self.max_deliveries));
        // The implicit pristine scenario is never emitted: a scenario-free
        // spec keeps its historical byte-exact text form.
        for scenario in &self.scenarios {
            if let Some(line) = scenario.spec_line() {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// Seed tokens: either plain integers or half-open `a..b` ranges.
fn parse_seeds(tokens: &[&str], line: usize) -> Result<Vec<u64>, SweepError> {
    let mut seeds = Vec::new();
    for token in tokens {
        if let Some((a, b)) = token.split_once("..") {
            let a: u64 = parse_int(a, line)?;
            let b: u64 = parse_int(b, line)?;
            if a >= b {
                return Err(SweepError::Spec(format!(
                    "line {line}: empty seed range `{token}`"
                )));
            }
            seeds.extend(a..b);
        } else {
            seeds.push(parse_int(token, line)?);
        }
    }
    Ok(seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SweepSpec {
        SweepSpec {
            protocols: vec![
                ProtocolSpec::Mapping,
                ProtocolSpec::GeneralBroadcast { payload_bits: 16 },
            ],
            topologies: vec![
                TopologySpec::ChainGn { n: 4 },
                TopologySpec::NestedCycles { count: 2, len: 3 },
                TopologySpec::RandomCyclic {
                    internal: 6,
                    forward_pct: 15,
                    back_pct: 20,
                    seed: 7,
                },
            ],
            seeds: vec![0, 1, 9],
            random_schedulers: 2,
            max_deliveries: 500_000,
            scenarios: vec![
                ScenarioSpec::Pristine,
                ScenarioSpec::Faulty {
                    drop_pct: 10,
                    dup_pct: 5,
                    reorder: 3,
                    seed: 2,
                    retry: 0,
                    crashes: vec![],
                },
                ScenarioSpec::Faulty {
                    drop_pct: 15,
                    dup_pct: 0,
                    reorder: 0,
                    seed: 4,
                    retry: 3,
                    crashes: vec![(2, 1, 5), (4, 0, 0)],
                },
                ScenarioSpec::Corrupt(StateCorruption::ScrambledLabels { seed: 7 }),
                ScenarioSpec::Corrupt(StateCorruption::LostPartition),
                ScenarioSpec::Corrupt(StateCorruption::StaleTerminal),
            ],
        }
    }

    #[test]
    fn spec_round_trips_through_text() {
        let spec = sample_spec();
        let text = spec.to_spec_string();
        let parsed = SweepSpec::parse(&text).expect("canonical form parses");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn seed_ranges_expand() {
        let spec =
            SweepSpec::parse("protocol mapping\ntopology path 3\nseeds 0..3 9 11..13\n").unwrap();
        assert_eq!(spec.seeds, vec![0, 1, 2, 9, 11, 12]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec =
            SweepSpec::parse("# header\n\nprotocol labeling  # inline comment\ntopology star 4\n")
                .unwrap();
        assert_eq!(spec.protocols, vec![ProtocolSpec::Labeling]);
        assert_eq!(spec.topologies, vec![TopologySpec::Star { leaves: 4 }]);
    }

    #[test]
    fn bad_directives_are_rejected_with_line_numbers() {
        for (text, needle) in [
            ("protocol mapping\n", "no topologies"),
            ("topology path 3\n", "no protocols"),
            ("protocol mapping\ntopology path 3\nseeds 5..5\n", "line 3"),
            ("frobnicate 3\n", "line 1"),
            ("protocol warp-drive\n", "line 1"),
            ("topology moebius 3\n", "line 1"),
            ("protocol mapping\ntopology random-dag 5 150 1\n", "line 2"),
        ] {
            let err = SweepSpec::parse(text).expect_err(text);
            assert!(err.to_string().contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn scenario_free_specs_keep_their_historical_text_form() {
        let mut spec = sample_spec();
        spec.scenarios = vec![ScenarioSpec::Pristine];
        let text = spec.to_spec_string();
        assert!(!text.contains("faults") && !text.contains("corrupt"));
        assert_eq!(SweepSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn faults_grammar_accepts_any_key_order_and_subset() {
        let spec = SweepSpec::parse(
            "protocol mapping\ntopology path 3\nfaults seed=9 drop=20\nfaults reorder=2\n",
        )
        .unwrap();
        assert_eq!(
            spec.scenarios,
            vec![
                ScenarioSpec::Pristine,
                ScenarioSpec::Faulty {
                    drop_pct: 20,
                    dup_pct: 0,
                    reorder: 0,
                    seed: 9,
                    retry: 0,
                    crashes: vec![],
                },
                ScenarioSpec::Faulty {
                    drop_pct: 0,
                    dup_pct: 0,
                    reorder: 2,
                    seed: 0,
                    retry: 0,
                    crashes: vec![],
                },
            ]
        );
    }

    #[test]
    fn retry_and_crash_keys_parse_and_round_trip() {
        let text = "protocol mapping\ntopology path 3\nfaults drop=10 seed=3 retry=2 crash=1:4..9 crash=2:0..0\n";
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(
            spec.scenarios[1],
            ScenarioSpec::Faulty {
                drop_pct: 10,
                dup_pct: 0,
                reorder: 0,
                seed: 3,
                retry: 2,
                crashes: vec![(1, 4, 9), (2, 0, 0)],
            }
        );
        assert_eq!(
            spec.scenarios[1].name(),
            "faults/d10u0r0s3+t2+c1:4..9+c2:0..0"
        );
        let canonical = spec.to_spec_string();
        assert!(canonical
            .contains("faults drop=10 dup=0 reorder=0 seed=3 retry=2 crash=1:4..9 crash=2:0..0"));
        assert_eq!(SweepSpec::parse(&canonical).unwrap(), spec);
        // A crash window alone injects something; retry alone is likewise a
        // meaningful (recovery-baseline) scenario.
        SweepSpec::parse("protocol mapping\ntopology path 3\nfaults crash=0:1..2\n").unwrap();
        SweepSpec::parse("protocol mapping\ntopology path 3\nfaults retry=1\n").unwrap();
    }

    #[test]
    fn retry_free_scenarios_keep_their_historical_names() {
        // The name (and therefore every unit key, fingerprint and cache key
        // derived from it) must be byte-identical to pre-retry sweeps.
        let spec = SweepSpec::parse(
            "protocol mapping\ntopology path 3\nfaults drop=20 dup=10 reorder=2 seed=6\n",
        )
        .unwrap();
        assert_eq!(spec.scenarios[1].name(), "faults/d20u10r2s6");
        assert_eq!(spec.scenarios[1].retry_budget(), 0);
    }

    #[test]
    fn ramps_expand_to_ordinary_fault_scenarios() {
        let spec = SweepSpec::parse(
            "protocol mapping\ntopology path 3\nfaults ramp drop=0..30 step=5 seed=7 retry=2\n",
        )
        .unwrap();
        let drops: Vec<u8> = spec
            .scenarios
            .iter()
            .filter_map(|s| match s {
                ScenarioSpec::Faulty { drop_pct, .. } => Some(*drop_pct),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![0, 5, 10, 15, 20, 25, 30]);
        for s in spec.scenarios.iter().skip(1) {
            assert_eq!(s.retry_budget(), 2);
        }
        // The canonical form re-emits expanded points and round-trips exactly.
        let canonical = spec.to_spec_string();
        assert!(!canonical.contains("ramp"));
        assert!(canonical.contains("faults drop=0 dup=0 reorder=0 seed=7 retry=2"));
        assert!(canonical.contains("faults drop=30 dup=0 reorder=0 seed=7 retry=2"));
        assert_eq!(SweepSpec::parse(&canonical).unwrap(), spec);
        // A stride that overshoots the end stops below it.
        let spec =
            SweepSpec::parse("protocol mapping\ntopology path 3\nfaults ramp drop=5..14 step=4\n")
                .unwrap();
        let drops: Vec<u8> = spec
            .scenarios
            .iter()
            .filter_map(|s| match s {
                ScenarioSpec::Faulty { drop_pct, .. } => Some(*drop_pct),
                _ => None,
            })
            .collect();
        assert_eq!(drops, vec![5, 9, 13]);
    }

    #[test]
    fn bad_ramp_and_crash_directives_are_rejected() {
        for (text, needle) in [
            (
                "protocol mapping\ntopology path 3\nfaults ramp step=5\n",
                "requires `drop=a..b`",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults ramp drop=0..30\n",
                "nonzero `step`",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults ramp drop=30..0 step=5\n",
                "empty ramp range",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults ramp drop=10 step=5\n",
                "range `a..b`",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults ramp drop=0..30 step=5\n",
                "baseline point injects nothing",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults crash=oops\n",
                "crash expects",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults crash=1:9..4\n",
                "ends before it starts",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults ramp drop=0..200 step=5\n",
                "out of range",
            ),
        ] {
            let err = SweepSpec::parse(text).expect_err(text);
            assert!(err.to_string().contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn bad_scenario_directives_are_rejected() {
        for (text, needle) in [
            (
                "protocol mapping\ntopology path 3\nfaults seed=1\n",
                "injects nothing",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults drop\n",
                "key=value",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults warp=1\n",
                "unknown faults key",
            ),
            (
                "protocol mapping\ntopology path 3\nfaults drop=200\n",
                "out of range",
            ),
            (
                "protocol mapping\ntopology path 3\ncorrupt everything\n",
                "unknown corruption",
            ),
            (
                "protocol mapping\ntopology path 3\ncorrupt labels\n",
                "unknown corruption",
            ),
        ] {
            let err = SweepSpec::parse(text).expect_err(text);
            assert!(err.to_string().contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn scenario_names_are_jsonl_safe_and_distinct() {
        let mut names: Vec<String> = sample_spec()
            .scenarios
            .iter()
            .map(ScenarioSpec::name)
            .collect();
        for name in &names {
            assert!(!name.contains([' ', '"', ',', '\\']), "{name} unsafe");
        }
        names.sort();
        names.dedup();
        assert_eq!(names.len(), sample_spec().scenarios.len());
    }

    #[test]
    fn fault_plans_are_deterministic_and_distinct_per_cell() {
        let faulty = ScenarioSpec::Faulty {
            drop_pct: 10,
            dup_pct: 5,
            reorder: 3,
            seed: 2,
            retry: 0,
            crashes: vec![],
        };
        let a = faulty.fault_plan(4, 1).unwrap();
        assert_eq!(a, faulty.fault_plan(4, 1).unwrap());
        assert_ne!(a.seed, faulty.fault_plan(4, 2).unwrap().seed);
        assert_ne!(a.seed, faulty.fault_plan(5, 1).unwrap().seed);
        assert_eq!(a.drop_pct, 10);
        assert_eq!(a.dup_pct, 5);
        assert_eq!(a.reorder, 3);
        // Crash windows flow into the plan; the mixed stream seed is
        // unaffected by them (it is a function of the scenario seed and the
        // unit's battery cell only).
        let crashing = ScenarioSpec::Faulty {
            drop_pct: 10,
            dup_pct: 5,
            reorder: 3,
            seed: 2,
            retry: 1,
            crashes: vec![(3, 2, 8)],
        };
        let c = crashing.fault_plan(4, 1).unwrap();
        assert_eq!(c.seed, a.seed);
        assert_eq!(c.crashes.len(), 1);
        assert!(c.crashes[0].covers(anet_graph::NodeId(3), 2));
        assert!(!c.crashes[0].covers(anet_graph::NodeId(3), 8));
        assert!(ScenarioSpec::Pristine.fault_plan(0, 0).is_none());
        assert!(ScenarioSpec::Corrupt(StateCorruption::LostPartition)
            .fault_plan(0, 0)
            .is_none());
    }

    #[test]
    fn topology_names_are_jsonl_safe_and_builds_are_deterministic() {
        for t in sample_spec().topologies {
            let name = t.name();
            assert!(
                !name.contains([' ', '"', ',', '\\']),
                "{name} unsafe for JSONL"
            );
            let a = t.build().expect("sample topologies build");
            let b = t.build().expect("sample topologies build");
            assert_eq!(a.edge_count(), b.edge_count());
        }
    }
}
