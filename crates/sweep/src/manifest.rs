//! Deterministic work manifests and shard partitioning.
//!
//! A [`Manifest`] expands a [`SweepSpec`] into the flat, globally ordered list
//! of run units. The order is the canonical nested loop **protocol → topology →
//! seed → battery position → scenario**; for a pristine-only spec with one
//! protocol and one seed this is exactly the (topology, scheduler) order of
//! [`anet_sim::runner::run_battery_grid`], which is what makes merged sharded
//! output comparable to the in-process grid runner.
//!
//! Partitioning assigns every unit to exactly one of `n` shards, either
//! round-robin by manifest position or by a stable FNV-1a hash of the unit key
//! (protocol, topology, seed, battery position). The hash ignores the unit's
//! position, so hash-sharded assignments survive manifest extension better than
//! round-robin; both are deterministic functions of the spec and shard count.

use anet_sim::runner::battery_size;
use anet_sim::scheduler::battery_scheduler_name;
use anet_sim::trace::Fnv1a;

use crate::spec::{ProtocolSpec, ScenarioSpec, SweepSpec, TopologySpec};

/// One unit of work: a single (protocol, topology, seed, scheduler, scenario)
/// run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepUnit {
    /// Position in the canonical manifest order (the merge key).
    pub index: usize,
    /// Protocol to run.
    pub protocol: ProtocolSpec,
    /// Topology to run on.
    pub topology: TopologySpec,
    /// Battery seed.
    pub seed: u64,
    /// Position within the standard battery.
    pub battery_index: usize,
    /// Display name of the scheduler at that position (`random` positions are
    /// disambiguated as `random#<i>`).
    pub scheduler: String,
    /// Execution scenario (pristine, fault plan, or corrupted start).
    pub scenario: ScenarioSpec,
}

impl SweepUnit {
    /// A stable identity string for the unit, independent of its manifest
    /// position — the hash-partition key. Pristine units keep the historical
    /// four-field key, so adding scenarios to a spec never reshuffles the
    /// shard assignment of the runs it already had.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}|{}|{}|{}",
            self.protocol.name(),
            self.topology.name(),
            self.seed,
            self.battery_index
        );
        if !self.scenario.is_pristine() {
            key.push('|');
            key.push_str(&self.scenario.name());
        }
        key
    }
}

/// The expanded, globally ordered work list of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// All units in canonical order (`units[i].index == i`).
    pub units: Vec<SweepUnit>,
}

impl Manifest {
    /// Expands `spec` into its canonical unit list.
    pub fn from_spec(spec: &SweepSpec) -> Manifest {
        let battery = battery_size(spec.random_schedulers);
        let names: Vec<String> = (0..battery)
            .map(|k| battery_scheduler_name(k, spec.random_schedulers))
            .collect();
        let mut units = Vec::with_capacity(
            spec.protocols.len()
                * spec.topologies.len()
                * spec.seeds.len()
                * battery
                * spec.scenarios.len(),
        );
        for protocol in &spec.protocols {
            for topology in &spec.topologies {
                for &seed in &spec.seeds {
                    for (battery_index, scheduler) in names.iter().enumerate() {
                        for scenario in &spec.scenarios {
                            units.push(SweepUnit {
                                index: units.len(),
                                protocol: protocol.clone(),
                                topology: topology.clone(),
                                seed,
                                battery_index,
                                scheduler: scheduler.clone(),
                                scenario: scenario.clone(),
                            });
                        }
                    }
                }
            }
        }
        Manifest { units }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the manifest holds no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The units assigned to `shard` of `shards` under `partition`, in
    /// manifest order.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shard >= shards`.
    pub fn shard_units(
        &self,
        shards: usize,
        partition: Partition,
        shard: usize,
    ) -> Vec<&SweepUnit> {
        assert!(shards > 0, "at least one shard is required");
        assert!(shard < shards, "shard {shard} out of range for {shards}");
        self.units
            .iter()
            .filter(|u| partition.assign(u, shards) == shard)
            .collect()
    }
}

/// How manifest units are distributed over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Unit `i` goes to shard `i % n`.
    RoundRobin,
    /// Stable FNV-1a hash of the unit key, mod `n`.
    Hash,
}

impl Partition {
    /// The shard (in `0..shards`) that owns `unit`.
    pub fn assign(self, unit: &SweepUnit, shards: usize) -> usize {
        match self {
            Partition::RoundRobin => unit.index % shards,
            Partition::Hash => (fnv1a(unit.key().as_bytes()) % shards as u64) as usize,
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Partition> {
        match s {
            "round-robin" | "rr" => Some(Partition::RoundRobin),
            "hash" => Some(Partition::Hash),
            _ => None,
        }
    }
}

/// FNV-1a over a byte string: a thin wrapper around the workspace's stock
/// stable hasher ([`anet_sim::trace::Fnv1a`], the one behind trace digests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = Fnv1a::new();
    hash.write(bytes);
    hash.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            protocols: vec![ProtocolSpec::Mapping, ProtocolSpec::Labeling],
            topologies: vec![
                TopologySpec::Path { n: 2 },
                TopologySpec::ChainGn { n: 3 },
                TopologySpec::Star { leaves: 2 },
            ],
            seeds: vec![0, 7],
            random_schedulers: 2,
            max_deliveries: 1_000,
            scenarios: vec![ScenarioSpec::Pristine],
        }
    }

    #[test]
    fn manifest_order_is_protocol_topology_seed_battery() {
        let spec = small_spec();
        let manifest = Manifest::from_spec(&spec);
        assert_eq!(manifest.len(), 2 * 3 * 2 * 6);
        for (i, unit) in manifest.units.iter().enumerate() {
            assert_eq!(unit.index, i);
        }
        // The innermost loop is the battery, then seeds, then topologies.
        assert_eq!(manifest.units[0].scheduler, "fifo");
        assert_eq!(manifest.units[4].scheduler, "random#0");
        assert_eq!(manifest.units[5].scheduler, "random#1");
        assert_eq!(manifest.units[0].seed, 0);
        assert_eq!(manifest.units[6].seed, 7);
        assert_eq!(manifest.units[0].topology, spec.topologies[0]);
        assert_eq!(manifest.units[12].topology, spec.topologies[1]);
        assert_eq!(manifest.units[0].protocol, ProtocolSpec::Mapping);
        assert_eq!(manifest.units[36].protocol, ProtocolSpec::Labeling);
    }

    #[test]
    fn single_protocol_single_seed_order_matches_run_battery_grid() {
        // run_battery_grid orders cells (topology index, battery position);
        // the manifest of a one-protocol one-seed spec must agree.
        let spec = SweepSpec {
            protocols: vec![ProtocolSpec::Mapping],
            seeds: vec![3],
            ..small_spec()
        };
        let manifest = Manifest::from_spec(&spec);
        let plan =
            anet_sim::runner::plan_battery_grid(spec.topologies.len(), spec.random_schedulers);
        assert_eq!(manifest.len(), plan.len());
        for (unit, cell) in manifest.units.iter().zip(&plan) {
            assert_eq!(unit.topology, spec.topologies[cell.topology]);
            assert_eq!(unit.battery_index, cell.battery);
        }
    }

    #[test]
    fn scenarios_expand_as_the_innermost_dimension() {
        let mut spec = small_spec();
        spec.scenarios.push(ScenarioSpec::Faulty {
            drop_pct: 15,
            dup_pct: 0,
            reorder: 2,
            seed: 4,
            retry: 0,
            crashes: vec![],
        });
        let manifest = Manifest::from_spec(&spec);
        assert_eq!(manifest.len(), 2 * 3 * 2 * 6 * 2);
        // Each battery cell runs pristine first, then its fault scenario.
        assert!(manifest.units[0].scenario.is_pristine());
        assert!(!manifest.units[1].scenario.is_pristine());
        assert_eq!(manifest.units[0].scheduler, manifest.units[1].scheduler);
        assert_eq!(manifest.units[2].scheduler, "lifo");
        // Pristine units keep the historical four-field key; adversarial
        // units append the scenario name.
        assert!(!manifest.units[0].key().contains("faults"));
        assert_eq!(
            manifest.units[1].key(),
            format!("{}|faults/d15u0r2s4", manifest.units[0].key())
        );
        // Keys are still unique across the whole manifest.
        let mut keys: Vec<String> = manifest.units.iter().map(SweepUnit::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), manifest.len());
    }

    #[test]
    fn partitions_cover_every_unit_exactly_once() {
        let manifest = Manifest::from_spec(&small_spec());
        for partition in [Partition::RoundRobin, Partition::Hash] {
            for shards in [1usize, 2, 3, 7, 13] {
                let mut seen = vec![0usize; manifest.len()];
                for shard in 0..shards {
                    for unit in manifest.shard_units(shards, partition, shard) {
                        seen[unit.index] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "{partition:?}/{shards} misses or duplicates units"
                );
            }
        }
    }

    #[test]
    fn hash_partition_is_position_independent() {
        let manifest = Manifest::from_spec(&small_spec());
        let unit = &manifest.units[17];
        let mut moved = unit.clone();
        moved.index = 3;
        for shards in [2usize, 3, 7] {
            assert_eq!(
                Partition::Hash.assign(unit, shards),
                Partition::Hash.assign(&moved, shards)
            );
        }
    }

    #[test]
    fn partition_spellings() {
        assert_eq!(Partition::parse("rr"), Some(Partition::RoundRobin));
        assert_eq!(Partition::parse("round-robin"), Some(Partition::RoundRobin));
        assert_eq!(Partition::parse("hash"), Some(Partition::Hash));
        assert_eq!(Partition::parse("modulo"), None);
    }
}
