//! Unit clustering by canonical fingerprint: run one representative per
//! equivalence class.
//!
//! A sweep unit's record is a pure function of **(protocol, canonical
//! topology form, seed, battery position, delivery budget)** — the executor
//! rebuilds every unit's network in canonical labeling
//! (see [`execute_unit`](crate::execute_unit)), so even two *differently
//! labeled* isomorphic topologies drive bit-for-bit the same simulation.
//! Clustering groups the units of a manifest (or of one shard's pending set)
//! by that tuple; only the cluster's manifest-first unit — the
//! **representative** — is executed, and every other member's record is
//! emitted by rewriting the representative's record with the member's own
//! key fields ([`RunRecord::rebind`]).
//!
//! Two layers of keying, with different stakes:
//!
//! * **Correctness** rests on exact equality of [`CanonicalForm`]s (plus the
//!   scalar key fields) — no hashing involved, so a weak canonical labeling
//!   can only *miss* dedup opportunities, never merge distinct experiments.
//! * The 128-bit [`UnitCluster::fingerprint`] (two FNV-1a passes with
//!   distinct prefixes over the canonical unit string) merely **names** the
//!   unit's content-addressed cache entry
//!   ([`ResultCache`](crate::cache::ResultCache)).

use std::collections::BTreeMap;

use anet_graph::canon::{canonical_form, CanonicalForm};

use crate::manifest::{fnv1a, Manifest, SweepUnit};
use crate::record::RunRecord;
use crate::spec::SweepSpec;
use crate::SweepError;

/// One equivalence class of sweep units.
///
/// `representative` and `members` are positions into the slice that was
/// clustered (for [`Manifest::cluster_units`] that slice is the whole
/// manifest, so positions are manifest indices). `members` is ascending and
/// always starts with `representative` — the slice-first unit of the class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitCluster {
    /// 128-bit content-address of the class (32 hex chars): the cache key.
    pub fingerprint: String,
    /// Position of the unit that actually runs.
    pub representative: usize,
    /// Positions of every unit of the class, ascending (first is the
    /// representative).
    pub members: Vec<usize>,
}

/// The 128-bit unit fingerprint: everything the record bytes depend on,
/// except the unit's own name fields (manifest index and topology name).
///
/// Two FNV-1a passes over the same canonical string with distinct prefixes;
/// the string is versioned (`unit-v2`, since the scenario dimension joined
/// the execution contract) so a change to the contract invalidates cache
/// entries instead of aliasing them.
pub fn unit_fingerprint(spec: &SweepSpec, unit: &SweepUnit, form: &CanonicalForm) -> String {
    let canonical = format!(
        "unit-v2 protocol={} seed={} k={} sched={} random={} budget={} scenario={} {}",
        unit.protocol.name(),
        unit.seed,
        unit.battery_index,
        unit.scheduler,
        spec.random_schedulers,
        spec.max_deliveries,
        unit.scenario.name(),
        form.encode()
    );
    let lo = fnv1a(format!("fp-lo|{canonical}").as_bytes());
    let hi = fnv1a(format!("fp-hi|{canonical}").as_bytes());
    format!("{hi:016x}{lo:016x}")
}

/// Groups `units` into equivalence classes by **(protocol, canonical
/// topology form, seed, battery position, scenario)** — the full set of
/// inputs the executor's record depends on (scheduler identity is a function
/// of the battery position, the per-unit fault plan is a pure function of
/// scenario + seed + battery position, and the spec-level battery shape and
/// delivery budget are shared by every unit).
///
/// Canonical forms are computed once per distinct topology name and compared
/// exactly. Clusters come back ordered by representative position.
///
/// # Errors
///
/// Returns [`SweepError::Topology`] if a unit's topology parameters are
/// rejected by its generator.
pub fn cluster_units(
    spec: &SweepSpec,
    units: &[&SweepUnit],
) -> Result<Vec<UnitCluster>, SweepError> {
    let mut forms: BTreeMap<String, CanonicalForm> = BTreeMap::new();
    for unit in units {
        if let std::collections::btree_map::Entry::Vacant(slot) = forms.entry(unit.topology.name())
        {
            let network = unit.topology.build().map_err(SweepError::Topology)?;
            slot.insert(canonical_form(&network).form);
        }
    }
    type ClusterKey = (String, u64, usize, String, CanonicalForm);
    let mut classes: BTreeMap<ClusterKey, Vec<usize>> = BTreeMap::new();
    for (position, unit) in units.iter().enumerate() {
        let form = forms[&unit.topology.name()].clone();
        classes
            .entry((
                unit.protocol.name(),
                unit.seed,
                unit.battery_index,
                unit.scenario.name(),
                form,
            ))
            .or_default()
            .push(position);
    }
    let mut clusters: Vec<UnitCluster> = classes
        .into_iter()
        .map(|((_, _, _, _, form), members)| UnitCluster {
            fingerprint: unit_fingerprint(spec, units[members[0]], &form),
            representative: members[0],
            members,
        })
        .collect();
    clusters.sort_unstable_by_key(|c| c.representative);
    Ok(clusters)
}

impl Manifest {
    /// Clusters the whole manifest: positions in the returned
    /// [`UnitCluster`]s are manifest indices, and each representative is the
    /// manifest-first unit of its class.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Topology`] for degenerate topology parameters.
    pub fn cluster_units(&self, spec: &SweepSpec) -> Result<Vec<UnitCluster>, SweepError> {
        let refs: Vec<&SweepUnit> = self.units.iter().collect();
        cluster_units(spec, &refs)
    }
}

impl RunRecord {
    /// Rewrites this record as the record of `unit`, a member of the same
    /// equivalence class as the unit that produced it: only the manifest
    /// index and the topology name change.
    ///
    /// # Panics
    ///
    /// Panics if `unit` disagrees on a cluster-key field (protocol, seed,
    /// battery position, scheduler or scenario) — rebinding across classes
    /// would fabricate results.
    pub fn rebind(&self, unit: &SweepUnit) -> RunRecord {
        assert_eq!(
            self.protocol,
            unit.protocol.name(),
            "rebind across protocols"
        );
        assert_eq!(self.seed, unit.seed, "rebind across seeds");
        assert_eq!(
            self.battery_index, unit.battery_index,
            "rebind across battery positions"
        );
        assert_eq!(self.scheduler, unit.scheduler, "rebind across schedulers");
        assert_eq!(
            self.scenario,
            unit.scenario.name(),
            "rebind across scenarios"
        );
        RunRecord {
            index: unit.index,
            topology: unit.topology.name(),
            ..self.clone()
        }
    }
}

/// Counters describing what deduplication did to one shard run (or, summed,
/// to a whole sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Units that needed records this invocation (checkpointed units are not
    /// counted — they were not deduplicated, they were already done).
    pub units: usize,
    /// Equivalence classes among those units.
    pub clusters: usize,
    /// Representatives actually executed (cache hits subtract from this).
    pub representatives_run: usize,
    /// Records emitted by rewriting a representative's record.
    pub members_by_reference: usize,
    /// Clusters whose record came from the content-addressed cache.
    pub cache_hits: usize,
    /// Clusters the cache was consulted for and missed (0 when no cache).
    pub cache_misses: usize,
}

impl DedupStats {
    /// Accumulates another shard's counters.
    pub fn add(&mut self, other: &DedupStats) {
        self.units += other.units;
        self.clusters += other.clusters;
        self.representatives_run += other.representatives_run;
        self.members_by_reference += other.members_by_reference;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// The canonical JSON line (no trailing newline) — the shard stats
    /// sidecar and `stats.json` format.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"units\": {}, \"clusters\": {}, \"representatives_run\": {}, \"members_by_reference\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            self.units,
            self.clusters,
            self.representatives_run,
            self.members_by_reference,
            self.cache_hits,
            self.cache_misses,
        )
    }

    /// Parses a canonical stats line, rejecting anything that does not
    /// round-trip byte-identically (same gate as
    /// [`RunRecord::parse_line`](crate::RunRecord::parse_line)).
    pub fn parse_line(line: &str) -> Option<DedupStats> {
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut fields = std::collections::HashMap::new();
        for field in body.split(", ") {
            let (key, value) = field.split_once(": ")?;
            fields.insert(key.strip_prefix('"')?.strip_suffix('"')?, value);
        }
        let int = |key: &str| -> Option<usize> { fields.get(key)?.parse().ok() };
        let stats = DedupStats {
            units: int("units")?,
            clusters: int("clusters")?,
            representatives_run: int("representatives_run")?,
            members_by_reference: int("members_by_reference")?,
            cache_hits: int("cache_hits")?,
            cache_misses: int("cache_misses")?,
        };
        (stats.to_json_line() == line).then_some(stats)
    }

    /// The human-readable one-liner the `sweep` CLI prints.
    pub fn summary(&self) -> String {
        format!(
            "dedup: {} units -> {} clusters, {} representatives run, {} members by reference, cache hits: {}, cache misses: {}",
            self.units,
            self.clusters,
            self.representatives_run,
            self.members_by_reference,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ProtocolSpec, ScenarioSpec, TopologySpec};

    fn spec() -> SweepSpec {
        SweepSpec {
            protocols: vec![ProtocolSpec::Mapping, ProtocolSpec::Labeling],
            topologies: vec![
                TopologySpec::Path { n: 3 },
                TopologySpec::ChainGn { n: 3 },
                // An isomorphic pair under different family spellings: the
                // complete DAG on 2 internal vertices is the 2-internal path.
                TopologySpec::Path { n: 2 },
                TopologySpec::CompleteDag { internal: 2 },
            ],
            seeds: vec![0, 1],
            random_schedulers: 1,
            max_deliveries: 100_000,
            scenarios: vec![ScenarioSpec::Pristine],
        }
    }

    #[test]
    fn isomorphic_topologies_cluster_together() {
        let spec = spec();
        let manifest = Manifest::from_spec(&spec);
        let clusters = manifest.cluster_units(&spec).unwrap();
        // path(2) and complete_dag(2) merge; path(3) and chain-gn/3 stay
        // separate: 3 distinct forms x 2 protocols x 2 seeds x 5 battery.
        let battery = anet_sim::runner::battery_size(spec.random_schedulers);
        assert_eq!(clusters.len(), 3 * 2 * 2 * battery);
        let covered: usize = clusters.iter().map(|c| c.members.len()).sum();
        assert_eq!(covered, manifest.len());
        // Every cluster: ascending members, representative first, one class
        // never mixes protocols/seeds/batteries.
        for cluster in &clusters {
            assert_eq!(cluster.members[0], cluster.representative);
            assert!(cluster.members.windows(2).all(|w| w[0] < w[1]));
            let rep = &manifest.units[cluster.representative];
            for &m in &cluster.members {
                let u = &manifest.units[m];
                assert_eq!(u.protocol, rep.protocol);
                assert_eq!(u.seed, rep.seed);
                assert_eq!(u.battery_index, rep.battery_index);
            }
        }
        // The merged pair really is the isomorphic one.
        let merged = clusters.iter().find(|c| c.members.len() == 2).unwrap();
        let names: Vec<String> = merged
            .members
            .iter()
            .map(|&m| manifest.units[m].topology.name())
            .collect();
        assert!(names.contains(&TopologySpec::Path { n: 2 }.name()));
        assert!(names.contains(&TopologySpec::CompleteDag { internal: 2 }.name()));
    }

    #[test]
    fn fingerprints_separate_key_fields_and_specs() {
        let spec = spec();
        let manifest = Manifest::from_spec(&spec);
        let clusters = manifest.cluster_units(&spec).unwrap();
        let mut fingerprints: Vec<&str> = clusters.iter().map(|c| c.fingerprint.as_str()).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), clusters.len(), "fingerprint collision");
        for c in &clusters {
            assert_eq!(c.fingerprint.len(), 32);
            assert!(c.fingerprint.chars().all(|ch| ch.is_ascii_hexdigit()));
        }
        // The same unit under a different delivery budget is a different
        // experiment — and a different cache entry.
        let mut other = spec.clone();
        other.max_deliveries += 1;
        let again = Manifest::from_spec(&other).cluster_units(&other).unwrap();
        assert_ne!(clusters[0].fingerprint, again[0].fingerprint);
    }

    #[test]
    fn scenarios_are_part_of_the_cluster_key_and_dedup_stays_honest() {
        let mut spec = spec();
        spec.protocols = vec![ProtocolSpec::Labeling];
        spec.seeds = vec![0];
        spec.scenarios = vec![
            ScenarioSpec::Pristine,
            ScenarioSpec::Faulty {
                drop_pct: 25,
                dup_pct: 10,
                reorder: 2,
                seed: 3,
                retry: 0,
                crashes: vec![],
            },
        ];
        let manifest = Manifest::from_spec(&spec);
        let clusters = manifest.cluster_units(&spec).unwrap();
        // Same class count as the pristine-only spec, doubled: scenarios
        // never merge, but isomorphic topologies still do within a scenario.
        let battery = anet_sim::runner::battery_size(spec.random_schedulers);
        assert_eq!(clusters.len(), 3 * battery * 2);
        for cluster in &clusters {
            let rep = &manifest.units[cluster.representative];
            for &m in &cluster.members {
                assert_eq!(manifest.units[m].scenario, rep.scenario);
            }
        }
        // A faulty cluster with an isomorphic member: the rebound record is
        // the member's honest record (same mixed fault seed, same faults).
        let merged = clusters
            .iter()
            .find(|c| {
                c.members.len() == 2 && !manifest.units[c.representative].scenario.is_pristine()
            })
            .expect("path(2) and complete-dag(2) merge under the fault scenario");
        let record = crate::execute_unit(&spec, &manifest.units[merged.representative]).unwrap();
        let member = &manifest.units[merged.members[1]];
        assert_eq!(
            record.rebind(member),
            crate::execute_unit(&spec, member).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "rebind across scenarios")]
    fn rebind_across_scenarios_panics() {
        let mut spec = spec();
        spec.scenarios = vec![
            ScenarioSpec::Pristine,
            ScenarioSpec::Corrupt(anet_core::StateCorruption::LostPartition),
        ];
        let manifest = Manifest::from_spec(&spec);
        // Units 0 and 1 differ only in scenario (it is the innermost loop).
        let record = crate::execute_unit(&spec, &manifest.units[0]).unwrap();
        let _ = record.rebind(&manifest.units[1]);
    }

    #[test]
    fn rebind_rewrites_only_the_name_fields() {
        let spec = spec();
        let manifest = Manifest::from_spec(&spec);
        let clusters = manifest.cluster_units(&spec).unwrap();
        let merged = clusters.iter().find(|c| c.members.len() == 2).unwrap();
        let rep_unit = &manifest.units[merged.representative];
        let member_unit = &manifest.units[merged.members[1]];
        let record = crate::execute_unit(&spec, rep_unit).unwrap();
        let rebound = record.rebind(member_unit);
        assert_eq!(rebound.index, member_unit.index);
        assert_eq!(rebound.topology, member_unit.topology.name());
        assert_eq!(
            RunRecord {
                index: record.index,
                topology: record.topology.clone(),
                ..rebound.clone()
            },
            record
        );
        // And the rebound record IS the member's honest record.
        assert_eq!(rebound, crate::execute_unit(&spec, member_unit).unwrap());
    }

    #[test]
    #[should_panic(expected = "rebind across seeds")]
    fn rebind_across_classes_panics() {
        let spec = spec();
        let manifest = Manifest::from_spec(&spec);
        let record = crate::execute_unit(&spec, &manifest.units[0]).unwrap();
        let battery = anet_sim::runner::battery_size(spec.random_schedulers);
        // Same protocol/topology/battery position, different seed.
        let other = &manifest.units[battery * spec.seeds.len() - battery];
        assert_eq!(other.battery_index, manifest.units[0].battery_index);
        assert_ne!(other.seed, manifest.units[0].seed);
        let _ = record.rebind(other);
    }

    #[test]
    fn stats_line_round_trips_and_rejects_noncanonical() {
        let stats = DedupStats {
            units: 120,
            clusters: 30,
            representatives_run: 18,
            members_by_reference: 102,
            cache_hits: 12,
            cache_misses: 18,
        };
        let line = stats.to_json_line();
        assert_eq!(DedupStats::parse_line(&line), Some(stats));
        assert_eq!(DedupStats::parse_line(&line.replace(", ", ",")), None);
        assert_eq!(DedupStats::parse_line(""), None);
        for cut in 1..line.len() {
            assert_eq!(DedupStats::parse_line(&line[..cut]), None);
        }
        let mut sum = DedupStats::default();
        sum.add(&stats);
        sum.add(&stats);
        assert_eq!(sum.units, 240);
        assert_eq!(sum.cache_hits, 24);
        assert!(stats.summary().contains("120 units -> 30 clusters"));
        assert!(stats.summary().contains("cache hits: 12"));
    }
}
