//! # anet-sweep — process-sharded scenario sweeps
//!
//! The paper's results are statements over whole *families* of executions:
//! every delivery order, every topology shape, every seed. This crate is the
//! distribution layer that serves that scenario space beyond one process: it
//! turns a declarative [`SweepSpec`] into a deterministic work manifest,
//! partitions the manifest into shards, executes each shard in its own OS
//! process, and merges the shard outputs back into the exact ordering a
//! single-process run produces — byte for byte.
//!
//! # Lifecycle
//!
//! 1. **Spec** ([`spec`]) — protocols × topology instances × battery seeds ×
//!    scheduler battery × execution scenarios, with a canonical text form that
//!    round-trips ([`SweepSpec::parse`] / [`SweepSpec::to_spec_string`]).
//!    Random topologies carry their own generator seeds, so every unit is
//!    self-contained. Scenarios ([`ScenarioSpec`]) add the adversarial axis:
//!    `faults drop=… dup=… reorder=… seed=…` wraps every battery scheduler in
//!    an [`anet_sim::faults::FaultyScheduler`], and `corrupt labels <seed>` /
//!    `corrupt partition` / `corrupt stale-terminal` start runs from perturbed
//!    protocol state ([`anet_core::StateCorruption`]). The pristine scenario is
//!    always present and always first.
//! 2. **Manifest** ([`manifest`]) — [`Manifest::from_spec`] expands the spec
//!    into the flat unit list in the canonical order *protocol → topology →
//!    seed → battery position → scenario* (for one protocol, one seed and
//!    pristine-only scenarios this is exactly the (topology, scheduler) order
//!    of [`anet_sim::runner::run_battery_grid`]). [`Partition`] assigns each
//!    unit to one of `n` shards by stable hash or round-robin.
//! 3. **Execute** ([`exec`]) — [`execute_unit`] rebuilds the unit's network,
//!    runs one cell of the standard battery
//!    ([`anet_sim::runner::run_battery_cell`], wrapped in the unit's fault
//!    plan or corrupted start when the scenario is adversarial) with trace
//!    recording, applies the protocol's success *and recovery* checks, and
//!    emits a canonical JSONL [`RunRecord`] (outcome — including `starved`
//!    for fault-killed quiescence — metrics, wire-bit totals, adversary
//!    counters and the stable [`anet_sim::trace::Trace::digest`]). Records are
//!    pure functions of their units: any process, any time, same bytes.
//! 4. **Checkpoint & resume** ([`merge`]) — a shard's JSONL file is its
//!    checkpoint: a spec-fingerprint header line followed by record lines.
//!    [`run_shard_to_file`] with `resume` requires the header to match the
//!    current spec (an edited spec discards the whole checkpoint — record
//!    indices only mean something in their own manifest) and revalidates each
//!    line ([`RunRecord::parse_line`] accepts only byte-exact canonical lines,
//!    so a killed shard's torn tail is discarded), re-executing only missing
//!    units.
//! 5. **Merge** ([`merge`]) — [`merge_lines`] / [`merge_shard_files`] check
//!    that the shards cover every unit exactly once and emit the lines sorted
//!    by unit index. Sharded output is therefore **byte-identical** to the
//!    `shards = 1` run — the correctness contract pinned by the
//!    merge-equivalence property tests and the CI `sweep_smoke` step.
//!
//! # Deduplication: fingerprint → cluster → cache
//!
//! Most units of a large sweep are redundant: a record is a pure function of
//! **(protocol, canonical topology form, seed, battery position, budget,
//! scenario)**,
//! and generated topologies are frequently isomorphic across families, sizes
//! and generator seeds. The dedup layer (on by default in the CLI) exploits
//! this in three steps:
//!
//! * **Fingerprint** — [`execute_unit`] always runs on the *canonically
//!   relabeled* network ([`anet_graph::canon`]), so isomorphic topologies
//!   drive bit-for-bit identical simulations. [`unit_fingerprint`] condenses
//!   the record's full input tuple into a 128-bit content address.
//! * **Cluster** — [`Manifest::cluster_units`] / [`cluster_units`] group
//!   units whose key tuples are **exactly equal** (canonical forms compared
//!   structurally — the hash only names cache entries, so a weak labeling
//!   can cost coverage but never correctness). Each cluster's manifest-first
//!   unit is the representative; only representatives execute, and member
//!   records are emitted by rewriting the representative's record with the
//!   member's own name fields ([`RunRecord::rebind`], which asserts the
//!   cluster-key fields agree).
//! * **Cache** — a [`ResultCache`] directory (`--cache-dir`) stores each
//!   cluster's result payload under its fingerprint: atomic
//!   write-then-rename, byte-exact round-trip validation on load, and every
//!   failure mode (torn, stale, corrupt, mis-filed) degrades to a miss.
//!   Repeated units never re-run — across shards, across runs, across
//!   *specs*.
//!
//! The **`--no-dedup` differential contract**: the honest path (every unit
//! executed individually) and the dedup path produce byte-identical merged
//! output — cold cache, warm cache, any shard count. `sweep --check` and the
//! run summary report the [`DedupStats`] (clusters, representatives run,
//! members by reference, cache hits/misses) so the speedup is observable,
//! and the `dedup_differential` tests plus the CI `dedup_smoke` step pin the
//! byte-identity.
//!
//! The `sweep` binary drives the process layer: the parent re-invokes its own
//! executable with `--run-shard i` per shard, waits, and merges. Within a
//! shard process, `--jobs N` fans the shard's units over `N` scoped worker
//! threads ([`run_shard_to_file_with_jobs`]) so each shard saturates its host;
//! because every record is a pure function of its unit and workers fill
//! pre-assigned slots of the shard-manifest order, the output is byte-identical
//! for every job count. See `src/bin/sweep.rs` or `sweep --help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dedup;
pub mod exec;
pub mod manifest;
pub mod merge;
pub mod record;
pub mod spec;

pub use cache::{CachePayload, ResultCache};
pub use dedup::{cluster_units, unit_fingerprint, DedupStats, UnitCluster};
pub use exec::execute_unit;
pub use manifest::{Manifest, Partition, SweepUnit};
pub use merge::{
    dedup_shard_lines, merge_lines, merge_shard_files, run_shard_to_file,
    run_shard_to_file_with_jobs, run_shard_to_file_with_opts, run_sweep_in_process,
    run_sweep_threaded, shard_lines, ShardOutcome, ShardReport, SweepOptions,
};
pub use record::RunRecord;
pub use spec::{ProtocolSpec, ScenarioSpec, SweepSpec, TopologySpec};

/// Errors raised by the sweep subsystem.
#[derive(Debug)]
pub enum SweepError {
    /// The spec text is malformed.
    Spec(String),
    /// A topology's parameters were rejected by its generator.
    Topology(anet_graph::NetworkError),
    /// Shard outputs do not cover the manifest exactly once.
    Merge(String),
    /// File system failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Spec(msg) => write!(f, "invalid sweep spec: {msg}"),
            SweepError::Topology(e) => write!(f, "topology construction failed: {e}"),
            SweepError::Merge(msg) => write!(f, "merge failed: {msg}"),
            SweepError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Topology(e) => Some(e),
            SweepError::Io(e) => Some(e),
            _ => None,
        }
    }
}
