//! The content-addressed on-disk result cache.
//!
//! Cache entries are keyed by the 128-bit unit fingerprint
//! ([`unit_fingerprint`](crate::dedup::unit_fingerprint)): everything a
//! record's bytes depend on except the unit's own name fields. An entry holds
//! a [`CachePayload`] — the result half of a [`RunRecord`] — as one canonical
//! line that embeds its own fingerprint and a format version.
//!
//! Robustness contract, mirroring the shard checkpoint files:
//!
//! * **Atomic publication**: entries are written to a process-unique temp
//!   file and `rename`d into place, so readers never observe a torn entry and
//!   concurrent writers (two shards discovering the same unit) harmlessly
//!   race to publish identical bytes.
//! * **Corruption is a miss**: a load re-parses the entry through the same
//!   byte-exact round-trip gate as every other canonical line in this crate,
//!   and checks the embedded fingerprint against the file's name. Torn,
//!   stale-format, truncated or mis-filed entries all come back as `None` —
//!   the unit is simply re-run and the entry rewritten.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::manifest::SweepUnit;
use crate::record::RunRecord;

/// The result half of a [`RunRecord`]: every field that is a function of the
/// unit's equivalence class, none of the fields that name the unit itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachePayload {
    /// How the run ended.
    pub outcome: String,
    /// Protocol-specific success check.
    pub ok: bool,
    /// Messages sent.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Deliveries at first terminal acceptance, if the run terminated.
    pub accepted_at: Option<u64>,
    /// Total wire bits.
    pub total_bits: u64,
    /// Largest single message, bits.
    pub max_msg_bits: u64,
    /// Largest per-edge bit total, bits.
    pub max_edge_bits: u64,
    /// Messages destroyed by the fault adversary's drops.
    pub dropped: u64,
    /// Adversary-injected duplicate deliveries.
    pub duplicated: u64,
    /// Messages consumed by crashed vertices.
    pub crashed: u64,
    /// Trace digest of the (canonical-network) run.
    pub trace_digest: u64,
}

impl CachePayload {
    /// Extracts the payload of a record.
    pub fn from_record(record: &RunRecord) -> CachePayload {
        CachePayload {
            outcome: record.outcome.clone(),
            ok: record.ok,
            sent: record.sent,
            delivered: record.delivered,
            accepted_at: record.accepted_at,
            total_bits: record.total_bits,
            max_msg_bits: record.max_msg_bits,
            max_edge_bits: record.max_edge_bits,
            dropped: record.dropped,
            duplicated: record.duplicated,
            crashed: record.crashed,
            trace_digest: record.trace_digest,
        }
    }

    /// Reconstitutes the full record of `unit` from this payload.
    ///
    /// Sound exactly when `fingerprint(unit) == fingerprint(entry)` — the
    /// caller's cache lookup — because the payload fields are a pure function
    /// of the fingerprinted inputs.
    pub fn record_for(&self, unit: &SweepUnit) -> RunRecord {
        RunRecord {
            index: unit.index,
            protocol: unit.protocol.name(),
            topology: unit.topology.name(),
            scheduler: unit.scheduler.clone(),
            battery_index: unit.battery_index,
            seed: unit.seed,
            scenario: unit.scenario.name(),
            outcome: self.outcome.clone(),
            ok: self.ok,
            sent: self.sent,
            delivered: self.delivered,
            accepted_at: self.accepted_at,
            total_bits: self.total_bits,
            max_msg_bits: self.max_msg_bits,
            max_edge_bits: self.max_edge_bits,
            dropped: self.dropped,
            duplicated: self.duplicated,
            crashed: self.crashed,
            trace_digest: self.trace_digest,
        }
    }

    /// The canonical entry line (no trailing newline), embedding the entry's
    /// own fingerprint and format version.
    pub fn to_entry_line(&self, fingerprint: &str) -> String {
        let accepted = match self.accepted_at {
            Some(n) => n.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "{{\"cache\": \"v2\", \"fp\": \"{}\", \"outcome\": \"{}\", \"ok\": {}, \"sent\": {}, \"delivered\": {}, \"accepted_at\": {}, \"total_bits\": {}, \"max_msg_bits\": {}, \"max_edge_bits\": {}, \"dropped\": {}, \"duplicated\": {}, \"crashed\": {}, \"trace\": \"{:016x}\"}}",
            fingerprint,
            self.outcome,
            self.ok,
            self.sent,
            self.delivered,
            accepted,
            self.total_bits,
            self.max_msg_bits,
            self.max_edge_bits,
            self.dropped,
            self.duplicated,
            self.crashed,
            self.trace_digest,
        )
    }

    /// Parses an entry line for `fingerprint`, returning `None` for anything
    /// that is not byte-exactly canonical or that carries a different
    /// fingerprint or version.
    pub fn parse_entry_line(line: &str, fingerprint: &str) -> Option<CachePayload> {
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut fields = std::collections::HashMap::new();
        for field in body.split(", ") {
            let (key, value) = field.split_once(": ")?;
            fields.insert(key.strip_prefix('"')?.strip_suffix('"')?, value);
        }
        let string = |key: &str| -> Option<String> {
            let inner = fields.get(key)?.strip_prefix('"')?.strip_suffix('"')?;
            if inner.contains(['\\', '"']) {
                return None;
            }
            Some(inner.to_owned())
        };
        let int = |key: &str| -> Option<u64> { fields.get(key)?.parse().ok() };
        if string("cache")? != "v2" || string("fp")? != fingerprint {
            return None;
        }
        let payload = CachePayload {
            outcome: string("outcome")?,
            ok: match *fields.get("ok")? {
                "true" => true,
                "false" => false,
                _ => return None,
            },
            sent: int("sent")?,
            delivered: int("delivered")?,
            accepted_at: match *fields.get("accepted_at")? {
                "null" => None,
                v => Some(v.parse().ok()?),
            },
            total_bits: int("total_bits")?,
            max_msg_bits: int("max_msg_bits")?,
            max_edge_bits: int("max_edge_bits")?,
            dropped: int("dropped")?,
            duplicated: int("duplicated")?,
            crashed: int("crashed")?,
            trace_digest: {
                let hex = string("trace")?;
                if hex.len() != 16 {
                    return None;
                }
                u64::from_str_radix(&hex, 16).ok()?
            },
        };
        (payload.to_entry_line(fingerprint) == line).then_some(payload)
    }
}

/// A directory of content-addressed result entries, shared freely between
/// shards, processes and sweeps over *different* specs — the fingerprint is
/// the whole identity.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the error of `create_dir_all` if the directory cannot exist.
    pub fn new(dir: &Path) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache {
            dir: dir.to_path_buf(),
        })
    }

    fn entry_path(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}.entry"))
    }

    /// Loads the entry for `fingerprint`, treating every failure mode —
    /// missing file, unreadable bytes, torn or stale or mis-filed entry — as
    /// a miss.
    pub fn load(&self, fingerprint: &str) -> Option<CachePayload> {
        let contents = fs::read_to_string(self.entry_path(fingerprint)).ok()?;
        CachePayload::parse_entry_line(contents.strip_suffix('\n')?, fingerprint)
    }

    /// Publishes the entry for `fingerprint` atomically (process-unique temp
    /// file, then rename). Concurrent stores of the same fingerprint write
    /// identical bytes, so whichever rename lands last changes nothing.
    ///
    /// # Errors
    ///
    /// Returns file-system errors; the caller may treat them as non-fatal
    /// (the sweep result does not depend on the cache).
    pub fn store(&self, fingerprint: &str, payload: &CachePayload) -> io::Result<()> {
        let path = self.entry_path(fingerprint);
        let tmp = self
            .dir
            .join(format!("{fingerprint}.tmp.{}", std::process::id()));
        fs::write(&tmp, format!("{}\n", payload.to_entry_line(fingerprint)))?;
        fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> CachePayload {
        CachePayload {
            outcome: "terminated".to_owned(),
            ok: true,
            sent: 40,
            delivered: 34,
            accepted_at: Some(34),
            total_bits: 1234,
            max_msg_bits: 99,
            max_edge_bits: 456,
            dropped: 0,
            duplicated: 0,
            crashed: 0,
            trace_digest: 0x00ab12cd34ef5678,
        }
    }

    fn temp_cache(name: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("anet-sweep-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(&dir).unwrap()
    }

    const FP: &str = "0123456789abcdef0123456789abcdef";

    #[test]
    fn entry_line_round_trips() {
        let p = payload();
        let line = p.to_entry_line(FP);
        assert_eq!(CachePayload::parse_entry_line(&line, FP), Some(p));
        // Wrong fingerprint, truncations and spacing changes are rejected.
        assert_eq!(
            CachePayload::parse_entry_line(&line, "ffff6789abcdef0123456789abcdef01"),
            None
        );
        for cut in 1..line.len() {
            assert_eq!(CachePayload::parse_entry_line(&line[..cut], FP), None);
        }
        assert_eq!(
            CachePayload::parse_entry_line(&line.replace(", ", ","), FP),
            None
        );
        assert_eq!(
            CachePayload::parse_entry_line(&line.replace("v2", "v1"), FP),
            None
        );
    }

    #[test]
    fn store_then_load_round_trips_and_corruption_is_a_miss() {
        let cache = temp_cache("roundtrip");
        assert_eq!(cache.load(FP), None, "cold cache");
        cache.store(FP, &payload()).unwrap();
        assert_eq!(cache.load(FP), Some(payload()));
        // Torn entry: a prefix of the real bytes. Load must miss, not error.
        let path = cache.entry_path(FP);
        let bytes = fs::read_to_string(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(cache.load(FP), None);
        // Re-store repairs it.
        cache.store(FP, &payload()).unwrap();
        assert_eq!(cache.load(FP), Some(payload()));
        // Garbage entry.
        fs::write(&path, "not an entry\n").unwrap();
        assert_eq!(cache.load(FP), None);
    }

    #[test]
    fn payload_extract_and_rebuild_are_inverses() {
        let spec = crate::SweepSpec {
            protocols: vec![crate::ProtocolSpec::Mapping],
            topologies: vec![crate::TopologySpec::Path { n: 2 }],
            seeds: vec![0],
            random_schedulers: 0,
            max_deliveries: 100_000,
            scenarios: vec![crate::ScenarioSpec::Pristine],
        };
        let manifest = crate::Manifest::from_spec(&spec);
        let unit = &manifest.units[1];
        let record = crate::execute_unit(&spec, unit).unwrap();
        let rebuilt = CachePayload::from_record(&record).record_for(unit);
        assert_eq!(rebuilt, record);
    }
}
