//! Deterministic execution of single sweep units.
//!
//! [`execute_unit`] is the only place a sweep touches the simulator: it
//! rebuilds the unit's network from its [`TopologySpec`](crate::TopologySpec)
//! (self-seeded, so the
//! construction is identical in every process), **canonicalizes** it
//! ([`anet_graph::canon`]), runs exactly one cell of the standard battery via
//! [`anet_sim::runner::run_battery_cell`] with trace recording on, applies
//! the protocol's own success check, and distils the result into a canonical
//! [`RunRecord`]. Two executions of the same unit — same process, different
//! process, different host — produce byte-identical records, which is the
//! invariant the whole shard/merge machinery rests on.
//!
//! Running on the canonical relabeling (rather than the generator's raw
//! labeling) is deliberate and unconditional — the honest `--no-dedup` path
//! uses it too. It makes every record a pure function of the unit's
//! *equivalence class* (protocol, canonical topology form, seed, battery
//! position, budget): isomorphic topologies drive bit-for-bit identical
//! simulations, so the dedup layer's rewritten member records equal honest
//! execution by construction, and `dedup` vs `--no-dedup` byte-identity is a
//! theorem the differential tests merely re-check. The protocols themselves
//! are anonymous — they observe degrees and port indices, never vertex ids —
//! so which isomorphic representative runs is pure bookkeeping.

use anet_core::general_broadcast::GeneralBroadcast;
use anet_core::labeling::Labeling;
use anet_core::mapping::{Mapping, ReconstructedTopology};
use anet_core::Payload;
use anet_graph::canon::canonical_form;
use anet_graph::Network;
use anet_num::IntervalUnion;
use anet_sim::engine::{ExecutionConfig, RunConfig};
use anet_sim::runner::{run_battery_cell, NamedRun};
use anet_sim::Outcome;

use crate::manifest::SweepUnit;
use crate::record::RunRecord;
use crate::spec::{ProtocolSpec, SweepSpec};
use crate::SweepError;

/// Runs one unit and produces its canonical record.
///
/// # Errors
///
/// Returns [`SweepError::Topology`] if the unit's topology parameters are
/// rejected by the generator (a spec bug, not a runtime condition).
pub fn execute_unit(spec: &SweepSpec, unit: &SweepUnit) -> Result<RunRecord, SweepError> {
    let built = unit.topology.build().map_err(SweepError::Topology)?;
    let network = canonical_form(&built)
        .form
        .to_network()
        .map_err(SweepError::Topology)?;
    let config = RunConfig::from(ExecutionConfig {
        max_deliveries: spec.max_deliveries,
        record_trace: true,
    });
    let random_count = spec.random_schedulers;
    match &unit.protocol {
        ProtocolSpec::Mapping => {
            let protocol = Mapping::new();
            let named = run_battery_cell(
                &network,
                &protocol,
                config,
                unit.seed,
                random_count,
                unit.battery_index,
            );
            let ok = named.result.outcome.terminated() && {
                // Label clones are O(1) shared handles of the states' endpoint
                // buffers (CoW `IntervalUnion`), not per-node deep copies.
                let labels: Vec<IntervalUnion> = named
                    .result
                    .states
                    .iter()
                    .map(|s| s.label.clone())
                    .collect();
                ReconstructedTopology::from_terminal_state(
                    &named.result.states[network.terminal().index()],
                )
                .matches_exactly(&network, &labels)
            };
            Ok(distil(unit, &named, ok))
        }
        ProtocolSpec::Labeling => {
            let protocol = Labeling::new();
            let named = run_battery_cell(
                &network,
                &protocol,
                config,
                unit.seed,
                random_count,
                unit.battery_index,
            );
            let ok = named.result.outcome.terminated()
                && labels_unique(
                    &network,
                    &named
                        .result
                        .states
                        .iter()
                        .map(|s| s.label.clone())
                        .collect::<Vec<_>>(),
                );
            Ok(distil(unit, &named, ok))
        }
        ProtocolSpec::GeneralBroadcast { payload_bits } => {
            let protocol = GeneralBroadcast::new(Payload::synthetic(*payload_bits));
            let named = run_battery_cell(
                &network,
                &protocol,
                config,
                unit.seed,
                random_count,
                unit.battery_index,
            );
            let ok = named.result.outcome.terminated()
                && network
                    .graph()
                    .nodes()
                    .all(|n| n == network.root() || named.result.states[n.index()].received);
            Ok(distil(unit, &named, ok))
        }
    }
}

/// The labeling success check: every participant (everything but the root)
/// holds a non-empty label, pairwise disjoint — the same predicate
/// `run_labeling_with_config` reports as `labels_unique`.
fn labels_unique(network: &Network, labels: &[IntervalUnion]) -> bool {
    let participants: Vec<usize> = network
        .graph()
        .nodes()
        .filter(|&n| n != network.root())
        .map(|n| n.index())
        .collect();
    participants.iter().enumerate().all(|(i, &a)| {
        !labels[a].is_empty()
            && participants[i + 1..]
                .iter()
                .all(|&b| !labels[a].intersects(&labels[b]))
    })
}

fn distil<S, M>(unit: &SweepUnit, named: &NamedRun<S, M>, ok: bool) -> RunRecord {
    let result = &named.result;
    let outcome = match result.outcome {
        Outcome::Terminated => "terminated",
        Outcome::Quiescent => "quiescent",
        Outcome::BudgetExhausted => "budget-exhausted",
    };
    RunRecord {
        index: unit.index,
        protocol: unit.protocol.name(),
        topology: unit.topology.name(),
        scheduler: unit.scheduler.clone(),
        battery_index: unit.battery_index,
        seed: unit.seed,
        outcome: outcome.to_owned(),
        ok,
        sent: result.metrics.messages_sent,
        delivered: result.metrics.messages_delivered,
        accepted_at: result.deliveries_at_termination,
        total_bits: result.metrics.total_bits,
        max_msg_bits: result.metrics.max_message_bits,
        max_edge_bits: result.metrics.max_edge_bits(),
        trace_digest: result
            .trace
            .as_ref()
            .expect("sweep runs always record traces")
            .digest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::spec::TopologySpec;

    fn spec() -> SweepSpec {
        SweepSpec {
            protocols: vec![
                ProtocolSpec::Mapping,
                ProtocolSpec::Labeling,
                ProtocolSpec::GeneralBroadcast { payload_bits: 16 },
            ],
            topologies: vec![
                TopologySpec::ChainGn { n: 4 },
                TopologySpec::CycleWithTail { k: 5 },
            ],
            seeds: vec![0],
            random_schedulers: 1,
            max_deliveries: 1_000_000,
        }
    }

    #[test]
    fn every_unit_terminates_ok_and_is_repeatable() {
        let spec = spec();
        let manifest = Manifest::from_spec(&spec);
        for unit in &manifest.units {
            let a = execute_unit(&spec, unit).expect("unit runs");
            let b = execute_unit(&spec, unit).expect("unit runs");
            assert_eq!(a, b, "unit {} is not deterministic", unit.key());
            assert_eq!(a.outcome, "terminated", "unit {}", unit.key());
            assert!(a.ok, "unit {} failed its protocol check", unit.key());
            assert!(a.sent > 0 && a.delivered > 0 && a.total_bits > 0);
            assert_eq!(a.index, unit.index);
        }
    }

    #[test]
    fn bad_topology_parameters_surface_as_spec_errors() {
        let spec = spec();
        let mut unit = Manifest::from_spec(&spec).units[0].clone();
        unit.topology = TopologySpec::ChainGn { n: 0 };
        let err = execute_unit(&spec, &unit).expect_err("degenerate chain");
        assert!(err.to_string().contains("chain"), "{err}");
    }

    #[test]
    fn budget_exhaustion_is_recorded_not_fatal() {
        let mut spec = spec();
        spec.max_deliveries = 2;
        let manifest = Manifest::from_spec(&spec);
        let record = execute_unit(&spec, &manifest.units[0]).expect("unit runs");
        assert_eq!(record.outcome, "budget-exhausted");
        assert!(!record.ok);
        assert_eq!(record.accepted_at, None);
    }
}
