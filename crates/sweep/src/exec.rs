//! Deterministic execution of single sweep units.
//!
//! [`execute_unit`] is the only place a sweep touches the simulator: it
//! rebuilds the unit's network from its [`TopologySpec`](crate::TopologySpec)
//! (self-seeded, so the
//! construction is identical in every process), **canonicalizes** it
//! ([`anet_graph::canon`]), runs exactly one cell of the standard battery via
//! [`anet_sim::runner::run_battery_cell`] with trace recording on, applies
//! the protocol's own success check, and distils the result into a canonical
//! [`RunRecord`]. Two executions of the same unit — same process, different
//! process, different host — produce byte-identical records, which is the
//! invariant the whole shard/merge machinery rests on.
//!
//! Running on the canonical relabeling (rather than the generator's raw
//! labeling) is deliberate and unconditional — the honest `--no-dedup` path
//! uses it too. It makes every record a pure function of the unit's
//! *equivalence class* (protocol, canonical topology form, seed, battery
//! position, budget): isomorphic topologies drive bit-for-bit identical
//! simulations, so the dedup layer's rewritten member records equal honest
//! execution by construction, and `dedup` vs `--no-dedup` byte-identity is a
//! theorem the differential tests merely re-check. The protocols themselves
//! are anonymous — they observe degrees and port indices, never vertex ids —
//! so which isomorphic representative runs is pure bookkeeping.

use anet_core::general_broadcast::{corrupt_general_states, general_recovered, GeneralBroadcast};
use anet_core::labeling::{corrupt_labeling_states, labeling_recovered, Labeling};
use anet_core::mapping::{corrupt_mapping_states, mapping_recovered, Mapping};
use anet_core::{Payload, StateCorruption};
use anet_graph::canon::canonical_form;
use anet_graph::Network;
use anet_sim::engine::{
    run_corrupted, run_recovering, run_with_config, ExecutionConfig, RunConfig,
};
use anet_sim::runner::{run_battery_cell, NamedRun};
use anet_sim::scheduler::standard_battery;
use anet_sim::{FaultyScheduler, Outcome, RefloodProtocol};

use crate::manifest::SweepUnit;
use crate::record::RunRecord;
use crate::spec::{ProtocolSpec, ScenarioSpec, SweepSpec};
use crate::SweepError;

/// Runs one unit and produces its canonical record.
///
/// The unit's [`ScenarioSpec`] selects the execution mode: pristine units run
/// exactly as before scenarios existed ([`run_battery_cell`]); faulty units
/// wrap the battery scheduler in a [`FaultyScheduler`] whose plan seed is a
/// pure function of the dedup cluster key ([`ScenarioSpec::fault_plan`]);
/// corrupted-start units run through [`run_corrupted`] with the protocol's
/// state perturbation, and their `ok` column is the protocol's *recovery*
/// predicate. In every mode the record is a pure function of the unit's
/// equivalence class, so dedup and sharding stay byte-exact.
///
/// # Errors
///
/// Returns [`SweepError::Topology`] if the unit's topology parameters are
/// rejected by the generator (a spec bug, not a runtime condition).
pub fn execute_unit(spec: &SweepSpec, unit: &SweepUnit) -> Result<RunRecord, SweepError> {
    let built = unit.topology.build().map_err(SweepError::Topology)?;
    let network = canonical_form(&built)
        .form
        .to_network()
        .map_err(SweepError::Topology)?;
    let config = RunConfig::from(ExecutionConfig {
        max_deliveries: spec.max_deliveries,
        record_trace: true,
    });
    match &unit.protocol {
        ProtocolSpec::Mapping => {
            let protocol = Mapping::new();
            let named = run_scenario_cell(
                &network,
                &protocol,
                config,
                spec,
                unit,
                corrupt_mapping_states,
            );
            let ok = named.result.outcome.terminated()
                && mapping_recovered(&network, &named.result.states);
            Ok(distil(unit, &named, ok))
        }
        ProtocolSpec::Labeling => {
            let protocol = Labeling::new();
            let named = run_scenario_cell(
                &network,
                &protocol,
                config,
                spec,
                unit,
                corrupt_labeling_states,
            );
            let ok = named.result.outcome.terminated()
                && labeling_recovered(&network, &named.result.states);
            Ok(distil(unit, &named, ok))
        }
        ProtocolSpec::GeneralBroadcast { payload_bits } => {
            let protocol = GeneralBroadcast::new(Payload::synthetic(*payload_bits));
            let named = run_scenario_cell(
                &network,
                &protocol,
                config,
                spec,
                unit,
                corrupt_general_states,
            );
            let ok = named.result.outcome.terminated()
                && general_recovered(&network, &named.result.states);
            Ok(distil(unit, &named, ok))
        }
    }
}

/// Runs one battery cell under the unit's scenario.
///
/// The pristine arm is exactly [`run_battery_cell`] — same battery
/// construction, same scheduler state — so pristine records are byte-identical
/// to every sweep that predates scenarios. Faulty units with a nonzero retry
/// budget run through [`run_recovering`] (which is itself bit-identical to the
/// single-shot engine whenever the fault plan destroys nothing); the re-flood
/// traffic lands in the ordinary `sent`/`total_bits` columns, so a retry
/// record's overhead is directly comparable against its retry-free twin.
fn run_scenario_cell<P: RefloodProtocol>(
    network: &Network,
    protocol: &P,
    config: RunConfig,
    spec: &SweepSpec,
    unit: &SweepUnit,
    corrupt: impl FnOnce(&StateCorruption, &Network, &mut [P::State]),
) -> NamedRun<P::State, P::Message> {
    match &unit.scenario {
        ScenarioSpec::Pristine => run_battery_cell(
            network,
            protocol,
            config,
            unit.seed,
            spec.random_schedulers,
            unit.battery_index,
        ),
        ScenarioSpec::Faulty { .. } => {
            let plan = unit
                .scenario
                .fault_plan(unit.seed, unit.battery_index)
                .expect("scenario is faulty");
            let mut battery = standard_battery(unit.seed, spec.random_schedulers);
            assert!(
                unit.battery_index < battery.len(),
                "battery index {} out of range for battery of {}",
                unit.battery_index,
                battery.len()
            );
            let inner = battery.remove(unit.battery_index);
            let scheduler = inner.name();
            let mut faulty = FaultyScheduler::new(inner, plan);
            let retry = unit.scenario.retry_budget();
            let result = if retry > 0 {
                run_recovering(network, protocol, &mut faulty, config, retry).result
            } else {
                run_with_config(network, protocol, &mut faulty, config)
            };
            NamedRun { scheduler, result }
        }
        ScenarioSpec::Corrupt(corruption) => {
            let mut battery = standard_battery(unit.seed, spec.random_schedulers);
            assert!(
                unit.battery_index < battery.len(),
                "battery index {} out of range for battery of {}",
                unit.battery_index,
                battery.len()
            );
            let scheduler = &mut battery[unit.battery_index];
            NamedRun {
                scheduler: scheduler.name(),
                result: run_corrupted(network, protocol, scheduler.as_mut(), config, |states| {
                    corrupt(corruption, network, states)
                }),
            }
        }
    }
}

fn distil<S, M>(unit: &SweepUnit, named: &NamedRun<S, M>, ok: bool) -> RunRecord {
    let result = &named.result;
    // A quiescent run that lost messages to the adversary did not merely run
    // out of work — it was starved: the faults destroyed traffic the protocol
    // needed. First-class outcome so fault sweeps can count starvation apart
    // from genuine quiescence (pristine runs lose nothing and are unaffected).
    let outcome = match result.outcome {
        Outcome::Terminated => "terminated",
        Outcome::Quiescent if result.metrics.messages_lost() > 0 => "starved",
        Outcome::Quiescent => "quiescent",
        Outcome::BudgetExhausted => "budget-exhausted",
    };
    RunRecord {
        index: unit.index,
        protocol: unit.protocol.name(),
        topology: unit.topology.name(),
        scheduler: unit.scheduler.clone(),
        battery_index: unit.battery_index,
        seed: unit.seed,
        scenario: unit.scenario.name(),
        outcome: outcome.to_owned(),
        ok,
        sent: result.metrics.messages_sent,
        delivered: result.metrics.messages_delivered,
        accepted_at: result.deliveries_at_termination,
        total_bits: result.metrics.total_bits,
        max_msg_bits: result.metrics.max_message_bits,
        max_edge_bits: result.metrics.max_edge_bits(),
        dropped: result.metrics.messages_dropped,
        duplicated: result.metrics.messages_duplicated,
        crashed: result.metrics.crashed_deliveries,
        trace_digest: result
            .trace
            .as_ref()
            .expect("sweep runs always record traces")
            .digest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::spec::TopologySpec;

    fn spec() -> SweepSpec {
        SweepSpec {
            protocols: vec![
                ProtocolSpec::Mapping,
                ProtocolSpec::Labeling,
                ProtocolSpec::GeneralBroadcast { payload_bits: 16 },
            ],
            topologies: vec![
                TopologySpec::ChainGn { n: 4 },
                TopologySpec::CycleWithTail { k: 5 },
            ],
            seeds: vec![0],
            random_schedulers: 1,
            max_deliveries: 1_000_000,
            scenarios: vec![ScenarioSpec::Pristine],
        }
    }

    #[test]
    fn every_unit_terminates_ok_and_is_repeatable() {
        let spec = spec();
        let manifest = Manifest::from_spec(&spec);
        for unit in &manifest.units {
            let a = execute_unit(&spec, unit).expect("unit runs");
            let b = execute_unit(&spec, unit).expect("unit runs");
            assert_eq!(a, b, "unit {} is not deterministic", unit.key());
            assert_eq!(a.outcome, "terminated", "unit {}", unit.key());
            assert!(a.ok, "unit {} failed its protocol check", unit.key());
            assert!(a.sent > 0 && a.delivered > 0 && a.total_bits > 0);
            assert_eq!(a.index, unit.index);
        }
    }

    #[test]
    fn adversarial_units_are_deterministic_and_labelled() {
        let mut spec = spec();
        spec.scenarios = vec![
            ScenarioSpec::Pristine,
            ScenarioSpec::Faulty {
                drop_pct: 20,
                dup_pct: 10,
                reorder: 2,
                seed: 6,
                retry: 0,
                crashes: vec![],
            },
            ScenarioSpec::Corrupt(StateCorruption::ScrambledLabels { seed: 7 }),
            ScenarioSpec::Corrupt(StateCorruption::LostPartition),
            ScenarioSpec::Corrupt(StateCorruption::StaleTerminal),
        ];
        let manifest = Manifest::from_spec(&spec);
        let mut saw_fault_counters = false;
        for unit in &manifest.units {
            let a = execute_unit(&spec, unit).expect("unit runs");
            let b = execute_unit(&spec, unit).expect("unit runs");
            assert_eq!(a, b, "unit {} is not deterministic", unit.key());
            assert_eq!(a.scenario, unit.scenario.name());
            if unit.scenario.is_pristine() {
                assert!(a.ok, "pristine unit {} failed", unit.key());
                assert_eq!((a.dropped, a.duplicated, a.crashed), (0, 0, 0));
            }
            saw_fault_counters |= a.dropped > 0 || a.duplicated > 0;
        }
        assert!(
            saw_fault_counters,
            "a 20%-drop 10%-dup scenario must record fault counters somewhere"
        );
    }

    #[test]
    fn total_drop_scenarios_starve_every_run() {
        let mut spec = spec();
        spec.scenarios = vec![
            ScenarioSpec::Pristine,
            ScenarioSpec::Faulty {
                drop_pct: 100,
                dup_pct: 0,
                reorder: 0,
                seed: 0,
                retry: 0,
                crashes: vec![],
            },
            // Even a retry variant cannot outlast a total-drop adversary: the
            // budget bounds the re-flood rounds, so starvation stays a
            // detectable first-class outcome rather than a hang.
            ScenarioSpec::Faulty {
                drop_pct: 100,
                dup_pct: 0,
                reorder: 0,
                seed: 0,
                retry: 2,
                crashes: vec![],
            },
        ];
        let manifest = Manifest::from_spec(&spec);
        for unit in manifest.units.iter().filter(|u| !u.scenario.is_pristine()) {
            let record = execute_unit(&spec, unit).expect("unit runs");
            assert_eq!(record.outcome, "starved", "unit {}", unit.key());
            assert!(!record.ok);
            assert_eq!(record.delivered, 0);
            assert_eq!(record.dropped, record.sent);
            assert!(record.dropped > 0);
        }
    }

    #[test]
    fn crash_window_retry_units_recover_where_their_retry_free_twins_starve() {
        // A crash outage at canonical node 1 destroys the early deliveries
        // addressed to it. The retry-free scenario starves on a single-path
        // topology; the retry twin (same plan — `retry` does not perturb the
        // fault stream) keeps re-flooding, each round advancing the step
        // clock, until the window closes and the protocol completes.
        let mut spec = spec();
        spec.topologies = vec![TopologySpec::CycleWithTail { k: 5 }];
        let crash = vec![(1usize, 0u64, 6u64)];
        spec.scenarios = vec![
            ScenarioSpec::Pristine,
            ScenarioSpec::Faulty {
                drop_pct: 0,
                dup_pct: 0,
                reorder: 0,
                seed: 0,
                retry: 0,
                crashes: crash.clone(),
            },
            ScenarioSpec::Faulty {
                drop_pct: 0,
                dup_pct: 0,
                reorder: 0,
                seed: 0,
                retry: 8,
                crashes: crash,
            },
        ];
        let manifest = Manifest::from_spec(&spec);
        let mut starved = 0;
        let mut recovered = 0;
        for unit in &manifest.units {
            let record = execute_unit(&spec, unit).expect("unit runs");
            match &unit.scenario {
                ScenarioSpec::Pristine => assert!(record.ok, "unit {}", unit.key()),
                ScenarioSpec::Faulty { retry: 0, .. } => {
                    assert_eq!(record.outcome, "starved", "unit {}", unit.key());
                    assert!(record.crashed > 0, "unit {}", unit.key());
                    starved += 1;
                }
                ScenarioSpec::Faulty { .. } => {
                    assert_eq!(record.outcome, "terminated", "unit {}", unit.key());
                    assert!(record.ok, "unit {}", unit.key());
                    assert!(record.crashed > 0, "unit {}", unit.key());
                    recovered += 1;
                }
                ScenarioSpec::Corrupt(_) => unreachable!(),
            }
        }
        assert!(starved > 0 && recovered > 0);
        assert_eq!(starved, recovered);
    }

    #[test]
    fn bad_topology_parameters_surface_as_spec_errors() {
        let spec = spec();
        let mut unit = Manifest::from_spec(&spec).units[0].clone();
        unit.topology = TopologySpec::ChainGn { n: 0 };
        let err = execute_unit(&spec, &unit).expect_err("degenerate chain");
        assert!(err.to_string().contains("chain"), "{err}");
    }

    #[test]
    fn budget_exhaustion_is_recorded_not_fatal() {
        let mut spec = spec();
        spec.max_deliveries = 2;
        let manifest = Manifest::from_spec(&spec);
        let record = execute_unit(&spec, &manifest.units[0]).expect("unit runs");
        assert_eq!(record.outcome, "budget-exhausted");
        assert!(!record.ok);
        assert_eq!(record.accepted_at, None);
    }
}
