//! Canonical JSONL run records.
//!
//! Every completed sweep unit is serialised as exactly one JSON line with a
//! fixed field order and spacing (the same `"key": value, ` style as the
//! committed `BENCH_*.json` baselines, via
//! [`anet_bench::baseline::escape_json`]). Because the line is a pure function
//! of the unit's deterministic run, byte-comparing merged files is a sound
//! equivalence check across shard counts and process boundaries.
//!
//! [`RunRecord::parse_line`] is the checkpoint validator: it accepts a line iff
//! it parses into a record whose canonical re-serialisation is byte-identical
//! to the input. A line truncated by a killed shard therefore never survives a
//! resume — it either fails to parse or round-trips differently.
//!
//! String fields are emitted **raw**, guarded by a `jsonl_safe` assertion:
//! every name the
//! sweep produces (protocol, topology, scheduler, outcome) is generated from
//! enums and integers and never needs JSON escaping, and the guard panics —
//! loudly, at write time — on the first name that would. This keeps the writer
//! and the parser exact inverses; silently escaping on write while the parser
//! (and its `", "` field splitter) only accepts the unescaped form would
//! instead produce files the system itself could not re-read.

/// The distilled result of one sweep unit, one JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Manifest position (the merge key).
    pub index: usize,
    /// Protocol name.
    pub protocol: String,
    /// Topology instance name.
    pub topology: String,
    /// Scheduler display name.
    pub scheduler: String,
    /// Battery position.
    pub battery_index: usize,
    /// Battery seed.
    pub seed: u64,
    /// Execution scenario name (`pristine`, `faults/...` or `corrupt/...`).
    pub scenario: String,
    /// How the run ended: `terminated`, `quiescent`, `starved` (quiescent
    /// with adversary-destroyed messages) or `budget-exhausted`.
    pub outcome: String,
    /// Protocol-specific success check (e.g. exact topology reconstruction).
    pub ok: bool,
    /// Messages sent.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Deliveries at first terminal acceptance, if the run terminated.
    pub accepted_at: Option<u64>,
    /// Total wire bits.
    pub total_bits: u64,
    /// Largest single message, bits.
    pub max_msg_bits: u64,
    /// Largest per-edge bit total (required bandwidth), bits.
    pub max_edge_bits: u64,
    /// Messages destroyed by the fault adversary's drops.
    pub dropped: u64,
    /// Adversary-injected duplicate deliveries.
    pub duplicated: u64,
    /// Messages consumed by crashed vertices.
    pub crashed: u64,
    /// [`anet_sim::trace::Trace::digest`] of the run, in fixed-width hex.
    pub trace_digest: u64,
}

/// Asserts `s` can be embedded in a canonical record verbatim: no characters
/// that JSON would escape and none of the `", "` / `": "` separator sequences
/// the parser splits fields on.
///
/// # Panics
///
/// Panics when the name would need escaping — a bug in whatever generated it,
/// caught at write time rather than surfacing as an unreadable checkpoint.
fn jsonl_safe(s: &str) -> &str {
    assert!(
        !s.contains(['"', '\\', ' ']) && !s.chars().any(|c| (c as u32) < 0x20),
        "sweep name {s:?} is not JSONL-safe (quote, backslash, space or control character)"
    );
    s
}

impl RunRecord {
    /// The canonical JSONL line (no trailing newline).
    ///
    /// # Panics
    ///
    /// Panics if a string field is not JSONL-safe (see the [module
    /// docs](self)).
    pub fn to_jsonl_line(&self) -> String {
        let accepted = match self.accepted_at {
            Some(n) => n.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "{{\"i\": {}, \"protocol\": \"{}\", \"topology\": \"{}\", \"sched\": \"{}\", \"k\": {}, \"seed\": {}, \"scenario\": \"{}\", \"outcome\": \"{}\", \"ok\": {}, \"sent\": {}, \"delivered\": {}, \"accepted_at\": {}, \"total_bits\": {}, \"max_msg_bits\": {}, \"max_edge_bits\": {}, \"dropped\": {}, \"duplicated\": {}, \"crashed\": {}, \"trace\": \"{:016x}\"}}",
            self.index,
            jsonl_safe(&self.protocol),
            jsonl_safe(&self.topology),
            jsonl_safe(&self.scheduler),
            self.battery_index,
            self.seed,
            jsonl_safe(&self.scenario),
            jsonl_safe(&self.outcome),
            self.ok,
            self.sent,
            self.delivered,
            accepted,
            self.total_bits,
            self.max_msg_bits,
            self.max_edge_bits,
            self.dropped,
            self.duplicated,
            self.crashed,
            self.trace_digest,
        )
    }

    /// Parses a canonical JSONL line, returning `None` for anything that is
    /// not byte-for-byte canonical (the checkpoint completeness test).
    pub fn parse_line(line: &str) -> Option<RunRecord> {
        let body = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut fields = std::collections::HashMap::new();
        for field in body.split(", ") {
            let (key, value) = field.split_once(": ")?;
            let key = key.strip_prefix('"')?.strip_suffix('"')?;
            fields.insert(key, value);
        }
        let string = |key: &str| -> Option<String> {
            let v = fields.get(key)?;
            let inner = v.strip_prefix('"')?.strip_suffix('"')?;
            // Canonical strings never contain escapes or separators that the
            // splitter above would mangle; reject anything suspicious.
            if inner.contains(['\\', '"']) {
                return None;
            }
            Some(inner.to_owned())
        };
        let int = |key: &str| -> Option<u64> { fields.get(key)?.parse().ok() };
        let record = RunRecord {
            index: usize::try_from(int("i")?).ok()?,
            protocol: string("protocol")?,
            topology: string("topology")?,
            scheduler: string("sched")?,
            battery_index: usize::try_from(int("k")?).ok()?,
            seed: int("seed")?,
            scenario: string("scenario")?,
            outcome: string("outcome")?,
            ok: match *fields.get("ok")? {
                "true" => true,
                "false" => false,
                _ => return None,
            },
            sent: int("sent")?,
            delivered: int("delivered")?,
            accepted_at: match *fields.get("accepted_at")? {
                "null" => None,
                v => Some(v.parse().ok()?),
            },
            total_bits: int("total_bits")?,
            max_msg_bits: int("max_msg_bits")?,
            max_edge_bits: int("max_edge_bits")?,
            dropped: int("dropped")?,
            duplicated: int("duplicated")?,
            crashed: int("crashed")?,
            trace_digest: {
                let hex = string("trace")?;
                if hex.len() != 16 {
                    return None;
                }
                u64::from_str_radix(&hex, 16).ok()?
            },
        };
        // Round-trip gate: only exactly canonical lines are valid checkpoints.
        (record.to_jsonl_line() == line).then_some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        RunRecord {
            index: 12,
            protocol: "mapping".to_owned(),
            topology: "chain-gn/6".to_owned(),
            scheduler: "random#1".to_owned(),
            battery_index: 5,
            seed: 42,
            scenario: "pristine".to_owned(),
            outcome: "terminated".to_owned(),
            ok: true,
            sent: 40,
            delivered: 34,
            accepted_at: Some(34),
            total_bits: 1234,
            max_msg_bits: 99,
            max_edge_bits: 456,
            dropped: 0,
            duplicated: 0,
            crashed: 0,
            trace_digest: 0x00ab12cd34ef5678,
        }
    }

    #[test]
    fn record_round_trips() {
        let r = sample();
        let line = r.to_jsonl_line();
        assert_eq!(RunRecord::parse_line(&line), Some(r));
    }

    #[test]
    fn null_accepted_at_round_trips() {
        let r = RunRecord {
            accepted_at: None,
            outcome: "quiescent".to_owned(),
            ok: false,
            ..sample()
        };
        let line = r.to_jsonl_line();
        assert!(line.contains("\"accepted_at\": null"));
        assert_eq!(RunRecord::parse_line(&line), Some(r));
    }

    #[test]
    fn fault_scenario_records_round_trip() {
        let r = RunRecord {
            scenario: "faults/d20u10r2s6".to_owned(),
            outcome: "starved".to_owned(),
            ok: false,
            accepted_at: None,
            dropped: 9,
            duplicated: 3,
            crashed: 1,
            ..sample()
        };
        let line = r.to_jsonl_line();
        assert!(line.contains("\"scenario\": \"faults/d20u10r2s6\""));
        assert!(line.contains("\"dropped\": 9, \"duplicated\": 3, \"crashed\": 1"));
        assert_eq!(RunRecord::parse_line(&line), Some(r));
    }

    #[test]
    fn truncated_and_mangled_lines_are_rejected() {
        let line = sample().to_jsonl_line();
        for cut in 1..line.len() {
            assert_eq!(
                RunRecord::parse_line(&line[..cut]),
                None,
                "prefix of length {cut} must not validate"
            );
        }
        assert_eq!(RunRecord::parse_line(""), None);
        assert_eq!(RunRecord::parse_line("not json"), None);
        assert_eq!(RunRecord::parse_line(&format!(" {line}")), None);
        assert_eq!(RunRecord::parse_line(&line.replace("true", "maybe")), None);
        // Non-canonical spacing fails the round-trip gate.
        assert_eq!(RunRecord::parse_line(&line.replace(", ", ",")), None);
    }

    #[test]
    #[should_panic(expected = "not JSONL-safe")]
    fn unsafe_names_panic_at_write_time() {
        let r = RunRecord {
            protocol: "evil\"name".to_owned(),
            ..sample()
        };
        let _ = r.to_jsonl_line();
    }

    #[test]
    fn line_is_result_keys_compatible() {
        // The `", "` / `": "` separators are what
        // `anet_bench::baseline::result_keys` splits on; pin the compatibility
        // the CLI's --check diff reporting relies upon.
        let wrapped = format!("\"results\": [\n{}\n]", sample().to_jsonl_line());
        let keys = anet_bench::baseline::result_keys(&wrapped);
        assert_eq!(keys.len(), 1);
        let key = keys.iter().next().unwrap();
        assert!(key.contains("protocol=mapping"), "{key}");
        assert!(key.contains("topology=chain-gn/6"), "{key}");
    }
}
