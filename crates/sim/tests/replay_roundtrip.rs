//! Delivery-order capture → replay round-trip.
//!
//! Traces record *sends*; the asynchronous adversary is defined by the
//! *delivery* order. With [`RunConfig::record_delivery_order`] the incremental
//! engine captures the exact edge sequence it delivered, and feeding that
//! sequence to a [`ReplayScheduler`] must reproduce the run bit-identically —
//! outcome, metrics, termination point, final states, full send trace, and the
//! delivery order itself. The grid covers deterministic and random schedulers
//! over acyclic and cyclic topologies, through both engines.

use anet_graph::generators::{chain_gn, layered_dag, random_cyclic};
use anet_graph::Network;
use anet_sim::engine::{run_with_config, ExecutionConfig, RunConfig};
use anet_sim::reference::run_full_scan;
use anet_sim::scheduler::ReplayScheduler;
use anet_sim::{AnonymousProtocol, NodeContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The chattering flood also used by the engine-equivalence suite: queues grow
/// beyond one message per edge, so delivery order genuinely matters.
#[derive(Debug, Clone)]
struct Chatter {
    fanout_rounds: u64,
    needed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChatterState {
    received: u64,
    sum: u64,
}

impl AnonymousProtocol for Chatter {
    type State = ChatterState;
    type Message = u64;

    fn name(&self) -> &'static str {
        "chatter"
    }

    fn initial_state(&self, _ctx: &NodeContext) -> ChatterState {
        ChatterState {
            received: 0,
            sum: 0,
        }
    }

    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, u64)> {
        (0..root_out_degree).map(|p| (p, 1)).collect()
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut ChatterState,
        in_port: usize,
        message: &u64,
    ) -> Vec<(usize, u64)> {
        state.received += 1;
        state.sum = state
            .sum
            .wrapping_add(*message)
            .wrapping_add(in_port as u64);
        if state.received > self.fanout_rounds {
            return Vec::new();
        }
        (0..ctx.out_degree)
            .map(|p| (p, message.wrapping_add(p as u64 + 1)))
            .collect()
    }

    fn should_terminate(&self, terminal_state: &ChatterState) -> bool {
        terminal_state.received >= self.needed
    }
}

fn topologies() -> Vec<Network> {
    let mut rng = StdRng::seed_from_u64(0xD0D0);
    vec![
        chain_gn(8).expect("valid"),
        layered_dag(&mut rng, 4, 4, 2).expect("valid"),
        random_cyclic(&mut rng, 15, 0.15, 0.15).expect("valid"),
    ]
}

#[test]
fn captured_delivery_order_replays_bit_identically() {
    let protocol = Chatter {
        fanout_rounds: 3,
        needed: 4,
    };
    let capture_config = RunConfig::with_delivery_order(ExecutionConfig::with_trace());
    for net in topologies() {
        for mut scheduler in anet_sim::scheduler::standard_battery(99, 3) {
            let original = run_with_config(&net, &protocol, scheduler.as_mut(), capture_config);
            let order = original
                .delivery_order
                .clone()
                .expect("delivery order was requested");
            assert_eq!(
                order.len() as u64,
                original.metrics.messages_delivered,
                "one recorded edge per delivery ({})",
                scheduler.name()
            );

            let mut replay = ReplayScheduler::new(order.clone());
            let replayed = run_with_config(&net, &protocol, &mut replay, capture_config);
            assert_eq!(replayed.outcome, original.outcome);
            assert_eq!(replayed.metrics, original.metrics);
            assert_eq!(
                replayed.deliveries_at_termination,
                original.deliveries_at_termination
            );
            assert_eq!(replayed.states, original.states);
            assert_eq!(replayed.trace, original.trace);
            assert_eq!(replayed.delivery_order, Some(order.clone()));

            // The same order is feasible for the full-scan reference engine too
            // and reproduces the identical run there.
            let mut replay_full = ReplayScheduler::new(order);
            let full = run_full_scan(
                &net,
                &protocol,
                &mut replay_full,
                ExecutionConfig::with_trace(),
            );
            assert_eq!(full.outcome, original.outcome);
            assert_eq!(full.metrics, original.metrics);
            assert_eq!(full.trace, original.trace);
            assert_eq!(full.states, original.states);
        }
    }
}

/// A faulty run replays bit-identically from its step log: the captured
/// `(edge, action)` sequence — drops, duplicates, reorders, crash losses and
/// all — fed to [`ReplayScheduler::with_steps`] reproduces the run without the
/// fault RNG, on both engines. The plain `delivery_order` is *not* enough for
/// a faulty run (it only lists effective deliveries); the step log is the
/// faithful record.
#[test]
fn faulty_run_replays_bit_identically_from_its_step_log() {
    use anet_sim::{FaultPlan, FaultyScheduler};

    let protocol = Chatter {
        fanout_rounds: 3,
        needed: 4,
    };
    let plan = FaultPlan::reliable()
        .with_drops(20)
        .with_duplicates(10)
        .with_reorder(3)
        .with_seed(13)
        .with_crash(anet_graph::NodeId(1), 5, 9);
    let capture_config = RunConfig::with_delivery_order(ExecutionConfig::with_trace());
    for net in topologies() {
        for inner in anet_sim::scheduler::standard_battery(99, 3) {
            let mut faulty = FaultyScheduler::new(inner, plan.clone());
            let original = run_with_config(&net, &protocol, &mut faulty, capture_config);
            let name = faulty.inner().name();
            let steps = original.step_log.clone().expect("step log was requested");
            let order = original
                .delivery_order
                .clone()
                .expect("delivery order was requested");
            // The delivery order lists effective deliveries only; under a
            // lossy plan that is strictly fewer entries than engine steps.
            assert_eq!(
                order.len() as u64,
                original.metrics.messages_delivered,
                "scheduler {name}"
            );
            assert!(steps.len() >= order.len(), "scheduler {name}");

            let mut replay = ReplayScheduler::with_steps(steps.clone());
            let replayed = run_with_config(&net, &protocol, &mut replay, capture_config);
            assert_eq!(replayed.outcome, original.outcome, "scheduler {name}");
            assert_eq!(replayed.metrics, original.metrics, "scheduler {name}");
            assert_eq!(replayed.states, original.states, "scheduler {name}");
            assert_eq!(replayed.trace, original.trace, "scheduler {name}");
            assert_eq!(replayed.delivery_order, Some(order), "scheduler {name}");
            assert_eq!(replayed.step_log, Some(steps.clone()), "scheduler {name}");

            // The step log drives the full-scan reference engine to the same
            // run as well.
            let mut replay_full = ReplayScheduler::with_steps(steps);
            let full = run_full_scan(
                &net,
                &protocol,
                &mut replay_full,
                ExecutionConfig::with_trace(),
            );
            assert_eq!(full.outcome, original.outcome, "scheduler {name}");
            assert_eq!(full.metrics, original.metrics, "scheduler {name}");
            assert_eq!(full.trace, original.trace, "scheduler {name}");
            assert_eq!(full.states, original.states, "scheduler {name}");
        }
    }
}

#[test]
fn delivery_order_is_not_recorded_unless_requested() {
    let protocol = Chatter {
        fanout_rounds: 1,
        needed: 1,
    };
    let net = chain_gn(4).expect("valid");
    let res = anet_sim::engine::run(
        &net,
        &protocol,
        &mut anet_sim::scheduler::FifoScheduler::new(),
        ExecutionConfig::default(),
    );
    assert!(res.delivery_order.is_none());
}
