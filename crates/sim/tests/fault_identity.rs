//! Fault-layer contract tests.
//!
//! Three properties pin the adversary layer down:
//!
//! 1. **Zero-fault transparency** — wrapping any battery scheduler in a
//!    [`FaultyScheduler`] with [`FaultPlan::reliable`] produces bit-identical
//!    outcomes, metrics, traces, final states and delivery orders to the
//!    unwrapped scheduler, on both engines. The fault layer costs nothing
//!    when it does nothing.
//! 2. **Engine equivalence under faults** — a lossy plan drives the
//!    incremental and full-scan engines to the same run (same RNG stream,
//!    same actions, same trace), for every battery member.
//! 3. **Conservation** — every enqueued message (sends plus adversary
//!    duplicates) is consumed exactly once: delivered, dropped, or lost to a
//!    crash. Wire bits are charged only for real sends.
//!
//! Property 2 is also the `on_idle` coverage demanded by the scheduler
//! contract: with a high drop rate, edges routinely empty via a *drop* rather
//! than a delivery, and every battery scheduler (seq heaps, two-class heaps,
//! Fenwick-indexed random) must retire the edge identically on both paths.

use anet_graph::generators::{chain_gn, layered_dag, random_cyclic};
use anet_graph::{Network, NodeId};
use anet_sim::engine::{run_with_config, ExecutionConfig, RunConfig};
use anet_sim::reference::run_full_scan;
use anet_sim::scheduler::standard_battery;
use anet_sim::{AnonymousProtocol, FaultPlan, FaultyScheduler, NodeContext, Outcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The chattering flood used by the engine-equivalence suite: queues grow
/// beyond one message per edge, so drops, duplicates and reorders all bite.
#[derive(Debug, Clone)]
struct Chatter {
    fanout_rounds: u64,
    needed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChatterState {
    received: u64,
    sum: u64,
}

impl AnonymousProtocol for Chatter {
    type State = ChatterState;
    type Message = u64;

    fn name(&self) -> &'static str {
        "chatter"
    }

    fn initial_state(&self, _ctx: &NodeContext) -> ChatterState {
        ChatterState {
            received: 0,
            sum: 0,
        }
    }

    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, u64)> {
        (0..root_out_degree).map(|p| (p, 1)).collect()
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut ChatterState,
        in_port: usize,
        message: &u64,
    ) -> Vec<(usize, u64)> {
        state.received += 1;
        state.sum = state
            .sum
            .wrapping_add(*message)
            .wrapping_add(in_port as u64);
        if state.received > self.fanout_rounds {
            return Vec::new();
        }
        (0..ctx.out_degree)
            .map(|p| (p, message.wrapping_add(p as u64 + 1)))
            .collect()
    }

    fn should_terminate(&self, terminal_state: &ChatterState) -> bool {
        terminal_state.received >= self.needed
    }
}

fn topologies() -> Vec<Network> {
    let mut rng = StdRng::seed_from_u64(0xFA01);
    vec![
        chain_gn(7).expect("valid"),
        layered_dag(&mut rng, 4, 3, 2).expect("valid"),
        random_cyclic(&mut rng, 12, 0.2, 0.2).expect("valid"),
    ]
}

#[test]
fn reliable_plan_is_bit_identical_to_the_unwrapped_scheduler() {
    let protocol = Chatter {
        fanout_rounds: 3,
        needed: 4,
    };
    let config = RunConfig::with_delivery_order(ExecutionConfig::with_trace());
    for net in topologies() {
        let plain = standard_battery(23, 3);
        let wrapped = standard_battery(23, 3);
        for (mut plain, inner) in plain.into_iter().zip(wrapped) {
            let baseline = run_with_config(&net, &protocol, plain.as_mut(), config);
            let mut faulty = FaultyScheduler::new(inner, FaultPlan::reliable());
            let shadowed = run_with_config(&net, &protocol, &mut faulty, config);
            let name = plain.name();
            assert_eq!(shadowed.outcome, baseline.outcome, "scheduler {name}");
            assert_eq!(shadowed.metrics, baseline.metrics, "scheduler {name}");
            assert_eq!(shadowed.states, baseline.states, "scheduler {name}");
            assert_eq!(shadowed.trace, baseline.trace, "scheduler {name}");
            assert_eq!(
                shadowed.delivery_order, baseline.delivery_order,
                "scheduler {name}"
            );
            assert_eq!(
                shadowed.deliveries_at_termination, baseline.deliveries_at_termination,
                "scheduler {name}"
            );
            assert_eq!(shadowed.metrics.messages_lost(), 0);
            assert_eq!(shadowed.metrics.messages_duplicated, 0);
        }
    }
}

#[test]
fn both_engines_agree_under_a_lossy_plan_across_the_battery() {
    let protocol = Chatter {
        fanout_rounds: 4,
        needed: 6,
    };
    let plan = FaultPlan::reliable()
        .with_drops(25)
        .with_duplicates(10)
        .with_reorder(3)
        .with_seed(5);
    for net in topologies() {
        let incremental = standard_battery(31, 3);
        let reference = standard_battery(31, 3);
        for (inc, full) in incremental.into_iter().zip(reference) {
            let mut a = FaultyScheduler::new(inc, plan.clone());
            let mut b = FaultyScheduler::new(full, plan.clone());
            let x = run_with_config(
                &net,
                &protocol,
                &mut a,
                RunConfig::from(ExecutionConfig::with_trace()),
            );
            let y = run_full_scan(&net, &protocol, &mut b, ExecutionConfig::with_trace());
            let name = a.inner().name();
            assert_eq!(x.outcome, y.outcome, "scheduler {name}");
            assert_eq!(x.metrics, y.metrics, "scheduler {name}");
            assert_eq!(x.trace, y.trace, "scheduler {name}");
            assert_eq!(x.states, y.states, "scheduler {name}");
        }
    }
}

#[test]
fn quiescent_faulty_runs_conserve_messages() {
    // needed is unreachable, so every run drains to quiescence and the
    // bookkeeping must balance: sends + duplicates = deliveries + losses.
    let protocol = Chatter {
        fanout_rounds: 3,
        needed: u64::MAX,
    };
    let plan = FaultPlan::reliable()
        .with_drops(30)
        .with_duplicates(15)
        .with_reorder(2)
        .with_seed(77)
        .with_crash(NodeId(1), 2, 20);
    for net in topologies() {
        let mut saw_fault = false;
        for inner in standard_battery(41, 3) {
            let mut faulty = FaultyScheduler::new(inner, plan.clone());
            let run = run_with_config(
                &net,
                &protocol,
                &mut faulty,
                RunConfig::from(ExecutionConfig::with_trace()),
            );
            assert_eq!(run.outcome, Outcome::Quiescent);
            let m = &run.metrics;
            assert_eq!(
                m.messages_sent + m.messages_duplicated,
                m.messages_delivered + m.messages_lost(),
                "scheduler {}",
                faulty.inner().name()
            );
            // Bits are charged at send time only: the trace (real sends) and
            // the ledger agree even though duplicates were delivered.
            let trace = run.trace.as_ref().expect("trace requested");
            assert_eq!(trace.len() as u64, m.messages_sent);
            let trace_bits: u64 = trace.events().iter().map(|e| e.bits).sum();
            assert_eq!(trace_bits, m.total_bits);
            saw_fault |= m.messages_lost() > 0 || m.messages_duplicated > 0;
        }
        assert!(saw_fault, "the lossy plan must actually inject faults");
    }
}

#[test]
fn drop_budget_bounds_the_adversary() {
    let protocol = Chatter {
        fanout_rounds: 2,
        needed: 3,
    };
    let net = chain_gn(6).expect("valid");
    // Budget 0 disarms even a 100% drop rate: the run is bit-identical to the
    // unwrapped scheduler (the exhausted budget also stops the RNG draws).
    let disarmed = FaultPlan::reliable()
        .with_drops(100)
        .with_drop_budget(0)
        .with_seed(1);
    for (plain, inner) in standard_battery(3, 2)
        .into_iter()
        .zip(standard_battery(3, 2))
    {
        let mut plain = plain;
        let baseline = run_with_config(
            &net,
            &protocol,
            plain.as_mut(),
            RunConfig::from(ExecutionConfig::with_trace()),
        );
        let mut faulty = FaultyScheduler::new(inner, disarmed.clone());
        let run = run_with_config(
            &net,
            &protocol,
            &mut faulty,
            RunConfig::from(ExecutionConfig::with_trace()),
        );
        let name = plain.name();
        assert_eq!(run.metrics, baseline.metrics, "scheduler {name}");
        assert_eq!(run.trace, baseline.trace, "scheduler {name}");
        assert_eq!(run.outcome, baseline.outcome, "scheduler {name}");
    }

    // An unbounded 100% drop rate destroys every send: nothing is ever
    // delivered, and the run quiesces with the whole ledger in drops.
    let scorched = FaultPlan::reliable().with_drops(100).with_seed(1);
    for inner in standard_battery(3, 2) {
        let mut faulty = FaultyScheduler::new(inner, scorched.clone());
        let run = run_with_config(
            &net,
            &protocol,
            &mut faulty,
            RunConfig::from(ExecutionConfig::default()),
        );
        let name = faulty.inner().name();
        assert_eq!(run.outcome, Outcome::Quiescent, "scheduler {name}");
        assert_eq!(run.metrics.messages_delivered, 0, "scheduler {name}");
        assert_eq!(
            run.metrics.messages_dropped, run.metrics.messages_sent,
            "scheduler {name}"
        );
        assert!(run.metrics.messages_dropped > 0, "scheduler {name}");
    }
}

#[test]
fn fault_plan_boundaries_replay_bit_identically() {
    // Four boundary plans, each probing an edge of the fault-plan semantics.
    // For every one, the recorded step log fed to a `ReplayScheduler`
    // reproduces the faulty run bit for bit — outcome, metrics, states,
    // trace — so the boundaries are pinned by replay, not just by counters.
    use anet_sim::scheduler::{FifoScheduler, ReplayScheduler};

    let protocol = Chatter {
        fanout_rounds: 10,
        needed: u64::MAX,
    };
    use anet_sim::scheduler::SchedulerAction;

    let config = RunConfig::with_delivery_order(ExecutionConfig::with_trace());
    let chain = chain_gn(5).expect("valid");
    // A diamond with a relay (s → a, a → {v, u}, u → v, v → t): under FIFO,
    // v receives at steps 1 and 3, bracketing a one-step crash window.
    let mut g = anet_graph::DiGraph::new();
    let s = g.add_node();
    let a = g.add_node();
    let v = g.add_node();
    let u = g.add_node();
    let t = g.add_node();
    g.add_edge(s, a);
    g.add_edge(a, v);
    g.add_edge(a, u);
    g.add_edge(u, v);
    g.add_edge(v, t);
    let diamond = Network::new(g, s, t).expect("valid");
    // A busy cyclic network, so a small drop budget dies mid-run with plenty
    // of steps left.
    let mut rng = StdRng::seed_from_u64(0xFA02);
    let busy = random_cyclic(&mut rng, 12, 0.2, 0.2).expect("valid");

    let empty_window = FaultPlan::reliable().with_crash(NodeId(1), 4, 4);
    let edge_window = FaultPlan::reliable().with_crash(v, 1, 2);
    let mid_budget = FaultPlan::reliable()
        .with_drops(10)
        .with_drop_budget(2)
        .with_seed(2);
    let wide_reorder = FaultPlan::reliable().with_reorder(1000).with_seed(6);

    for (label, plan, net) in [
        ("empty crash window", &empty_window, &chain),
        ("window end-exclusivity", &edge_window, &diamond),
        ("mid-run budget exhaustion", &mid_budget, &busy),
        ("reorder wider than any queue", &wide_reorder, &busy),
    ] {
        let mut faulty = FaultyScheduler::new(FifoScheduler::new(), plan.clone());
        let run = run_with_config(net, &protocol, &mut faulty, config);
        let steps = run.step_log.clone().expect("step log requested");
        let mut replay = ReplayScheduler::with_steps(steps);
        let again = run_with_config(net, &protocol, &mut replay, config);
        assert_eq!(again.outcome, run.outcome, "{label}");
        assert_eq!(again.metrics, run.metrics, "{label}");
        assert_eq!(again.states, run.states, "{label}");
        assert_eq!(again.trace, run.trace, "{label}");
        assert_eq!(again.delivery_order, run.delivery_order, "{label}");
    }

    // Boundary 1: `from == until` is empty — the node is never down, and the
    // run equals the reliable baseline exactly.
    let baseline = run_with_config(&chain, &protocol, &mut FifoScheduler::new(), config);
    let mut faulty = FaultyScheduler::new(FifoScheduler::new(), empty_window);
    let run = run_with_config(&chain, &protocol, &mut faulty, config);
    assert_eq!(run.metrics, baseline.metrics);
    assert_eq!(run.trace, baseline.trace);
    assert_eq!(run.metrics.crashed_deliveries, 0);

    // Boundary 2: the window is half-open — `[1, 2)` consumes exactly the
    // step 1 delivery into v and nothing at the `until` step itself.
    let mut faulty = FaultyScheduler::new(FifoScheduler::new(), edge_window);
    let run = run_with_config(&diamond, &protocol, &mut faulty, config);
    assert_eq!(run.metrics.crashed_deliveries, 1);
    assert_eq!(
        run.metrics.messages_delivered, 4,
        "a, u, v (again) and t all hear traffic outside the window"
    );
    let steps = run.step_log.as_ref().expect("step log requested");
    assert_eq!(
        steps[1].1,
        SchedulerAction::NodeDown,
        "step 1 into v falls inside [1, 2)"
    );
    assert!(
        steps.iter().enumerate().any(|(i, (edge, action))| {
            i >= 2 && diamond.graph().edge_dst(*edge) == v && *action == SchedulerAction::Deliver
        }),
        "v receives again at a step >= until"
    );

    // Boundary 3: the two-drop budget is spent mid-run — deliveries continue
    // after the last drop the budget allowed.
    let mut faulty = FaultyScheduler::new(FifoScheduler::new(), mid_budget);
    let run = run_with_config(&busy, &protocol, &mut faulty, config);
    assert_eq!(run.metrics.messages_dropped, 2, "budget caps the drops");
    let steps = run.step_log.as_ref().expect("step log requested");
    let last_drop = steps
        .iter()
        .rposition(|(_, action)| *action == SchedulerAction::Drop)
        .expect("both budgeted drops fired");
    assert!(
        last_drop + 1 < steps.len(),
        "the run keeps delivering after the budget exhausts mid-run"
    );
    assert!(run.metrics.messages_delivered > 0);

    // Boundary 4: a reorder window far beyond any queue length clamps to the
    // queue and still conserves every message.
    let mut faulty = FaultyScheduler::new(FifoScheduler::new(), wide_reorder);
    let run = run_with_config(&busy, &protocol, &mut faulty, config);
    let m = &run.metrics;
    assert_eq!(
        m.messages_sent + m.messages_duplicated,
        m.messages_delivered + m.messages_lost()
    );
    assert_eq!(m.messages_delivered, m.messages_sent);
}

#[test]
fn crashed_node_loses_messages_but_recovers_with_state_intact() {
    // Node 1 of the chain is down for a long window: chain delivery stalls
    // (each message into the crashed node is consumed and lost), so the
    // terminal never hears anything. With no crash the same plan terminates.
    let protocol = Chatter {
        fanout_rounds: 1,
        needed: 1,
    };
    let net = chain_gn(4).expect("valid");
    let crashed = FaultPlan::reliable().with_crash(NodeId(1), 0, u64::MAX);
    let mut faulty = FaultyScheduler::new(anet_sim::scheduler::FifoScheduler::new(), crashed);
    let run = run_with_config(
        &net,
        &protocol,
        &mut faulty,
        RunConfig::from(ExecutionConfig::default()),
    );
    assert_eq!(run.outcome, Outcome::Quiescent);
    assert_eq!(run.metrics.crashed_deliveries, 1);
    assert_eq!(run.metrics.messages_delivered, 0);

    // A bounded window recovers: the crash consumes the first message, but a
    // recovered vertex keeps its (initial) state and handles nothing more —
    // so this quiesces too, demonstrating the window closing is observable
    // only if traffic arrives after `until`.
    let windowed = FaultPlan::reliable().with_crash(NodeId(1), 0, 1);
    let mut faulty = FaultyScheduler::new(anet_sim::scheduler::FifoScheduler::new(), windowed);
    let run = run_with_config(
        &net,
        &protocol,
        &mut faulty,
        RunConfig::from(ExecutionConfig::default()),
    );
    assert_eq!(run.metrics.crashed_deliveries, 1);
    assert_eq!(run.outcome, Outcome::Quiescent);
}
