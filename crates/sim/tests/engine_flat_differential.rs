//! The memory-layout refactor-safety net: the flat engine (CSR adjacency +
//! pooled message arena + emit-into scratch buffer) must be observationally
//! identical to the retained queue-forest engine.
//!
//! Every property runs the same protocol on the same network twice — once
//! through [`anet_sim::engine::run_with_config`] (the flat core) and once
//! through [`anet_sim::reference::run_queue_forest`] (the pre-flat
//! incremental engine, one `VecDeque` per edge) — with identically
//! constructed schedulers, and asserts bit-identical results: outcome, full
//! metrics (wire bits, per-edge counts), termination delivery count,
//! per-vertex final states, the complete send trace, the delivery order and
//! the step log. The grid covers the standard scheduler battery × random
//! seeds × every generator family, plus the corrupted-start, faulty-scheduler
//! and re-flood recovery entry points.

use anet_graph::generators::{
    chain_gn, layered_dag, path_network, random_cyclic, random_dag, random_grounded_tree,
};
use anet_graph::Network;
use anet_sim::engine::{run_corrupted, run_recovering, run_with_config};
use anet_sim::reference::{
    run_queue_forest, run_queue_forest_corrupted, run_queue_forest_recovering,
};
use anet_sim::scheduler::standard_battery;
use anet_sim::{
    AnonymousProtocol, ExecutionConfig, FaultPlan, FaultyScheduler, NodeContext, RefloodProtocol,
    RunConfig, RunResult,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The traffic generator shared with the full-scan equivalence suite:
/// vertices forward on every out-port for their first `fanout_rounds`
/// receipts, so queues grow beyond one message per edge and the arena's
/// recycling and chain bookkeeping are exercised.
#[derive(Debug, Clone)]
struct Chatter {
    fanout_rounds: u64,
    needed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChatterState {
    received: u64,
    sum: u64,
}

impl AnonymousProtocol for Chatter {
    type State = ChatterState;
    type Message = u64;

    fn name(&self) -> &'static str {
        "chatter"
    }

    fn initial_state(&self, _ctx: &NodeContext) -> ChatterState {
        ChatterState {
            received: 0,
            sum: 0,
        }
    }

    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, u64)> {
        (0..root_out_degree).map(|p| (p, 1)).collect()
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut ChatterState,
        in_port: usize,
        message: &u64,
    ) -> Vec<(usize, u64)> {
        state.received += 1;
        state.sum = state
            .sum
            .wrapping_add(*message)
            .wrapping_add(in_port as u64);
        if state.received > self.fanout_rounds {
            return Vec::new();
        }
        (0..ctx.out_degree)
            .map(|p| (p, message.wrapping_add(p as u64 + 1)))
            .collect()
    }

    fn should_terminate(&self, terminal_state: &ChatterState) -> bool {
        terminal_state.received >= self.needed
    }
}

impl RefloodProtocol for Chatter {
    fn reflood(&self, ctx: &NodeContext, state: &ChatterState) -> Vec<(usize, u64)> {
        if state.received == 0 {
            return Vec::new();
        }
        (0..ctx.out_degree).map(|p| (p, state.sum)).collect()
    }
}

/// Builds the `case`-th topology from the family grid.
fn topology(kind: usize, n: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let internal = n.max(2);
    match kind {
        0 => chain_gn(internal).expect("chain_gn accepts n >= 1"),
        1 => path_network(internal).expect("path_network accepts n >= 1"),
        2 => random_grounded_tree(&mut rng, internal, 4, 0.3).expect("valid tree parameters"),
        3 => layered_dag(&mut rng, (internal / 4).max(1), 4, 2).expect("valid dag parameters"),
        4 => random_dag(&mut rng, internal, 0.2).expect("valid dag parameters"),
        _ => random_cyclic(&mut rng, internal, 0.15, 0.1).expect("valid cyclic parameters"),
    }
}

/// Asserts every observable field of two runs is identical.
fn assert_results_identical<S, M>(
    name: &str,
    a: &RunResult<S, M>,
    b: &RunResult<S, M>,
) -> Result<(), String>
where
    S: PartialEq + std::fmt::Debug,
    M: PartialEq + std::fmt::Debug,
{
    if a.outcome != b.outcome {
        return Err(format!(
            "[{name}] outcome {:?} != {:?}",
            a.outcome, b.outcome
        ));
    }
    if a.metrics != b.metrics {
        return Err(format!(
            "[{name}] metrics {:?} != {:?}",
            a.metrics, b.metrics
        ));
    }
    if a.deliveries_at_termination != b.deliveries_at_termination {
        return Err(format!(
            "[{name}] deliveries_at_termination {:?} != {:?}",
            a.deliveries_at_termination, b.deliveries_at_termination
        ));
    }
    if a.states != b.states {
        return Err(format!("[{name}] final vertex states diverge"));
    }
    if a.delivery_order != b.delivery_order {
        return Err(format!("[{name}] delivery orders diverge"));
    }
    if a.step_log != b.step_log {
        return Err(format!("[{name}] step logs diverge"));
    }
    if a.trace != b.trace {
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        let first = ta
            .events()
            .iter()
            .zip(tb.events())
            .position(|(x, y)| x != y)
            .map(|i| format!("first divergence at send #{i}"))
            .unwrap_or_else(|| format!("trace lengths differ: {} vs {}", ta.len(), tb.len()));
        return Err(format!("[{name}] traces diverge: {first}"));
    }
    Ok(())
}

/// Runs both engines (flat vs queue forest) under identically constructed
/// schedulers, optionally wrapped in the same fault plan, and asserts
/// observational equality.
fn assert_layouts_agree(
    network: &Network,
    protocol: &Chatter,
    battery_seed: u64,
    random_count: usize,
    run_config: RunConfig,
    plan: Option<&FaultPlan>,
) -> Result<(), String> {
    let flat = standard_battery(battery_seed, random_count);
    let forest = standard_battery(battery_seed, random_count);
    for (flat_sched, forest_sched) in flat.into_iter().zip(forest) {
        let name = flat_sched.name();
        let (a, b) = match plan {
            None => {
                let mut fa = flat_sched;
                let mut fb = forest_sched;
                (
                    run_with_config(network, protocol, fa.as_mut(), run_config),
                    run_queue_forest(network, protocol, fb.as_mut(), run_config),
                )
            }
            Some(plan) => {
                let mut fa = FaultyScheduler::new(flat_sched, plan.clone());
                let mut fb = FaultyScheduler::new(forest_sched, plan.clone());
                (
                    run_with_config(network, protocol, &mut fa, run_config),
                    run_queue_forest(network, protocol, &mut fb, run_config),
                )
            }
        };
        assert_results_identical(name, &a, &b)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The flagship property: across every topology family, scheduler in the
    /// battery and seed, the flat and queue-forest engines produce identical
    /// traces, metrics, states, outcomes, delivery orders and step logs.
    #[test]
    fn layouts_agree_across_battery_topologies_and_seeds(
        kind in 0usize..6,
        n in 2usize..28,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
        fanout_rounds in 1u64..4,
        needed in 1u64..6,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds, needed };
        let verdict = assert_layouts_agree(
            &network,
            &protocol,
            battery_seed,
            3,
            RunConfig::with_delivery_order(ExecutionConfig::with_trace()),
            None,
        );
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    /// Under a faulty adversary (drops, duplicates, reorders) the arena's
    /// cold paths — positional removal, duplicate re-enqueue — must match the
    /// `VecDeque` semantics step for step.
    #[test]
    fn layouts_agree_under_fault_injection(
        kind in 0usize..6,
        n in 2usize..20,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        drops in 0u8..30,
        dups in 0u8..30,
        reorder in 0usize..4,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds: 3, needed: 4 };
        let plan = FaultPlan::reliable()
            .with_drops(drops)
            .with_duplicates(dups)
            .with_reorder(reorder)
            .with_seed(fault_seed);
        let verdict = assert_layouts_agree(
            &network,
            &protocol,
            battery_seed,
            2,
            RunConfig::with_delivery_order(ExecutionConfig::with_trace()),
            Some(&plan),
        );
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    /// Budget exhaustion must cut both layouts at exactly the same delivery.
    #[test]
    fn layouts_agree_when_the_budget_interrupts_the_run(
        kind in 0usize..6,
        n in 2usize..20,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
        max_deliveries in 1u64..40,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds: 3, needed: u64::MAX };
        let config = ExecutionConfig { max_deliveries, record_trace: true };
        let verdict = assert_layouts_agree(
            &network,
            &protocol,
            battery_seed,
            2,
            RunConfig::with_delivery_order(config),
            None,
        );
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    /// The corrupted-start entry point perturbs states identically before
    /// either engine delivers anything.
    #[test]
    fn layouts_agree_from_corrupted_starts(
        kind in 0usize..6,
        n in 2usize..20,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
        poison in 1u64..1_000,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds: 2, needed: 3 };
        let corrupt = |states: &mut [ChatterState]| {
            for (i, s) in states.iter_mut().enumerate() {
                if i % 2 == 0 {
                    s.sum = s.sum.wrapping_add(poison);
                }
            }
        };
        let flat = standard_battery(battery_seed, 2);
        let forest = standard_battery(battery_seed, 2);
        let config = RunConfig::with_delivery_order(ExecutionConfig::with_trace());
        for (mut fa, mut fb) in flat.into_iter().zip(forest) {
            let name = fa.name();
            let a = run_corrupted(&network, &protocol, fa.as_mut(), config, corrupt);
            let b = run_queue_forest_corrupted(&network, &protocol, fb.as_mut(), config, corrupt);
            let verdict = assert_results_identical(name, &a, &b);
            prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
        }
    }

    /// The re-flood recovery path: both layouts fire the same rounds and
    /// charge the same retry traffic under the same lossy adversary.
    #[test]
    fn layouts_agree_under_reflood_recovery(
        kind in 0usize..6,
        n in 2usize..20,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        drops in 1u8..40,
        retry_budget in 0u32..4,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds: 2, needed: 3 };
        let plan = FaultPlan::reliable().with_drops(drops).with_seed(fault_seed);
        let flat = standard_battery(battery_seed, 2);
        let forest = standard_battery(battery_seed, 2);
        let config = RunConfig::with_delivery_order(ExecutionConfig::with_trace());
        for (flat_sched, forest_sched) in flat.into_iter().zip(forest) {
            let mut fa = FaultyScheduler::new(flat_sched, plan.clone());
            let mut fb = FaultyScheduler::new(forest_sched, plan.clone());
            let a = run_recovering(&network, &protocol, &mut fa, config, retry_budget);
            let b = run_queue_forest_recovering(&network, &protocol, &mut fb, config, retry_budget);
            let name = fa.inner().name();
            prop_assert_eq!(a.reflood_rounds, b.reflood_rounds, "[{}] rounds", name);
            prop_assert_eq!(a.reflood_sends, b.reflood_sends, "[{}] sends", name);
            prop_assert_eq!(a.reflood_bits, b.reflood_bits, "[{}] bits", name);
            let verdict = assert_results_identical(name, &a.result, &b.result);
            prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
        }
    }
}
