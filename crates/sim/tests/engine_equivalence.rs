//! The refactor-safety net: the incremental active-edge-set engine must be
//! observationally identical to the naive full-scan reference engine.
//!
//! Every property here runs the same protocol on the same network twice — once
//! through [`anet_sim::engine::run`] (incremental scheduler notifications, no
//! per-delivery scan) and once through [`anet_sim::reference::run_full_scan`]
//! (candidate list rebuilt on every delivery, the original semantics) — with
//! identically constructed schedulers, and asserts bit-identical results:
//! outcome, full metrics, termination delivery count, per-vertex final states
//! and the complete send trace. The grid covers the whole standard scheduler
//! battery × random seeds × every generator family the paper uses.

use anet_graph::generators::{
    chain_gn, layered_dag, path_network, random_cyclic, random_dag, random_grounded_tree,
};
use anet_graph::Network;
use anet_sim::engine::run;
use anet_sim::reference::run_full_scan;
use anet_sim::scheduler::{standard_battery, DepthFirstScheduler, Scheduler};
use anet_sim::{AnonymousProtocol, ExecutionConfig, NodeContext};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Flood with a twist: vertices forward on every out-port for their first
/// `fanout_rounds` receipts (not just the first), and messages carry a counter,
/// so queues grow beyond one message per edge and head sequences keep changing —
/// exactly the traffic shape that stresses the incremental bookkeeping.
#[derive(Debug, Clone)]
struct Chatter {
    fanout_rounds: u64,
    needed: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ChatterState {
    received: u64,
    sum: u64,
}

impl AnonymousProtocol for Chatter {
    type State = ChatterState;
    type Message = u64;

    fn name(&self) -> &'static str {
        "chatter"
    }

    fn initial_state(&self, _ctx: &NodeContext) -> ChatterState {
        ChatterState {
            received: 0,
            sum: 0,
        }
    }

    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, u64)> {
        (0..root_out_degree).map(|p| (p, 1)).collect()
    }

    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut ChatterState,
        in_port: usize,
        message: &u64,
    ) -> Vec<(usize, u64)> {
        state.received += 1;
        state.sum = state
            .sum
            .wrapping_add(*message)
            .wrapping_add(in_port as u64);
        if state.received > self.fanout_rounds {
            return Vec::new();
        }
        (0..ctx.out_degree)
            .map(|p| (p, message.wrapping_add(p as u64 + 1)))
            .collect()
    }

    fn should_terminate(&self, terminal_state: &ChatterState) -> bool {
        terminal_state.received >= self.needed
    }
}

/// Builds the `case`-th topology from the family grid.
fn topology(kind: usize, n: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let internal = n.max(2);
    match kind {
        0 => chain_gn(internal).expect("chain_gn accepts n >= 1"),
        1 => path_network(internal).expect("path_network accepts n >= 1"),
        2 => random_grounded_tree(&mut rng, internal, 4, 0.3).expect("valid tree parameters"),
        3 => layered_dag(&mut rng, (internal / 4).max(1), 4, 2).expect("valid dag parameters"),
        4 => random_dag(&mut rng, internal, 0.2).expect("valid dag parameters"),
        _ => random_cyclic(&mut rng, internal, 0.15, 0.1).expect("valid cyclic parameters"),
    }
}

/// Runs both engines under identically constructed schedulers and asserts
/// observational equality, returning an error message on the first divergence.
fn assert_engines_agree<P>(
    network: &Network,
    protocol: &P,
    battery_seed: u64,
    random_count: usize,
    config: ExecutionConfig,
) -> Result<(), String>
where
    P: AnonymousProtocol,
    P::State: PartialEq + std::fmt::Debug,
    P::Message: PartialEq + std::fmt::Debug,
{
    // The battery plus the out-of-battery depth-first scheduler (kept outside
    // `standard_battery` so the pinned sweep fingerprints stay stable, but its
    // stamp bookkeeping is the trickiest incremental/full-scan pairing here).
    let mut incremental = standard_battery(battery_seed, random_count);
    let mut reference = standard_battery(battery_seed, random_count);
    incremental.push(Box::new(DepthFirstScheduler::new()));
    reference.push(Box::new(DepthFirstScheduler::new()));
    for (mut inc, mut full) in incremental.into_iter().zip(reference) {
        let name = inc.name();
        let a = run(network, protocol, inc.as_mut(), config);
        let b = run_full_scan(network, protocol, full.as_mut(), config);
        if a.outcome != b.outcome {
            return Err(format!(
                "[{name}] outcome {:?} != {:?}",
                a.outcome, b.outcome
            ));
        }
        if a.metrics != b.metrics {
            return Err(format!(
                "[{name}] metrics {:?} != {:?}",
                a.metrics, b.metrics
            ));
        }
        if a.deliveries_at_termination != b.deliveries_at_termination {
            return Err(format!(
                "[{name}] deliveries_at_termination {:?} != {:?}",
                a.deliveries_at_termination, b.deliveries_at_termination
            ));
        }
        if a.states != b.states {
            return Err(format!("[{name}] final vertex states diverge"));
        }
        if a.trace != b.trace {
            let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
            let first = ta
                .events()
                .iter()
                .zip(tb.events())
                .position(|(x, y)| x != y)
                .map(|i| format!("first divergence at send #{i}"))
                .unwrap_or_else(|| format!("trace lengths differ: {} vs {}", ta.len(), tb.len()));
            return Err(format!("[{name}] traces diverge: {first}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The flagship property: across every topology family, scheduler in the
    /// battery and seed, both engines produce identical traces, metrics,
    /// states and outcomes.
    #[test]
    fn engines_agree_across_battery_topologies_and_seeds(
        kind in 0usize..6,
        n in 2usize..28,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
        fanout_rounds in 1u64..4,
        needed in 1u64..6,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds, needed };
        let verdict = assert_engines_agree(
            &network,
            &protocol,
            battery_seed,
            3,
            ExecutionConfig::with_trace(),
        );
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    /// Budget exhaustion must cut both engines at exactly the same delivery.
    #[test]
    fn engines_agree_when_the_budget_interrupts_the_run(
        kind in 0usize..6,
        n in 2usize..20,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
        max_deliveries in 1u64..40,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds: 3, needed: u64::MAX };
        let config = ExecutionConfig { max_deliveries, record_trace: true };
        let verdict = assert_engines_agree(&network, &protocol, battery_seed, 2, config);
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }

    /// Quiescent runs (terminal never satisfied) drain every message through
    /// both engines identically.
    #[test]
    fn engines_agree_on_quiescent_runs(
        kind in 0usize..6,
        n in 2usize..16,
        topo_seed in 0u64..1_000,
        battery_seed in 0u64..1_000,
    ) {
        let network = topology(kind, n, topo_seed);
        let protocol = Chatter { fanout_rounds: 2, needed: u64::MAX };
        let verdict = assert_engines_agree(
            &network,
            &protocol,
            battery_seed,
            2,
            ExecutionConfig::with_trace(),
        );
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}
