//! Execution traces: a full record of every message transmission.
//!
//! Traces are what turn a protocol run into data the lower-bound machinery can
//! inspect: the multiset of symbols transmitted on a set of edges (`σ_A(E')` in the
//! paper), the alphabet `Σ_G` of a run, or the sequence of deliveries leading to a
//! linear-cut snapshot.

use anet_graph::{EdgeId, NodeId};

/// A single transmitted message, recorded at send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendEvent<M> {
    /// Global sequence number of the send (0 for the root's initial message).
    pub seq: u64,
    /// The edge the message was placed on.
    pub edge: EdgeId,
    /// Source vertex.
    pub src: NodeId,
    /// Destination vertex.
    pub dst: NodeId,
    /// Wire size of the message in bits.
    pub bits: u64,
    /// The message itself.
    pub message: M,
}

/// A full record of the sends of one protocol run, in send order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace<M> {
    events: Vec<SendEvent<M>>,
}

impl<M> Trace<M> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Appends an event.
    pub fn push(&mut self, event: SendEvent<M>) {
        self.events.push(event);
    }

    /// All events in send order.
    pub fn events(&self) -> &[SendEvent<M>] {
        &self.events
    }

    /// Number of recorded sends.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was sent.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The messages transmitted over a given edge, in transmission order.
    pub fn messages_on_edge(&self, edge: EdgeId) -> Vec<&M> {
        self.events
            .iter()
            .filter(|e| e.edge == edge)
            .map(|e| &e.message)
            .collect()
    }

    /// The multiset of messages transmitted over a set of edges — the paper's
    /// `σ_A(E')` — rendered through `key` so callers can choose the equality used
    /// for "the same symbol" (typically a canonical string or byte encoding).
    pub fn multiset_on_edges<K: Ord, F: Fn(&M) -> K>(&self, edges: &[EdgeId], key: F) -> Vec<K> {
        let mut keys: Vec<K> = self
            .events
            .iter()
            .filter(|e| edges.contains(&e.edge))
            .map(|e| key(&e.message))
            .collect();
        keys.sort();
        keys
    }

    /// The set of distinct symbols transmitted anywhere during the run — the
    /// paper's `Σ_G` — rendered through `key`.
    pub fn distinct_symbols<K: Ord, F: Fn(&M) -> K>(&self, key: F) -> Vec<K> {
        let mut keys: Vec<K> = self.events.iter().map(|e| key(&e.message)).collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, edge: usize, msg: u32) -> SendEvent<u32> {
        SendEvent {
            seq,
            edge: EdgeId(edge),
            src: NodeId(0),
            dst: NodeId(1),
            bits: 8,
            message: msg,
        }
    }

    #[test]
    fn trace_collects_events_in_order() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(ev(0, 0, 10));
        t.push(ev(1, 1, 20));
        t.push(ev(2, 0, 10));
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[1].message, 20);
        assert_eq!(t.messages_on_edge(EdgeId(0)), vec![&10, &10]);
    }

    #[test]
    fn multiset_and_distinct_symbols() {
        let mut t = Trace::new();
        t.push(ev(0, 0, 10));
        t.push(ev(1, 1, 20));
        t.push(ev(2, 2, 10));
        let multi = t.multiset_on_edges(&[EdgeId(0), EdgeId(2)], |m| *m);
        assert_eq!(multi, vec![10, 10]);
        let distinct = t.distinct_symbols(|m| *m);
        assert_eq!(distinct, vec![10, 20]);
    }
}
