//! Execution traces: a full record of every message transmission.
//!
//! Traces are what turn a protocol run into data the lower-bound machinery can
//! inspect: the multiset of symbols transmitted on a set of edges (`σ_A(E')` in the
//! paper), the alphabet `Σ_G` of a run, or the sequence of deliveries leading to a
//! linear-cut snapshot.

use anet_graph::{EdgeId, NodeId};

/// The workspace's stable FNV-1a 64-bit hasher, re-exported from
/// [`anet_num`].
///
/// It backs [`Trace::digest`], the sweep subsystem's partitioner and file
/// fingerprints, and `anet-graph`'s canonical topology fingerprints. The
/// hasher lives in `anet-num` (the workspace's root crate) so every layer —
/// including `anet-graph`, which this crate depends on — shares one set of
/// magic constants; this re-export keeps the historical
/// `anet_sim::trace::Fnv1a` path working.
pub use anet_num::Fnv1a;

/// A single transmitted message, recorded at send time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendEvent<M> {
    /// Global sequence number of the send (0 for the root's initial message).
    pub seq: u64,
    /// The edge the message was placed on.
    pub edge: EdgeId,
    /// Source vertex.
    pub src: NodeId,
    /// Destination vertex.
    pub dst: NodeId,
    /// Wire size of the message in bits.
    pub bits: u64,
    /// The message itself.
    pub message: M,
}

/// A full record of the sends of one protocol run, in send order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace<M> {
    events: Vec<SendEvent<M>>,
}

impl<M> Trace<M> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Creates an empty trace with room for `capacity` events, so the engine's
    /// hot path can record sends without reallocating (a run on a reliable
    /// schedule sends at least one message per reached edge, which is the
    /// capacity the engine passes).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, event: SendEvent<M>) {
        self.events.push(event);
    }

    /// All events in send order.
    pub fn events(&self) -> &[SendEvent<M>] {
        &self.events
    }

    /// Number of recorded sends.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was sent.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The messages transmitted over a given edge, in transmission order.
    pub fn messages_on_edge(&self, edge: EdgeId) -> Vec<&M> {
        self.events
            .iter()
            .filter(|e| e.edge == edge)
            .map(|e| &e.message)
            .collect()
    }

    /// The multiset of messages transmitted over a set of edges — the paper's
    /// `σ_A(E')` — rendered through `key` so callers can choose the equality used
    /// for "the same symbol" (typically a canonical string or byte encoding).
    pub fn multiset_on_edges<K: Ord, F: Fn(&M) -> K>(&self, edges: &[EdgeId], key: F) -> Vec<K> {
        let mut keys: Vec<K> = self
            .events
            .iter()
            .filter(|e| edges.contains(&e.edge))
            .map(|e| key(&e.message))
            .collect();
        keys.sort();
        keys
    }

    /// The set of distinct symbols transmitted anywhere during the run — the
    /// paper's `Σ_G` — rendered through `key`.
    pub fn distinct_symbols<K: Ord, F: Fn(&M) -> K>(&self, key: F) -> Vec<K> {
        let mut keys: Vec<K> = self.events.iter().map(|e| key(&e.message)).collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// A stable, order-sensitive 64-bit digest of the trace's structure: an
    /// FNV-1a hash over every event's `(seq, edge, src, dst, bits)` tuple, in
    /// send order.
    ///
    /// The digest deliberately ignores message *contents* (which may not have a
    /// canonical byte encoding) but covers their wire sizes, so two runs agree
    /// iff they transmitted the same sizes on the same edges in the same order —
    /// the fingerprint the sharded sweep subsystem uses to compare runs across
    /// process boundaries without shipping whole traces. It depends only on
    /// integer arithmetic, so it is identical across platforms and processes.
    pub fn digest(&self) -> u64 {
        let mut hash = Fnv1a::new();
        for e in &self.events {
            hash.write_u64(e.seq);
            hash.write_u64(e.edge.index() as u64);
            hash.write_u64(e.src.index() as u64);
            hash.write_u64(e.dst.index() as u64);
            hash.write_u64(e.bits);
        }
        hash.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, edge: usize, msg: u32) -> SendEvent<u32> {
        SendEvent {
            seq,
            edge: EdgeId(edge),
            src: NodeId(0),
            dst: NodeId(1),
            bits: 8,
            message: msg,
        }
    }

    #[test]
    fn trace_collects_events_in_order() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(ev(0, 0, 10));
        t.push(ev(1, 1, 20));
        t.push(ev(2, 0, 10));
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[1].message, 20);
        assert_eq!(t.messages_on_edge(EdgeId(0)), vec![&10, &10]);
    }

    #[test]
    fn digest_is_stable_and_structure_sensitive() {
        let mut t = Trace::new();
        t.push(ev(0, 0, 10));
        t.push(ev(1, 1, 20));
        // Deterministic across calls (and, being pure integer FNV, across
        // platforms and processes).
        assert_eq!(t.digest(), t.digest());
        assert_eq!(Trace::<u32>::new().digest(), Trace::<u32>::new().digest());
        assert_ne!(t.digest(), Trace::<u32>::new().digest());
        // Order-sensitive: swapping the events changes the digest.
        let mut swapped = Trace::new();
        swapped.push(ev(1, 1, 20));
        swapped.push(ev(0, 0, 10));
        assert_ne!(t.digest(), swapped.digest());
        // Sensitive to edges and to wire sizes, but not to message contents.
        let mut other_edge = Trace::new();
        other_edge.push(ev(0, 2, 10));
        other_edge.push(ev(1, 1, 20));
        assert_ne!(t.digest(), other_edge.digest());
        let mut other_bits = Trace::new();
        other_bits.push(SendEvent {
            bits: 9,
            ..ev(0, 0, 10)
        });
        other_bits.push(ev(1, 1, 20));
        assert_ne!(t.digest(), other_bits.digest());
        let mut other_payload = Trace::new();
        other_payload.push(ev(0, 0, 99));
        other_payload.push(ev(1, 1, 77));
        assert_eq!(t.digest(), other_payload.digest());
    }

    #[test]
    fn multiset_and_distinct_symbols() {
        let mut t = Trace::new();
        t.push(ev(0, 0, 10));
        t.push(ev(1, 1, 20));
        t.push(ev(2, 2, 10));
        let multi = t.multiset_on_edges(&[EdgeId(0), EdgeId(2)], |m| *m);
        assert_eq!(multi, vec![10, 10]);
        let distinct = t.distinct_symbols(|m| *m);
        assert_eq!(distinct, vec![10, 20]);
    }
}
