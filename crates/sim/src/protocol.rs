//! The anonymous-protocol abstraction (`Π, Σ, π₀, σ₀, f, g, S`).

use crate::Wire;

/// The only per-vertex information an anonymous protocol may use: local degrees.
///
/// Deliberately, neither the vertex id nor "am I the terminal?" is exposed — the
/// paper's vertices know *only* how many incoming and outgoing edges they have and
/// can tell their incident edges apart by index. A vertex with out-degree zero
/// simply has nowhere to forward anything, whether or not it happens to be `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeContext {
    /// Number of incoming edges of the executing vertex.
    pub in_degree: usize,
    /// Number of outgoing edges of the executing vertex.
    pub out_degree: usize,
}

impl NodeContext {
    /// Convenience constructor.
    pub fn new(in_degree: usize, out_degree: usize) -> Self {
        NodeContext {
            in_degree,
            out_degree,
        }
    }
}

/// An anonymous protocol in the sense of Section 2 of the paper.
///
/// * `State` is the state space `Π` and [`initial_state`](Self::initial_state) is `π₀`
///   (which may depend only on the local degrees).
/// * `Message` is the message space `Σ`; [`root_messages`](Self::root_messages) is the
///   initial message `σ₀` injected by the root on its out-ports.
/// * [`on_receive`](Self::on_receive) combines the state function `f` and the message
///   function `g`: it updates the local state and returns, per out-port, the message to
///   transmit (absent ports transmit nothing, the paper's `φ`).
/// * [`should_terminate`](Self::should_terminate) is the stopping predicate `S`,
///   evaluated on the terminal's state after each delivery to the terminal.
///
/// Protocol values themselves carry only *global* protocol parameters (such as the
/// payload `m` being broadcast); everything per-vertex lives in `State`.
pub trait AnonymousProtocol {
    /// Per-vertex protocol state (`Π`).
    type State: Clone + std::fmt::Debug;
    /// Messages transmitted on edges (`Σ`).
    type Message: Clone + std::fmt::Debug + Wire;

    /// A short human-readable protocol name used in reports and traces.
    fn name(&self) -> &'static str;

    /// `π₀`: the initial state of a vertex with the given local degrees.
    fn initial_state(&self, ctx: &NodeContext) -> Self::State;

    /// `σ₀`: the messages the root sends at time zero, as `(out_port, message)`
    /// pairs. In the base model the root has a single outgoing edge, so this is one
    /// message on port 0.
    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, Self::Message)>;

    /// `f` and `g`: deliver `message` on `in_port`, update `state`, and return the
    /// messages to transmit as `(out_port, message)` pairs.
    ///
    /// Out-ports must be smaller than `ctx.out_degree`; the engine treats a larger
    /// port as a protocol bug and panics.
    ///
    /// This method and [`on_receive_into`](Self::on_receive_into) are
    /// semantically the same step with two calling conventions; **implement at
    /// least one** (each has a default written in terms of the other, so
    /// implementing neither recurses forever). Protocols that implement only
    /// this one keep working unchanged; hot protocols implement
    /// `on_receive_into` to skip the per-delivery `Vec` allocation.
    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut Self::State,
        in_port: usize,
        message: &Self::Message,
    ) -> Vec<(usize, Self::Message)> {
        let mut out = Vec::new();
        self.on_receive_into(ctx, state, in_port, message, &mut out);
        out
    }

    /// The allocation-free form of [`on_receive`](Self::on_receive): emitted
    /// `(out_port, message)` pairs are **appended** to `out` instead of
    /// returned.
    ///
    /// The engine clears and reuses one scratch buffer across all deliveries
    /// of a run, so an implementation of this method makes the per-delivery
    /// emit cost allocation-free. `out` may already be non-empty only in
    /// third-party callers; implementations must append, never truncate.
    ///
    /// See [`on_receive`](Self::on_receive) for the mutual-default contract:
    /// implement at least one of the two.
    fn on_receive_into(
        &self,
        ctx: &NodeContext,
        state: &mut Self::State,
        in_port: usize,
        message: &Self::Message,
        out: &mut Vec<(usize, Self::Message)>,
    ) {
        out.extend(self.on_receive(ctx, state, in_port, message));
    }

    /// `S`: whether the terminal, in `terminal_state`, declares termination.
    fn should_terminate(&self, terminal_state: &Self::State) -> bool;
}

/// An anonymous protocol that can re-transmit its knowledge frontier, making
/// it recoverable under message loss via [`crate::engine::run_recovering`].
///
/// The paper's protocols assume reliable channels: every send is delivered
/// exactly once, so a single flood suffices and a lost message starves the run
/// forever. A `RefloodProtocol` additionally knows how to answer "if you had
/// to re-send everything you have ever told each out-port, what would you
/// say?" — the *frontier*. The engine invokes it only when a run drains with
/// messages destroyed (see [`crate::engine::run_recovering`] for the exact
/// contract), giving a retry variant of the protocol without touching the
/// pristine delivery path.
///
/// Implementations must satisfy two laws, both relied on by the recovery
/// differential suite:
///
/// * **Idempotence** — re-delivering a frontier message to a vertex that
///   already processed its content must not change what the protocol
///   ultimately computes (labels, records, payload knowledge). The interval
///   protocols get this for free: duplicate α mass is routed to β exactly as
///   a cycle echo would be, and record floods are interned sets.
/// * **Purity** — `reflood` takes `&State` and must not mutate anything
///   observable; calling it is not a protocol step, only the deliveries it
///   causes are.
pub trait RefloodProtocol: AnonymousProtocol {
    /// The frontier: for each out-port, the message that re-transmits
    /// everything this vertex has already contributed on that port. Ports with
    /// nothing to say are simply omitted (an empty vector means the vertex
    /// stays silent in a re-flood round).
    fn reflood(&self, ctx: &NodeContext, state: &Self::State) -> Vec<(usize, Self::Message)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Implements only the collecting form; the emit-into default must route
    /// through it.
    #[derive(Debug)]
    struct Collecting;

    impl AnonymousProtocol for Collecting {
        type State = u32;
        type Message = u64;

        fn name(&self) -> &'static str {
            "collecting"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> u32 {
            0
        }
        fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, u64)> {
            vec![(0, 1u64)]
        }
        fn on_receive(
            &self,
            _ctx: &NodeContext,
            state: &mut u32,
            _in_port: usize,
            message: &u64,
        ) -> Vec<(usize, u64)> {
            *state += *message as u32;
            vec![(0, message + 1)]
        }
        fn should_terminate(&self, terminal_state: &u32) -> bool {
            *terminal_state > 0
        }
    }

    /// Implements only the emit-into form; the collecting default must route
    /// through it.
    #[derive(Debug)]
    struct Emitting;

    impl AnonymousProtocol for Emitting {
        type State = u32;
        type Message = u64;

        fn name(&self) -> &'static str {
            "emitting"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> u32 {
            0
        }
        fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, u64)> {
            vec![(0, 1u64)]
        }
        fn on_receive_into(
            &self,
            _ctx: &NodeContext,
            state: &mut u32,
            _in_port: usize,
            message: &u64,
            out: &mut Vec<(usize, u64)>,
        ) {
            *state += *message as u32;
            out.push((0, message + 1));
        }
        fn should_terminate(&self, terminal_state: &u32) -> bool {
            *terminal_state > 0
        }
    }

    #[test]
    fn on_receive_defaults_are_mutual() {
        let ctx = NodeContext::new(1, 1);
        // Collecting impl, called through the emit-into default: appends.
        let mut state = 0;
        let mut out = vec![(9, 9)];
        Collecting.on_receive_into(&ctx, &mut state, 0, &5, &mut out);
        assert_eq!(state, 5);
        assert_eq!(out, vec![(9, 9), (0, 6)]);
        // Emit-into impl, called through the collecting default.
        let mut state = 0;
        let collected = Emitting.on_receive(&ctx, &mut state, 0, &5);
        assert_eq!(state, 5);
        assert_eq!(collected, vec![(0, 6)]);
    }

    #[test]
    fn node_context_is_constructible_and_comparable() {
        let a = NodeContext::new(2, 3);
        assert_eq!(a.in_degree, 2);
        assert_eq!(a.out_degree, 3);
        assert_eq!(
            a,
            NodeContext {
                in_degree: 2,
                out_degree: 3
            }
        );
        assert_ne!(a, NodeContext::new(3, 2));
    }
}
